package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleStore(t *testing.T) *Store {
	t.Helper()
	b := NewBuilder("sample", 5)
	b.Add([]Item{0, 1, 2})
	b.Add([]Item{1, 2})
	b.Add([]Item{2})
	b.Add([]Item{})
	b.Add([]Item{4, 4, 1}) // duplicate item in one transaction
	return b.Build()
}

func TestStoreBasics(t *testing.T) {
	s := sampleStore(t)
	if s.Name() != "sample" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.NumRecords() != 5 {
		t.Errorf("NumRecords = %d", s.NumRecords())
	}
	if s.NumItems() != 5 {
		t.Errorf("NumItems = %d", s.NumItems())
	}
	if got := s.Transaction(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Transaction(1) = %v", got)
	}
	count := 0
	s.Each(func(tx []Item) { count++ })
	if count != 5 {
		t.Errorf("Each visited %d transactions", count)
	}
}

func TestItemSupportsCountsPresenceNotOccurrences(t *testing.T) {
	s := sampleStore(t)
	want := []int{1, 3, 3, 0, 1} // item 4 appears twice in one tx but support is 1
	got := s.ItemSupports()
	for i, w := range want {
		if got[i] != w {
			t.Errorf("support[%d] = %d, want %d", i, got[i], w)
		}
	}
	f := s.SupportsFloat()
	for i, w := range want {
		if f[i] != float64(w) {
			t.Errorf("SupportsFloat[%d] = %v", i, f[i])
		}
	}
}

func TestTopSupports(t *testing.T) {
	s := sampleStore(t)
	top := s.TopSupports(3)
	// Supports: item1=3, item2=3, item0=1, item4=1, item3=0.
	// Ties break by item id: 1 before 2, 0 before 4.
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Item != 1 || top[1].Item != 2 || top[2].Item != 0 {
		t.Errorf("top order %v", top)
	}
	if got := s.TopSupports(100); len(got) != 5 {
		t.Errorf("clamped top length %d", len(got))
	}
}

func TestBuilderPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewBuilder(0) did not panic")
			}
		}()
		NewBuilder("x", 0)
	}()
	b := NewBuilder("x", 3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Add did not panic")
		}
	}()
	b.Add([]Item{3})
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := sampleStore(t)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	// The empty transaction serializes to an empty line, which Read skips;
	// compare supports rather than record counts.
	back, err := Read(&buf, "sample", 5)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != 4 {
		t.Errorf("round-trip records = %d, want 4 (empty tx dropped)", back.NumRecords())
	}
	wantSup := s.ItemSupports()
	gotSup := back.ItemSupports()
	for i := range wantSup {
		if wantSup[i] != gotSup[i] {
			t.Errorf("support[%d]: %d != %d", i, gotSup[i], wantSup[i])
		}
	}
}

func TestReadInference(t *testing.T) {
	in := "1 5 2\n\n7\n"
	s, err := Read(strings.NewReader(in), "inferred", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumItems() != 8 {
		t.Errorf("inferred NumItems = %d, want 8", s.NumItems())
	}
	if s.NumRecords() != 2 {
		t.Errorf("records = %d, want 2", s.NumRecords())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]struct {
		in       string
		numItems int
	}{
		"garbage":      {"1 x 2\n", 0},
		"negative":     {"-3\n", 0},
		"out of range": {"9\n", 5},
	}
	for name, c := range cases {
		if _, err := Read(strings.NewReader(c.in), "bad", c.numItems); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	s, err := Read(strings.NewReader(""), "empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRecords() != 0 || s.NumItems() != 1 {
		t.Errorf("empty store: %d records, %d items", s.NumRecords(), s.NumItems())
	}
}

func TestProfilesMatchTable1(t *testing.T) {
	want := []struct {
		name    string
		records int
		items   int
	}{
		{"BMS-POS", 515597, 1657},
		{"Kosarak", 990002, 41270},
		{"AOL", 647377, 2290685},
		{"Zipf", 1000000, 10000},
	}
	ps := Profiles()
	if len(ps) != len(want) {
		t.Fatalf("got %d profiles", len(ps))
	}
	for i, w := range want {
		if ps[i].Name != w.name || ps[i].Records != w.records || ps[i].Items != w.items {
			t.Errorf("profile %d = %+v, want %+v", i, ps[i], w)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Kosarak")
	if err != nil || p.Name != "Kosarak" {
		t.Errorf("ProfileByName(Kosarak) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateDeterministicAndSized(t *testing.T) {
	p := Profile{Name: "tiny", Records: 2000, Items: 100, MeanTxLen: 4, Exponent: 1.0}
	a, err := Generate(p, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != 2000 {
		t.Errorf("records = %d", a.NumRecords())
	}
	sa, sb := a.ItemSupports(), b.ItemSupports()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverged at item %d", i)
		}
	}
	c, err := Generate(p, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRecords() != 500 {
		t.Errorf("scaled records = %d, want 500", c.NumRecords())
	}
	if c.NumItems() != 100 {
		t.Errorf("scaled items = %d, want full universe", c.NumItems())
	}
}

func TestGenerateTransactionsAreSets(t *testing.T) {
	p := Profile{Name: "sets", Records: 500, Items: 20, MeanTxLen: 6, Exponent: 0.8}
	s, err := Generate(p, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.Each(func(tx []Item) {
		seen := map[Item]bool{}
		for _, it := range tx {
			if seen[it] {
				t.Fatalf("duplicate item %d in transaction %v", it, tx)
			}
			seen[it] = true
		}
		if len(tx) == 0 {
			t.Fatal("empty generated transaction")
		}
	})
}

func TestGenerateSupportShape(t *testing.T) {
	// The realized support curve must decrease with popularity rank and
	// roughly match the analytic expectation.
	p := Profile{Name: "shape", Records: 50000, Items: 500, MeanTxLen: 3, Exponent: 1.0}
	s, err := Generate(p, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	supports := s.ItemSupports()
	// Items are generated so that item id == popularity rank - 1.
	for _, rank := range []int{1, 5, 20, 100} {
		want := ExpectedSupport(p, 1, rank)
		got := float64(supports[rank-1])
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("rank %d: support %v, expected ≈%v", rank, got, want)
		}
	}
	// Monotone on average: compare coarse buckets rather than neighbors.
	bucket := func(lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += float64(supports[i])
		}
		return sum / float64(hi-lo)
	}
	if !(bucket(0, 10) > bucket(50, 60) && bucket(50, 60) > bucket(400, 500)) {
		t.Error("support curve is not decreasing across rank buckets")
	}
}

func TestGenerateSteeperExponentConcentratesHead(t *testing.T) {
	base := Profile{Name: "flat", Records: 30000, Items: 300, MeanTxLen: 2, Exponent: 0.6}
	steep := base
	steep.Name = "steep"
	steep.Exponent = 1.4
	headShare := func(p Profile) float64 {
		s, err := Generate(p, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		sup := s.ItemSupports()
		head, total := 0, 0
		for i, v := range sup {
			total += v
			if i < 10 {
				head += v
			}
		}
		return float64(head) / float64(total)
	}
	if hFlat, hSteep := headShare(base), headShare(steep); hSteep <= hFlat {
		t.Errorf("steeper exponent head share %v <= flatter %v", hSteep, hFlat)
	}
}

func TestGenerateValidation(t *testing.T) {
	good := Profile{Name: "g", Records: 10, Items: 5, MeanTxLen: 2, Exponent: 1}
	cases := map[string]struct {
		p     Profile
		scale float64
	}{
		"zero scale":   {good, 0},
		"neg scale":    {good, -0.5},
		"scale > 1":    {good, 1.5},
		"NaN scale":    {good, math.NaN()},
		"zero records": {Profile{Name: "b", Records: 0, Items: 5, MeanTxLen: 2, Exponent: 1}, 1},
		"zero items":   {Profile{Name: "b", Records: 10, Items: 0, MeanTxLen: 2, Exponent: 1}, 1},
		"short txlen":  {Profile{Name: "b", Records: 10, Items: 5, MeanTxLen: 0.5, Exponent: 1}, 1},
		"bad exponent": {Profile{Name: "b", Records: 10, Items: 5, MeanTxLen: 2, Exponent: 0}, 1},
	}
	for name, c := range cases {
		if _, err := Generate(c.p, c.scale, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Property: any generated store has records within bounds, all items in
// range, and no empty transactions.
func TestQuickGenerateWellFormed(t *testing.T) {
	f := func(seed uint64, recRaw, itemRaw, expRaw uint8) bool {
		p := Profile{
			Name:      "q",
			Records:   int(recRaw%50) + 1,
			Items:     int(itemRaw%30) + 2,
			MeanTxLen: 1 + float64(expRaw%4),
			Exponent:  0.5 + float64(expRaw%3)/2,
		}
		s, err := Generate(p, 1, seed)
		if err != nil {
			return false
		}
		if s.NumRecords() != p.Records {
			return false
		}
		okAll := true
		s.Each(func(tx []Item) {
			if len(tx) == 0 {
				okAll = false
			}
			for _, it := range tx {
				if it < 0 || int(it) >= p.Items {
					okAll = false
				}
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
