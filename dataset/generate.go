package dataset

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// Profile describes one of the paper's four workloads (Table 1) together
// with the shape parameters used to synthesize it.
type Profile struct {
	// Name is the dataset name as it appears in the paper.
	Name string
	// Records and Items are the Table 1 characteristics.
	Records int
	Items   int
	// MeanTxLen is the mean transaction length of the synthesized store
	// (1 means every record is a single item draw).
	MeanTxLen float64
	// Exponent is the Zipf exponent of the item-popularity distribution;
	// larger values give steeper Figure 3 curves.
	Exponent float64
}

// The four profiles of Table 1. Record and item counts are exactly the
// published ones; MeanTxLen and Exponent are calibrated so the top-300
// support curves reproduce the shapes of Figure 3 (AOL steepest and
// sparsest, BMS-POS flattest and densest, Kosarak in between with a heavy
// head, Zipf exactly 1/rank).
var (
	BMSPOS  = Profile{Name: "BMS-POS", Records: 515597, Items: 1657, MeanTxLen: 6.5, Exponent: 0.75}
	Kosarak = Profile{Name: "Kosarak", Records: 990002, Items: 41270, MeanTxLen: 8.1, Exponent: 1.05}
	AOL     = Profile{Name: "AOL", Records: 647377, Items: 2290685, MeanTxLen: 3.0, Exponent: 1.10}
	Zipf    = Profile{Name: "Zipf", Records: 1000000, Items: 10000, MeanTxLen: 1.0, Exponent: 1.00}
)

// Profiles returns the paper's four workloads in Table 1 order.
func Profiles() []Profile {
	return []Profile{BMSPOS, Kosarak, AOL, Zipf}
}

// ProfileByName finds a profile case-sensitively by its paper name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// Generate synthesizes a transaction store for the profile at the given
// scale: scale 1 produces exactly Profile.Records transactions over
// Profile.Items items (the Table 1 characteristics); smaller scales shrink
// the record count proportionally (the item universe keeps its full size so
// score distributions keep their shape). Generation is deterministic in
// seed.
func Generate(p Profile, scale float64, seed uint64) (*Store, error) {
	if !(scale > 0 && scale <= 1) || math.IsNaN(scale) {
		return nil, fmt.Errorf("dataset: scale must be in (0, 1], got %v", scale)
	}
	if p.Records <= 0 || p.Items <= 0 {
		return nil, fmt.Errorf("dataset: profile %q has non-positive size", p.Name)
	}
	if !(p.MeanTxLen >= 1) {
		return nil, fmt.Errorf("dataset: profile %q mean transaction length %v < 1", p.Name, p.MeanTxLen)
	}
	if !(p.Exponent > 0) {
		return nil, fmt.Errorf("dataset: profile %q exponent %v <= 0", p.Name, p.Exponent)
	}
	records := int(math.Round(float64(p.Records) * scale))
	if records < 1 {
		records = 1
	}
	src := rng.New(seed)
	popularity := rng.NewZipf(p.Items, p.Exponent)

	b := NewBuilder(p.Name, p.Items)
	// Transaction lengths are 1 + Geometric(pGeom), giving mean MeanTxLen.
	single := p.MeanTxLen == 1
	var pGeom float64
	if !single {
		pGeom = 1 / p.MeanTxLen
	}
	tx := make([]Item, 0, 32)
	for r := 0; r < records; r++ {
		length := 1
		if !single {
			length = 1 + src.Geometric(pGeom)
			// A transaction cannot hold more distinct items than the
			// universe; without this clamp the redraw loop below would
			// never terminate on tiny universes.
			if length > p.Items {
				length = p.Items
			}
		}
		tx = tx[:0]
		for len(tx) < length {
			it := Item(popularity.Sample(src) - 1)
			if containsItem(tx, it) {
				// Redraw duplicates; transactions are item sets. With
				// thousands of items collisions are rare, so the expected
				// number of redraws is negligible.
				continue
			}
			tx = append(tx, it)
		}
		b.Add(tx)
	}
	return b.Build(), nil
}

// containsItem reports whether tx already holds it. Transactions are short
// (a few dozen items at most), so a linear scan beats a map.
func containsItem(tx []Item, it Item) bool {
	for _, v := range tx {
		if v == it {
			return true
		}
	}
	return false
}

// ExpectedSupport returns the analytically expected support of the item at
// popularity rank (1-based) under the profile at the given scale. Tests use
// it to verify the generator matches its own model; the experiments use the
// realized supports, never this.
func ExpectedSupport(p Profile, scale float64, rank int) float64 {
	z := rng.NewZipf(p.Items, p.Exponent)
	records := math.Round(float64(p.Records) * scale)
	prob := z.Prob(rank)
	if p.MeanTxLen == 1 {
		return records * prob
	}
	// A transaction of length L contains the item with probability
	// ≈ 1-(1-prob)^L; average over the geometric length distribution.
	// For small prob this is ≈ MeanTxLen·prob.
	mean := 0.0
	pGeom := 1 / p.MeanTxLen
	// Truncate the length distribution at a generous quantile.
	for l, w := 1, pGeom; l < 200; l++ {
		mean += w * (1 - math.Pow(1-prob, float64(l)))
		w *= 1 - pGeom
	}
	return records * mean
}
