// Package dataset provides the transaction-database substrate for the
// paper's evaluation (§6): an in-memory transaction store, item-support
// counting, a FIMI-style text serialization, and synthetic generators
// calibrated to the four workloads of Table 1 — BMS-POS, Kosarak, AOL and
// a Zipf distribution.
//
// The real BMS-POS, Kosarak and AOL datasets are not redistributable, so
// the generators synthesize stores with the exact record and item counts of
// Table 1 and power-law item-frequency profiles whose top-300 support
// curves have the shapes of the paper's Figure 3. The SVT/EM algorithms
// consume only the vector of item supports (plus Δ = 1 counting
// sensitivity), so matching the support distribution preserves every
// behaviour the evaluation measures; see DESIGN.md §3.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Item identifies an item; valid items are in [0, NumItems) of their store.
type Item = int32

// Store is an immutable in-memory transaction database. Transactions are
// stored in one flat arena with an offset index, which keeps even the
// AOL-scale store (≈2M transactions) compact and cache-friendly.
type Store struct {
	name     string
	numItems int
	items    []Item   // concatenated transactions
	offsets  []uint32 // offsets[i]..offsets[i+1] delimit transaction i
}

// Builder accumulates transactions for a Store.
type Builder struct {
	name     string
	numItems int
	items    []Item
	offsets  []uint32
}

// NewBuilder creates a builder for a store over numItems items.
func NewBuilder(name string, numItems int) *Builder {
	if numItems <= 0 {
		panic("dataset: numItems must be positive")
	}
	return &Builder{name: name, numItems: numItems, offsets: []uint32{0}}
}

// Add appends one transaction. It panics on an out-of-range item so data
// corruption is caught at ingestion, not at query time.
func (b *Builder) Add(tx []Item) {
	for _, it := range tx {
		if it < 0 || int(it) >= b.numItems {
			panic(fmt.Sprintf("dataset: item %d out of range [0,%d)", it, b.numItems))
		}
	}
	b.items = append(b.items, tx...)
	b.offsets = append(b.offsets, uint32(len(b.items)))
}

// Build freezes the accumulated transactions into a Store. The builder
// must not be used afterwards.
func (b *Builder) Build() *Store {
	return &Store{name: b.name, numItems: b.numItems, items: b.items, offsets: b.offsets}
}

// Name returns the dataset's display name.
func (s *Store) Name() string { return s.name }

// NumRecords returns the number of transactions.
func (s *Store) NumRecords() int { return len(s.offsets) - 1 }

// NumItems returns the size of the item universe.
func (s *Store) NumItems() int { return s.numItems }

// Transaction returns the i-th transaction. The returned slice aliases the
// store's arena and must not be modified.
func (s *Store) Transaction(i int) []Item {
	return s.items[s.offsets[i]:s.offsets[i+1]]
}

// Each calls fn for every transaction in order. The slice passed to fn
// aliases the store's arena and must not be retained or modified.
func (s *Store) Each(fn func(tx []Item)) {
	for i := 0; i < s.NumRecords(); i++ {
		fn(s.Transaction(i))
	}
}

// ItemSupports returns the support (number of transactions containing the
// item at least once) of every item. Supports are the query scores of the
// paper's evaluation: counting queries with sensitivity 1, monotonic under
// add/remove-one-transaction neighbors.
func (s *Store) ItemSupports() []int {
	supports := make([]int, s.numItems)
	seen := make(map[Item]bool, 16)
	s.Each(func(tx []Item) {
		if len(tx) == 1 {
			// Fast path: single-item transactions dominate some profiles.
			supports[tx[0]]++
			return
		}
		for k := range seen {
			delete(seen, k)
		}
		for _, it := range tx {
			if !seen[it] {
				seen[it] = true
				supports[it]++
			}
		}
	})
	return supports
}

// SupportsFloat returns ItemSupports converted to float64, the score-vector
// form the selection mechanisms consume.
func (s *Store) SupportsFloat() []float64 {
	ints := s.ItemSupports()
	out := make([]float64, len(ints))
	for i, v := range ints {
		out[i] = float64(v)
	}
	return out
}

// WithoutRecord returns a new Store identical to s except that transaction
// i is removed — the canonical remove-one neighbor D′ ≃ D of the paper's
// privacy definition. The audit package uses it to run end-to-end privacy
// audits against real neighboring datasets rather than hand-built query
// vectors. It panics if i is out of range.
func (s *Store) WithoutRecord(i int) *Store {
	if i < 0 || i >= s.NumRecords() {
		panic(fmt.Sprintf("dataset: record %d out of range [0,%d)", i, s.NumRecords()))
	}
	b := NewBuilder(s.name, s.numItems)
	for j := 0; j < s.NumRecords(); j++ {
		if j != i {
			b.Add(s.Transaction(j))
		}
	}
	return b.Build()
}

// ItemSupport pairs an item with its support.
type ItemSupport struct {
	Item    Item
	Support int
}

// TopSupports returns the k items with the highest supports in decreasing
// order (ties broken by item id for determinism). k larger than the item
// universe is clamped.
func (s *Store) TopSupports(k int) []ItemSupport {
	supports := s.ItemSupports()
	all := make([]ItemSupport, len(supports))
	for i, v := range supports {
		all[i] = ItemSupport{Item: Item(i), Support: v}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Support != all[j].Support {
			return all[i].Support > all[j].Support
		}
		return all[i].Item < all[j].Item
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// WriteTo serializes the store in the FIMI text format: one transaction per
// line, space-separated item ids. It returns the number of bytes written.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var scratch []byte
	for i := 0; i < s.NumRecords(); i++ {
		scratch = scratch[:0]
		for j, it := range s.Transaction(i) {
			if j > 0 {
				scratch = append(scratch, ' ')
			}
			scratch = strconv.AppendInt(scratch, int64(it), 10)
		}
		scratch = append(scratch, '\n')
		written, err := bw.Write(scratch)
		n += int64(written)
		if err != nil {
			return n, fmt.Errorf("dataset: write transaction %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("dataset: flush: %w", err)
	}
	return n, nil
}

// Read parses a FIMI text stream into a Store named name. numItems 0 sizes
// the universe to maxItem+1; otherwise out-of-range items are an error.
func Read(r io.Reader, name string, numItems int) (*Store, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var txs [][]Item
	maxItem := Item(-1)
	line := 0
	for scanner.Scan() {
		line++
		fields := splitFields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		tx := make([]Item, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad item %q: %w", line, f, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative item %d", line, v)
			}
			if numItems > 0 && v >= int64(numItems) {
				return nil, fmt.Errorf("dataset: line %d: item %d out of range [0,%d)", line, v, numItems)
			}
			it := Item(v)
			if it > maxItem {
				maxItem = it
			}
			tx = append(tx, it)
		}
		txs = append(txs, tx)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if numItems == 0 {
		numItems = int(maxItem) + 1
		if numItems == 0 {
			numItems = 1 // empty dataset still needs a non-empty universe
		}
	}
	b := NewBuilder(name, numItems)
	for _, tx := range txs {
		b.Add(tx)
	}
	return b.Build(), nil
}

// splitFields is strings.Fields without the import, kept local because the
// scanner loop is hot for large files.
func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == '\r' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}
