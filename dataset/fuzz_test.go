package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hammers the FIMI parser with arbitrary byte streams: it must
// never panic, and on success the parsed store must round-trip through
// WriteTo/Read preserving all item supports.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"1 2 3\n",
		"0\n0 1\n0 1 2\n",
		"   5   7 \n\n\n9\n",
		"x\n",
		"-1\n",
		"99999999999999999999\n",
		"1 1 1\n",
		"3\r\n4 5\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		store, err := Read(bytes.NewReader(data), "fuzz", 0)
		if err != nil {
			return // rejecting malformed input is correct behaviour
		}
		// Round-trip: serialize and re-parse; supports must be identical.
		var buf bytes.Buffer
		if _, err := store.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed on parsed store: %v", err)
		}
		back, err := Read(&buf, "fuzz2", store.NumItems())
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\ninput: %q\nserialized: %q", err, data, buf.String())
		}
		a, b := store.ItemSupports(), back.ItemSupports()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("support[%d] changed across round-trip: %d -> %d", i, a[i], b[i])
			}
		}
	})
}

// FuzzRead also runs as a plain test over its seed corpus; this companion
// exercises the size-capped path explicitly.
func TestReadRejectsOverlongLinesGracefully(t *testing.T) {
	// A single line longer than the scanner's 16MB cap must produce an
	// error, not a hang or panic.
	long := strings.Repeat("1 ", 9*1024*1024) // ~18MB line
	_, err := Read(strings.NewReader(long), "big", 0)
	if err == nil {
		t.Skip("line fit within scanner buffer on this platform")
	}
}
