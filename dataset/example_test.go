package dataset_test

import (
	"fmt"

	"github.com/dpgo/svt/dataset"
)

// Building a store and reading item supports.
func ExampleBuilder() {
	b := dataset.NewBuilder("visits", 3)
	b.Add([]dataset.Item{0, 1})
	b.Add([]dataset.Item{1})
	b.Add([]dataset.Item{1, 2})
	store := b.Build()

	fmt.Println("records:", store.NumRecords())
	fmt.Println("supports:", store.ItemSupports())
	top := store.TopSupports(1)
	fmt.Printf("top item: %d (support %d)\n", top[0].Item, top[0].Support)
	// Output:
	// records: 3
	// supports: [1 3 1]
	// top item: 1 (support 3)
}

// Generating one of the paper's Table-1 workloads at reduced scale.
func ExampleGenerate() {
	store, err := dataset.Generate(dataset.Zipf, 0.001, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("name:", store.Name())
	fmt.Println("records:", store.NumRecords())
	fmt.Println("items:", store.NumItems())
	// Output:
	// name: Zipf
	// records: 1000
	// items: 10000
}
