package svt_test

import (
	"errors"
	"fmt"

	svt "github.com/dpgo/svt"
)

// The basic interactive loop: stream counts against a threshold, stop when
// the positive budget is spent.
func ExampleSparse() {
	mech, err := svt.New(svt.Options{
		Epsilon:      2.0,
		Sensitivity:  1,
		MaxPositives: 2,
		Monotonic:    true,
		Seed:         42, // fixed seed: reproducible example output
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	counts := []float64{900, 2100, 400, 1900, 800}
	for _, c := range counts {
		res, err := mech.Next(c, 1000)
		if errors.Is(err, svt.ErrHalted) {
			fmt.Println("halted")
			break
		}
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println(res)
	}
	// Output:
	// ⊥
	// ⊤
	// ⊥
	// ⊤
	// halted
}

// Non-interactive top-c selection with the Exponential Mechanism — the
// paper's recommendation when all scores are known up front.
func ExampleTopC() {
	scores := []float64{120, 4500, 300, 3900, 80, 4100}
	selected, err := svt.TopC(scores, svt.SelectOptions{
		Epsilon:     1.0,
		Sensitivity: 1,
		C:           3,
		Monotonic:   true,
		Method:      svt.MethodEM,
		Seed:        7,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("selected:", selected)
	// Output:
	// selected: [1 5 3]
}

// The §3.4 error gate: spend budget only when a public estimate is too far
// from the private truth.
func ExampleErrorGate() {
	gate, err := svt.NewErrorGate(100, svt.Options{
		Epsilon:      2.0,
		Sensitivity:  1,
		MaxPositives: 1,
		Seed:         11,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Estimate 510 vs truth 500: error 10, far under the threshold of 100.
	ok, err := gate.ExceedsThreshold(510, 500)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("needs refresh:", ok)
	// Estimate 100 vs truth 900: error 800, far over.
	ok, err = gate.ExceedsThreshold(100, 900)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("needs refresh:", ok)
	// Output:
	// needs refresh: false
	// needs refresh: true
}
