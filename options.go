package svt

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/core"
)

// Allocation selects how the indicator budget is split between threshold
// perturbation (ε₁) and query perturbation (ε₂). The paper shows this
// choice changes utility dramatically (Figure 4); AllocationAuto applies
// the variance-minimizing split of §4.2 and is the right default.
type Allocation int

const (
	// AllocationAuto uses ε₁:ε₂ = 1:(2c)^{2/3}, or 1:c^{2/3} when the
	// queries are monotonic — the optimal splits derived in the paper.
	AllocationAuto Allocation = iota
	// Allocation1x1 is the conventional 1:1 split of most prior work.
	Allocation1x1
	// Allocation1x3 is the 1:3 split used by Lee and Clifton.
	Allocation1x3
	// Allocation1xC is the 1:c split.
	Allocation1xC
	// Allocation1xC23 forces 1:c^{2/3} regardless of monotonicity.
	Allocation1xC23
	// Allocation1x2C23 forces 1:(2c)^{2/3} regardless of monotonicity.
	Allocation1x2C23
)

// String names the allocation as in the paper's plots.
func (a Allocation) String() string {
	switch a {
	case AllocationAuto:
		return "auto"
	case Allocation1x1:
		return "1:1"
	case Allocation1x3:
		return "1:3"
	case Allocation1xC:
		return "1:c"
	case Allocation1xC23:
		return "1:c^(2/3)"
	case Allocation1x2C23:
		return "1:(2c)^(2/3)"
	default:
		return fmt.Sprintf("Allocation(%d)", int(a))
	}
}

// ratio maps the allocation to the internal ratio strategy.
func (a Allocation) ratio(monotonic bool) (core.Ratio, error) {
	switch a {
	case AllocationAuto:
		return core.OptimalRatio(monotonic), nil
	case Allocation1x1:
		return core.RatioOneOne, nil
	case Allocation1x3:
		return core.RatioOneThree, nil
	case Allocation1xC:
		return core.RatioOneC, nil
	case Allocation1xC23:
		return core.RatioCubeRootC, nil
	case Allocation1x2C23:
		return core.RatioCubeRoot2C, nil
	default:
		return 0, fmt.Errorf("svt: unknown allocation %d", int(a))
	}
}

// Options configures a Sparse mechanism.
type Options struct {
	// Epsilon is the total privacy budget of the mechanism (ε₁+ε₂+ε₃).
	// Required: must be positive and finite.
	Epsilon float64

	// Sensitivity is the global sensitivity Δ of every query fed to the
	// mechanism. Required: must be positive and finite. For counting
	// queries under add/remove-one neighbors, Δ = 1.
	Sensitivity float64

	// MaxPositives is the cutoff c: the mechanism halts after releasing
	// this many positive outcomes. Required: must be positive.
	MaxPositives int

	// Monotonic declares that all queries move in the same direction
	// between neighboring datasets (e.g. counting queries). This halves
	// the query-noise scale (Theorem 5). Do not set it unless the
	// property genuinely holds — it is a privacy claim, not a tuning knob.
	Monotonic bool

	// Allocation picks the ε₁:ε₂ split. The zero value (AllocationAuto)
	// applies the paper's optimal allocation.
	Allocation Allocation

	// AnswerFraction is the fraction of Epsilon reserved as ε₃ for
	// releasing Laplace-perturbed numeric answers for positive outcomes
	// (Algorithm 7 lines 5-6). Zero (the default) releases indicators
	// only. Must lie in [0, 1).
	AnswerFraction float64

	// Seed makes the mechanism's randomness reproducible. The zero value
	// seeds from crypto/rand, which is what production use should do;
	// fixed seeds are for tests and experiments.
	Seed uint64
}

// validate checks the options and computes the three budget shares.
func (o Options) validate() (eps1, eps2, eps3 float64, err error) {
	if !(o.Epsilon > 0) || math.IsInf(o.Epsilon, 0) {
		return 0, 0, 0, fmt.Errorf("svt: Epsilon must be positive and finite, got %v", o.Epsilon)
	}
	if !(o.Sensitivity > 0) || math.IsInf(o.Sensitivity, 0) {
		return 0, 0, 0, fmt.Errorf("svt: Sensitivity must be positive and finite, got %v", o.Sensitivity)
	}
	if o.MaxPositives <= 0 {
		return 0, 0, 0, fmt.Errorf("svt: MaxPositives must be positive, got %d", o.MaxPositives)
	}
	if o.AnswerFraction < 0 || o.AnswerFraction >= 1 || math.IsNaN(o.AnswerFraction) {
		return 0, 0, 0, fmt.Errorf("svt: AnswerFraction must be in [0, 1), got %v", o.AnswerFraction)
	}
	ratio, err := o.Allocation.ratio(o.Monotonic)
	if err != nil {
		return 0, 0, 0, err
	}
	eps3 = o.Epsilon * o.AnswerFraction
	eps1, eps2 = ratio.Split(o.Epsilon-eps3, o.MaxPositives)
	return eps1, eps2, eps3, nil
}
