// Interactive query answering with Private Multiplicative Weights — the
// "iterative construction" use of SVT from the paper's introduction, where
// SVT's free negative answers let a mediator answer far more queries than
// its update budget alone would allow.
//
// An analyst streams range queries against a private age histogram. The
// engine answers each query from a public synthetic histogram when that is
// (noisily) accurate enough — free — and only spends budget when the
// synthetic answer is too far off. Run with:
//
//	go run ./examples/interactive-mw
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"github.com/dpgo/svt/pmw"
)

func main() {
	// Private data: counts of people per age decade 0-9, ..., 90-99.
	histogram := []float64{120, 340, 560, 610, 480, 390, 260, 140, 70, 30}
	total := 0.0
	for _, v := range histogram {
		total += v
	}

	engine, err := pmw.New(pmw.Config{
		Histogram:    histogram,
		Epsilon:      2.0,
		MaxUpdates:   6,
		Threshold:    60,
		LearningRate: 0.3,
		Seed:         21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A realistic analyst session: overlapping range queries, many of them
	// re-asked or near-duplicates — the regime PMW is built for.
	queries := []struct {
		name    string
		buckets []int
	}{
		{"everyone", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{"under 30", []int{0, 1, 2}},
		{"30-59", []int{3, 4, 5}},
		{"under 30 (again)", []int{0, 1, 2}},
		{"60+", []int{6, 7, 8, 9}},
		{"working age 20-59", []int{2, 3, 4, 5}},
		{"under 30 (third time)", []int{0, 1, 2}},
		{"30-59 (again)", []int{3, 4, 5}},
		{"seniors 70+", []int{7, 8, 9}},
		{"under 50", []int{0, 1, 2, 3, 4}},
	}

	fmt.Printf("%-24s %10s %10s %8s %s\n", "query", "answer", "truth", "error", "source")
	for _, q := range queries {
		truth := 0.0
		for _, b := range q.buckets {
			truth += histogram[b]
		}
		res, err := engine.Answer(q.buckets)
		if errors.Is(err, pmw.ErrExhausted) {
			fmt.Printf("%-24s %10.0f %10.0f %8.0f synthetic (budget exhausted)\n",
				q.name, res.Value, truth, math.Abs(res.Value-truth))
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		source := "data access (budget spent)"
		if res.FromSynthetic {
			source = "synthetic (free)"
		}
		fmt.Printf("%-24s %10.0f %10.0f %8.0f %s\n",
			q.name, res.Value, truth, math.Abs(res.Value-truth), source)
	}
	fmt.Printf("\nanswered %d queries with only %d data accesses (%d allowed)\n",
		engine.Answered(), engine.Updates(), engine.Updates()+engine.UpdatesLeft())
	fmt.Println("free answers are exactly SVT's negative outcomes — the interactive setting the paper keeps SVT for")
}
