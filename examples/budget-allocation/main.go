// Budget allocation ablation — the paper's §4.2 optimization in isolation.
//
// SVT splits its budget between perturbing the threshold (ε₁) and
// perturbing the queries (ε₂). Most prior work used 1:1 "without a clear
// justification"; the paper derives the variance-minimizing split
// ε₁:ε₂ = 1:(2c)^{2/3} (1:c^{2/3} for monotonic queries). This example
// measures the selection error of each allocation on a Zipf workload. Run:
//
//	go run ./examples/budget-allocation
package main

import (
	"fmt"
	"log"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/metrics"
)

func main() {
	store, err := dataset.Generate(dataset.Zipf, 0.1, 3)
	if err != nil {
		log.Fatal(err)
	}
	scores := store.SupportsFloat()
	const (
		c       = 50
		epsilon = 0.2
		runs    = 40
	)
	trueTop := metrics.TopIndices(scores, c)
	topC1 := metrics.TopIndices(scores, c+1)
	threshold := (scores[topC1[c-1]] + scores[topC1[c]]) / 2

	allocations := []svt.Allocation{
		svt.Allocation1x1,
		svt.Allocation1x3,
		svt.Allocation1xC,
		svt.Allocation1xC23, // the paper's recommendation for counting queries
	}
	fmt.Printf("top-%d selection on %s, eps=%g, %d runs each\n\n", c, store.Name(), epsilon, runs)
	fmt.Printf("%-14s %10s\n", "allocation", "mean SER")
	for _, alloc := range allocations {
		sum := 0.0
		for run := 0; run < runs; run++ {
			selected, err := svt.TopC(scores, svt.SelectOptions{
				Epsilon:     epsilon,
				Sensitivity: 1,
				C:           c,
				Monotonic:   true,
				Method:      svt.MethodSVT,
				Threshold:   threshold,
				Allocation:  alloc,
				Seed:        uint64(1000 + run),
			})
			if err != nil {
				log.Fatal(err)
			}
			sum += metrics.SER(scores, trueTop, selected)
		}
		fmt.Printf("%-14s %10.4f\n", alloc, sum/runs)
	}
	fmt.Println("\nlower is better; the c-scaled allocations should clearly beat 1:1,")
	fmt.Println("reproducing the Figure 4 ordering (see cmd/svtbench -exp fig4)")
}
