// Private feature selection — the Stoddard et al. 2014 workload whose SVT
// variant (Algorithm 5) the paper proves is not private at all.
//
// This example runs the BROKEN variant and the corrected standard SVT side
// by side on the same feature scores, then demonstrates the actual leak:
// on the paper's Theorem-3 counterexample the broken variant produces an
// output that is possible in one world and impossible in the neighboring
// one, so a single observation can distinguish them. Run with:
//
//	go run ./examples/feature-selection
package main

import (
	"fmt"
	"log"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/variants"
)

func main() {
	// Feature scores (say, per-feature mutual information estimates
	// scaled to counts) and a relevance threshold.
	scores := []float64{931, 1220, 452, 1105, 387, 1540, 990, 1015}
	const threshold = 1000

	fmt.Println("selecting features with score above", threshold)

	// The broken variant: no query noise, no cutoff (Algorithm 5). Its
	// answers look clean — which is exactly why it was attractive — but it
	// enjoys no DP guarantee whatsoever.
	broken, err := variants.NewStoddard(1.0, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nAlgorithm 5 (Stoddard et al., NOT private): ")
	for _, s := range scores {
		res, _ := broken.Next(s, threshold)
		fmt.Print(res, " ")
	}
	fmt.Println()

	// The corrected standard SVT with the same budget.
	fixed, err := svt.New(svt.Options{
		Epsilon:      1.0,
		Sensitivity:  1,
		MaxPositives: 4,
		Monotonic:    true,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Algorithm 7 (corrected, ε-DP):              ")
	for _, s := range scores {
		res, err := fixed.Next(s, threshold)
		if err != nil {
			break
		}
		fmt.Print(res, " ")
	}
	fmt.Println()

	// The leak, made concrete (paper Theorem 3): two neighboring worlds,
	// q(D)=⟨0,1⟩ vs q(D′)=⟨1,0⟩, threshold 0. The output ⟨⊥,⊤⟩ has
	// positive probability under D and probability zero under D′ — one
	// glance at the output can reveal which world produced it.
	fmt.Println("\nwhy Algorithm 5 is broken (Theorem 3, 20000 runs per world):")
	count := func(qs [2]float64, seedBase uint64) int {
		hits := 0
		for i := uint64(0); i < 20000; i++ {
			alg, err := variants.NewStoddard(1.0, 1, seedBase+i)
			if err != nil {
				log.Fatal(err)
			}
			r1, _ := alg.Next(qs[0], 0)
			r2, _ := alg.Next(qs[1], 0)
			if !r1.Above && r2.Above {
				hits++
			}
		}
		return hits
	}
	fmt.Printf("world D  (q=⟨0,1⟩): output ⟨⊥,⊤⟩ seen %d times\n", count([2]float64{0, 1}, 1))
	fmt.Printf("world D′ (q=⟨1,0⟩): output ⟨⊥,⊤⟩ seen %d times\n", count([2]float64{1, 0}, 500000))
	fmt.Println("a non-zero count against a structural zero = infinite privacy loss (∞-DP)")
}
