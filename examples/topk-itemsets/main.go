// Private top-k frequent itemsets — the Lee & Clifton 2014 workload whose
// broken SVT (Algorithm 4) the paper dissects, rebuilt on the corrected
// machinery.
//
// The pipeline mines candidate itemsets with FP-Growth from a synthetic
// Kosarak-profile store, then privately selects the top k by support,
// comparing the paper's two non-interactive contenders: SVT with
// retraversal and the Exponential Mechanism. Run with:
//
//	go run ./examples/topk-itemsets
package main

import (
	"fmt"
	"log"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/fim"
)

func main() {
	// A small-scale Kosarak-shaped transaction store (the paper's §6 uses
	// the real Kosarak; the synthetic profile reproduces its support
	// distribution — see DESIGN.md §3).
	store, err := dataset.Generate(dataset.Kosarak, 0.02, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d records over %d items\n", store.NumRecords(), store.NumItems())

	const k = 10
	truth, err := fim.MineTopK(store, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue top-%d itemsets (FP-Growth):\n", k)
	for i, is := range truth {
		fmt.Printf("%3d. %v\n", i+1, is)
	}

	for _, method := range []svt.Method{svt.MethodReTr, svt.MethodEM} {
		selected, err := fim.PrivateTopK(store, fim.PrivateTopKOptions{
			K:       k,
			Epsilon: 0.5,
			Method:  method,
			BoostSD: 2,
			Seed:    99,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprivate top-%d via %s (eps=0.5):\n", k, method)
		for i, is := range selected {
			fmt.Printf("%3d. %v\n", i+1, is)
		}
	}
	fmt.Println("\nthe paper's §6 finding: in this non-interactive setting EM matches or beats")
	fmt.Println("every SVT variant — run cmd/svtbench -exp fig5 for the full sweep")
}
