// Quickstart: answer a stream of threshold queries with the corrected
// Sparse Vector Technique (the paper's Algorithm 7).
//
// The scenario: a sequence of daily event counts arrives; we want to flag
// the days whose count exceeds 1000, spending privacy budget only on the
// flagged days. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	svt "github.com/dpgo/svt"
)

func main() {
	// One mechanism answers the whole stream. Epsilon covers the entire
	// interaction; MaxPositives caps how many ⊤ answers may be released.
	mech, err := svt.New(svt.Options{
		Epsilon:      1.0,
		Sensitivity:  1, // counting query: one person changes a day's count by 1
		MaxPositives: 3,
		Monotonic:    true, // counts move one way between neighbors
		Seed:         42,   // fixed seed so the example is reproducible; drop for production
	})
	if err != nil {
		log.Fatal(err)
	}
	eps1, eps2, _ := mech.Budgets()
	fmt.Printf("budget split: eps1=%.4f (threshold), eps2=%.4f (queries)\n\n", eps1, eps2)

	dailyCounts := []float64{850, 990, 1400, 700, 1250, 500, 2100, 950, 1800, 600}
	const threshold = 1000

	for day, count := range dailyCounts {
		res, err := mech.Next(count, threshold)
		if errors.Is(err, svt.ErrHalted) {
			fmt.Printf("day %d: budget for positive answers exhausted, stopping\n", day)
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: count %5.0f → %s\n", day, count, res)
	}
	fmt.Printf("\nanswered %d queries, %d positive slots left\n", mech.Answered(), mech.Remaining())
	fmt.Println("negative answers consumed no budget — that is SVT's whole point")
}
