package svt_test

import (
	"errors"
	"math"
	"testing"

	svt "github.com/dpgo/svt"
)

func gateOptions() svt.Options {
	return svt.Options{Epsilon: 2.0, Sensitivity: 1, MaxPositives: 3, Seed: 55}
}

func TestNewErrorGateValidation(t *testing.T) {
	if _, err := svt.NewErrorGate(0, gateOptions()); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := svt.NewErrorGate(-5, gateOptions()); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := svt.NewErrorGate(math.Inf(1), gateOptions()); err == nil {
		t.Error("infinite threshold accepted")
	}
	opts := gateOptions()
	opts.Monotonic = true
	if _, err := svt.NewErrorGate(10, opts); err == nil {
		t.Error("monotonic error gate accepted")
	}
	opts = gateOptions()
	opts.Epsilon = 0
	if _, err := svt.NewErrorGate(10, opts); err == nil {
		t.Error("invalid inner options accepted")
	}
}

func TestErrorGateSmallErrorsAreFree(t *testing.T) {
	gate, err := svt.NewErrorGate(1000, gateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gate.Threshold() != 1000 {
		t.Fatalf("Threshold = %v", gate.Threshold())
	}
	// Zero-error checks: with threshold 1000 and modest noise, these must
	// essentially always pass and never consume budget.
	for i := 0; i < 100; i++ {
		above, err := gate.ExceedsThreshold(500, 500)
		if err != nil {
			t.Fatal(err)
		}
		if above {
			t.Fatalf("zero error reported above threshold at query %d", i)
		}
	}
	if gate.Remaining() != 3 {
		t.Fatalf("free checks consumed budget: remaining %d", gate.Remaining())
	}
}

func TestErrorGateLargeErrorsTriggerAndHalt(t *testing.T) {
	gate, err := svt.NewErrorGate(10, gateOptions())
	if err != nil {
		t.Fatal(err)
	}
	positives := 0
	for i := 0; i < 50; i++ {
		above, err := gate.ExceedsThreshold(0, 1e9)
		if errors.Is(err, svt.ErrHalted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if above {
			positives++
		}
	}
	if positives != 3 {
		t.Fatalf("positives = %d, want 3", positives)
	}
	if !gate.Halted() || gate.Remaining() != 0 {
		t.Fatal("gate did not halt after budget")
	}
}

func TestErrorGateRejectsNonFinite(t *testing.T) {
	gate, err := svt.NewErrorGate(10, gateOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := gate.ExceedsThreshold(v, 0); err == nil {
			t.Errorf("estimate %v accepted", v)
		}
		if _, err := gate.ExceedsThreshold(0, v); err == nil {
			t.Errorf("truth %v accepted", v)
		}
	}
}

// The gate must be symmetric in the error sign: |q̃ − q| is what is tested.
func TestErrorGateSymmetry(t *testing.T) {
	count := func(estimate, truth float64, seed uint64) int {
		hits := 0
		for i := 0; i < 4000; i++ {
			opts := gateOptions()
			opts.Seed = seed + uint64(i)
			opts.MaxPositives = 1
			gate, err := svt.NewErrorGate(50, opts)
			if err != nil {
				t.Fatal(err)
			}
			above, err := gate.ExceedsThreshold(estimate, truth)
			if err != nil {
				t.Fatal(err)
			}
			if above {
				hits++
			}
		}
		return hits
	}
	plus := count(100, 40, 1000)  // error +60
	minus := count(40, 100, 5000) // error −60
	// Both directions see |error| = 60 above threshold 50; rates must be
	// statistically indistinguishable.
	if math.Abs(float64(plus-minus)) > 300 {
		t.Fatalf("asymmetric gate: +%d vs -%d", plus, minus)
	}
	if plus < 2000 {
		t.Fatalf("error 60 vs threshold 50 triggered only %d/4000", plus)
	}
}
