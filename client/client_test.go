package client_test

// SDK tests run against a real WireServer on a loopback listener: the
// full client path — dial, handshake, registry-driven validation,
// pipelined round trips, typed error mapping — against the same serving
// stack svtserve runs. The client package imports only wire, so pulling
// the server in here creates no cycle.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dpgo/svt/client"
	"github.com/dpgo/svt/server"
	"github.com/dpgo/svt/wire"
)

// startServer runs a WireServer for an in-memory manager on an ephemeral
// loopback port and tears both down with the test.
func startServer(t *testing.T, cfg server.WireConfig) (string, *server.WireServer) {
	t.Helper()
	m := server.NewSessionManager(server.ManagerConfig{})
	t.Cleanup(m.Close)
	ws := server.NewWireServer(m, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
	})
	return ln.Addr().String(), ws
}

func dial(t *testing.T, addr string, opts client.Options) *client.Client {
	t.Helper()
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c, err := client.Dial(addr, opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func sparseParams() client.CreateParams {
	return client.CreateParams{Mechanism: "sparse", Epsilon: 1, MaxPositives: 4}
}

func TestClientEndToEnd(t *testing.T) {
	addr, _ := startServer(t, server.WireConfig{})
	c := dial(t, addr, client.Options{Tenant: "acme"})

	if c.ServerMaxBatch() <= 0 || c.ServerMaxFrame() <= 0 {
		t.Fatalf("handshake caps not announced: batch=%d frame=%d", c.ServerMaxBatch(), c.ServerMaxFrame())
	}

	mechs, err := c.Mechanisms()
	if err != nil {
		t.Fatalf("Mechanisms: %v", err)
	}
	byName := make(map[string]client.MechanismInfo, len(mechs))
	for _, mi := range mechs {
		byName[mi.Name] = mi
	}
	if !byName["sparse"].MonotonicRefinement || !byName["pmw"].NeedsHistogram {
		t.Fatalf("capability flags not carried through: %+v", byName)
	}

	sess, err := c.Create(sparseParams())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if sess.ID == "" || sess.Mechanism != "sparse" || sess.TTLSeconds <= 0 {
		t.Fatalf("bad create response: %+v", sess)
	}

	// A sure-negative query (threshold far above the answer) must come
	// back below, with the ID the server minted resolvable on the result.
	res, err := c.Query(sess.ID, []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Results) != 1 || res.Results[0].Above {
		t.Fatalf("sure-negative query came back wrong: %+v", res)
	}
	if res.RequestID == "" {
		t.Fatal("server minted no request ID")
	}

	// A caller-chosen correlation ID is echoed back verbatim.
	res, err = c.QueryID(sess.ID, "corr-42", []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
	if err != nil {
		t.Fatalf("QueryID: %v", err)
	}
	if res.RequestID != "corr-42" {
		t.Fatalf("RequestID = %q, want echo of corr-42", res.RequestID)
	}

	st, err := c.Status(sess.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Answered != 2 || st.Halted {
		t.Fatalf("status after 2 queries: %+v", st)
	}

	if err := c.Delete(sess.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	_, err = c.Status(sess.ID)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "not_found" {
		t.Fatalf("Status after delete = %v, want APIError not_found", err)
	}
}

// TestClientValidation exercises the registry-driven pre-flight: every
// one of these is refused locally, from the cached capability table,
// without spending a round trip on a request the server must reject.
func TestClientValidation(t *testing.T) {
	addr, _ := startServer(t, server.WireConfig{})
	c := dial(t, addr, client.Options{})

	cases := []struct {
		name   string
		params client.CreateParams
		want   string
	}{
		{
			name:   "unknown mechanism lists offerings",
			params: client.CreateParams{Mechanism: "nope", Epsilon: 1, MaxPositives: 1},
			want:   "server offers",
		},
		{
			name: "histogram on a non-histogram mechanism",
			params: client.CreateParams{
				Mechanism: "sparse", Epsilon: 1, MaxPositives: 1, Histogram: []float64{1, 2},
			},
			want: "does not take a histogram",
		},
		{
			name:   "pmw without its histogram",
			params: client.CreateParams{Mechanism: "pmw", Epsilon: 1, MaxPositives: 1},
			want:   "requires a histogram",
		},
		{
			name: "cache on a variant without the refinement",
			params: client.CreateParams{
				Mechanism: "proposed", Epsilon: 1, MaxPositives: 1, CacheSize: 8,
			},
			want: "does not support the response cache",
		},
		{
			name: "monotonic on a variant without the refinement",
			params: client.CreateParams{
				Mechanism: "dpbook", Epsilon: 1, MaxPositives: 1, Monotonic: true,
			},
			want: "does not support the monotonic refinement",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Create(tc.params)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Create = %v, want error containing %q", err, tc.want)
			}
			var ae *client.APIError
			if errors.As(err, &ae) {
				t.Fatalf("validation error %v reached the server", err)
			}
		})
	}
}

func TestClientRateLimited(t *testing.T) {
	addr, ws := startServer(t, server.WireConfig{})
	rl, err := server.NewRateLimiter(server.RateLimitConfig{Rate: 0.5, Burst: 1})
	if err != nil {
		t.Fatalf("NewRateLimiter: %v", err)
	}
	ws.SetRateLimiter(rl)

	c := dial(t, addr, client.Options{Tenant: "acme"})
	// The burst admits exactly one request; the next is limited with a
	// retry hint derived from the refill rate.
	if _, err := c.Mechanisms(); err != nil {
		t.Fatalf("first request: %v", err)
	}
	_, err = c.Status("whatever")
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "rate_limited" {
		t.Fatalf("second request = %v, want APIError rate_limited", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("rate_limited RetryAfter = %v, want > 0", ae.RetryAfter)
	}
}

// TestClientConcurrentPipelined shares one Client across goroutines: all
// their requests pipeline on the single connection and every response
// must find its way back to the caller that sent it.
func TestClientConcurrentPipelined(t *testing.T) {
	addr, _ := startServer(t, server.WireConfig{})
	c := dial(t, addr, client.Options{})

	sess, err := c.Create(sparseParams())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := c.Query(sess.ID, []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
				if err != nil {
					errs <- err
					return
				}
				if len(res.Results) != 1 {
					errs <- errors.New("wrong result count")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query: %v", err)
	}
	st, err := c.Status(sess.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Answered != goroutines*perG {
		t.Fatalf("Answered = %d, want %d", st.Answered, goroutines*perG)
	}
}

func TestClientBatchCapPrecheck(t *testing.T) {
	addr, _ := startServer(t, server.WireConfig{MaxBatch: 4})
	c := dial(t, addr, client.Options{})
	if got := c.ServerMaxBatch(); got != 4 {
		t.Fatalf("ServerMaxBatch = %d, want 4", got)
	}
	sess, err := c.Create(sparseParams())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	items := make([]client.QueryItem, 5)
	_, err = c.Query(sess.ID, items)
	if err == nil || !strings.Contains(err.Error(), "exceeds the server cap") {
		t.Fatalf("over-cap batch = %v, want local cap error", err)
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		t.Fatalf("cap error %v reached the server", err)
	}
}

func TestClientClose(t *testing.T) {
	addr, _ := startServer(t, server.WireConfig{})
	c := dial(t, addr, client.Options{})
	if _, err := c.Mechanisms(); err != nil {
		t.Fatalf("Mechanisms: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Status("x"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("Status after Close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestClientCloseRacesInFlight closes the client while goroutines have
// queries in flight: every pending call must fail fast with the typed
// ErrClosed — not deadlock, not ErrAmbiguous, and never trigger a
// reconnect. Run under -race in CI.
func TestClientCloseRacesInFlight(t *testing.T) {
	addr, _ := startServer(t, server.WireConfig{})
	c := dial(t, addr, client.Options{})

	sess, err := c.Create(sparseParams())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for {
				_, err := c.Query(sess.ID, []client.QueryItem{{Query: 0, Threshold: client.Float(1e12)}})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, client.ErrClosed) {
			t.Fatalf("in-flight query after Close = %v, want ErrClosed", err)
		}
	}
	if st := c.Stats(); st.Reconnects != 0 {
		t.Fatalf("Reconnects after Close = %d, want 0", st.Reconnects)
	}
}

// fakeWireServer speaks just enough of the protocol to script failure
// modes the real server won't produce on demand: handle returns the
// response payload for a request, or nil to drop the connection right
// there. The hello handshake is answered automatically. conn is the
// 0-based accept ordinal, so scripts can behave differently across
// reconnects.
func fakeWireServer(t *testing.T, handle func(conn int, op byte, id uint64, body []byte) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for connNo := 0; ; connNo++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn, connNo int) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				for {
					payload, err := wire.ReadFrame(br, nil, 1<<20)
					if err != nil {
						return
					}
					op, id, body, err := wire.ParseHeader(payload)
					if err != nil {
						return
					}
					if op == wire.OpHello {
						resp := wire.AppendHelloOKBody(wire.AppendHeader(nil, wire.OpHelloOK, id),
							&wire.HelloOK{Version: wire.Version, MaxFrame: 1 << 20, MaxBatch: 64})
						if wire.WriteFrame(bw, resp) != nil || bw.Flush() != nil {
							return
						}
						continue
					}
					resp := handle(connNo, op, id, body)
					if resp == nil {
						return
					}
					if wire.WriteFrame(bw, resp) != nil || bw.Flush() != nil {
						return
					}
				}
			}(conn, connNo)
		}
	}()
	return ln.Addr().String()
}

// TestClientRetriesUnavailable: a typed "unavailable" error is retried
// automatically within the policy, honoring the (zero) retry hint.
func TestClientRetriesUnavailable(t *testing.T) {
	var calls atomic.Uint64
	addr := fakeWireServer(t, func(_ int, op byte, id uint64, _ []byte) []byte {
		if calls.Add(1) == 1 {
			return wire.AppendErrorBody(wire.AppendHeader(nil, wire.OpError, id),
				&wire.ErrorFrame{Code: "unavailable", Message: "shedding"})
		}
		return append(wire.AppendHeader(nil, wire.OpStatusOK, id), []byte(`{}`)...)
	})
	c := dial(t, addr, client.Options{
		Retry: &client.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	if _, err := c.Status("s"); err != nil {
		t.Fatalf("Status = %v, want retried success", err)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestClientReconnectRetriesIdempotent: the connection dies after a
// read-only request was delivered; the client must redial and retry it.
func TestClientReconnectRetriesIdempotent(t *testing.T) {
	addr := fakeWireServer(t, func(conn int, op byte, id uint64, _ []byte) []byte {
		if conn == 0 {
			return nil // read the request, then drop the connection
		}
		return append(wire.AppendHeader(nil, wire.OpStatusOK, id), []byte(`{}`)...)
	})
	c := dial(t, addr, client.Options{
		Retry: &client.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
	})
	if _, err := c.Status("s"); err != nil {
		t.Fatalf("Status = %v, want reconnect + retried success", err)
	}
	st := c.Stats()
	if st.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", st.Reconnects)
	}
	if st.Retries == 0 {
		t.Fatalf("Retries = 0, want > 0")
	}
}

// TestClientAmbiguousQuery: a budget-mutating query whose frame was
// delivered but never answered must fail with ErrAmbiguous and must NOT
// be retried — the server may have spent budget answering it.
func TestClientAmbiguousQuery(t *testing.T) {
	var queries atomic.Uint64
	addr := fakeWireServer(t, func(_ int, op byte, id uint64, _ []byte) []byte {
		if op == wire.OpQuery {
			queries.Add(1)
			return nil // request delivered, connection dies before the response
		}
		return append(wire.AppendHeader(nil, wire.OpStatusOK, id), []byte(`{}`)...)
	})
	c := dial(t, addr, client.Options{
		Retry: &client.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
	})
	_, err := c.Query("s", []client.QueryItem{{Query: 0, Threshold: client.Float(1)}})
	if !errors.Is(err, client.ErrAmbiguous) {
		t.Fatalf("Query = %v, want ErrAmbiguous", err)
	}
	if n := queries.Load(); n != 1 {
		t.Fatalf("server saw %d queries, want exactly 1 (no blind retry)", n)
	}
	if st := c.Stats(); st.Ambiguous != 1 {
		t.Fatalf("Ambiguous = %d, want 1", st.Ambiguous)
	}
}
