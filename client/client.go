// Package client is the Go SDK for the SVT service's binary wire
// protocol (svtserve -wire-addr). One Client owns one connection;
// concurrent calls pipeline their requests on it and responses are
// matched back by request ID, so a pool of goroutines sharing a Client
// keeps the connection's pipeline full without any per-call locking
// beyond the write mutex.
//
// The SDK is registry-driven: it fetches GET /v1/mechanisms' capability
// flags over the wire (OpMechanisms) and validates CreateParams against
// them — seed vs seedable, histogram vs needsHistogram, cache vs
// monotonicRefinement — so a mechanism added to the server ships in the
// client with no SDK change, and impossible requests fail before
// spending a round trip.
//
//	c, err := client.Dial("localhost:9090", client.Options{Tenant: "acme"})
//	...
//	sess, err := c.Create(client.CreateParams{
//		Mechanism: "sparse", Epsilon: 1, MaxPositives: 8,
//	})
//	...
//	res, err := c.Query(sess.ID, []client.QueryItem{{Query: 41, Threshold: client.Float(40)}})
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/wire"
)

// Float returns a pointer to v: threshold literals in QueryItem and
// CreateParams are pointers so an explicit 0 is distinguishable from
// "absent".
func Float(v float64) *float64 { return &v }

// Options configures Dial.
type Options struct {
	// Tenant identifies the caller for rate limiting and budget
	// attribution; carried once in the hello handshake.
	Tenant string
	// Traceparent, when set to a W3C traceparent, seeds trace correlation
	// for every query on the connection (the server samples them all).
	Traceparent string
	// DialTimeout bounds the TCP connect + handshake; 0 means no limit.
	DialTimeout time.Duration
	// MaxFrameBytes caps inbound response frames; 0 means the wire
	// default (1 MiB).
	MaxFrameBytes int
}

// APIError is a typed error frame from the server: the HTTP API's stable
// code vocabulary plus a retry hint for rate_limited.
type APIError struct {
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return e.Code + ": " + e.Message + " (retry after " + e.RetryAfter.String() + ")"
	}
	return e.Code + ": " + e.Message
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: connection closed")

// Client is one wire-protocol connection. Safe for concurrent use;
// concurrent calls pipeline.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	nextID   atomic.Uint64
	maxFrame int
	hello    wire.HelloOK

	mu      sync.Mutex
	pending map[uint64]chan roundTripResult
	err     error // first fatal connection error
	closed  bool
	done    chan struct{}

	mechMu sync.Mutex
	mechs  map[string]MechanismInfo
}

type roundTripResult struct {
	op   byte
	body []byte
}

// Dial connects, performs the hello handshake and starts the response
// reader.
func Dial(addr string, opts Options) (*Client, error) {
	var conn net.Conn
	var err error
	if opts.DialTimeout > 0 {
		conn, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, err
	}
	maxFrame := opts.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrameBytes
	}
	c := &Client{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 16<<10),
		bw:       bufio.NewWriterSize(conn, 16<<10),
		maxFrame: maxFrame,
		pending:  make(map[uint64]chan roundTripResult),
		done:     make(chan struct{}),
	}
	if opts.DialTimeout > 0 {
		conn.SetDeadline(time.Now().Add(opts.DialTimeout))
	}
	if err := c.handshake(opts); err != nil {
		conn.Close()
		return nil, err
	}
	if opts.DialTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) handshake(opts Options) error {
	h := wire.Hello{Version: wire.Version, Tenant: opts.Tenant, Traceparent: opts.Traceparent}
	id := c.nextID.Add(1)
	payload := wire.AppendHelloBody(wire.AppendHeader(nil, wire.OpHello, id), &h)
	if err := wire.WriteFrame(c.bw, payload); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	// The reader isn't running yet: the hello response is read synchronously.
	resp, err := wire.ReadFrame(c.br, nil, c.maxFrame)
	if err != nil {
		return fmt.Errorf("client: handshake read: %w", err)
	}
	op, gotID, body, err := wire.ParseHeader(resp)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	if gotID != id {
		return fmt.Errorf("client: handshake response for request %d, want %d", gotID, id)
	}
	if op == wire.OpError {
		return decodeAPIError(body)
	}
	if op != wire.OpHelloOK {
		return fmt.Errorf("client: unexpected handshake response op %#x", op)
	}
	if err := wire.DecodeHelloOKBody(body, &c.hello); err != nil {
		return err
	}
	if c.hello.Version != wire.Version {
		return fmt.Errorf("client: server speaks protocol version %d, want %d", c.hello.Version, wire.Version)
	}
	return nil
}

// readLoop is the single response reader: it matches frames to waiting
// calls by request ID. Responses may arrive in any order.
func (c *Client) readLoop() {
	var buf []byte
	for {
		payload, err := wire.ReadFrame(c.br, buf, c.maxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		buf = payload
		op, id, body, err := wire.ParseHeader(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			// The frame buffer is reused for the next read; hand the
			// waiter its own copy.
			ch <- roundTripResult{op: op, body: append([]byte(nil), body...)}
		}
	}
}

// fail records the first fatal error and wakes every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			c.err = ErrClosed
		} else {
			c.err = err
		}
		close(c.done)
	}
	c.mu.Unlock()
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	closed := c.closed
	c.closed = true
	c.mu.Unlock()
	if closed {
		return nil
	}
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// roundTrip sends one request payload and waits for its response frame.
func (c *Client) roundTrip(id uint64, payload []byte) (roundTripResult, error) {
	ch := make(chan roundTripResult, 1)
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return roundTripResult{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, payload)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return roundTripResult{}, err
	}

	select {
	case res := <-ch:
		return res, nil
	case <-c.done:
		c.mu.Lock()
		err := c.err
		delete(c.pending, id)
		c.mu.Unlock()
		return roundTripResult{}, err
	}
}

func decodeAPIError(body []byte) error {
	var ef wire.ErrorFrame
	if err := wire.DecodeErrorBody(body, &ef); err != nil {
		return err
	}
	return &APIError{
		Code:       ef.Code,
		Message:    ef.Message,
		RetryAfter: time.Duration(ef.RetryAfterSeconds) * time.Second,
	}
}

// expect unwraps a response: the wanted op's body, a typed APIError, or
// a protocol error.
func expect(res roundTripResult, op byte) ([]byte, error) {
	switch res.op {
	case op:
		return res.body, nil
	case wire.OpError:
		return nil, decodeAPIError(res.body)
	default:
		return nil, fmt.Errorf("client: unexpected response op %#x, want %#x", res.op, op)
	}
}

// Mechanisms returns the server's mechanism registry with capability
// flags, fetched once and cached for the life of the client.
func (c *Client) Mechanisms() ([]MechanismInfo, error) {
	infos, err := c.mechanismTable()
	if err != nil {
		return nil, err
	}
	out := make([]MechanismInfo, 0, len(infos))
	for _, mi := range infos {
		out = append(out, mi)
	}
	return out, nil
}

func (c *Client) mechanismTable() (map[string]MechanismInfo, error) {
	c.mechMu.Lock()
	defer c.mechMu.Unlock()
	if c.mechs != nil {
		return c.mechs, nil
	}
	id := c.nextID.Add(1)
	res, err := c.roundTrip(id, wire.AppendHeader(nil, wire.OpMechanisms, id))
	if err != nil {
		return nil, err
	}
	body, err := expect(res, wire.OpMechanismsOK)
	if err != nil {
		return nil, err
	}
	var mr MechanismsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		return nil, fmt.Errorf("client: bad mechanisms body: %w", err)
	}
	mechs := make(map[string]MechanismInfo, len(mr.Mechanisms))
	for _, mi := range mr.Mechanisms {
		mechs[mi.Name] = mi
	}
	c.mechs = mechs
	return mechs, nil
}

// validateCreate checks params against the server's advertised
// capability flags, failing locally before a round trip is spent. This is
// what makes the SDK registry-driven: a new server mechanism is usable
// through it immediately, and requests a mechanism cannot serve are
// refused with the reason.
func (c *Client) validateCreate(params *CreateParams) error {
	mechs, err := c.mechanismTable()
	if err != nil {
		return err
	}
	mi, ok := mechs[params.Mechanism]
	if !ok {
		names := make([]string, 0, len(mechs))
		for name := range mechs {
			names = append(names, name)
		}
		return fmt.Errorf("client: unknown mechanism %q (server offers %s)",
			params.Mechanism, strings.Join(names, ", "))
	}
	if params.Seed != 0 && !mi.Seedable {
		return fmt.Errorf("client: mechanism %q is not seedable", mi.Name)
	}
	if mi.NeedsHistogram && len(params.Histogram) == 0 {
		return fmt.Errorf("client: mechanism %q requires a histogram", mi.Name)
	}
	if !mi.NeedsHistogram && len(params.Histogram) > 0 {
		return fmt.Errorf("client: mechanism %q does not take a histogram", mi.Name)
	}
	if params.CacheSize > 0 && !mi.MonotonicRefinement {
		return fmt.Errorf("client: mechanism %q does not support the response cache", mi.Name)
	}
	if params.Monotonic && !mi.MonotonicRefinement {
		return fmt.Errorf("client: mechanism %q does not support the monotonic refinement", mi.Name)
	}
	return nil
}

// Create opens a session. The tenant is the connection's, from Dial.
func (c *Client) Create(params CreateParams) (*CreateResponse, error) {
	if err := c.validateCreate(&params); err != nil {
		return nil, err
	}
	body, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	payload := append(wire.AppendHeader(nil, wire.OpCreate, id), body...)
	res, err := c.roundTrip(id, payload)
	if err != nil {
		return nil, err
	}
	respBody, err := expect(res, wire.OpCreateOK)
	if err != nil {
		return nil, err
	}
	var cr CreateResponse
	if err := json.Unmarshal(respBody, &cr); err != nil {
		return nil, fmt.Errorf("client: bad create response: %w", err)
	}
	return &cr, nil
}

// Query answers a batch of queries against a session.
func (c *Client) Query(session string, items []QueryItem) (*BatchResult, error) {
	return c.QueryID(session, "", items)
}

// QueryID is Query with a caller-chosen correlation ID (the X-Request-Id
// equivalent): the server echoes it on the response and always samples
// the request into GET /v1/traces. Empty means the server mints one;
// either way BatchResult.RequestID carries the ID the response bore.
func (c *Client) QueryID(session, requestID string, items []QueryItem) (*BatchResult, error) {
	if max := int(c.hello.MaxBatch); max > 0 && len(items) > max {
		return nil, fmt.Errorf("client: batch of %d exceeds the server cap of %d", len(items), max)
	}
	witems := make([]wire.QueryItem, len(items))
	for i, it := range items {
		witems[i] = wire.QueryItem{Query: it.Query, Buckets: it.Buckets}
		if it.Threshold != nil {
			witems[i].Threshold = *it.Threshold
			witems[i].HasThreshold = true
		}
	}
	id := c.nextID.Add(1)
	payload := wire.AppendQueryBody(wire.AppendHeader(nil, wire.OpQuery, id), session, requestID, witems)
	res, err := c.roundTrip(id, payload)
	if err != nil {
		return nil, err
	}
	body, err := expect(res, wire.OpQueryOK)
	if err != nil {
		return nil, err
	}
	var qr wire.QueryResponse
	if err := wire.DecodeQueryOKBody(body, &qr); err != nil {
		return nil, err
	}
	out := &BatchResult{
		Halted:    qr.Halted,
		Remaining: qr.Remaining,
		RequestID: string(qr.Corr),
		Results:   make([]QueryResult, len(qr.Results)),
	}
	for i, r := range qr.Results {
		out.Results[i] = QueryResult{
			Above:         r.Above,
			Numeric:       r.Numeric,
			Value:         r.Value,
			FromSynthetic: r.FromSynthetic,
			Exhausted:     r.Exhausted,
		}
	}
	return out, nil
}

// Status fetches a session's current state.
func (c *Client) Status(session string) (*SessionStatus, error) {
	id := c.nextID.Add(1)
	payload := wire.AppendIDBody(wire.AppendHeader(nil, wire.OpStatus, id), session)
	res, err := c.roundTrip(id, payload)
	if err != nil {
		return nil, err
	}
	body, err := expect(res, wire.OpStatusOK)
	if err != nil {
		return nil, err
	}
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("client: bad status response: %w", err)
	}
	return &st, nil
}

// Delete ends a session.
func (c *Client) Delete(session string) error {
	id := c.nextID.Add(1)
	payload := wire.AppendIDBody(wire.AppendHeader(nil, wire.OpDelete, id), session)
	res, err := c.roundTrip(id, payload)
	if err != nil {
		return err
	}
	_, err = expect(res, wire.OpDeleteOK)
	return err
}

// ServerMaxBatch reports the per-batch query cap the server announced in
// the handshake.
func (c *Client) ServerMaxBatch() int { return int(c.hello.MaxBatch) }

// ServerMaxFrame reports the frame-size cap the server announced in the
// handshake.
func (c *Client) ServerMaxFrame() int { return int(c.hello.MaxFrame) }
