// Package client is the Go SDK for the SVT service's binary wire
// protocol (svtserve -wire-addr). One Client owns one connection;
// concurrent calls pipeline their requests on it and responses are
// matched back by request ID, so a pool of goroutines sharing a Client
// keeps the connection's pipeline full without any per-call locking
// beyond the write mutex.
//
// The SDK is registry-driven: it fetches GET /v1/mechanisms' capability
// flags over the wire (OpMechanisms) and validates CreateParams against
// them — seed vs seedable, histogram vs needsHistogram, cache vs
// monotonicRefinement — so a mechanism added to the server ships in the
// client with no SDK change, and impossible requests fail before
// spending a round trip.
//
//	c, err := client.Dial("localhost:9090", client.Options{Tenant: "acme"})
//	...
//	sess, err := c.Create(client.CreateParams{
//		Mechanism: "sparse", Epsilon: 1, MaxPositives: 8,
//	})
//	...
//	res, err := c.Query(sess.ID, []client.QueryItem{{Query: 41, Threshold: client.Float(40)}})
//
// # Self-healing
//
// The client reconnects automatically: when the connection dies it
// re-dials with exponential backoff plus jitter, and retries calls that
// are provably safe to retry — those that failed with a typed retryable
// server error ("unavailable", and "rate_limited" when opted in, both
// honoring the server's RetryAfter hint) and those whose request
// provably never reached the server (the connection died before the
// frame was flushed). A budget-mutating call (Create, Query, Delete)
// whose frame WAS delivered but whose response never came back is
// genuinely ambiguous — the server may have answered and spent budget —
// so it fails with ErrAmbiguous instead of retrying; re-issuing such a
// query blindly could spend privacy budget twice. Read-only calls
// (Status, Mechanisms) are idempotent and retry through every failure
// mode. Tune or disable all of this with Options.Retry.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/wire"
)

// Float returns a pointer to v: threshold literals in QueryItem and
// CreateParams are pointers so an explicit 0 is distinguishable from
// "absent".
func Float(v float64) *float64 { return &v }

// Options configures Dial.
type Options struct {
	// Tenant identifies the caller for rate limiting and budget
	// attribution; carried once in the hello handshake.
	Tenant string
	// Traceparent, when set to a W3C traceparent, seeds trace correlation
	// for every query on the connection (the server samples them all).
	Traceparent string
	// DialTimeout bounds the TCP connect + handshake; 0 means no limit.
	// Applied to reconnects too.
	DialTimeout time.Duration
	// MaxFrameBytes caps inbound response frames; 0 means the wire
	// default (1 MiB).
	MaxFrameBytes int
	// Retry is the reconnect-and-retry policy; nil means
	// DefaultRetryPolicy(). To disable retries entirely use
	// &RetryPolicy{MaxAttempts: 1}.
	Retry *RetryPolicy
	// Dialer, when set, replaces the default TCP dial — how tests (and
	// the chaos suite) interpose fault-injecting connections. It is
	// called for the initial connection and every reconnect.
	Dialer func(addr string) (net.Conn, error)
}

// RetryPolicy bounds the client's self-healing. The zero value of each
// field means its DefaultRetryPolicy value, so partial literals work.
type RetryPolicy struct {
	// MaxAttempts is the total attempts per call, first try included.
	// 0 means the default (4); 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt (with equal jitter: half fixed, half random) up to
	// MaxBackoff. 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth. 0 means 2s.
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server Retry-After hint may make the
	// client sleep; a hint above the cap surfaces the error to the
	// caller instead. 0 means 5s.
	MaxRetryAfter time.Duration
	// RetryRateLimited also auto-retries "rate_limited" errors, honoring
	// their RetryAfter. Off by default: rate-limit pushback is usually
	// something the application wants to observe, not absorb.
	RetryRateLimited bool
}

// DefaultRetryPolicy is the policy Dial uses when Options.Retry is nil.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   4,
		BaseBackoff:   50 * time.Millisecond,
		MaxBackoff:    2 * time.Second,
		MaxRetryAfter: 5 * time.Second,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.MaxRetryAfter <= 0 {
		p.MaxRetryAfter = d.MaxRetryAfter
	}
	return p
}

// APIError is a typed error frame from the server: the HTTP API's stable
// code vocabulary (bad_request, not_found, too_large, too_many_sessions,
// store_failure, rate_limited, unavailable) plus a retry hint.
// "unavailable" (journal deadline exceeded or load shedding) and
// "rate_limited" are the retryable codes; both carry RetryAfter. The
// client auto-retries "unavailable" within its RetryPolicy, and
// "rate_limited" only when RetryPolicy.RetryRateLimited is set.
type APIError struct {
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return e.Code + ": " + e.Message + " (retry after " + e.RetryAfter.String() + ")"
	}
	return e.Code + ": " + e.Message
}

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: connection closed")

// ErrAmbiguous marks a budget-mutating call (Create, Query, Delete)
// whose request was delivered but whose response never arrived: the
// server may or may not have executed it, so the client refuses to
// retry — a blind re-issue of a query could spend (ε₁,ε₂,ε₃) budget
// twice. The caller decides: Status shows the session's answered count
// and remaining budget, which disambiguates whether the call landed.
var ErrAmbiguous = errors.New("client: request outcome unknown (connection lost after send)")

// Stats is a snapshot of the client's self-healing counters.
type Stats struct {
	// Reconnects counts successful re-dials after the initial connection.
	Reconnects uint64
	// DialFailures counts failed reconnect attempts.
	DialFailures uint64
	// Retries counts retry attempts across all calls (every attempt
	// after a call's first).
	Retries uint64
	// Ambiguous counts calls that failed with ErrAmbiguous.
	Ambiguous uint64
}

// Client is one wire-protocol connection (re-dialed transparently when
// it breaks). Safe for concurrent use; concurrent calls pipeline.
type Client struct {
	addr     string
	opts     Options
	policy   RetryPolicy
	maxFrame int

	nextID atomic.Uint64

	mu     sync.Mutex
	cc     *clientConn // live connection epoch; nil after it broke
	hello  wire.HelloOK
	closed bool
	// closedCh interrupts backoff sleeps when the client is closed.
	closedCh chan struct{}
	// dialMu serializes reconnect attempts without blocking Close.
	dialMu sync.Mutex

	reconnects   atomic.Uint64
	dialFailures atomic.Uint64
	retries      atomic.Uint64
	ambiguous    atomic.Uint64

	mechMu sync.Mutex
	mechs  map[string]MechanismInfo
}

// clientConn is one connection epoch: socket, buffers, pending map and
// the first fatal error. A broken epoch is abandoned wholesale and the
// Client dials a fresh one.
type clientConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	hello wire.HelloOK

	mu      sync.Mutex
	pending map[uint64]chan roundTripResult
	err     error
	done    chan struct{}
}

type roundTripResult struct {
	op   byte
	body []byte
}

// Dial connects, performs the hello handshake and starts the response
// reader. The initial dial is eager and not retried: a config problem
// (bad address, wrong protocol) should fail loudly at startup.
func Dial(addr string, opts Options) (*Client, error) {
	maxFrame := opts.MaxFrameBytes
	if maxFrame <= 0 {
		maxFrame = wire.DefaultMaxFrameBytes
	}
	policy := DefaultRetryPolicy()
	if opts.Retry != nil {
		policy = opts.Retry.withDefaults()
	}
	c := &Client{
		addr:     addr,
		opts:     opts,
		policy:   policy,
		maxFrame: maxFrame,
		closedCh: make(chan struct{}),
	}
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.cc = cc
	c.hello = cc.hello
	return c, nil
}

// dialConn establishes one connection epoch: dial, handshake, reader.
func (c *Client) dialConn() (*clientConn, error) {
	var conn net.Conn
	var err error
	switch {
	case c.opts.Dialer != nil:
		conn, err = c.opts.Dialer(c.addr)
	case c.opts.DialTimeout > 0:
		conn, err = net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	default:
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 16<<10),
		bw:      bufio.NewWriterSize(conn, 16<<10),
		pending: make(map[uint64]chan roundTripResult),
		done:    make(chan struct{}),
	}
	if c.opts.DialTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	}
	if err := c.handshake(cc); err != nil {
		conn.Close()
		return nil, err
	}
	if c.opts.DialTimeout > 0 {
		conn.SetDeadline(time.Time{})
	}
	go cc.readLoop(c.maxFrame)
	return cc, nil
}

func (c *Client) handshake(cc *clientConn) error {
	h := wire.Hello{Version: wire.Version, Tenant: c.opts.Tenant, Traceparent: c.opts.Traceparent}
	id := c.nextID.Add(1)
	payload := wire.AppendHelloBody(wire.AppendHeader(nil, wire.OpHello, id), &h)
	if err := wire.WriteFrame(cc.bw, payload); err != nil {
		return err
	}
	if err := cc.bw.Flush(); err != nil {
		return err
	}
	// The reader isn't running yet: the hello response is read synchronously.
	resp, err := wire.ReadFrame(cc.br, nil, c.maxFrame)
	if err != nil {
		return fmt.Errorf("client: handshake read: %w", err)
	}
	op, gotID, body, err := wire.ParseHeader(resp)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	if gotID != id {
		return fmt.Errorf("client: handshake response for request %d, want %d", gotID, id)
	}
	if op == wire.OpError {
		return decodeAPIError(body)
	}
	if op != wire.OpHelloOK {
		return fmt.Errorf("client: unexpected handshake response op %#x", op)
	}
	if err := wire.DecodeHelloOKBody(body, &cc.hello); err != nil {
		return err
	}
	if cc.hello.Version != wire.Version {
		return fmt.Errorf("client: server speaks protocol version %d, want %d", cc.hello.Version, wire.Version)
	}
	return nil
}

// conn returns the live epoch, re-dialing if the previous one broke.
// Exactly one dial attempt: the caller's retry loop owns backoff.
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cc := c.cc
	c.mu.Unlock()
	if cc != nil && !cc.dead() {
		return cc, nil
	}
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Re-check under dialMu: another caller may have already reconnected
	// (or Close may have run) while this one waited.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	cc = c.cc
	c.mu.Unlock()
	if cc != nil && !cc.dead() {
		return cc, nil
	}
	ncc, err := c.dialConn()
	if err != nil {
		c.dialFailures.Add(1)
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ncc.close(ErrClosed)
		return nil, ErrClosed
	}
	c.cc = ncc
	c.hello = ncc.hello
	c.mu.Unlock()
	c.reconnects.Add(1)
	return ncc, nil
}

func (cc *clientConn) dead() bool {
	select {
	case <-cc.done:
		return true
	default:
		return false
	}
}

// readLoop is the epoch's single response reader: it matches frames to
// waiting calls by request ID. Responses may arrive in any order.
func (cc *clientConn) readLoop(maxFrame int) {
	var buf []byte
	for {
		payload, err := wire.ReadFrame(cc.br, buf, maxFrame)
		if err != nil {
			cc.fail(err)
			return
		}
		buf = payload
		op, id, body, err := wire.ParseHeader(payload)
		if err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if ch != nil {
			// The frame buffer is reused for the next read; hand the
			// waiter its own copy.
			ch <- roundTripResult{op: op, body: append([]byte(nil), body...)}
		}
	}
}

// fail records the epoch's first fatal error and wakes every waiter.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		close(cc.done)
	}
	cc.mu.Unlock()
}

// close fails the epoch with err (typically ErrClosed) before closing
// the socket, so waiters observe the typed error rather than the read
// loop's "use of closed network connection".
func (cc *clientConn) close(err error) error {
	cc.fail(err)
	return cc.conn.Close()
}

// Close tears the connection down; in-flight calls fail fast with
// ErrClosed (never ErrAmbiguous, and never a reconnect).
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	cc := c.cc
	c.cc = nil
	c.mu.Unlock()
	if cc != nil {
		return cc.close(ErrClosed)
	}
	return nil
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Stats snapshots the self-healing counters.
func (c *Client) Stats() Stats {
	return Stats{
		Reconnects:   c.reconnects.Load(),
		DialFailures: c.dialFailures.Load(),
		Retries:      c.retries.Load(),
		Ambiguous:    c.ambiguous.Load(),
	}
}

// roundTrip sends one request payload on this epoch and waits for its
// response frame. sent reports whether the frame could have reached the
// server: a false return proves the request never executed (the write
// or flush failed, so the frame never fully entered the kernel — a
// partial frame is dropped by the server's codec, never executed),
// which makes retrying safe for any operation.
func (cc *clientConn) roundTrip(id uint64, payload []byte) (res roundTripResult, sent bool, err error) {
	ch := make(chan roundTripResult, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return roundTripResult{}, false, err
	}
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	werr := wire.WriteFrame(cc.bw, payload)
	if werr == nil {
		werr = cc.bw.Flush()
	}
	cc.wmu.Unlock()
	if werr != nil {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		// A write failure poisons the shared buffered writer; kill the
		// epoch so other pipelined calls fail over too.
		cc.fail(werr)
		return roundTripResult{}, false, werr
	}

	select {
	case res := <-ch:
		return res, true, nil
	case <-cc.done:
		// The response may have been delivered concurrently with the
		// epoch dying; prefer it over reporting ambiguity.
		select {
		case res := <-ch:
			return res, true, nil
		default:
		}
		cc.mu.Lock()
		err := cc.err
		delete(cc.pending, id)
		cc.mu.Unlock()
		return roundTripResult{}, true, err
	}
}

// opKind classifies calls for retry purposes.
type opKind int

const (
	// opIdempotent calls (Status, Mechanisms) re-execute harmlessly, so
	// they retry through every transport failure mode.
	opIdempotent opKind = iota
	// opMutating calls (Create, Query, Delete) spend budget or change
	// state; they retry only when provably unexecuted (typed retryable
	// error, or the request never left this machine) and otherwise fail
	// with ErrAmbiguous.
	opMutating
)

// retryableAPIError reports whether a typed server error is safe and
// worth retrying under the policy, and how long to wait first. Typed
// retryable errors are safe for every op kind: the server refused the
// request before executing it.
func retryableAPIError(ae *APIError, pol RetryPolicy) (time.Duration, bool) {
	switch ae.Code {
	case "unavailable":
		// Always retryable: the server refused before executing.
	case "rate_limited":
		if !pol.RetryRateLimited {
			return 0, false
		}
	default:
		return 0, false
	}
	wait := ae.RetryAfter
	if wait > pol.MaxRetryAfter {
		return 0, false
	}
	if wait <= 0 {
		wait = pol.BaseBackoff
	}
	return wait, true
}

// backoff returns the attempt'th reconnect delay: exponential with
// equal jitter (half fixed, half uniform random).
func backoff(pol RetryPolicy, attempt int) time.Duration {
	d := pol.BaseBackoff
	for i := 0; i < attempt && d < pol.MaxBackoff; i++ {
		d *= 2
	}
	if d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)+1))
}

// sleep waits d or until the client is closed, reporting false on close.
func (c *Client) sleep(d time.Duration) bool {
	if d <= 0 {
		return !c.isClosed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closedCh:
		return false
	}
}

// call runs one logical request through the retry loop: get (or
// re-dial) a connection, round-trip, classify the failure, back off,
// repeat within the policy's attempt budget.
func (c *Client) call(kind opKind, want byte, build func(id uint64) []byte) ([]byte, error) {
	pol := c.policy
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		cc, err := c.conn()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, ErrClosed
			}
			lastErr = err
			if !c.sleep(backoff(pol, attempt)) {
				return nil, ErrClosed
			}
			continue
		}
		id := c.nextID.Add(1)
		res, sent, err := cc.roundTrip(id, build(id))
		if err == nil {
			body, aerr := expect(res, want)
			if aerr == nil {
				return body, nil
			}
			var ae *APIError
			if errors.As(aerr, &ae) && attempt+1 < pol.MaxAttempts {
				if wait, ok := retryableAPIError(ae, pol); ok {
					lastErr = aerr
					if !c.sleep(wait) {
						return nil, ErrClosed
					}
					continue
				}
			}
			return nil, aerr
		}
		// Transport-level failure. Close always wins: pending calls on a
		// user-closed client fail fast with the typed error.
		if errors.Is(err, ErrClosed) || c.isClosed() {
			return nil, ErrClosed
		}
		if sent && kind == opMutating {
			c.ambiguous.Add(1)
			return nil, fmt.Errorf("%w: %v", ErrAmbiguous, err)
		}
		lastErr = err
		if attempt+1 < pol.MaxAttempts && !c.sleep(backoff(pol, attempt)) {
			return nil, ErrClosed
		}
	}
	return nil, lastErr
}

func decodeAPIError(body []byte) error {
	var ef wire.ErrorFrame
	if err := wire.DecodeErrorBody(body, &ef); err != nil {
		return err
	}
	return &APIError{
		Code:       ef.Code,
		Message:    ef.Message,
		RetryAfter: time.Duration(ef.RetryAfterSeconds) * time.Second,
	}
}

// expect unwraps a response: the wanted op's body, a typed APIError, or
// a protocol error.
func expect(res roundTripResult, op byte) ([]byte, error) {
	switch res.op {
	case op:
		return res.body, nil
	case wire.OpError:
		return nil, decodeAPIError(res.body)
	default:
		return nil, fmt.Errorf("client: unexpected response op %#x, want %#x", res.op, op)
	}
}

// Mechanisms returns the server's mechanism registry with capability
// flags, fetched once and cached for the life of the client.
func (c *Client) Mechanisms() ([]MechanismInfo, error) {
	infos, err := c.mechanismTable()
	if err != nil {
		return nil, err
	}
	out := make([]MechanismInfo, 0, len(infos))
	for _, mi := range infos {
		out = append(out, mi)
	}
	return out, nil
}

func (c *Client) mechanismTable() (map[string]MechanismInfo, error) {
	c.mechMu.Lock()
	defer c.mechMu.Unlock()
	if c.mechs != nil {
		return c.mechs, nil
	}
	body, err := c.call(opIdempotent, wire.OpMechanismsOK, func(id uint64) []byte {
		return wire.AppendHeader(nil, wire.OpMechanisms, id)
	})
	if err != nil {
		return nil, err
	}
	var mr MechanismsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		return nil, fmt.Errorf("client: bad mechanisms body: %w", err)
	}
	mechs := make(map[string]MechanismInfo, len(mr.Mechanisms))
	for _, mi := range mr.Mechanisms {
		mechs[mi.Name] = mi
	}
	c.mechs = mechs
	return mechs, nil
}

// validateCreate checks params against the server's advertised
// capability flags, failing locally before a round trip is spent. This is
// what makes the SDK registry-driven: a new server mechanism is usable
// through it immediately, and requests a mechanism cannot serve are
// refused with the reason.
func (c *Client) validateCreate(params *CreateParams) error {
	mechs, err := c.mechanismTable()
	if err != nil {
		return err
	}
	mi, ok := mechs[params.Mechanism]
	if !ok {
		names := make([]string, 0, len(mechs))
		for name := range mechs {
			names = append(names, name)
		}
		return fmt.Errorf("client: unknown mechanism %q (server offers %s)",
			params.Mechanism, strings.Join(names, ", "))
	}
	if params.Seed != 0 && !mi.Seedable {
		return fmt.Errorf("client: mechanism %q is not seedable", mi.Name)
	}
	if mi.NeedsHistogram && len(params.Histogram) == 0 {
		return fmt.Errorf("client: mechanism %q requires a histogram", mi.Name)
	}
	if !mi.NeedsHistogram && len(params.Histogram) > 0 {
		return fmt.Errorf("client: mechanism %q does not take a histogram", mi.Name)
	}
	if params.CacheSize > 0 && !mi.MonotonicRefinement {
		return fmt.Errorf("client: mechanism %q does not support the response cache", mi.Name)
	}
	if params.Monotonic && !mi.MonotonicRefinement {
		return fmt.Errorf("client: mechanism %q does not support the monotonic refinement", mi.Name)
	}
	return nil
}

// Create opens a session. The tenant is the connection's, from Dial.
// Create is budget-mutating: if the connection dies after the request
// was delivered, it fails with ErrAmbiguous rather than risk creating
// two sessions.
func (c *Client) Create(params CreateParams) (*CreateResponse, error) {
	if err := c.validateCreate(&params); err != nil {
		return nil, err
	}
	body, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	respBody, err := c.call(opMutating, wire.OpCreateOK, func(id uint64) []byte {
		return append(wire.AppendHeader(nil, wire.OpCreate, id), body...)
	})
	if err != nil {
		return nil, err
	}
	var cr CreateResponse
	if err := json.Unmarshal(respBody, &cr); err != nil {
		return nil, fmt.Errorf("client: bad create response: %w", err)
	}
	return &cr, nil
}

// Query answers a batch of queries against a session.
func (c *Client) Query(session string, items []QueryItem) (*BatchResult, error) {
	return c.QueryID(session, "", items)
}

// QueryID is Query with a caller-chosen correlation ID (the X-Request-Id
// equivalent): the server echoes it on the response and always samples
// the request into GET /v1/traces. Empty means the server mints one;
// either way BatchResult.RequestID carries the ID the response bore.
//
// A query whose request was delivered but whose response was lost fails
// with ErrAmbiguous and is never auto-retried: the server may have
// answered it (journaling the budget spend), and re-asking would spend
// budget again. Check Status to disambiguate.
func (c *Client) QueryID(session, requestID string, items []QueryItem) (*BatchResult, error) {
	if max := c.ServerMaxBatch(); max > 0 && len(items) > max {
		return nil, fmt.Errorf("client: batch of %d exceeds the server cap of %d", len(items), max)
	}
	witems := make([]wire.QueryItem, len(items))
	for i, it := range items {
		witems[i] = wire.QueryItem{Query: it.Query, Buckets: it.Buckets}
		if it.Threshold != nil {
			witems[i].Threshold = *it.Threshold
			witems[i].HasThreshold = true
		}
	}
	body, err := c.call(opMutating, wire.OpQueryOK, func(id uint64) []byte {
		return wire.AppendQueryBody(wire.AppendHeader(nil, wire.OpQuery, id), session, requestID, witems)
	})
	if err != nil {
		return nil, err
	}
	var qr wire.QueryResponse
	if err := wire.DecodeQueryOKBody(body, &qr); err != nil {
		return nil, err
	}
	out := &BatchResult{
		Halted:    qr.Halted,
		Remaining: qr.Remaining,
		RequestID: string(qr.Corr),
		Results:   make([]QueryResult, len(qr.Results)),
	}
	for i, r := range qr.Results {
		out.Results[i] = QueryResult{
			Above:         r.Above,
			Numeric:       r.Numeric,
			Value:         r.Value,
			FromSynthetic: r.FromSynthetic,
			Exhausted:     r.Exhausted,
		}
	}
	return out, nil
}

// Status fetches a session's current state. Status is read-only and
// retries through any transport failure.
func (c *Client) Status(session string) (*SessionStatus, error) {
	body, err := c.call(opIdempotent, wire.OpStatusOK, func(id uint64) []byte {
		return wire.AppendIDBody(wire.AppendHeader(nil, wire.OpStatus, id), session)
	})
	if err != nil {
		return nil, err
	}
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("client: bad status response: %w", err)
	}
	return &st, nil
}

// Delete ends a session. Delete mutates state, so a delivered-but-
// unanswered delete fails with ErrAmbiguous (a retry could report
// not_found for a delete that actually succeeded).
func (c *Client) Delete(session string) error {
	_, err := c.call(opMutating, wire.OpDeleteOK, func(id uint64) []byte {
		return wire.AppendIDBody(wire.AppendHeader(nil, wire.OpDelete, id), session)
	})
	return err
}

// ServerMaxBatch reports the per-batch query cap the server announced in
// the (most recent) handshake.
func (c *Client) ServerMaxBatch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.hello.MaxBatch)
}

// ServerMaxFrame reports the frame-size cap the server announced in the
// (most recent) handshake.
func (c *Client) ServerMaxFrame() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(c.hello.MaxFrame)
}
