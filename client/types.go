package client

import "time"

// The request/response types mirror the server's JSON API field for
// field (same names, same tags) without importing the server package, so
// the SDK links without pulling in the service. The cold wire ops carry
// exactly these JSON bodies; the hot query path carries their binary
// equivalents from the wire package.

// CreateParams configures a new session (POST /v1/sessions body /
// OpCreate body). The tenant is not a field: it is fixed per connection
// by Options.Tenant at Dial, exactly as the HTTP API takes it from the
// X-Tenant header and never the body.
type CreateParams struct {
	// Mechanism selects the algorithm by registry name; Mechanisms()
	// lists what the server offers.
	Mechanism string `json:"mechanism"`
	// Epsilon is the session's total privacy budget. Required.
	Epsilon float64 `json:"epsilon"`
	// Sensitivity is the query sensitivity Δ; 0 defaults to 1.
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// MaxPositives is the SVT cutoff c. Required.
	MaxPositives int `json:"maxPositives"`
	// Threshold is the default threshold for queries without their own.
	Threshold *float64 `json:"threshold,omitempty"`
	// Monotonic enables the Theorem-5 refinement where the mechanism's
	// capabilities advertise monotonicRefinement.
	Monotonic bool `json:"monotonic,omitempty"`
	// AnswerFraction reserves ε₃ for numeric releases where supported.
	AnswerFraction float64 `json:"answerFraction,omitempty"`
	// Seed makes the session reproducible; only mechanisms flagged
	// seedable accept it.
	Seed uint64 `json:"seed,omitempty"`
	// CacheSize bounds the repeat-query response cache; only mechanisms
	// flagged monotonicRefinement accept it.
	CacheSize int `json:"cacheSize,omitempty"`
	// TTLSeconds is the idle time-to-live; 0 uses the server default.
	TTLSeconds float64 `json:"ttlSeconds,omitempty"`
	// Histogram is the private dataset for mechanisms flagged
	// needsHistogram.
	Histogram []float64 `json:"histogram,omitempty"`
	// UpdateFraction and LearningRate tune histogram mediators.
	UpdateFraction float64 `json:"updateFraction,omitempty"`
	LearningRate   float64 `json:"learningRate,omitempty"`
}

// Budget is the realized (ε₁, ε₂, ε₃) split.
type Budget struct {
	Eps1  float64 `json:"eps1"`
	Eps2  float64 `json:"eps2"`
	Eps3  float64 `json:"eps3"`
	Total float64 `json:"total"`
}

// SessionStatus is a session's public state.
type SessionStatus struct {
	ID        string    `json:"id"`
	Mechanism string    `json:"mechanism"`
	Answered  int       `json:"answered"`
	Positives int       `json:"positives"`
	Remaining int       `json:"remaining"`
	Halted    bool      `json:"halted"`
	Budget    Budget    `json:"budget"`
	CreatedAt time.Time `json:"createdAt"`
	ExpiresAt time.Time `json:"expiresAt"`
}

// CreateResponse is what Create returns.
type CreateResponse struct {
	SessionStatus
	// TTLSeconds is the resolved idle time-to-live.
	TTLSeconds float64 `json:"ttlSeconds"`
}

// QueryItem is one query in a batch.
type QueryItem struct {
	// Query is the true, unperturbed answer.
	Query float64 `json:"query"`
	// Threshold overrides the session default when non-nil.
	Threshold *float64 `json:"threshold,omitempty"`
	// Buckets poses a linear counting query over the session histogram.
	Buckets []int `json:"buckets,omitempty"`
}

// QueryResult is one released answer.
type QueryResult struct {
	// Above is the ⊤/⊥ indicator.
	Above bool `json:"above"`
	// Numeric reports that Value carries a released number.
	Numeric bool `json:"numeric,omitempty"`
	// Value is the released number when Numeric is set.
	Value float64 `json:"value,omitempty"`
	// FromSynthetic marks answers served from a synthetic dataset.
	FromSynthetic bool `json:"fromSynthetic,omitempty"`
	// Exhausted marks answers refused because the session halted.
	Exhausted bool `json:"exhausted,omitempty"`
}

// BatchResult is the outcome of one query batch.
type BatchResult struct {
	Results   []QueryResult `json:"results"`
	Halted    bool          `json:"halted"`
	Remaining int           `json:"remaining"`
	// RequestID is the correlation ID the server carried on the response
	// — the caller's own, or a server-minted one — usable against GET
	// /v1/traces/{id} and the server's slow-query logs, exactly like the
	// HTTP X-Request-Id header.
	RequestID string `json:"-"`
}

// MechanismInfo describes one registered mechanism and its capability
// flags; the SDK validates CreateParams against them before spending a
// round trip.
type MechanismInfo struct {
	Name                string `json:"name"`
	Summary             string `json:"summary,omitempty"`
	NumericReleases     bool   `json:"numericReleases"`
	MonotonicRefinement bool   `json:"monotonicRefinement"`
	Seedable            bool   `json:"seedable"`
	NeedsHistogram      bool   `json:"needsHistogram"`
}

// MechanismsResponse is the OpMechanisms / GET /v1/mechanisms body.
type MechanismsResponse struct {
	Mechanisms []MechanismInfo `json:"mechanisms"`
}
