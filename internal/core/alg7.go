package core

import "github.com/dpgo/svt/internal/rng"

// Alg7 is the paper's proposed standard SVT (Algorithm 7), the generalized
// form of Alg1 with three separately tunable budget shares:
//
//   - ε₁ perturbs the threshold:           ρ = Lap(Δ/ε₁),
//   - ε₂ perturbs the query answers:       νᵢ = Lap(2cΔ/ε₂)
//     (Lap(cΔ/ε₂) when all queries are monotonic, Theorem 5),
//   - ε₃ (optional) releases numeric answers for positive outcomes via the
//     Laplace mechanism: aᵢ = qᵢ(D) + Lap(cΔ/ε₃).
//
// Theorem 4 proves Alg7 is (ε₁+ε₂+ε₃)-DP. Section 4.2 derives the
// variance-minimizing allocation ε₁:ε₂ = 1:(2c)^{2/3} (1:c^{2/3} in the
// monotonic case), which the evaluation shows is far better than the
// conventional 1:1 split.
//
//	1: ρ = Lap(Δ/ε₁), count = 0
//	2: for each query qᵢ ∈ Q do
//	3:   νᵢ = Lap(2cΔ/ε₂)
//	4:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//	5:     if ε₃ > 0 then
//	6:       output aᵢ = qᵢ(D) + Lap(cΔ/ε₃)
//	7:     else
//	8:       output aᵢ = ⊤
//	9:     count = count + 1, Abort if count ≥ c
//	10:  else
//	11:    output aᵢ = ⊥
type Alg7 struct {
	src         *rng.Source
	rho         float64
	queryScale  float64 // 2cΔ/ε₂ (cΔ/ε₂ when monotonic)
	answerScale float64 // cΔ/ε₃; 0 disables numeric answers
	c           int
	count       int
	halted      bool
}

// Alg7Config carries the inputs of Algorithm 7.
type Alg7Config struct {
	// Eps1 is the threshold-perturbation budget; must be positive.
	Eps1 float64
	// Eps2 is the query-perturbation budget; must be positive.
	Eps2 float64
	// Eps3 is the numeric-answer budget; zero disables numeric answers,
	// negative values are invalid.
	Eps3 float64
	// Delta is the query sensitivity Δ; must be positive.
	Delta float64
	// C is the positive-outcome cutoff; must be positive.
	C int
	// Monotonic enables the Theorem-5 refinement: when all queries move in
	// the same direction between neighbors, Lap(cΔ/ε₂) query noise
	// suffices for (ε₁+ε₂+ε₃)-DP.
	Monotonic bool
}

// NewAlg7 prepares the standard SVT. It panics on invalid configuration,
// mirroring the explicit preconditions of the paper's pseudocode.
func NewAlg7(src *rng.Source, cfg Alg7Config) *Alg7 {
	if src == nil {
		panic("core: nil random source")
	}
	if !(cfg.Eps1 > 0) || !(cfg.Eps2 > 0) {
		panic("core: Alg7 requires positive eps1 and eps2")
	}
	if cfg.Eps3 < 0 {
		panic("core: Alg7 eps3 must be non-negative")
	}
	if !(cfg.Delta > 0) {
		panic("core: sensitivity must be positive")
	}
	checkCutoff(cfg.C)
	cf := float64(cfg.C)
	factor := 2 * cf
	if cfg.Monotonic {
		factor = cf
	}
	a := &Alg7{
		src:        src,
		rho:        src.Laplace(cfg.Delta / cfg.Eps1),
		queryScale: factor * cfg.Delta / cfg.Eps2,
		c:          cfg.C,
	}
	if cfg.Eps3 > 0 {
		a.answerScale = cf * cfg.Delta / cfg.Eps3
	}
	return a
}

// Next implements Algorithm.
func (a *Alg7) Next(q, threshold float64) (Answer, bool) {
	if a.halted {
		return Answer{}, false
	}
	nu := a.src.Laplace(a.queryScale)
	if q+nu >= threshold+a.rho {
		a.count++
		if a.count >= a.c {
			a.halted = true
		}
		if a.answerScale > 0 {
			// Second phase (Theorem 4): an independent Laplace mechanism
			// releases the count for queries found above the threshold.
			return Answer{Above: true, Numeric: true, Value: q + a.src.Laplace(a.answerScale)}, true
		}
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm.
func (a *Alg7) Halted() bool { return a.halted }

// Remaining returns how many more positive outcomes the machine may emit.
func (a *Alg7) Remaining() int { return a.c - a.count }

// Restore fast-forwards the positive-outcome count to n, re-arming the halt
// flag when n ≥ c. It exists for crash recovery: a server that journaled n
// consumed positives rebuilds the mechanism and restores the budget
// accounting so the interaction cannot release more than c positives in
// total across the restart. The noise stream is NOT restored — a recovered
// mechanism draws fresh noise — so only the accounting moves forward.
// It panics unless 0 ≤ n ≤ c, mirroring the package's precondition style.
func (a *Alg7) Restore(n int) {
	if n < 0 || n > a.c {
		panic("core: Alg7.Restore count out of range")
	}
	a.count = n
	a.halted = n >= a.c
}

// Draws returns the source's stream position (Uint64 values consumed,
// including the ones drawing ρ at construction). Crash recovery journals it
// so a seeded mechanism can be fast-forwarded instead of replayed.
func (a *Alg7) Draws() uint64 { return a.src.Draws() }

// Skip advances the source by n draws without using their values; see
// rng.Source.Skip.
func (a *Alg7) Skip(n uint64) { a.src.Skip(n) }
