package core

import "github.com/dpgo/svt/internal/rng"

// ESVT is the accuracy-enhanced SVT with exponential noise of Liu et al.
// (arXiv 2407.20068): the structure of the paper's standard SVT (Alg7)
// with both noise sources replaced by mean-centered one-sided exponential
// variates,
//
//   - threshold noise: ρ  = Exp(Δ/ε₁) − Δ/ε₁,
//   - query noise:     νᵢ = Exp(mcΔ/ε₂) − mcΔ/ε₂  (m = 2, or 1 when all
//     queries are monotonic).
//
// The classic SVT privacy argument (paper Theorem 1/4) only ever uses
// ONE-SIDED density and survival-function ratios: the substitution
// z → z + Δ needs Pr[ρ = z] ≤ e^{ε₁}·Pr[ρ = z + Δ], and each positive
// outcome needs Pr[ν ≥ t] ≤ e^{ε₂/c}·Pr[ν ≥ t + mΔ]. The exponential
// distribution with scale b satisfies both exactly (f(z)/f(z+Δ) = e^{Δ/b}
// on its support, SF(t)/SF(t+Δ) ≤ e^{Δ/b} everywhere), so the same proof
// gives (ε₁+ε₂)-DP — while Var[Exp(b)] = b² is HALF of Var[Lap(b)] = 2b²,
// which is the accuracy enhancement. Centering by the mean b keeps the
// comparison unbiased and only translates the support, preserving both
// ratio bounds.
//
//	1: ρ = Exp(Δ/ε₁) − Δ/ε₁, count = 0
//	2: for each query qᵢ ∈ Q do
//	3:   νᵢ = Exp(mcΔ/ε₂) − mcΔ/ε₂
//	4:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//	5:     output aᵢ = ⊤
//	6:     count = count + 1, Abort if count ≥ c
//	7:   else
//	8:     output aᵢ = ⊥
type ESVT struct {
	src        *rng.Source
	rho        float64 // fixed noisy-threshold offset, Exp(Δ/ε₁) − Δ/ε₁
	queryScale float64 // mcΔ/ε₂
	c          int
	count      int
	halted     bool
}

// ESVTConfig carries the inputs of the exponential-noise SVT.
type ESVTConfig struct {
	// Eps1 is the threshold-perturbation budget; must be positive.
	Eps1 float64
	// Eps2 is the query-perturbation budget; must be positive.
	Eps2 float64
	// Delta is the query sensitivity Δ; must be positive.
	Delta float64
	// C is the positive-outcome cutoff; must be positive.
	C int
	// Monotonic halves the query-noise scale to cΔ/ε₂ when all queries
	// move in the same direction between neighbors; both Theorem-5 cases
	// again need only the one-sided exponential ratios.
	Monotonic bool
}

// NewESVT prepares the exponential-noise SVT. It panics on invalid
// configuration, mirroring the package's precondition style. The threshold
// noise is drawn at construction time.
func NewESVT(src *rng.Source, cfg ESVTConfig) *ESVT {
	if src == nil {
		panic("core: nil random source")
	}
	if !(cfg.Eps1 > 0) || !(cfg.Eps2 > 0) {
		panic("core: ESVT requires positive eps1 and eps2")
	}
	if !(cfg.Delta > 0) {
		panic("core: sensitivity must be positive")
	}
	checkCutoff(cfg.C)
	factor := 2 * float64(cfg.C)
	if cfg.Monotonic {
		factor = float64(cfg.C)
	}
	b1 := cfg.Delta / cfg.Eps1
	return &ESVT{
		src:        src,
		rho:        src.Exponential(b1) - b1,
		queryScale: factor * cfg.Delta / cfg.Eps2,
		c:          cfg.C,
	}
}

// Next implements Algorithm.
func (a *ESVT) Next(q, threshold float64) (Answer, bool) {
	if a.halted {
		return Answer{}, false
	}
	nu := a.src.Exponential(a.queryScale) - a.queryScale
	if q+nu >= threshold+a.rho {
		a.count++
		if a.count >= a.c {
			a.halted = true
		}
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm.
func (a *ESVT) Halted() bool { return a.halted }

// Remaining returns how many more positive outcomes the machine may emit.
func (a *ESVT) Remaining() int { return a.c - a.count }

// Restore fast-forwards the positive-outcome count to n for crash
// recovery; see Alg7.Restore. It panics unless 0 ≤ n ≤ c.
func (a *ESVT) Restore(n int) {
	if n < 0 || n > a.c {
		panic("core: ESVT.Restore count out of range")
	}
	a.count = n
	a.halted = n >= a.c
}

// Draws returns the source's stream position; see Alg7.Draws.
func (a *ESVT) Draws() uint64 { return a.src.Draws() }

// Skip advances the source by n draws; see rng.Source.Skip.
func (a *ESVT) Skip(n uint64) { a.src.Skip(n) }
