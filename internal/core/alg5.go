package core

import "github.com/dpgo/svt/internal/rng"

// Alg5 is the SVT of Stoddard, Chen and Machanavajjhala 2014 (Figure 1,
// Algorithm 5), used for private feature selection.
//
// It adds NO noise to query answers and never stops, so it is not ε-DP for
// any finite ε (Theorem 3 gives a two-query counterexample where an output
// has positive probability on D and zero probability on the neighbor D′).
//
//	1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//	2: ε₂ = ε − ε₁
//	3: for each query qᵢ ∈ Q do
//	4:   νᵢ = 0
//	5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//	6:     output aᵢ = ⊤
//	8:   else
//	9:     output aᵢ = ⊥
type Alg5 struct {
	rho float64
}

// NewAlg5 prepares the Stoddard-et-al SVT. The result is not ε-DP for any
// finite ε; it exists to reproduce the paper's analysis. (ε₂ = ε/2 is
// computed by the published pseudocode but never used — no query noise is
// drawn.)
func NewAlg5(src *rng.Source, epsilon, delta float64) *Alg5 {
	checkCommon(src, epsilon, delta)
	eps1 := epsilon / 2
	return &Alg5{rho: src.Laplace(delta / eps1)}
}

// Next implements Algorithm. It never halts: the variant has no cutoff, so
// positive outcomes are unbounded ("privacy for free", which is exactly why
// it is broken).
func (a *Alg5) Next(q, threshold float64) (Answer, bool) {
	if q >= threshold+a.rho {
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm; Alg5 never halts.
func (a *Alg5) Halted() bool { return false }
