package core

import "github.com/dpgo/svt/internal/rng"

// Alg3 is the SVT from Roth's 2011 lecture notes (Figure 1, Algorithm 3),
// abstracted from the algorithms of Gupta-Roth-Ullman and Hardt-Rothblum.
//
// It is NOT differentially private for any finite ε (Theorem 6): releasing
// the noisy query answer qᵢ(D) + νᵢ for positive outcomes reveals an upper
// bound on the noisy threshold, destroying the "negative answers are free"
// argument. Its query noise Lap(cΔ/ε₂) would also only suffice for
// (3ε/2)-DP even if it output ⊤ instead.
//
//	1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//	2: ε₂ = ε − ε₁, count = 0
//	3: for each query qᵢ ∈ Q do
//	4:   νᵢ = Lap(cΔ/ε₂)
//	5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//	6:     output aᵢ = qᵢ(D) + νᵢ
//	7:     count = count + 1, Abort if count ≥ c
//	8:   else
//	9:     output aᵢ = ⊥
type Alg3 struct {
	src        *rng.Source
	rho        float64
	queryScale float64 // cΔ/ε₂
	c          int
	count      int
	halted     bool
}

// NewAlg3 prepares the Roth-2011 SVT. The result is not ε-DP; it exists to
// reproduce the paper's analysis.
func NewAlg3(src *rng.Source, epsilon, delta float64, c int) *Alg3 {
	checkCommon(src, epsilon, delta)
	checkCutoff(c)
	eps1 := epsilon / 2
	eps2 := epsilon - eps1
	return &Alg3{
		src:        src,
		rho:        src.Laplace(delta / eps1),
		queryScale: float64(c) * delta / eps2,
		c:          c,
	}
}

// Next implements Algorithm. Positive outcomes carry the leaked noisy
// answer in Value.
func (a *Alg3) Next(q, threshold float64) (Answer, bool) {
	if a.halted {
		return Answer{}, false
	}
	noisy := q + a.src.Laplace(a.queryScale)
	if noisy >= threshold+a.rho {
		a.count++
		if a.count >= a.c {
			a.halted = true
		}
		return Answer{Above: true, Numeric: true, Value: noisy}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm.
func (a *Alg3) Halted() bool { return a.halted }
