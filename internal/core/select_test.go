package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/dpgo/svt/internal/rng"
)

func distinctInRange(t *testing.T, name string, sel []int, n, c int) {
	t.Helper()
	if len(sel) > c {
		t.Fatalf("%s: selected %d > c=%d", name, len(sel), c)
	}
	seen := make(map[int]bool)
	for _, idx := range sel {
		if idx < 0 || idx >= n {
			t.Fatalf("%s: index %d out of range", name, idx)
		}
		if seen[idx] {
			t.Fatalf("%s: duplicate index %d", name, idx)
		}
		seen[idx] = true
	}
}

func TestSelectEMBasics(t *testing.T) {
	src := rng.New(201)
	scores := []float64{10, 50, 20, 40, 30}
	sel := SelectEM(src, scores, 1.0, 1.0, 3, false)
	distinctInRange(t, "EM", sel, len(scores), 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
}

func TestSelectEMClampsToLen(t *testing.T) {
	src := rng.New(202)
	sel := SelectEM(src, []float64{1, 2}, 1.0, 1.0, 10, true)
	if len(sel) != 2 {
		t.Fatalf("selected %d, want all 2", len(sel))
	}
	sort.Ints(sel)
	if sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("selection %v, want both indices", sel)
	}
}

// With large ε the EM selection should almost always be the true top-c.
func TestSelectEMHighEpsilonFindsTop(t *testing.T) {
	src := rng.New(203)
	scores := []float64{1, 100, 2, 99, 3, 98}
	hits := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		sel := SelectEM(src.Split(), scores, 1000, 1.0, 3, false)
		sort.Ints(sel)
		if len(sel) == 3 && sel[0] == 1 && sel[1] == 3 && sel[2] == 5 {
			hits++
		}
	}
	if hits < trials*95/100 {
		t.Fatalf("high-eps EM found true top-3 only %d/%d times", hits, trials)
	}
}

// The first EM round must sample exactly the softmax distribution; compare
// both samplers against the closed form.
func TestSelectEMMatchesSoftmaxFirstRound(t *testing.T) {
	scores := []float64{0, 1, 2}
	const eps, delta = 2.0, 1.0
	const c = 1
	coef := eps / (2 * float64(c) * delta)
	var want [3]float64
	z := 0.0
	for _, s := range scores {
		z += math.Exp(coef * s)
	}
	for i, s := range scores {
		want[i] = math.Exp(coef*s) / z
	}
	const trials = 100000
	samplers := map[string]func(*rng.Source) []int{
		"gumbel": func(s *rng.Source) []int { return SelectEM(s, scores, eps, delta, c, false) },
		"invcdf": func(s *rng.Source) []int { return SelectEMInvCDF(s, scores, eps, delta, c, false) },
	}
	for name, sample := range samplers {
		src := rng.New(204)
		var counts [3]int
		for i := 0; i < trials; i++ {
			counts[sample(src.Split())[0]]++
		}
		for i := range counts {
			got := float64(counts[i]) / trials
			if math.Abs(got-want[i]) > 0.01 {
				t.Errorf("%s bucket %d: got %v want %v", name, i, got, want[i])
			}
		}
	}
}

// The Gumbel top-c sampler must match the explicit sequential
// without-replacement sampler on the full ORDERED selection distribution,
// not just the first round — this is the Yellott equivalence SelectEM's
// speed relies on.
func TestSelectEMGumbelTopCMatchesSequential(t *testing.T) {
	scores := []float64{0, 1, 2}
	const eps, delta = 1.5, 1.0
	const c = 2
	const trials = 60000
	freq := func(sample func(*rng.Source) []int, seed uint64) map[[2]int]float64 {
		src := rng.New(seed)
		counts := map[[2]int]int{}
		for i := 0; i < trials; i++ {
			sel := sample(src.Split())
			counts[[2]int{sel[0], sel[1]}]++
		}
		out := map[[2]int]float64{}
		for k, v := range counts {
			out[k] = float64(v) / trials
		}
		return out
	}
	a := freq(func(s *rng.Source) []int { return SelectEM(s, scores, eps, delta, c, false) }, 301)
	b := freq(func(s *rng.Source) []int { return SelectEMInvCDF(s, scores, eps, delta, c, false) }, 302)
	for pair, pa := range a {
		if math.Abs(pa-b[pair]) > 0.012 {
			t.Errorf("ordered pair %v: gumbel %v vs sequential %v", pair, pa, b[pair])
		}
	}
}

// Monotonic mode doubles the exponent coefficient, which must make the
// selection strictly more concentrated on the top item.
func TestSelectEMMonotonicSharper(t *testing.T) {
	scores := []float64{0, 5}
	const trials = 40000
	count := func(monotonic bool, seed uint64) int {
		src := rng.New(seed)
		hits := 0
		for i := 0; i < trials; i++ {
			if SelectEM(src.Split(), scores, 1.0, 1.0, 1, monotonic)[0] == 1 {
				hits++
			}
		}
		return hits
	}
	general := count(false, 205)
	mono := count(true, 206)
	if mono <= general {
		t.Fatalf("monotonic EM (%d hits) not sharper than general (%d hits)", mono, general)
	}
}

// Property: EM selections are always distinct, in-range, and of size
// min(c, n), for both samplers.
func TestQuickSelectEMInvariants(t *testing.T) {
	f := func(seed uint64, raw []uint8, cRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v)
		}
		c := int(cRaw%10) + 1
		wantLen := c
		if wantLen > len(scores) {
			wantLen = len(scores)
		}
		for _, sel := range [][]int{
			SelectEM(rng.New(seed), scores, 0.5, 1, c, false),
			SelectEMInvCDF(rng.New(seed), scores, 0.5, 1, c, true),
		} {
			if len(sel) != wantLen {
				return false
			}
			seen := make(map[int]bool)
			for _, idx := range sel {
				if idx < 0 || idx >= len(scores) || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectSVTBasics(t *testing.T) {
	src := rng.New(207)
	scores := []float64{1e9, -1e9, 1e9, -1e9, 1e9, 1e9}
	cfg := ReTrConfig{Eps1: 0.05, Eps2: 0.05, Delta: 1, C: 3}
	sel := SelectSVT(src, scores, 0, cfg)
	distinctInRange(t, "SVT", sel, len(scores), 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	// One pass, huge margins: must be the first three high-score indices.
	want := []int{0, 2, 4}
	for i, idx := range sel {
		if idx != want[i] {
			t.Fatalf("selection %v, want %v", sel, want)
		}
	}
}

// Retraversal must find c items even when the threshold is boosted so high
// that single-pass SVT-S would select almost nothing.
func TestSelectReTrFillsQuota(t *testing.T) {
	src := rng.New(208)
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = float64(i)
	}
	cfg := ReTrConfig{Eps1: 0.1, Eps2: 0.5, Delta: 1, C: 10, BoostSD: 5}
	sel := SelectReTr(src, scores, 90, cfg)
	distinctInRange(t, "ReTr", sel, len(scores), 10)
	if len(sel) != 10 {
		t.Fatalf("retraversal selected %d, want full quota 10", len(sel))
	}
}

func TestSelectReTrRespectsMaxPasses(t *testing.T) {
	src := rng.New(209)
	scores := mkQueries(20, -1e12) // hopeless: far below any plausible noisy threshold
	cfg := ReTrConfig{Eps1: 1, Eps2: 1, Delta: 1, C: 5, MaxPasses: 3}
	sel := SelectReTr(src, scores, 0, cfg)
	if len(sel) != 0 {
		t.Fatalf("selected %d from hopeless scores", len(sel))
	}
}

// Property: retraversal never duplicates an index and never exceeds c.
func TestQuickSelectReTrInvariants(t *testing.T) {
	f := func(seed uint64, raw []int8, cRaw, boostRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = float64(v)
		}
		c := int(cRaw%8) + 1
		cfg := ReTrConfig{
			Eps1: 0.2, Eps2: 0.8, Delta: 1, C: c,
			BoostSD: float64(boostRaw % 6), MaxPasses: 50,
		}
		sel := SelectReTr(rng.New(seed), scores, 0, cfg)
		if len(sel) > c {
			return false
		}
		seen := make(map[int]bool)
		for _, idx := range sel {
			if idx < 0 || idx >= len(scores) || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPanics(t *testing.T) {
	src := rng.New(1)
	cases := map[string]func(){
		"EM empty scores":   func() { SelectEM(src, nil, 1, 1, 1, false) },
		"EM zero eps":       func() { SelectEM(src, []float64{1}, 0, 1, 1, false) },
		"EM zero delta":     func() { SelectEM(src, []float64{1}, 1, 0, 1, false) },
		"EM zero c":         func() { SelectEM(src, []float64{1}, 1, 1, 0, false) },
		"EM nil src":        func() { SelectEM(nil, []float64{1}, 1, 1, 1, false) },
		"InvCDF empty":      func() { SelectEMInvCDF(src, nil, 1, 1, 1, false) },
		"ReTr empty scores": func() { SelectReTr(src, nil, 0, ReTrConfig{Eps1: 1, Eps2: 1, Delta: 1, C: 1}) },
		"ReTr neg boost": func() {
			SelectReTr(src, []float64{1}, 0, ReTrConfig{Eps1: 1, Eps2: 1, Delta: 1, C: 1, BoostSD: -1})
		},
		"SVT empty scores": func() { SelectSVT(src, nil, 0, ReTrConfig{Eps1: 1, Eps2: 1, Delta: 1, C: 1}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
