// Package core contains line-faithful implementations of every algorithm in
// Lyu, Su and Li, "Understanding the Sparse Vector Technique for
// Differential Privacy" (PVLDB 2017): the six SVT variants of Figure 1, the
// paper's generalized standard SVT (Algorithm 7) with the monotonic-query
// refinement, the GPTT abstraction of Chen & Machanavajjhala analyzed in
// §3.3, the exponential-mechanism top-c selector of §5, and the
// retraversal optimization (SVT-ReTr).
//
// These types mirror the paper's pseudocode as closely as Go allows — the
// audit and experiment harnesses run them to reproduce the paper's figures
// and counterexamples exactly. The ergonomic, validated public API lives in
// the root package github.com/dpgo/svt; production code should use that
// instead. Several algorithms here (Alg3, Alg4, Alg5, Alg6, GPTT) are NOT
// differentially private — reproducing the paper requires implementing them
// anyway.
package core

import (
	"fmt"

	"github.com/dpgo/svt/internal/rng"
)

// Answer is one element of an SVT output stream.
//
// The paper's output alphabet is {⊤, ⊥} ∪ ℝ: Algorithm 3 leaks the noisy
// query answer for positive outcomes, and Algorithm 7 with ε₃ > 0 releases
// a fresh Laplace-perturbed answer for them.
type Answer struct {
	// Above reports a positive outcome (⊤): the (noisy) query answer was at
	// or above the (noisy) threshold.
	Above bool
	// Numeric reports that Value carries a released real number (Alg. 3's
	// leaked noisy answer, or Alg. 7's ε₃-budgeted Laplace answer).
	Numeric bool
	// Value is the released number when Numeric is true.
	Value float64
}

// String renders the answer the way the paper writes output vectors.
func (a Answer) String() string {
	switch {
	case a.Numeric:
		return fmt.Sprintf("%g", a.Value)
	case a.Above:
		return "⊤"
	default:
		return "⊥"
	}
}

// Algorithm is the common streaming interface of every SVT variant.
//
// Next feeds one true query answer q(D) together with its threshold T and
// returns the released answer. ok is false — and the Answer is the zero
// value — once the variant has exhausted its positive-outcome budget
// (aborted after c ⊤'s); variants without a cutoff never return ok=false.
type Algorithm interface {
	Next(q, threshold float64) (ans Answer, ok bool)
	// Halted reports whether the algorithm has aborted.
	Halted() bool
}

// Run feeds each query through alg with its per-query threshold and returns
// the released stream, stopping early if the algorithm aborts. thresholds
// must either have length 1 (a single threshold T for all queries, as in
// Algorithms 2-5) or match queries in length (the threshold sequences of
// Algorithms 1, 6 and 7).
func Run(alg Algorithm, queries, thresholds []float64) []Answer {
	if len(thresholds) != 1 && len(thresholds) != len(queries) {
		panic("core: thresholds must have length 1 or len(queries)")
	}
	out := make([]Answer, 0, len(queries))
	for i, q := range queries {
		t := thresholds[0]
		if len(thresholds) > 1 {
			t = thresholds[i]
		}
		ans, ok := alg.Next(q, t)
		if !ok {
			break
		}
		out = append(out, ans)
	}
	return out
}

// checkCommon validates the parameters shared by every variant.
func checkCommon(src *rng.Source, epsilon, delta float64) {
	if src == nil {
		panic("core: nil random source")
	}
	if !(epsilon > 0) {
		panic("core: epsilon must be positive")
	}
	if !(delta > 0) {
		panic("core: sensitivity must be positive")
	}
}

// checkCutoff validates a positive-outcome budget c for the variants that
// have one.
func checkCutoff(c int) {
	if c <= 0 {
		panic("core: cutoff c must be positive")
	}
}
