package core

import "github.com/dpgo/svt/internal/rng"

// Alg6 is the SVT of Chen et al. 2015 (Figure 1, Algorithm 6), used to
// select attribute pairs when learning a differentially private Bayesian
// network.
//
// It perturbs each query with Lap(Δ/ε₂) — no c factor — and never stops, so
// it is not ε-DP for any finite ε (Theorem 7: the privacy-loss ratio on the
// construction q(D)=0²ᵐ, q(D′)=1ᵐ(−1)ᵐ grows like e^{mε/2}).
//
//	1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//	2: ε₂ = ε − ε₁
//	3: for each query qᵢ ∈ Q do
//	4:   νᵢ = Lap(Δ/ε₂)
//	5:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//	6:     output aᵢ = ⊤
//	8:   else
//	9:     output aᵢ = ⊥
type Alg6 struct {
	src        *rng.Source
	rho        float64
	queryScale float64 // Δ/ε₂
}

// NewAlg6 prepares the Chen-et-al SVT. The result is not ε-DP for any
// finite ε; it exists to reproduce the paper's analysis.
func NewAlg6(src *rng.Source, epsilon, delta float64) *Alg6 {
	checkCommon(src, epsilon, delta)
	eps1 := epsilon / 2
	eps2 := epsilon - eps1
	return &Alg6{
		src:        src,
		rho:        src.Laplace(delta / eps1),
		queryScale: delta / eps2,
	}
}

// Next implements Algorithm. It never halts (no cutoff).
func (a *Alg6) Next(q, threshold float64) (Answer, bool) {
	nu := a.src.Laplace(a.queryScale)
	if q+nu >= threshold+a.rho {
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm; Alg6 never halts.
func (a *Alg6) Halted() bool { return false }
