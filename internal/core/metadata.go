package core

// Variant identifies one of the six SVT variants of Figure 1.
type Variant int

const (
	// VariantAlg1 is the paper's proposed instantiation (ε-DP).
	VariantAlg1 Variant = 1 + iota
	// VariantAlg2 is Dwork & Roth's 2014 book version (ε-DP).
	VariantAlg2
	// VariantAlg3 is Roth's 2011 lecture-notes version (∞-DP).
	VariantAlg3
	// VariantAlg4 is Lee & Clifton 2014 ((1+6c)/4·ε-DP).
	VariantAlg4
	// VariantAlg5 is Stoddard et al. 2014 (∞-DP).
	VariantAlg5
	// VariantAlg6 is Chen et al. 2015 (∞-DP).
	VariantAlg6
)

// Metadata summarizes one column of the paper's Figure 2 ("Differences
// among Algorithms 1-6"). The experiments package renders the figure's
// table from these values, and the audit package checks the Privacy row
// empirically.
type Metadata struct {
	Variant Variant
	Name    string
	Source  string
	// Eps1Fraction is ε₁ as a fraction of ε (1/2 everywhere except Alg4's 1/4).
	Eps1Fraction float64
	// ThresholdNoiseScale is the scale of ρ in the paper's symbolic form.
	ThresholdNoiseScale string
	// ResetsRho reports whether ρ is resampled after each ⊤ (only Alg2).
	ResetsRho bool
	// QueryNoiseScale is the scale of νᵢ in the paper's symbolic form.
	QueryNoiseScale string
	// OutputsNumeric reports whether positive outcomes leak qᵢ+νᵢ (only Alg3).
	OutputsNumeric bool
	// UnboundedPositives reports a missing cutoff (Alg5 and Alg6).
	UnboundedPositives bool
	// PrivacyProperty is the last row of Figure 2.
	PrivacyProperty string
	// DP reports whether the variant satisfies ε-DP as claimed.
	DP bool
}

// variantTable mirrors Figure 2 column by column.
var variantTable = [...]Metadata{
	{
		Variant: VariantAlg1, Name: "Alg. 1", Source: "this paper (Lyu-Su-Li)",
		Eps1Fraction: 0.5, ThresholdNoiseScale: "Δ/ε1",
		QueryNoiseScale: "2cΔ/ε2",
		PrivacyProperty: "ε-DP", DP: true,
	},
	{
		Variant: VariantAlg2, Name: "Alg. 2", Source: "Dwork & Roth 2014",
		Eps1Fraction: 0.5, ThresholdNoiseScale: "cΔ/ε1", ResetsRho: true,
		QueryNoiseScale: "2cΔ/ε2",
		PrivacyProperty: "ε-DP", DP: true,
	},
	{
		Variant: VariantAlg3, Name: "Alg. 3", Source: "Roth 2011 lecture notes",
		Eps1Fraction: 0.5, ThresholdNoiseScale: "Δ/ε1",
		QueryNoiseScale: "cΔ/ε2", OutputsNumeric: true,
		PrivacyProperty: "∞-DP", DP: false,
	},
	{
		Variant: VariantAlg4, Name: "Alg. 4", Source: "Lee & Clifton 2014",
		Eps1Fraction: 0.25, ThresholdNoiseScale: "Δ/ε1",
		QueryNoiseScale: "Δ/ε2",
		PrivacyProperty: "((1+6c)/4)ε-DP", DP: false,
	},
	{
		Variant: VariantAlg5, Name: "Alg. 5", Source: "Stoddard et al. 2014",
		Eps1Fraction: 0.5, ThresholdNoiseScale: "Δ/ε1",
		QueryNoiseScale: "0", UnboundedPositives: true,
		PrivacyProperty: "∞-DP", DP: false,
	},
	{
		Variant: VariantAlg6, Name: "Alg. 6", Source: "Chen et al. 2015",
		Eps1Fraction: 0.5, ThresholdNoiseScale: "Δ/ε1",
		QueryNoiseScale: "Δ/ε2", UnboundedPositives: true,
		PrivacyProperty: "∞-DP", DP: false,
	},
}

// VariantMetadata returns the Figure-2 column for v. It panics on an
// unknown variant.
func VariantMetadata(v Variant) Metadata {
	if v < VariantAlg1 || v > VariantAlg6 {
		panic("core: unknown variant")
	}
	return variantTable[v-1]
}

// AllVariants lists the six variants in paper order.
func AllVariants() []Variant {
	return []Variant{VariantAlg1, VariantAlg2, VariantAlg3, VariantAlg4, VariantAlg5, VariantAlg6}
}
