package core

import (
	"math"
	"testing"

	"github.com/dpgo/svt/internal/rng"
)

func TestESVTCutoffAndDeterminism(t *testing.T) {
	const c = 3
	build := func(seed uint64) *ESVT {
		return NewESVT(rng.New(seed), ESVTConfig{Eps1: 0.3, Eps2: 0.7, Delta: 1, C: c})
	}
	alg := build(77)
	out := Run(alg, mkQueries(50, 1e9), []float64{0})
	if len(out) != c || !alg.Halted() || alg.Remaining() != 0 {
		t.Fatalf("answered %d queries before abort (halted=%v remaining=%d), want exactly c=%d",
			len(out), alg.Halted(), alg.Remaining(), c)
	}
	if _, ok := alg.Next(1e9, 0); ok {
		t.Fatal("Next succeeded after halt")
	}

	// Same seed, same stream: the coin-flip outcomes must be identical.
	script := mkQueries(40, 0)
	a, b := build(5), build(5)
	ra := Run(a, script, []float64{0})
	rb := Run(b, script, []float64{0})
	if len(ra) != len(rb) {
		t.Fatalf("identically seeded runs answered %d vs %d queries", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("identically seeded runs diverged at query %d", i)
		}
	}
}

func TestESVTRestoreAndSkip(t *testing.T) {
	alg := NewESVT(rng.New(9), ESVTConfig{Eps1: 0.5, Eps2: 0.5, Delta: 1, C: 4})
	if alg.Draws() == 0 {
		t.Fatal("construction drew no threshold noise")
	}
	alg.Restore(4)
	if !alg.Halted() || alg.Remaining() != 0 {
		t.Fatalf("restored-to-cutoff: halted=%v remaining=%d", alg.Halted(), alg.Remaining())
	}
	// Skip keeps the stream position exact: a twin that answers one query
	// and a twin that skips the same number of draws produce the same next
	// value.
	x, y := NewESVT(rng.New(3), ESVTConfig{Eps1: 0.5, Eps2: 0.5, Delta: 1, C: 4}),
		NewESVT(rng.New(3), ESVTConfig{Eps1: 0.5, Eps2: 0.5, Delta: 1, C: 4})
	before := x.Draws()
	x.Next(0, 0)
	y.Skip(x.Draws() - before)
	if x.Draws() != y.Draws() {
		t.Fatalf("skip landed at %d, want %d", y.Draws(), x.Draws())
	}
	ax, _ := x.Next(0.25, 0)
	ay, _ := y.Next(0.25, 0)
	if ax != ay {
		t.Fatal("skipped twin diverged from the answering twin")
	}
}

// expDiffSF returns Pr[E₂ − E₁ ≥ s] for independent exponentials with
// means b2 and b1: the closed-form law of esvt's comparison noise before
// mean-centering. For s ≥ 0 the tail is (b₂/(b₁+b₂))·e^{−s/b₂}; negative s
// mirrors through the complement.
func expDiffSF(s, b2, b1 float64) float64 {
	if s >= 0 {
		return b2 / (b1 + b2) * math.Exp(-s/b2)
	}
	return 1 - b1/(b1+b2)*math.Exp(s/b1)
}

// TestESVTPositiveRateMatchesClosedForm checks the implemented comparison
// q + (E₂−b₂) ≥ T + (E₁−b₁) against the analytic law of E₂−E₁ at several
// margins. The trials are seeded, so the test is deterministic.
func TestESVTPositiveRateMatchesClosedForm(t *testing.T) {
	const (
		trials = 40000
		eps1   = 0.4
		eps2   = 0.6
		delta  = 1.0
		c      = 1
	)
	b1 := delta / eps1
	b2 := 2 * float64(c) * delta / eps2
	for _, margin := range []float64{-2, 0, 1.5} {
		hits := 0
		for i := 0; i < trials; i++ {
			alg := NewESVT(rng.New(uint64(i)+1), ESVTConfig{Eps1: eps1, Eps2: eps2, Delta: delta, C: c})
			if ans, ok := alg.Next(margin, 0); !ok {
				t.Fatal("fresh mechanism refused its first query")
			} else if ans.Above {
				hits++
			}
		}
		got := float64(hits) / trials
		// Positive iff margin + (E₂−b₂) − (E₁−b₁) ≥ 0, i.e. E₂−E₁ ≥ b₂−b₁−margin.
		want := expDiffSF(b2-b1-margin, b2, b1)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("margin %v: positive rate %.4f, closed form %.4f", margin, got, want)
		}
	}
}

// TestESVTHalvesComparisonVariance pins the accuracy enhancement the
// mechanism exists for: the exponential comparison noise ν − ρ has half
// the variance of the Laplace SVT's at the same budget split
// (Var[Exp(b)] = b² vs Var[Lap(b)] = 2b²). Empirical, seeded, against the
// closed form b₁² + b₂².
func TestESVTHalvesComparisonVariance(t *testing.T) {
	const (
		trials = 30000
		eps1   = 0.5
		eps2   = 0.5
		delta  = 1.0
		c      = 2
	)
	b1 := delta / eps1
	b2 := 2 * float64(c) * delta / eps2
	src := rng.New(424242)
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		d := (src.Exponential(b2) - b2) - (src.Exponential(b1) - b1)
		sum += d
		sumSq += d * d
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	want := b1*b1 + b2*b2 // half the Laplace 2(b₁²+b₂²)
	if math.Abs(mean) > 0.1*math.Sqrt(want) {
		t.Errorf("comparison noise mean %.4f, want ~0 (mean-centering broken)", mean)
	}
	if math.Abs(variance-want)/want > 0.05 {
		t.Errorf("comparison variance %.3f, want ~%.3f (= half the Laplace variance)", variance, want)
	}
}
