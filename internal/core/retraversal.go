package core

import (
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// ReTrConfig configures SVT with Retraversal (SVT-ReTr, §5), the paper's
// non-interactive optimization of the standard SVT.
type ReTrConfig struct {
	// Eps1 and Eps2 are the threshold and query perturbation budgets.
	Eps1, Eps2 float64
	// Delta is the query sensitivity.
	Delta float64
	// C is the number of queries to select.
	C int
	// Monotonic enables the Theorem-5 noise reduction.
	Monotonic bool
	// BoostSD raises the threshold by BoostSD standard deviations of the
	// per-query Laplace noise ("kD" in the paper's plots, k ∈ 1..5). Zero
	// means no boost; negative values are invalid.
	BoostSD float64
	// MaxPasses bounds the number of retraversals (0 means the default of
	// 10000). The loop terminates with probability 1 regardless — every
	// pass gives every remaining query fresh noise and hence positive
	// selection probability — but a bound keeps worst-case latency finite.
	MaxPasses int
}

const defaultMaxPasses = 10000

// SelectReTr selects up to cfg.C indices of scores using the standard SVT
// (Algorithm 7) with a raised threshold, retraversing the not-yet-selected
// queries until C have been selected or MaxPasses is exhausted.
//
// Rationale (§5): with a high threshold SVT may run out of queries having
// selected fewer than c, wasting the remaining budget; with a low one it
// may fill up on early mediocre queries. Retraversal permits a high
// threshold — fewer false positives per pass — without wasting budget,
// because negative outcomes are free and unselected queries can simply be
// tested again.
//
// The privacy analysis is unchanged: the retraversed stream is just a
// longer query sequence fed to the same (ε₁+ε₂)-DP machine, with the same
// at-most-C positive outcomes. The returned indices are in selection order.
func SelectReTr(src *rng.Source, scores []float64, threshold float64, cfg ReTrConfig) []int {
	if len(scores) == 0 {
		panic("core: empty score vector")
	}
	if cfg.BoostSD < 0 || math.IsNaN(cfg.BoostSD) {
		panic("core: negative retraversal boost")
	}
	maxPasses := cfg.MaxPasses
	if maxPasses == 0 {
		maxPasses = defaultMaxPasses
	}
	alg := NewAlg7(src, Alg7Config{
		Eps1: cfg.Eps1, Eps2: cfg.Eps2, Delta: cfg.Delta,
		C: cfg.C, Monotonic: cfg.Monotonic,
	})
	// Boost in units of the query-noise standard deviation (b√2 for
	// Laplace(b)), exactly the paper's "1D...5D" increments.
	boosted := threshold + cfg.BoostSD*rng.LaplaceStdDev(alg.queryScale)

	selected := make([]int, 0, cfg.C)
	remaining := make([]int, len(scores))
	for i := range remaining {
		remaining[i] = i
	}
	for pass := 0; pass < maxPasses && len(remaining) > 0 && !alg.Halted(); pass++ {
		next := remaining[:0]
		for _, idx := range remaining {
			if alg.Halted() {
				next = append(next, idx)
				continue
			}
			ans, ok := alg.Next(scores[idx], boosted)
			if ok && ans.Above {
				selected = append(selected, idx)
			} else {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	return selected
}

// SelectSVT selects up to cfg.C indices with a single pass of the standard
// SVT (Algorithm 7) at the given threshold — the paper's "SVT-S". It is
// SelectReTr with no boost and exactly one traversal.
func SelectSVT(src *rng.Source, scores []float64, threshold float64, cfg ReTrConfig) []int {
	if len(scores) == 0 {
		panic("core: empty score vector")
	}
	alg := NewAlg7(src, Alg7Config{
		Eps1: cfg.Eps1, Eps2: cfg.Eps2, Delta: cfg.Delta,
		C: cfg.C, Monotonic: cfg.Monotonic,
	})
	selected := make([]int, 0, cfg.C)
	for idx, s := range scores {
		ans, ok := alg.Next(s, threshold)
		if !ok {
			break
		}
		if ans.Above {
			selected = append(selected, idx)
		}
	}
	return selected
}
