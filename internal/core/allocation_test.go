package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRatioSplitSumsToEpsilon(t *testing.T) {
	ratios := []Ratio{RatioOneOne, RatioOneThree, RatioOneC, RatioCubeRoot2C, RatioCubeRootC}
	for _, r := range ratios {
		for _, c := range []int{1, 25, 300} {
			e1, e2 := r.Split(0.1, c)
			if e1 <= 0 || e2 <= 0 {
				t.Errorf("%v c=%d: non-positive share (%v, %v)", r, c, e1, e2)
			}
			if math.Abs(e1+e2-0.1) > 1e-12 {
				t.Errorf("%v c=%d: shares sum to %v", r, c, e1+e2)
			}
			if got := e2 / e1; math.Abs(got-r.Coefficient(c))/r.Coefficient(c) > 1e-9 {
				t.Errorf("%v c=%d: ratio %v, want %v", r, c, got, r.Coefficient(c))
			}
		}
	}
}

func TestRatioCoefficients(t *testing.T) {
	cases := []struct {
		r    Ratio
		c    int
		want float64
	}{
		{RatioOneOne, 50, 1},
		{RatioOneThree, 50, 3},
		{RatioOneC, 50, 50},
		{RatioCubeRoot2C, 50, math.Pow(100, 2.0/3)},
		{RatioCubeRootC, 50, math.Pow(50, 2.0/3)},
	}
	for _, cse := range cases {
		if got := cse.r.Coefficient(cse.c); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("%v.Coefficient(%d) = %v, want %v", cse.r, cse.c, got, cse.want)
		}
	}
}

func TestRatioString(t *testing.T) {
	want := map[Ratio]string{
		RatioOneOne:     "1:1",
		RatioOneThree:   "1:3",
		RatioOneC:       "1:c",
		RatioCubeRoot2C: "1:(2c)^(2/3)",
		RatioCubeRootC:  "1:c^(2/3)",
		Ratio(99):       "Ratio(99)",
	}
	for r, s := range want {
		if got := r.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", int(r), got, s)
		}
	}
}

func TestOptimalRatio(t *testing.T) {
	if OptimalRatio(false) != RatioCubeRoot2C {
		t.Error("general optimal should be 1:(2c)^(2/3)")
	}
	if OptimalRatio(true) != RatioCubeRootC {
		t.Error("monotonic optimal should be 1:c^(2/3)")
	}
}

// The paper's Eq. 12 claim: the 1:(2c)^{2/3} split minimizes the comparison
// variance over all splits of a fixed ε. Check against a fine grid.
func TestOptimalSplitMinimizesVariance(t *testing.T) {
	for _, monotonic := range []bool{false, true} {
		for _, c := range []int{1, 5, 50, 300} {
			const eps, delta = 0.1, 1.0
			e1, e2 := OptimalRatio(monotonic).Split(eps, c)
			best := ComparisonVariance(e1, e2, delta, c, monotonic)
			for f := 0.01; f < 1.0; f += 0.01 {
				v := ComparisonVariance(eps*f, eps*(1-f), delta, c, monotonic)
				if v < best*(1-1e-9) {
					t.Errorf("monotonic=%v c=%d: split %.2f beats optimal (%v < %v)",
						monotonic, c, f, v, best)
				}
			}
		}
	}
}

// Property: comparison variance is symmetric in its Laplace components and
// always positive; the optimal ratio's coefficient grows with c.
func TestQuickVariancePositiveAndRatioMonotone(t *testing.T) {
	f := func(cRaw uint8) bool {
		c := int(cRaw%200) + 1
		v := ComparisonVariance(0.05, 0.05, 1, c, false)
		if !(v > 0) {
			return false
		}
		if c > 1 {
			if RatioCubeRoot2C.Coefficient(c) <= RatioCubeRoot2C.Coefficient(c-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationPanics(t *testing.T) {
	cases := map[string]func(){
		"split zero eps":   func() { RatioOneOne.Split(0, 5) },
		"split neg eps":    func() { RatioOneOne.Split(-1, 5) },
		"coef zero c":      func() { RatioOneC.Coefficient(0) },
		"unknown ratio":    func() { Ratio(42).Coefficient(5) },
		"variance zero e1": func() { ComparisonVariance(0, 1, 1, 5, false) },
		"variance zero e2": func() { ComparisonVariance(1, 0, 1, 5, false) },
		"variance delta":   func() { ComparisonVariance(1, 1, 0, 5, false) },
		"variance zero c":  func() { ComparisonVariance(1, 1, 1, 0, false) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
