package core

import "github.com/dpgo/svt/internal/rng"

// Alg1 is the paper's proposed SVT instantiation (Figure 1, Algorithm 1),
// proved ε-DP in Theorem 2.
//
//	1: ε₁ = ε/2, ρ = Lap(Δ/ε₁)
//	2: ε₂ = ε − ε₁, count = 0
//	3: for each query qᵢ ∈ Q do
//	4:   νᵢ = Lap(2cΔ/ε₂)
//	5:   if qᵢ(D) + νᵢ ≥ Tᵢ + ρ then
//	6:     output aᵢ = ⊤
//	7:     count = count + 1, Abort if count ≥ c
//	8:   else
//	9:     output aᵢ = ⊥
//
// Its two improvements over the Dwork-Roth book version (Alg2) are that the
// threshold noise ρ does not scale with c and is never resampled.
type Alg1 struct {
	src        *rng.Source
	rho        float64 // fixed noisy-threshold offset, Lap(Δ/ε₁)
	queryScale float64 // 2cΔ/ε₂
	c          int
	count      int
	halted     bool
}

// NewAlg1 prepares Algorithm 1 with total budget epsilon, query sensitivity
// delta and positive-outcome cutoff c. It draws the threshold noise
// immediately (Line 1).
func NewAlg1(src *rng.Source, epsilon, delta float64, c int) *Alg1 {
	checkCommon(src, epsilon, delta)
	checkCutoff(c)
	eps1 := epsilon / 2
	eps2 := epsilon - eps1
	return &Alg1{
		src:        src,
		rho:        src.Laplace(delta / eps1),
		queryScale: 2 * float64(c) * delta / eps2,
		c:          c,
	}
}

// Next implements Algorithm.
func (a *Alg1) Next(q, threshold float64) (Answer, bool) {
	if a.halted {
		return Answer{}, false
	}
	nu := a.src.Laplace(a.queryScale)
	if q+nu >= threshold+a.rho {
		a.count++
		if a.count >= a.c {
			a.halted = true
		}
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm.
func (a *Alg1) Halted() bool { return a.halted }

// Restore fast-forwards the positive-outcome count to n for crash
// recovery; see Alg7.Restore. It panics unless 0 ≤ n ≤ c.
func (a *Alg1) Restore(n int) {
	if n < 0 || n > a.c {
		panic("core: Alg1.Restore count out of range")
	}
	a.count = n
	a.halted = n >= a.c
}

// Draws returns the source's stream position; see Alg7.Draws.
func (a *Alg1) Draws() uint64 { return a.src.Draws() }

// Skip advances the source by n draws; see rng.Source.Skip.
func (a *Alg1) Skip(n uint64) { a.src.Skip(n) }
