package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dpgo/svt/internal/rng"
)

// mkQueries returns n copies of q.
func mkQueries(n int, q float64) []float64 {
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = q
	}
	return qs
}

// builders constructs every variant with a common (ε, Δ, c) so the shared
// behaviours can be table-tested.
func builders(epsilon, delta float64, c int) map[string]func(*rng.Source) Algorithm {
	return map[string]func(*rng.Source) Algorithm{
		"Alg1": func(s *rng.Source) Algorithm { return NewAlg1(s, epsilon, delta, c) },
		"Alg2": func(s *rng.Source) Algorithm { return NewAlg2(s, epsilon, delta, c) },
		"Alg3": func(s *rng.Source) Algorithm { return NewAlg3(s, epsilon, delta, c) },
		"Alg4": func(s *rng.Source) Algorithm { return NewAlg4(s, epsilon, delta, c) },
		"Alg5": func(s *rng.Source) Algorithm { return NewAlg5(s, epsilon, delta) },
		"Alg6": func(s *rng.Source) Algorithm { return NewAlg6(s, epsilon, delta) },
		"Alg7": func(s *rng.Source) Algorithm {
			return NewAlg7(s, Alg7Config{Eps1: epsilon / 2, Eps2: epsilon / 2, Delta: delta, C: c})
		},
		"GPTT": func(s *rng.Source) Algorithm { return NewGPTT(s, epsilon/2, epsilon/2, delta) },
	}
}

func hasCutoff(name string) bool {
	switch name {
	case "Alg5", "Alg6", "GPTT":
		return false
	}
	return true
}

// With an overwhelming margin every query is reported above; algorithms
// with a cutoff must emit exactly c ⊤'s and then halt.
func TestCutoffAbortsAfterCPositives(t *testing.T) {
	const c = 3
	for name, build := range builders(1.0, 1.0, c) {
		alg := build(rng.New(101))
		queries := mkQueries(50, 1e9) // far above threshold 0 for any plausible noise
		out := Run(alg, queries, []float64{0})
		positives := 0
		for _, a := range out {
			if a.Above {
				positives++
			}
		}
		if hasCutoff(name) {
			if len(out) != c {
				t.Errorf("%s: answered %d queries before abort, want %d", name, len(out), c)
			}
			if positives != c {
				t.Errorf("%s: %d positives, want %d", name, positives, c)
			}
			if !alg.Halted() {
				t.Errorf("%s: not halted after c positives", name)
			}
			if _, ok := alg.Next(1e9, 0); ok {
				t.Errorf("%s: Next succeeded after halt", name)
			}
		} else {
			if len(out) != len(queries) {
				t.Errorf("%s: answered %d, want all %d (no cutoff)", name, len(out), len(queries))
			}
			if positives != len(queries) {
				t.Errorf("%s: %d positives, want %d", name, positives, len(queries))
			}
			if alg.Halted() {
				t.Errorf("%s: halted but has no cutoff", name)
			}
		}
	}
}

// With an overwhelmingly negative margin, every answer is ⊥ and no variant
// ever halts.
func TestAllBelow(t *testing.T) {
	for name, build := range builders(1.0, 1.0, 3) {
		alg := build(rng.New(102))
		out := Run(alg, mkQueries(40, -1e9), []float64{0})
		if len(out) != 40 {
			t.Errorf("%s: answered %d, want 40", name, len(out))
		}
		for i, a := range out {
			if a.Above {
				t.Errorf("%s: query %d reported above", name, i)
			}
			if a.Numeric {
				t.Errorf("%s: negative outcome %d carries a numeric value", name, i)
			}
		}
		if alg.Halted() {
			t.Errorf("%s: halted on all-below stream", name)
		}
	}
}

// Determinism: the same seed must give the same output stream.
func TestDeterministicGivenSeed(t *testing.T) {
	queries := []float64{5, -3, 10, 0, 2, -8, 7, 1}
	for name, build := range builders(0.5, 1.0, 2) {
		a := Run(build(rng.New(7)), queries, []float64{1})
		b := Run(build(rng.New(7)), queries, []float64{1})
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: answer %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// Only Alg3 (always) and Alg7 (with ε₃>0) release numeric values.
func TestNumericOutputs(t *testing.T) {
	queries := mkQueries(10, 1e9)
	for name, build := range builders(1.0, 1.0, 5) {
		out := Run(build(rng.New(103)), queries, []float64{0})
		for i, a := range out {
			if a.Above && a.Numeric != (name == "Alg3") {
				t.Errorf("%s: answer %d Numeric = %v", name, i, a.Numeric)
			}
		}
	}
	alg7 := NewAlg7(rng.New(104), Alg7Config{Eps1: 0.25, Eps2: 0.5, Eps3: 0.25, Delta: 1, C: 5})
	out := Run(alg7, queries, []float64{0})
	for i, a := range out {
		if a.Above && !a.Numeric {
			t.Errorf("Alg7(eps3>0): positive answer %d lacks numeric value", i)
		}
	}
}

// Alg3's leaked numeric value must itself be consistent with the positive
// test: it is the very quantity compared against the noisy threshold.
func TestAlg3NumericValueAboveNoisyThreshold(t *testing.T) {
	src := rng.New(105)
	alg := NewAlg3(src, 1.0, 1.0, 100)
	for i := 0; i < 3000; i++ {
		ans, ok := alg.Next(1.0, 0)
		if !ok {
			break
		}
		if ans.Above && ans.Value < alg.rho {
			t.Fatalf("leaked value %v below noisy threshold %v", ans.Value, alg.rho)
		}
	}
}

// Alg5 adds no query noise: conditioned on its single threshold draw, equal
// queries must receive equal answers.
func TestAlg5DeterministicGivenRho(t *testing.T) {
	alg := NewAlg5(rng.New(106), 0.1, 1.0)
	first, _ := alg.Next(3.0, 2.0)
	for i := 0; i < 100; i++ {
		a, _ := alg.Next(3.0, 2.0)
		if a != first {
			t.Fatalf("Alg5 answer changed between identical queries")
		}
	}
}

// White-box check of every noise scale against the Figure 1 pseudocode.
func TestNoiseScales(t *testing.T) {
	const eps, delta = 0.4, 2.0
	const c = 7
	eps1, eps2 := eps/2, eps/2
	if a := NewAlg1(rng.New(1), eps, delta, c); math.Abs(a.queryScale-2*c*delta/eps2) > 1e-12 {
		t.Errorf("Alg1 query scale %v", a.queryScale)
	}
	a2 := NewAlg2(rng.New(1), eps, delta, c)
	if math.Abs(a2.queryScale-2*c*delta/eps1) > 1e-12 {
		t.Errorf("Alg2 query scale %v", a2.queryScale)
	}
	if math.Abs(a2.rhoScale2-c*delta/eps2) > 1e-12 {
		t.Errorf("Alg2 resample scale %v", a2.rhoScale2)
	}
	if a := NewAlg3(rng.New(1), eps, delta, c); math.Abs(a.queryScale-c*delta/eps2) > 1e-12 {
		t.Errorf("Alg3 query scale %v", a.queryScale)
	}
	// Alg4: eps1 = eps/4, eps2 = 3eps/4.
	if a := NewAlg4(rng.New(1), eps, delta, c); math.Abs(a.queryScale-delta/(0.75*eps)) > 1e-12 {
		t.Errorf("Alg4 query scale %v", a.queryScale)
	}
	if a := NewAlg6(rng.New(1), eps, delta); math.Abs(a.queryScale-delta/eps2) > 1e-12 {
		t.Errorf("Alg6 query scale %v", a.queryScale)
	}
	a7 := NewAlg7(rng.New(1), Alg7Config{Eps1: 0.1, Eps2: 0.3, Delta: delta, C: c})
	if math.Abs(a7.queryScale-2*c*delta/0.3) > 1e-12 {
		t.Errorf("Alg7 general query scale %v", a7.queryScale)
	}
	a7m := NewAlg7(rng.New(1), Alg7Config{Eps1: 0.1, Eps2: 0.3, Delta: delta, C: c, Monotonic: true})
	if math.Abs(a7m.queryScale-c*delta/0.3) > 1e-12 {
		t.Errorf("Alg7 monotonic query scale %v", a7m.queryScale)
	}
	a7n := NewAlg7(rng.New(1), Alg7Config{Eps1: 0.1, Eps2: 0.2, Eps3: 0.1, Delta: delta, C: c})
	if math.Abs(a7n.answerScale-c*delta/0.1) > 1e-12 {
		t.Errorf("Alg7 answer scale %v", a7n.answerScale)
	}
	if a7.answerScale != 0 {
		t.Errorf("Alg7 eps3=0 should disable numeric answers")
	}
}

// Alg2 resamples ρ after each positive outcome; Alg1 never does.
func TestRhoResampling(t *testing.T) {
	a2 := NewAlg2(rng.New(107), 1.0, 1.0, 10)
	before := a2.rho
	changed := false
	for i := 0; i < 10; i++ {
		ans, _ := a2.Next(1e9, 0)
		if ans.Above && a2.rho != before {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("Alg2 never resampled rho after a positive outcome")
	}
	a1 := NewAlg1(rng.New(107), 1.0, 1.0, 10)
	before = a1.rho
	for i := 0; i < 9; i++ {
		a1.Next(1e9, 0)
	}
	if a1.rho != before {
		t.Error("Alg1 resampled rho")
	}
}

func TestRunThresholdHandling(t *testing.T) {
	// Per-query thresholds: query 0 far above its threshold, query 1 far below.
	alg := NewAlg1(rng.New(108), 1.0, 1.0, 10)
	out := Run(alg, []float64{0, 0}, []float64{-1e9, 1e9})
	if !out[0].Above || out[1].Above {
		t.Errorf("per-query thresholds misapplied: %v", out)
	}
	// Mismatched threshold slice panics.
	defer func() {
		if recover() == nil {
			t.Error("Run with bad thresholds did not panic")
		}
	}()
	Run(NewAlg1(rng.New(1), 1, 1, 1), []float64{1, 2, 3}, []float64{0, 0})
}

func TestAnswerString(t *testing.T) {
	cases := []struct {
		a    Answer
		want string
	}{
		{Answer{}, "⊥"},
		{Answer{Above: true}, "⊤"},
		{Answer{Above: true, Numeric: true, Value: 2.5}, "2.5"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	src := rng.New(1)
	cases := map[string]func(){
		"nil source":     func() { NewAlg1(nil, 1, 1, 1) },
		"zero epsilon":   func() { NewAlg1(src, 0, 1, 1) },
		"neg epsilon":    func() { NewAlg2(src, -1, 1, 1) },
		"zero delta":     func() { NewAlg3(src, 1, 0, 1) },
		"zero cutoff":    func() { NewAlg4(src, 1, 1, 0) },
		"neg cutoff":     func() { NewAlg1(src, 1, 1, -2) },
		"alg5 bad eps":   func() { NewAlg5(src, 0, 1) },
		"alg6 bad delta": func() { NewAlg6(src, 1, -1) },
		"alg7 eps1":      func() { NewAlg7(src, Alg7Config{Eps2: 1, Delta: 1, C: 1}) },
		"alg7 eps2":      func() { NewAlg7(src, Alg7Config{Eps1: 1, Delta: 1, C: 1}) },
		"alg7 eps3 neg":  func() { NewAlg7(src, Alg7Config{Eps1: 1, Eps2: 1, Eps3: -1, Delta: 1, C: 1}) },
		"alg7 delta":     func() { NewAlg7(src, Alg7Config{Eps1: 1, Eps2: 1, C: 1}) },
		"alg7 cutoff":    func() { NewAlg7(src, Alg7Config{Eps1: 1, Eps2: 1, Delta: 1}) },
		"alg7 nil src":   func() { NewAlg7(nil, Alg7Config{Eps1: 1, Eps2: 1, Delta: 1, C: 1}) },
		"gptt eps1":      func() { NewGPTT(src, 0, 1, 1) },
		"gptt eps2":      func() { NewGPTT(src, 1, 0, 1) },
		"gptt delta":     func() { NewGPTT(src, 1, 1, 0) },
		"gptt nil":       func() { NewGPTT(nil, 1, 1, 1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: for any (seeded) variant and any query stream, the number of
// positive outcomes never exceeds c for cutoff algorithms, and answers
// after Halted() are refused.
func TestQuickCutoffInvariant(t *testing.T) {
	f := func(seed uint64, raw []int8, cRaw uint8) bool {
		c := int(cRaw%5) + 1
		queries := make([]float64, len(raw))
		for i, v := range raw {
			queries[i] = float64(v)
		}
		for name, build := range builders(0.8, 1.0, c) {
			alg := build(rng.New(seed))
			positives := 0
			for _, q := range queries {
				ans, ok := alg.Next(q, 0)
				if !ok {
					break
				}
				if ans.Above {
					positives++
				}
			}
			if hasCutoff(name) && positives > c {
				return false
			}
			if alg.Halted() {
				if _, ok := alg.Next(100, 0); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Statistical sanity: Alg1 with a borderline query should produce ⊤ about
// half the time (symmetric noise around a zero margin).
func TestAlg1BorderlineProbability(t *testing.T) {
	src := rng.New(109)
	const trials = 20000
	above := 0
	for i := 0; i < trials; i++ {
		alg := NewAlg1(src.Split(), 1.0, 1.0, 1)
		ans, _ := alg.Next(0, 0)
		if ans.Above {
			above++
		}
	}
	frac := float64(above) / trials
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("borderline positive fraction %v, want ~0.5", frac)
	}
}

// Analytic oracle: the probability that a single query is reported above
// the threshold is exactly Pr[ν − ρ ≥ T − q] = 1 − LaplaceDiffCDF(T − q)
// with the algorithm's two noise scales. This pins the implemented
// comparison (noise directions, scale wiring) to the closed form.
func TestSingleQueryPositiveProbabilityMatchesClosedForm(t *testing.T) {
	const eps, delta = 0.8, 1.0
	const c = 3
	const trials = 60000
	cases := []struct {
		name   string
		margin float64 // q − T
		rhoB   float64
		nuB    float64
		build  func(src *rng.Source) Algorithm
	}{
		{
			name: "alg1", margin: 2.5,
			rhoB: delta / (eps / 2), nuB: 2 * c * delta / (eps / 2),
			build: func(src *rng.Source) Algorithm { return NewAlg1(src, eps, delta, c) },
		},
		{
			name: "alg7-monotonic", margin: -1.5,
			rhoB: delta / 0.3, nuB: c * delta / 0.5,
			build: func(src *rng.Source) Algorithm {
				return NewAlg7(src, Alg7Config{Eps1: 0.3, Eps2: 0.5, Delta: delta, C: c, Monotonic: true})
			},
		},
		{
			name: "alg6", margin: 0.7,
			rhoB: delta / (eps / 2), nuB: delta / (eps / 2),
			build: func(src *rng.Source) Algorithm { return NewAlg6(src, eps, delta) },
		},
	}
	master := rng.New(606)
	for _, cse := range cases {
		above := 0
		for i := 0; i < trials; i++ {
			alg := cse.build(master.Split())
			ans, _ := alg.Next(cse.margin, 0)
			if ans.Above {
				above++
			}
		}
		got := float64(above) / trials
		want := 1 - rng.LaplaceDiffCDF(-cse.margin, cse.nuB, cse.rhoB)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: empirical Pr[⊤] = %v, closed form %v", cse.name, got, want)
		}
	}
}

func TestAlg7Remaining(t *testing.T) {
	alg := NewAlg7(rng.New(110), Alg7Config{Eps1: 1, Eps2: 1, Delta: 1, C: 3})
	if alg.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", alg.Remaining())
	}
	alg.Next(1e9, 0)
	if alg.Remaining() != 2 {
		t.Fatalf("Remaining after one positive = %d, want 2", alg.Remaining())
	}
}
