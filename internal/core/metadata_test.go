package core

import "testing"

func TestVariantMetadataMirrorsFigure2(t *testing.T) {
	// Row-by-row checks against the published table.
	m1 := VariantMetadata(VariantAlg1)
	if !m1.DP || m1.PrivacyProperty != "ε-DP" || m1.Eps1Fraction != 0.5 {
		t.Errorf("Alg1 metadata wrong: %+v", m1)
	}
	m2 := VariantMetadata(VariantAlg2)
	if !m2.DP || !m2.ResetsRho || m2.ThresholdNoiseScale != "cΔ/ε1" {
		t.Errorf("Alg2 metadata wrong: %+v", m2)
	}
	m3 := VariantMetadata(VariantAlg3)
	if m3.DP || !m3.OutputsNumeric || m3.PrivacyProperty != "∞-DP" {
		t.Errorf("Alg3 metadata wrong: %+v", m3)
	}
	m4 := VariantMetadata(VariantAlg4)
	if m4.DP || m4.Eps1Fraction != 0.25 || m4.QueryNoiseScale != "Δ/ε2" {
		t.Errorf("Alg4 metadata wrong: %+v", m4)
	}
	m5 := VariantMetadata(VariantAlg5)
	if m5.DP || !m5.UnboundedPositives || m5.QueryNoiseScale != "0" {
		t.Errorf("Alg5 metadata wrong: %+v", m5)
	}
	m6 := VariantMetadata(VariantAlg6)
	if m6.DP || !m6.UnboundedPositives || m6.QueryNoiseScale != "Δ/ε2" {
		t.Errorf("Alg6 metadata wrong: %+v", m6)
	}
}

func TestVariantTableConsistency(t *testing.T) {
	vs := AllVariants()
	if len(vs) != 6 {
		t.Fatalf("AllVariants returned %d entries", len(vs))
	}
	// Exactly two variants are ε-DP; exactly one resets ρ; exactly one
	// leaks numeric answers; exactly two lack a cutoff.
	var dp, resets, numeric, unbounded int
	for _, v := range vs {
		m := VariantMetadata(v)
		if m.Variant != v {
			t.Errorf("metadata variant mismatch for %v", v)
		}
		if m.Name == "" || m.Source == "" {
			t.Errorf("%v: missing name/source", v)
		}
		if m.DP {
			dp++
		}
		if m.ResetsRho {
			resets++
		}
		if m.OutputsNumeric {
			numeric++
		}
		if m.UnboundedPositives {
			unbounded++
		}
	}
	if dp != 2 || resets != 1 || numeric != 1 || unbounded != 2 {
		t.Errorf("table counts dp=%d resets=%d numeric=%d unbounded=%d", dp, resets, numeric, unbounded)
	}
}

func TestVariantMetadataPanics(t *testing.T) {
	for _, v := range []Variant{0, 7, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("VariantMetadata(%d) did not panic", v)
				}
			}()
			VariantMetadata(v)
		}()
	}
}
