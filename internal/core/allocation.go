package core

import (
	"fmt"
	"math"
)

// Ratio enumerates the ε₁:ε₂ privacy-budget allocations studied in §4.2 and
// evaluated in Figure 4. An allocation 1:k gives the threshold ε₁ = ε/(1+k)
// and the queries ε₂ = kε/(1+k).
type Ratio int

const (
	// RatioOneOne is the conventional 1:1 split used by most prior
	// variants "without a clear justification" (§4.2).
	RatioOneOne Ratio = iota
	// RatioOneThree is the 1:3 split of Lee and Clifton (Algorithm 4).
	RatioOneThree
	// RatioOneC is the 1:c split, a strong heuristic at large c.
	RatioOneC
	// RatioCubeRoot2C is the paper's variance-minimizing allocation for
	// general queries, ε₁:ε₂ = 1:(2c)^{2/3} (Equation 12).
	RatioCubeRoot2C
	// RatioCubeRootC is the variance-minimizing allocation for monotonic
	// queries, ε₁:ε₂ = 1:c^{2/3} (§4.3).
	RatioCubeRootC
)

// String returns the label used in the paper's plots.
func (r Ratio) String() string {
	switch r {
	case RatioOneOne:
		return "1:1"
	case RatioOneThree:
		return "1:3"
	case RatioOneC:
		return "1:c"
	case RatioCubeRoot2C:
		return "1:(2c)^(2/3)"
	case RatioCubeRootC:
		return "1:c^(2/3)"
	default:
		return fmt.Sprintf("Ratio(%d)", int(r))
	}
}

// Coefficient returns k such that the allocation is ε₁:ε₂ = 1:k for the
// given cutoff c. It panics if c <= 0.
func (r Ratio) Coefficient(c int) float64 {
	checkCutoff(c)
	cf := float64(c)
	switch r {
	case RatioOneOne:
		return 1
	case RatioOneThree:
		return 3
	case RatioOneC:
		return cf
	case RatioCubeRoot2C:
		return math.Pow(2*cf, 2.0/3)
	case RatioCubeRootC:
		return math.Pow(cf, 2.0/3)
	default:
		panic("core: unknown allocation ratio")
	}
}

// Split divides the total budget epsilon into (ε₁, ε₂) according to the
// ratio. The shares always sum to epsilon.
func (r Ratio) Split(epsilon float64, c int) (eps1, eps2 float64) {
	if !(epsilon > 0) {
		panic("core: epsilon must be positive")
	}
	k := r.Coefficient(c)
	eps1 = epsilon / (1 + k)
	return eps1, epsilon - eps1
}

// OptimalRatio returns the variance-minimizing allocation for the query
// class: RatioCubeRootC when monotonic, RatioCubeRoot2C otherwise.
//
// Derivation (§4.2): the comparison error is Lap(Δ/ε₁) − Lap(2cΔ/ε₂) with
// variance 2(Δ/ε₁)² + 2(2cΔ/ε₂)²; minimizing subject to ε₁+ε₂ fixed gives
// ε₁:ε₂ = 1:(2c)^{2/3}.
func OptimalRatio(monotonic bool) Ratio {
	if monotonic {
		return RatioCubeRootC
	}
	return RatioCubeRoot2C
}

// ComparisonVariance returns the variance of the threshold-vs-query
// comparison noise, Var[Lap(Δ/ε₁)] + Var[Lap(mcΔ/ε₂)] with m = 2 (or 1 for
// monotonic queries). The allocation tests verify that the paper's Eq. 12
// split minimizes this quantity.
func ComparisonVariance(eps1, eps2, delta float64, c int, monotonic bool) float64 {
	if !(eps1 > 0) || !(eps2 > 0) || !(delta > 0) {
		panic("core: ComparisonVariance requires positive budgets and sensitivity")
	}
	checkCutoff(c)
	m := 2.0
	if monotonic {
		m = 1.0
	}
	b1 := delta / eps1
	b2 := m * float64(c) * delta / eps2
	return 2*b1*b1 + 2*b2*b2
}
