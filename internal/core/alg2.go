package core

import "github.com/dpgo/svt/internal/rng"

// Alg2 is the SVT of Dwork and Roth's 2014 book (Figure 1, Algorithm 2).
// It satisfies ε-DP but is much less accurate than Alg1 because the
// threshold noise scales with c, an artifact of the design choice to
// resample ρ after every positive outcome.
//
//	1: ε₁ = ε/2, ρ = Lap(cΔ/ε₁)
//	2: ε₂ = ε − ε₁, count = 0
//	3: for each query qᵢ ∈ Q do
//	4:   νᵢ = Lap(2cΔ/ε₁)
//	5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//	6:     output aᵢ = ⊤, ρ = Lap(cΔ/ε₂)
//	7:     count = count + 1, Abort if count ≥ c
//	8:   else
//	9:     output aᵢ = ⊥
//
// (With ε₁ = ε₂ = ε/2 the book's Lap(2cΔ/ε₁) query noise equals Alg1's
// Lap(2cΔ/ε₂); the resampling on Line 6 switches the ρ scale to cΔ/ε₂,
// which is the same number too.)
type Alg2 struct {
	src        *rng.Source
	rho        float64
	rhoScale2  float64 // cΔ/ε₂, used when resampling after a ⊤
	queryScale float64 // 2cΔ/ε₁
	c          int
	count      int
	halted     bool
}

// NewAlg2 prepares the Dwork-Roth book SVT.
func NewAlg2(src *rng.Source, epsilon, delta float64, c int) *Alg2 {
	checkCommon(src, epsilon, delta)
	checkCutoff(c)
	eps1 := epsilon / 2
	eps2 := epsilon - eps1
	cf := float64(c)
	return &Alg2{
		src:        src,
		rho:        src.Laplace(cf * delta / eps1),
		rhoScale2:  cf * delta / eps2,
		queryScale: 2 * cf * delta / eps1,
		c:          c,
	}
}

// Next implements Algorithm.
func (a *Alg2) Next(q, threshold float64) (Answer, bool) {
	if a.halted {
		return Answer{}, false
	}
	nu := a.src.Laplace(a.queryScale)
	if q+nu >= threshold+a.rho {
		a.rho = a.src.Laplace(a.rhoScale2) // Line 6: refresh the noisy threshold
		a.count++
		if a.count >= a.c {
			a.halted = true
		}
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm.
func (a *Alg2) Halted() bool { return a.halted }

// Restore fast-forwards the positive-outcome count to n for crash
// recovery; see Alg7.Restore. It panics unless 0 ≤ n ≤ c.
func (a *Alg2) Restore(n int) {
	if n < 0 || n > a.c {
		panic("core: Alg2.Restore count out of range")
	}
	a.count = n
	a.halted = n >= a.c
}

// Draws returns the source's stream position; see Alg7.Draws.
func (a *Alg2) Draws() uint64 { return a.src.Draws() }

// Skip advances the source by n draws; see rng.Source.Skip.
func (a *Alg2) Skip(n uint64) { a.src.Skip(n) }

// Rho returns the current noisy-threshold offset ρ. Unlike Alg1 and Alg7,
// Alg2 resamples ρ after every positive outcome (Line 6), so the current
// value is not re-derivable by rebuilding from the seed — crash recovery
// must journal it alongside the stream position.
func (a *Alg2) Rho() float64 { return a.rho }

// SetRho overwrites ρ for crash recovery; see Rho.
func (a *Alg2) SetRho(v float64) { a.rho = v }
