package core

import "github.com/dpgo/svt/internal/rng"

// GPTT is the Generalized Private Threshold Testing algorithm from Chen and
// Machanavajjhala ("On the privacy properties of variants on the sparse
// vector technique", 2015), the abstraction the paper dissects in §3.3.
//
// GPTT perturbs the threshold with Lap(Δ/ε₁), each query with Lap(Δ/ε₂),
// and has no cutoff. Setting ε₁ = ε₂ = ε/2 recovers Algorithm 6. GPTT is
// not ε′-DP for any finite ε′ — but the constructive proof of that fact in
// the 2015 paper is itself flawed (Appendix 10.3): its lower bound κ(t)
// on the integrand ratio degrades toward 1 as the construction length t
// grows, so κ(t)^{t/2} need not diverge. The audit package reproduces
// both the non-privacy (via Theorem 7's argument) and the κ(t) → 1 decay
// that invalidates the published proof.
type GPTT struct {
	src        *rng.Source
	rho        float64
	queryScale float64 // Δ/ε₂
}

// NewGPTT prepares a GPTT instance with separate threshold/query budgets.
// The result is not ε-DP for any finite ε; it exists to reproduce the
// paper's analysis.
func NewGPTT(src *rng.Source, eps1, eps2, delta float64) *GPTT {
	if src == nil {
		panic("core: nil random source")
	}
	if !(eps1 > 0) || !(eps2 > 0) {
		panic("core: GPTT requires positive eps1 and eps2")
	}
	if !(delta > 0) {
		panic("core: sensitivity must be positive")
	}
	return &GPTT{
		src:        src,
		rho:        src.Laplace(delta / eps1),
		queryScale: delta / eps2,
	}
}

// Next implements Algorithm. GPTT never halts.
func (g *GPTT) Next(q, threshold float64) (Answer, bool) {
	nu := g.src.Laplace(g.queryScale)
	if q+nu >= threshold+g.rho {
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm; GPTT never halts.
func (g *GPTT) Halted() bool { return false }
