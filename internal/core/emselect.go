package core

import (
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// SelectEM selects up to c distinct indices with the highest scores using c
// rounds of the Exponential Mechanism, the §5 alternative to SVT in the
// non-interactive setting.
//
// Each round spends ε/c and samples index i with probability proportional
// to exp(ε·scores[i] / (2cΔ)) — exp(ε·scores[i] / (cΔ)) when monotonic is
// set, exploiting the one-directional quality changes of counting queries
// (§2). Selected indices are removed from the candidate pool for later
// rounds. The whole selection is ε-DP by sequential composition.
//
// The implementation uses the Gumbel top-c trick: because every round
// spends the same ε/c, sampling c rounds of softmax without replacement is
// distributionally identical to perturbing every score once with
// independent Gumbel(1) noise and taking the c largest (Yellott 1977).
// That turns c passes of O(n) into a single O(n log c) pass, which is what
// makes the paper's AOL-scale sweeps (2.3M candidate queries) tractable.
// The tests cross-check this sampler against the explicit sequential one
// (SelectEMInvCDF).
//
// The returned indices are in selection order (highest perturbed score
// first). If c >= len(scores), every index is returned.
func SelectEM(src *rng.Source, scores []float64, epsilon, delta float64, c int, monotonic bool) []int {
	checkSelect(src, scores, epsilon, delta, c)
	if c > len(scores) {
		c = len(scores)
	}
	coef := emCoefficient(epsilon, delta, c, monotonic)
	// Min-heap of the c largest perturbed scores.
	heap := make([]gumbelEntry, 0, c)
	for i, s := range scores {
		v := coef*s + src.Gumbel(1)
		if len(heap) < c {
			heap = append(heap, gumbelEntry{v: v, idx: i})
			siftUp(heap, len(heap)-1)
		} else if v > heap[0].v {
			heap[0] = gumbelEntry{v: v, idx: i}
			siftDown(heap, 0)
		}
	}
	// Pop ascending, fill the result backwards for descending order.
	selected := make([]int, len(heap))
	for n := len(heap); n > 0; n-- {
		selected[n-1] = heap[0].idx
		heap[0] = heap[n-1]
		heap = heap[:n-1]
		siftDown(heap, 0)
	}
	return selected
}

// gumbelEntry is one perturbed score in the top-c min-heap.
type gumbelEntry struct {
	v   float64
	idx int
}

func siftUp(h []gumbelEntry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].v <= h[i].v {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func siftDown(h []gumbelEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].v < h[smallest].v {
			smallest = l
		}
		if r < len(h) && h[r].v < h[smallest].v {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// SelectEMInvCDF is SelectEM with inverse-CDF sampling over the explicit
// softmax distribution instead of the Gumbel-max trick. Both samplers draw
// from exactly the same distribution; this variant exists for the ablation
// bench and as a cross-check in tests. Normalization happens in log space
// so large ε·q products cannot overflow.
func SelectEMInvCDF(src *rng.Source, scores []float64, epsilon, delta float64, c int, monotonic bool) []int {
	checkSelect(src, scores, epsilon, delta, c)
	if c > len(scores) {
		c = len(scores)
	}
	coef := emCoefficient(epsilon, delta, c, monotonic)
	selected := make([]int, 0, c)
	taken := make([]bool, len(scores))
	logits := make([]float64, 0, len(scores))
	live := make([]int, 0, len(scores))
	for round := 0; round < c; round++ {
		logits = logits[:0]
		live = live[:0]
		maxLogit := math.Inf(-1)
		for i, s := range scores {
			if taken[i] {
				continue
			}
			l := coef * s
			logits = append(logits, l)
			live = append(live, i)
			if l > maxLogit {
				maxLogit = l
			}
		}
		// Softmax via cumulative exp(l - max); binary search the uniform.
		total := 0.0
		for j, l := range logits {
			total += math.Exp(l - maxLogit)
			logits[j] = total // reuse as CDF
		}
		u := src.Float64() * total
		lo, hi := 0, len(logits)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if logits[mid] <= u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		taken[live[lo]] = true
		selected = append(selected, live[lo])
	}
	return selected
}

// emCoefficient returns the exponent multiplier for one EM round with
// per-round budget ε/c: ε/(2cΔ) in general, ε/(cΔ) for monotonic queries.
func emCoefficient(epsilon, delta float64, c int, monotonic bool) float64 {
	denom := 2 * float64(c) * delta
	if monotonic {
		denom = float64(c) * delta
	}
	return epsilon / denom
}

func checkSelect(src *rng.Source, scores []float64, epsilon, delta float64, c int) {
	checkCommon(src, epsilon, delta)
	checkCutoff(c)
	if len(scores) == 0 {
		panic("core: empty score vector")
	}
}
