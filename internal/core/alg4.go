package core

import "github.com/dpgo/svt/internal/rng"

// Alg4 is the SVT of Lee and Clifton 2014 (Figure 1, Algorithm 4), used for
// privately finding top-c frequent itemsets.
//
// Its query noise Lap(Δ/ε₂) does not scale with c, so it only satisfies
// ((1+6c)/4)·ε-DP in general, and ((1+3c)/4)·ε-DP for monotonic counting
// queries — far weaker than the advertised ε-DP once c is large.
//
//	1: ε₁ = ε/4, ρ = Lap(Δ/ε₁)
//	2: ε₂ = ε − ε₁, count = 0
//	3: for each query qᵢ ∈ Q do
//	4:   νᵢ = Lap(Δ/ε₂)
//	5:   if qᵢ(D) + νᵢ ≥ T + ρ then
//	6:     output aᵢ = ⊤
//	7:     count = count + 1, Abort if count ≥ c
//	8:   else
//	9:     output aᵢ = ⊥
type Alg4 struct {
	src        *rng.Source
	rho        float64
	queryScale float64 // Δ/ε₂ with ε₂ = 3ε/4
	c          int
	count      int
	halted     bool
}

// NewAlg4 prepares the Lee-Clifton SVT. The result satisfies only
// ((1+6c)/4)·ε-DP, not ε-DP; it exists to reproduce the paper's analysis.
func NewAlg4(src *rng.Source, epsilon, delta float64, c int) *Alg4 {
	checkCommon(src, epsilon, delta)
	checkCutoff(c)
	eps1 := epsilon / 4
	eps2 := epsilon - eps1
	return &Alg4{
		src:        src,
		rho:        src.Laplace(delta / eps1),
		queryScale: delta / eps2,
		c:          c,
	}
}

// Next implements Algorithm.
func (a *Alg4) Next(q, threshold float64) (Answer, bool) {
	if a.halted {
		return Answer{}, false
	}
	nu := a.src.Laplace(a.queryScale)
	if q+nu >= threshold+a.rho {
		a.count++
		if a.count >= a.c {
			a.halted = true
		}
		return Answer{Above: true}, true
	}
	return Answer{}, true
}

// Halted implements Algorithm.
func (a *Alg4) Halted() bool { return a.halted }
