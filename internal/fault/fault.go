package fault

import (
	"errors"
	"sync"
	"time"

	"github.com/dpgo/svt/store"
)

// Op names a wrapped operation a Rule can apply to.
type Op uint8

const (
	// OpAppend matches Store.Append.
	OpAppend Op = iota
	// OpAppendBatch matches Store.AppendBatch (the store.AppendAll path
	// when the inner store is a BatchAppender).
	OpAppendBatch
	// OpSnapshot matches Store.Snapshot.
	OpSnapshot
	// OpRecover matches Store.Recover.
	OpRecover
	// OpRead matches Conn.Read.
	OpRead
	// OpWrite matches Conn.Write.
	OpWrite

	opCount
)

var opNames = [opCount]string{"append", "appendBatch", "snapshot", "recover", "read", "write"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// ErrInjected is the default injected error when a Rule fires without an
// explicit Err. Chaos tests can errors.Is against it.
var ErrInjected = errors.New("fault: injected failure")

// errTorn is the default error for a Rule with a TearAfter byte cutoff.
var errTorn = errors.New("fault: connection torn mid-frame")

// Rule is one entry in a fault script. It applies to calls of Op whose
// 1-based per-op index n satisfies n > After and, when Count > 0,
// n <= After+Count — i.e. "skip the first After calls, then affect the
// next Count (or every later call when Count is zero)". Rules are
// scanned in order; the first match wins.
type Rule struct {
	Op    Op
	After uint64 // arm after this many matching calls pass through clean
	Count uint64 // how many calls to affect once armed; 0 = all

	// Prob, when in (0,1), gates a matched call on a seeded coin flip.
	// 0 (or anything >= 1) means the rule always fires inside its window.
	Prob float64

	// Err is returned without invoking the wrapped operation. When nil
	// the fault still fires (latency, stall, tear) but the operation
	// proceeds afterwards — except for tears, which sever the conn with
	// a default error.
	Err error

	// Latency delays the operation before it proceeds or fails.
	Latency time.Duration

	// Stall blocks the operation until Schedule.Release is called. After
	// release the call returns Err when set, otherwise proceeds.
	Stall bool

	// Tear, for OpRead/OpWrite on a Conn, forwards only the first
	// TearAfter bytes of the matched call, then severs the connection:
	// the call (and every later one) fails with a torn-connection error
	// (Err when set). A torn write is how a frame gets truncated
	// mid-flight; TearAfter 0 severs before any byte moves.
	Tear      bool
	TearAfter int
}

// Schedule is a seeded, replayable fault script shared by any number of
// Store and Conn wrappers. The zero value is unusable; use NewSchedule.
type Schedule struct {
	mu       sync.Mutex
	rules    []Rule
	calls    [opCount]uint64
	injected [opCount]uint64
	rng      uint64
	release  chan struct{}
	released bool
}

// NewSchedule builds a schedule from an ordered rule script. seed feeds
// the splitmix64 stream behind probabilistic rules; schedules with only
// count-windowed rules ignore it.
func NewSchedule(seed uint64, rules ...Rule) *Schedule {
	return &Schedule{
		rules:   append([]Rule(nil), rules...),
		rng:     seed,
		release: make(chan struct{}),
	}
}

// Release unsticks every stalled operation, current and future. Safe to
// call more than once; chaos tests should defer it so stalled store
// goroutines can drain at cleanup.
func (s *Schedule) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.released {
		s.released = true
		close(s.release)
	}
}

// Calls reports how many times op has been invoked through the wrappers.
func (s *Schedule) Calls(op Op) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[op]
}

// Injected reports how many op invocations had a fault applied.
func (s *Schedule) Injected(op Op) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected[op]
}

// coin advances the seeded splitmix64 stream and flips with probability p.
// Caller holds s.mu.
func (s *Schedule) coin(p float64) bool {
	s.rng += 0x9e3779b97f4a7c15
	z := s.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < p
}

// match records one call of op and returns the rule that applies, if any.
func (s *Schedule) match(op Op) (Rule, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[op]++
	n := s.calls[op]
	for _, r := range s.rules {
		if r.Op != op || n <= r.After {
			continue
		}
		if r.Count > 0 && n > r.After+r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !s.coin(r.Prob) {
			continue
		}
		s.injected[op]++
		return r, true
	}
	return Rule{}, false
}

// wait blocks until Release is called.
func (s *Schedule) wait() { <-s.release }

// apply runs the non-tear effects of a matched rule: latency, stall,
// error. It returns (nil, false) when the wrapped op should proceed.
func (s *Schedule) apply(r Rule) (err error, done bool) {
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
	if r.Stall {
		s.wait()
	}
	if r.Err != nil {
		return r.Err, true
	}
	return nil, false
}

// step is the common fault gate for store operations.
func (s *Schedule) step(op Op) error {
	r, ok := s.match(op)
	if !ok {
		return nil
	}
	err, _ := s.apply(r)
	return err
}

// Store wraps an inner store.SessionStore with scheduled faults. Build
// one with Wrap, which composes the optional capability set to mirror
// the inner store's.
type Store struct {
	inner store.SessionStore
	sched *Schedule
}

// Wrap returns a faulting view of inner driven by sched. The returned
// store advertises BatchAppender and Rotator only when inner does, so
// server capability probes see the same shape they would unwrapped.
func Wrap(inner store.SessionStore, sched *Schedule) store.SessionStore {
	s := &Store{inner: inner, sched: sched}
	_, hasBatch := inner.(store.BatchAppender)
	_, hasRot := inner.(store.Rotator)
	switch {
	case hasBatch && hasRot:
		return &batchRotatorStore{s}
	case hasBatch:
		return &batchStore{s}
	case hasRot:
		return &rotatorStore{s}
	default:
		return s
	}
}

// Append forwards to the inner store unless an OpAppend rule fires.
func (s *Store) Append(ev store.Event) error {
	if err := s.sched.step(OpAppend); err != nil {
		return err
	}
	return s.inner.Append(ev)
}

// Snapshot forwards to the inner store unless an OpSnapshot rule fires.
func (s *Store) Snapshot(evs []store.Event) error {
	if err := s.sched.step(OpSnapshot); err != nil {
		return err
	}
	return s.inner.Snapshot(evs)
}

// Recover forwards to the inner store unless an OpRecover rule fires.
func (s *Store) Recover() ([]store.Event, error) {
	if err := s.sched.step(OpRecover); err != nil {
		return nil, err
	}
	return s.inner.Recover()
}

// Close always forwards: a chaos test must be able to shut the real
// store down even mid-script.
func (s *Store) Close() error { return s.inner.Close() }

// appendBatch applies OpAppendBatch rules, then forwards to the inner
// BatchAppender. Only reachable through the batch-capable wrappers.
func (s *Store) appendBatch(evs []store.Event) error {
	if err := s.sched.step(OpAppendBatch); err != nil {
		return err
	}
	return s.inner.(store.BatchAppender).AppendBatch(evs)
}

// rotate forwards rotation untouched: rotation is the snapshot commit
// protocol, and tearing it is the inner store's crash tests' job.
func (s *Store) rotate() (store.Rotation, error) {
	return s.inner.(store.Rotator).Rotate()
}

// Health forwards the inner report, or synthesizes a healthy one naming
// the wrapper when the inner store is not a Healther.
func (s *Store) Health() store.Health {
	if h, ok := s.inner.(store.Healther); ok {
		return h.Health()
	}
	return store.Health{Backend: "fault"}
}

// SetInstrumenter forwards when the inner store supports sampling;
// otherwise the instrumenter is dropped (documented degradation).
func (s *Store) SetInstrumenter(i store.Instrumenter) {
	if in, ok := s.inner.(store.Instrumented); ok {
		in.SetInstrumenter(i)
	}
}

// The capability-composed wrapper shapes Wrap hands out.
type batchStore struct{ *Store }

func (b *batchStore) AppendBatch(evs []store.Event) error { return b.appendBatch(evs) }

type rotatorStore struct{ *Store }

func (r *rotatorStore) Rotate() (store.Rotation, error) { return r.rotate() }

type batchRotatorStore struct{ *Store }

func (x *batchRotatorStore) AppendBatch(evs []store.Event) error { return x.appendBatch(evs) }
func (x *batchRotatorStore) Rotate() (store.Rotation, error)     { return x.rotate() }

var (
	_ store.SessionStore  = (*Store)(nil)
	_ store.Healther      = (*Store)(nil)
	_ store.Instrumented  = (*Store)(nil)
	_ store.BatchAppender = (*batchStore)(nil)
	_ store.Rotator       = (*rotatorStore)(nil)
	_ store.BatchAppender = (*batchRotatorStore)(nil)
	_ store.Rotator       = (*batchRotatorStore)(nil)
)
