package fault

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
)

func TestScheduleWindows(t *testing.T) {
	boom := errors.New("boom")
	s := NewSchedule(1,
		Rule{Op: OpAppend, After: 2, Count: 3, Err: boom},
	)
	st := Wrap(store.NewMem(), s)
	for i := 1; i <= 8; i++ {
		err := st.Append(store.Event{Kind: 1, ID: "s", Data: []byte{byte(i)}})
		inWindow := i > 2 && i <= 5
		if inWindow && !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
		if !inWindow && err != nil {
			t.Fatalf("call %d: err = %v, want nil", i, err)
		}
	}
	if got := s.Calls(OpAppend); got != 8 {
		t.Fatalf("Calls = %d, want 8", got)
	}
	if got := s.Injected(OpAppend); got != 3 {
		t.Fatalf("Injected = %d, want 3", got)
	}
}

func TestScheduleSeededCoinReplays(t *testing.T) {
	run := func(seed uint64) []bool {
		s := NewSchedule(seed, Rule{Op: OpAppend, Prob: 0.5, Err: ErrInjected})
		st := Wrap(store.NewMem(), s)
		out := make([]bool, 64)
		for i := range out {
			out[i] = st.Append(store.Event{Kind: 1, ID: "s"}) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 64-call pattern")
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	s := NewSchedule(1, Rule{Op: OpAppend, After: 1, Stall: true})
	st := Wrap(store.NewMem(), s)
	if err := st.Append(store.Event{Kind: 1, ID: "s"}); err != nil {
		t.Fatalf("first append: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- st.Append(store.Event{Kind: 1, ID: "s"}) }()
	select {
	case err := <-done:
		t.Fatalf("stalled append returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released append: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append still stuck after Release")
	}
}

// TestWrapMirrorsCapabilities pins the capability-forwarding contract:
// the wrapper advertises exactly what the inner store does.
func TestWrapMirrorsCapabilities(t *testing.T) {
	s := NewSchedule(1)

	mem := Wrap(store.NewMem(), s) // Mem: batch + health + instrumented, no rotator
	if _, ok := mem.(store.BatchAppender); !ok {
		t.Fatal("wrapped Mem lost BatchAppender")
	}
	if _, ok := mem.(store.Rotator); ok {
		t.Fatal("wrapped Mem gained Rotator")
	}
	if h, ok := mem.(store.Healther); !ok || h.Health().Backend != "mem" {
		t.Fatalf("wrapped Mem health not forwarded: %v", ok)
	}

	wal, err := store.NewWAL(store.WALConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	fw := Wrap(wal, s)
	if _, ok := fw.(store.Rotator); !ok {
		t.Fatal("wrapped WAL lost Rotator")
	}
	if _, ok := fw.(store.BatchAppender); !ok {
		t.Fatal("wrapped WAL lost BatchAppender")
	}

	bare := Wrap(bareStore{}, s) // core-only inner: nothing extra advertised
	if _, ok := bare.(store.BatchAppender); ok {
		t.Fatal("bare wrapper gained BatchAppender")
	}
	if _, ok := bare.(store.Rotator); ok {
		t.Fatal("bare wrapper gained Rotator")
	}
	if h := bare.(store.Healther).Health(); h.Backend != "fault" {
		t.Fatalf("bare health backend = %q, want synthetic fault", h.Backend)
	}
}

// bareStore implements only the core SessionStore surface.
type bareStore struct{}

func (bareStore) Append(store.Event) error        { return nil }
func (bareStore) Snapshot([]store.Event) error    { return nil }
func (bareStore) Recover() ([]store.Event, error) { return nil, nil }
func (bareStore) Close() error                    { return nil }

func TestBatchPathFaults(t *testing.T) {
	boom := errors.New("batch boom")
	s := NewSchedule(1, Rule{Op: OpAppendBatch, Err: boom})
	st := Wrap(store.NewMem(), s)
	evs := []store.Event{{Kind: 1, ID: "a"}, {Kind: 1, ID: "b"}}
	if err := store.AppendAll(st, evs); !errors.Is(err, boom) {
		t.Fatalf("AppendAll through batch wrapper = %v, want boom", err)
	}
	if got := s.Calls(OpAppendBatch); got != 1 {
		t.Fatalf("batch calls = %d, want 1", got)
	}
}

func TestConnTearMidFrame(t *testing.T) {
	client, srv := net.Pipe()
	defer srv.Close()
	s := NewSchedule(1, Rule{Op: OpWrite, After: 1, Tear: true, TearAfter: 3})
	fc := WrapConn(client, s)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := srv.Read(buf)
		got <- buf[:n]
	}()

	if n, err := fc.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("clean write = (%d, %v)", n, err)
	}
	if b := <-got; string(b) != "hello" {
		t.Fatalf("peer read %q, want hello", b)
	}

	go func() {
		buf := make([]byte, 16)
		n, _ := srv.Read(buf)
		got <- buf[:n]
	}()
	n, err := fc.Write([]byte("world!"))
	if n != 3 || !errors.Is(err, errTorn) {
		t.Fatalf("torn write = (%d, %v), want (3, errTorn)", n, err)
	}
	if b := <-got; string(b) != "wor" {
		t.Fatalf("peer read %q after tear, want wor (the 3-byte prefix)", b)
	}
	// Severed: everything after the tear fails the same way.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, errTorn) {
		t.Fatalf("post-tear write = %v, want errTorn", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, errTorn) {
		t.Fatalf("post-tear read = %v, want errTorn", err)
	}
}

func TestConnInjectedReadError(t *testing.T) {
	boom := errors.New("read boom")
	client, srv := net.Pipe()
	defer srv.Close()
	s := NewSchedule(1, Rule{Op: OpRead, Err: boom})
	fc := WrapConn(client, s)
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, boom) {
		t.Fatalf("read = %v, want boom", err)
	}
}
