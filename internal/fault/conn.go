package fault

import (
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with scheduled read/write faults: added latency,
// stalls (until Schedule.Release), injected errors, and tears that sever
// the connection after forwarding a prefix of the buffer — the torn-
// mid-frame case a wire peer sees when its counterpart dies between two
// TCP segments. Once severed (by a tear or an injected error), every
// later Read and Write fails with the same error and the underlying
// connection is closed, exactly like a broken socket.
type Conn struct {
	net.Conn
	sched *Schedule

	mu     sync.Mutex
	broken error
}

// WrapConn returns a faulting view of c driven by sched.
func WrapConn(c net.Conn, sched *Schedule) *Conn {
	return &Conn{Conn: c, sched: sched}
}

// sever marks the connection broken and closes the inner conn so the
// peer observes the break too. The first severing error sticks.
func (c *Conn) sever(err error) error {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
		_ = c.Conn.Close()
	} else {
		err = c.broken
	}
	c.mu.Unlock()
	return err
}

func (c *Conn) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// noteErr records a passthrough I/O error so later calls fail the same
// way without touching the closed socket again.
func (c *Conn) noteErr(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	c.mu.Unlock()
}

// faultIO is the shared Read/Write gate. It returns tear >= 0 when the
// matched rule severs the connection after forwarding tear bytes (with
// tearErr as the severing error), or err != nil for an immediate
// injected failure. tear < 0 with nil err means proceed untouched.
func (c *Conn) faultIO(op Op, p []byte) (tear int, tearErr, err error) {
	if err := c.brokenErr(); err != nil {
		return -1, nil, err
	}
	r, ok := c.sched.match(op)
	if !ok {
		return -1, nil, nil
	}
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
	if r.Stall {
		c.sched.wait()
	}
	if r.Tear {
		cut := r.TearAfter
		if cut > len(p) {
			cut = len(p)
		}
		terr := r.Err
		if terr == nil {
			terr = errTorn
		}
		return cut, terr, nil
	}
	if r.Err != nil {
		return -1, nil, c.sever(r.Err)
	}
	return -1, nil, nil
}

// Read forwards to the inner connection unless an OpRead rule fires. A
// tear delivers only the first TearAfter bytes, then severs.
func (c *Conn) Read(p []byte) (int, error) {
	cut, tearErr, err := c.faultIO(OpRead, p)
	if err != nil {
		return 0, err
	}
	if cut >= 0 {
		n := 0
		if cut > 0 {
			n, err = c.Conn.Read(p[:cut])
			if err != nil {
				return n, c.sever(err)
			}
		}
		return n, c.sever(tearErr)
	}
	n, err := c.Conn.Read(p)
	if err != nil {
		c.noteErr(err)
	}
	return n, err
}

// Write forwards to the inner connection unless an OpWrite rule fires. A
// tear pushes only the first TearAfter bytes to the wire, then severs —
// the peer sees a truncated frame followed by the connection closing.
func (c *Conn) Write(p []byte) (int, error) {
	cut, tearErr, err := c.faultIO(OpWrite, p)
	if err != nil {
		return 0, err
	}
	if cut >= 0 {
		n := 0
		if cut > 0 {
			n, err = c.Conn.Write(p[:cut])
			if err != nil {
				return n, c.sever(err)
			}
		}
		return n, c.sever(tearErr)
	}
	n, err := c.Conn.Write(p)
	if err != nil {
		c.noteErr(err)
	}
	return n, err
}

// Close closes the inner connection.
func (c *Conn) Close() error { return c.Conn.Close() }

var _ net.Conn = (*Conn)(nil)
