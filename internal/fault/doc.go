// Package fault is a deterministic fault-injection harness for chaos
// tests: a Store that wraps any store.SessionStore and a Conn that wraps
// any net.Conn, both driven by a scripted Schedule of Rules.
//
// # Determinism rules
//
// Chaos tests must be replayable, so a Schedule never consults the wall
// clock to decide whether a fault fires. Every Rule is indexed by the
// per-operation call count (fail-after-N, fail-for-K), and probabilistic
// rules draw from a splitmix64 stream seeded at construction — the same
// seed and the same call order replay the same faults. Two corollaries:
//
//   - Probabilistic rules are only reproducible when the matched
//     operation is invoked from a single goroutine (call order is the
//     input to the coin). Count-windowed rules (After/Count) are
//     reproducible under any interleaving of OTHER ops, because each op
//     kind keeps its own counter.
//   - Latency and stalls delay an operation but never gate on time:
//     a Stall blocks until Schedule.Release, not until a deadline, so a
//     test decides exactly when the world unsticks. This also keeps the
//     package clean under the hotclock analyzer — no time.Now anywhere.
//
// # Capability forwarding
//
// Servers probe optional store capabilities (store.BatchAppender,
// store.Rotator, store.Healther, store.Instrumented) by type assertion,
// so a wrapper that unconditionally implemented them all would
// mis-advertise. Wrap therefore composes the returned value from the
// inner store's actual capability set: AppendBatch and Rotate are only
// present when the inner store has them (store.AppendAll falls back to
// sequential Appends — each of which is faultable — otherwise), while
// Health and SetInstrumenter always forward when possible and degrade to
// a synthetic healthy report / a dropped instrumenter when the inner
// store lacks them.
package fault
