// Package rng provides the deterministic pseudo-random substrate used by
// every mechanism and experiment in this repository.
//
// The package implements its own generator (xoshiro256++ seeded through
// SplitMix64) instead of relying on math/rand so that
//
//   - experiment runs are reproducible across Go versions (math/rand's
//     stream is not covered by the Go 1 compatibility promise),
//   - independent sub-streams can be split off cheaply for parallel trials,
//   - distribution samplers (Laplace, Gumbel, Zipf, ...) can be audited in
//     one place; correct noise generation is the foundation of every
//     differential-privacy guarantee built on top.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random source.
//
// It implements xoshiro256++ by Blackman and Vigna (public domain), which
// has a 2^256-1 period and passes BigCrush. The zero value is not a valid
// source; use New or NewFromState.
//
// A Source counts every Uint64 it produces (Draws). Together with Skip this
// makes a seeded stream resumable at an exact position: a crash-recovery
// layer journals Draws, rebuilds the Source from the same seed, and skips
// forward so the continuation is bit-identical to the uninterrupted stream
// while never re-emitting a pre-crash draw.
type Source struct {
	s     [4]uint64
	draws uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full generator state, as recommended by
// the xoshiro authors, so that similar seeds yield unrelated streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source deterministically derived from seed.
// Distinct seeds produce statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// A state of all zeros is the one forbidden xoshiro state; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway so the
	// invariant is local and obvious.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// NewFromState returns a Source with the exact internal state s.
// At least one word of s must be non-zero.
func NewFromState(s [4]uint64) *Source {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("rng: all-zero xoshiro256++ state")
	}
	return &Source{s: s}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	r.draws++
	return result
}

// Draws returns how many Uint64 values the source has produced since
// construction. Every higher-level sampler (Float64, Laplace, Intn, ...)
// consumes the stream exclusively through Uint64, so Draws is an exact
// stream position regardless of which samplers ran.
func (r *Source) Draws() uint64 { return r.draws }

// Skip advances the stream by n draws, discarding their outputs. After
// Skip(n) the source produces exactly the values a twin source would after
// n extra Uint64 calls. Crash recovery uses it to fast-forward a re-seeded
// source past every pre-crash draw, so recovered mechanisms continue the
// stream instead of replaying it.
func (r *Source) Skip(n uint64) {
	for ; n > 0; n-- {
		r.Uint64()
	}
}

// Split returns a new Source whose stream is statistically independent of
// the receiver's future output. It consumes one value from the receiver and
// expands it through SplitMix64, so repeated Split calls yield distinct,
// uncorrelated children. Split is how experiments give each trial its own
// stream while remaining reproducible from a single master seed.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
// It uses the top 53 bits so every representable value in [0,1) with a
// 2^-53 grid is equally likely.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0, 1).
// Samplers that take a logarithm of the variate use this to avoid ln(0).
func (r *Source) Float64Open() float64 {
	for {
		f := (float64(r.Uint64()>>11) + 0.5) / (1 << 53)
		if f > 0 && f < 1 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	t2 := aLo*bHi + t&mask
	hi = aHi*bHi + t>>32 + t2>>32
	lo = a * b
	return hi, lo
}

// Shuffle pseudo-randomizes the order of n elements using the Fisher-Yates
// algorithm; swap exchanges elements i and j. It panics if n < 0.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with negative n")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method. It is used only by diagnostic statistics, never by mechanisms.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
