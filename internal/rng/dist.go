package rng

import "math"

// Laplace returns a variate from the Laplace (double-exponential)
// distribution with mean 0 and scale b: density (1/2b)·exp(-|x|/b).
//
// The Laplace distribution is the noise primitive of every ε-DP mechanism
// in this repository; its key property, used throughout the paper's proofs,
// is Pr[X = x] ≤ e^{Δ/b} · Pr[X = x + Δ].
//
// Laplace panics if b <= 0 or b is not finite.
func (r *Source) Laplace(b float64) float64 {
	if !(b > 0) || math.IsInf(b, 0) {
		panic("rng: Laplace scale must be positive and finite")
	}
	// Inverse-CDF: with u uniform on (0,1), the variate is
	//   b·ln(2u)      for u < 1/2   (negative tail)
	//   -b·ln(2(1-u)) for u ≥ 1/2   (positive tail)
	// Float64Open keeps u strictly inside (0,1) so the logs are finite.
	u := r.Float64Open()
	if u < 0.5 {
		return b * math.Log(2*u)
	}
	return -b * math.Log(2*(1-u))
}

// Exponential returns a variate from the exponential distribution with
// mean m (rate 1/m). It panics if m <= 0.
func (r *Source) Exponential(m float64) float64 {
	if !(m > 0) {
		panic("rng: Exponential mean must be positive")
	}
	return -m * math.Log(r.Float64Open())
}

// Gumbel returns a variate from the standard Gumbel distribution scaled by
// beta: CDF exp(-exp(-x/beta)). Adding independent Gumbel(beta) noise to
// scores and taking the argmax samples exactly from the softmax with
// temperature beta — the "Gumbel-max trick" used by the exponential
// mechanism implementation. It panics if beta <= 0.
func (r *Source) Gumbel(beta float64) float64 {
	if !(beta > 0) {
		panic("rng: Gumbel scale must be positive")
	}
	return -beta * math.Log(-math.Log(r.Float64Open()))
}

// Geometric returns a variate from the geometric distribution on
// {0, 1, 2, ...} with success probability p: Pr[X = k] = (1-p)^k·p.
// It is the discrete analogue of the exponential distribution and is used
// by the discrete-noise tests. It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if !(p > 0 && p <= 1) {
		panic("rng: Geometric probability must be in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln U / ln(1-p)) is geometric on {0,1,...}.
	return int(math.Log(r.Float64Open()) / math.Log1p(-p))
}

// LaplaceCDF returns the cumulative distribution function of the
// Laplace(0, b) distribution evaluated at x. The audit package uses it to
// compute the closed-form probabilities appearing in the paper's
// counterexample integrals (Theorems 3, 6, 7 and Appendix 10.3).
func LaplaceCDF(x, b float64) float64 {
	if !(b > 0) {
		panic("rng: LaplaceCDF scale must be positive")
	}
	if x < 0 {
		return 0.5 * math.Exp(x/b)
	}
	return 1 - 0.5*math.Exp(-x/b)
}

// LaplaceSF returns the survival function 1 − CDF of Laplace(0, b) at x,
// computed without cancellation: for large positive x the direct 1−CDF(x)
// rounds to zero in float64 long before the true tail mass does, which
// matters to the audit package's far-tail probability ratios.
func LaplaceSF(x, b float64) float64 {
	if !(b > 0) {
		panic("rng: LaplaceSF scale must be positive")
	}
	if x > 0 {
		return 0.5 * math.Exp(-x/b)
	}
	return 1 - 0.5*math.Exp(x/b)
}

// LaplacePDF returns the density of the Laplace(0, b) distribution at x.
func LaplacePDF(x, b float64) float64 {
	if !(b > 0) {
		panic("rng: LaplacePDF scale must be positive")
	}
	return math.Exp(-math.Abs(x)/b) / (2 * b)
}

// LaplaceQuantile returns the quantile function (inverse CDF) of the
// Laplace(0, b) distribution at probability p in (0, 1).
func LaplaceQuantile(p, b float64) float64 {
	if !(b > 0) {
		panic("rng: LaplaceQuantile scale must be positive")
	}
	if !(p > 0 && p < 1) {
		panic("rng: LaplaceQuantile probability must be in (0, 1)")
	}
	if p < 0.5 {
		return b * math.Log(2*p)
	}
	return -b * math.Log(2*(1-p))
}

// LaplaceStdDev returns the standard deviation of Laplace(0, b), which is
// b·√2. The retraversal optimization expresses its threshold boost in these
// units ("1D" in the paper = one standard deviation of the query noise).
func LaplaceStdDev(b float64) float64 { return b * math.Sqrt2 }

// LaplaceDiffCDF returns Pr[X − Y ≤ t] for independent X ~ Laplace(0, bx)
// and Y ~ Laplace(0, by).
//
// This is the law of SVT's comparison noise ν − ρ: the probability that a
// single query with margin m = q(D) − T is reported above the threshold is
// exactly 1 − LaplaceDiffCDF(−m, bν, bρ). The core tests use it as an
// analytic oracle for the implemented algorithms, and §4.2's allocation
// optimization minimizes this difference's variance.
func LaplaceDiffCDF(t, bx, by float64) float64 {
	if !(bx > 0) || !(by > 0) {
		panic("rng: LaplaceDiffCDF scales must be positive")
	}
	// X − Y is the sum of Laplace(0, bx) and Laplace(0, by) (−Y has Y's
	// law); for bx ≠ by the convolution has the even density
	//   f(z) = (bx·e^{−|z|/bx} − by·e^{−|z|/by}) / (2(bx² − by²)),
	// whose upper tail for t ≥ 0 integrates to
	//   Pr[X−Y > t] = (bx²·e^{−t/bx} − by²·e^{−t/by}) / (2(bx² − by²)).
	// At bx = by the limit is Pr[X−Y > t] = e^{−t/b}(2b + t)/(4b).
	// Negative t reduces to the mirrored pair: Pr[X−Y ≤ t] = Pr[Y−X > −t].
	if t < 0 {
		return 1 - LaplaceDiffCDF(-t, by, bx)
	}
	if math.Abs(bx-by) < 1e-9*math.Max(bx, by) {
		b := (bx + by) / 2
		return 1 - math.Exp(-t/b)*(2*b+t)/(4*b)
	}
	tail := (bx*bx*math.Exp(-t/bx) - by*by*math.Exp(-t/by)) / (2 * (bx*bx - by*by))
	return 1 - tail
}
