package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestLaplaceMomentsAndSymmetry(t *testing.T) {
	r := New(11)
	const n = 300000
	b := 2.5
	var sum, sumAbs, sumSq float64
	neg := 0
	for i := 0; i < n; i++ {
		v := r.Laplace(b)
		sum += v
		sumAbs += math.Abs(v)
		sumSq += v * v
		if v < 0 {
			neg++
		}
	}
	mean := sum / n
	meanAbs := sumAbs / n // E|X| = b
	variance := sumSq / n // E X^2 = 2 b^2 (mean ~ 0)
	if math.Abs(mean) > 0.03 {
		t.Errorf("Laplace mean %v too far from 0", mean)
	}
	if math.Abs(meanAbs-b) > 0.03 {
		t.Errorf("Laplace E|X| = %v, want ~%v", meanAbs, b)
	}
	if math.Abs(variance-2*b*b)/(2*b*b) > 0.03 {
		t.Errorf("Laplace variance %v, want ~%v", variance, 2*b*b)
	}
	frac := float64(neg) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Laplace negative fraction %v, want ~0.5", frac)
	}
}

func TestLaplacePanics(t *testing.T) {
	r := New(1)
	for _, b := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Laplace(%v) did not panic", b)
				}
			}()
			r.Laplace(b)
		}()
	}
}

// The defining DP property of the Laplace distribution:
// pdf(x)/pdf(x+Δ) <= exp(Δ/b) for all x, with equality when x, x+Δ >= 0.
func TestQuickLaplacePDFRatioBound(t *testing.T) {
	f := func(xRaw, dRaw uint16) bool {
		x := float64(xRaw)/100 - 300 // [-300, 355]
		d := float64(dRaw%400) / 100 // [0, 4)
		b := 2.0
		p1 := LaplacePDF(x, b)
		p2 := LaplacePDF(x+d, b)
		return p1 <= math.Exp(d/b)*p2*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceCDFMatchesEmpirical(t *testing.T) {
	r := New(12)
	const n = 200000
	b := 1.5
	points := []float64{-4, -2, -1, -0.5, 0, 0.5, 1, 2, 4}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = r.Laplace(b)
	}
	sort.Float64s(samples)
	for _, x := range points {
		idx := sort.SearchFloat64s(samples, x)
		emp := float64(idx) / n
		want := LaplaceCDF(x, b)
		if math.Abs(emp-want) > 0.005 {
			t.Errorf("CDF(%v): empirical %v vs analytic %v", x, emp, want)
		}
	}
}

// Property: quantile is the inverse of the CDF.
func TestQuickLaplaceQuantileInvertsCDF(t *testing.T) {
	f := func(pRaw uint16, bRaw uint8) bool {
		p := (float64(pRaw) + 1) / (math.MaxUint16 + 2) // (0,1)
		b := float64(bRaw%50)/10 + 0.1                  // [0.1, 5.1)
		x := LaplaceQuantile(p, b)
		return math.Abs(LaplaceCDF(x, b)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceCDFMonotoneAndLimits(t *testing.T) {
	b := 0.7
	prev := -1.0
	for x := -20.0; x <= 20; x += 0.25 {
		c := LaplaceCDF(x, b)
		if c < prev {
			t.Fatalf("CDF not monotone at %v", x)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of [0,1] at %v: %v", x, c)
		}
		prev = c
	}
	if got := LaplaceCDF(0, b); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("CDF(0) = %v, want 0.5", got)
	}
}

func TestLaplaceSF(t *testing.T) {
	b := 1.5
	// Complements the CDF in the well-conditioned region.
	for _, x := range []float64{-3, -1, 0, 1, 3} {
		if got, want := LaplaceSF(x, b), 1-LaplaceCDF(x, b); math.Abs(got-want) > 1e-15 {
			t.Errorf("SF(%v) = %v, want %v", x, got, want)
		}
	}
	// Far tail must stay positive where 1-CDF underflows to 0.
	if got := LaplaceSF(200, b); got <= 0 {
		t.Errorf("far-tail SF = %v, want positive", got)
	}
	if got := 1 - LaplaceCDF(200, b); got != 0 {
		t.Skipf("1-CDF(200) = %v unexpectedly nonzero on this platform", got)
	}
	// Exact closed form on the positive side.
	if got, want := LaplaceSF(3, b), 0.5*math.Exp(-2); math.Abs(got-want) > 1e-16 {
		t.Errorf("SF(3) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad scale accepted")
		}
	}()
	LaplaceSF(0, 0)
}

func TestLaplaceStdDev(t *testing.T) {
	if got, want := LaplaceStdDev(3), 3*math.Sqrt2; math.Abs(got-want) > 1e-15 {
		t.Fatalf("LaplaceStdDev(3) = %v, want %v", got, want)
	}
}

func TestLaplaceDiffCDFAgainstMonteCarlo(t *testing.T) {
	r := New(17)
	cases := []struct{ bx, by float64 }{
		{1, 1}, {2, 0.5}, {0.5, 2}, {3, 3}, {1.5, 4},
	}
	const n = 200000
	for _, c := range cases {
		for _, tv := range []float64{-3, -1, 0, 0.5, 2, 5} {
			count := 0
			for i := 0; i < n/10; i++ {
				if r.Laplace(c.bx)-r.Laplace(c.by) <= tv {
					count++
				}
			}
			emp := float64(count) / float64(n/10)
			want := LaplaceDiffCDF(tv, c.bx, c.by)
			if math.Abs(emp-want) > 0.02 {
				t.Errorf("bx=%v by=%v t=%v: empirical %v vs analytic %v", c.bx, c.by, tv, emp, want)
			}
		}
	}
}

func TestLaplaceDiffCDFProperties(t *testing.T) {
	// Median at zero, monotone, symmetric: F(t; a, b) = 1 − F(−t; b, a).
	if got := LaplaceDiffCDF(0, 2, 0.7); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
	prev := -1.0
	for tv := -10.0; tv <= 10; tv += 0.25 {
		f := LaplaceDiffCDF(tv, 1.3, 0.4)
		if f < prev-1e-12 {
			t.Fatalf("not monotone at %v", tv)
		}
		if f < 0 || f > 1 {
			t.Fatalf("out of [0,1] at %v: %v", tv, f)
		}
		mirror := 1 - LaplaceDiffCDF(-tv, 0.4, 1.3)
		if math.Abs(f-mirror) > 1e-12 {
			t.Fatalf("symmetry broken at %v: %v vs %v", tv, f, mirror)
		}
		prev = f
	}
	// Equal scales match the known closed form at a point: with b=1, t=1,
	// tail = e^{-1}(2+1)/4 = 3/(4e).
	want := 1 - 3/(4*math.E)
	if got := LaplaceDiffCDF(1, 1, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("equal-scale CDF(1) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad scale accepted")
		}
	}()
	LaplaceDiffCDF(0, 0, 1)
}

func TestExponentialMean(t *testing.T) {
	r := New(13)
	const n = 200000
	m := 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(m)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-m)/m > 0.02 {
		t.Fatalf("exponential mean %v, want ~%v", mean, m)
	}
}

func TestGumbelMaxEqualsSoftmax(t *testing.T) {
	// Adding Gumbel(1) noise to scores and taking argmax must sample from
	// softmax(scores). This is exactly how the exponential mechanism is
	// implemented, so the property is load-bearing for privacy.
	r := New(14)
	scores := []float64{0, 1, 2}
	var want [3]float64
	z := 0.0
	for _, s := range scores {
		z += math.Exp(s)
	}
	for i, s := range scores {
		want[i] = math.Exp(s) / z
	}
	const n = 200000
	var counts [3]int
	for trial := 0; trial < n; trial++ {
		best, bestV := 0, math.Inf(-1)
		for i, s := range scores {
			if v := s + r.Gumbel(1); v > bestV {
				best, bestV = i, v
			}
		}
		counts[best]++
	}
	for i := range counts {
		got := float64(counts[i]) / n
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("softmax bucket %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(15)
	const n = 200000
	p := 0.3
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatalf("negative geometric variate %d", v)
		}
		sum += float64(v)
	}
	want := (1 - p) / p
	if mean := sum / n; math.Abs(mean-want)/want > 0.03 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(16)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			r.Geometric(p)
		}()
	}
}

func TestDistPanicsOnBadScale(t *testing.T) {
	r := New(1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Exponential(0)", func() { r.Exponential(0) })
	mustPanic("Gumbel(0)", func() { r.Gumbel(0) })
	mustPanic("LaplaceCDF scale", func() { LaplaceCDF(0, 0) })
	mustPanic("LaplacePDF scale", func() { LaplacePDF(0, -1) })
	mustPanic("LaplaceQuantile scale", func() { LaplaceQuantile(0.5, 0) })
	mustPanic("LaplaceQuantile p=0", func() { LaplaceQuantile(0, 1) })
	mustPanic("LaplaceQuantile p=1", func() { LaplaceQuantile(1, 1) })
}
