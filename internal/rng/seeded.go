package rng

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
)

// NewSeeded returns a Source for the given seed; a zero seed draws a fresh
// unpredictable seed from crypto/rand.
//
// This is the constructor the public mechanisms use: a zero seed gives
// production behaviour (noise unpredictable to any adversary), a non-zero
// seed gives the exact reproducibility experiments need.
func NewSeeded(seed uint64) *Source {
	if seed == 0 {
		var buf [8]byte
		if _, err := rand.Read(buf[:]); err != nil {
			// crypto/rand failing means the platform entropy source is
			// broken; there is no safe fallback for a privacy mechanism.
			panic(fmt.Sprintf("rng: crypto/rand failed: %v", err))
		}
		seed = binary.LittleEndian.Uint64(buf[:])
		if seed == 0 {
			seed = 1
		}
	}
	return New(seed)
}
