package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same seed diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical 64-bit draws out of 100", same)
	}
}

func TestNewFromStatePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero state")
		}
	}()
	NewFromState([4]uint64{})
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split()
	b := parent.Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("split children matched at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 100000; i++ {
		f := r.Float64Open()
		if f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	// SE of the mean of Uniform(0,1) over n draws is 1/sqrt(12n) ~ 0.00065.
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(6)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(8)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Fatalf("bucket %d count %d too far from %v", k, c, expect)
		}
	}
}

// Property: Intn always lands in range, for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm returns a permutation (each element exactly once).
func TestQuickPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed always yields the same permutation.
func TestQuickPermDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed).Perm(32)
		b := New(seed).Perm(32)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Shuffle(-1, func(i, j int) {})
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d); want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestDrawsCountsEveryUint64(t *testing.T) {
	r := New(42)
	if r.Draws() != 0 {
		t.Fatalf("fresh source reports %d draws, want 0", r.Draws())
	}
	r.Uint64()
	r.Float64()
	r.Laplace(1) // ≥1 draw (Float64Open may loop, but every loop is counted)
	if d := r.Draws(); d < 3 {
		t.Fatalf("draws = %d after 3 samples, want ≥ 3", d)
	}
	// The counter is exactly the number of Uint64 outputs: a twin source
	// advanced by raw Uint64 calls lands in the same state.
	twin := New(42)
	for i := uint64(0); i < r.Draws(); i++ {
		twin.Uint64()
	}
	if r.Uint64() != twin.Uint64() {
		t.Fatal("draw counter does not match the raw stream position")
	}
}

func TestSkipMatchesDiscardedDraws(t *testing.T) {
	const n = 137
	a, b := New(7), New(7)
	for i := 0; i < n; i++ {
		a.Uint64()
	}
	b.Skip(n)
	if b.Draws() != n {
		t.Fatalf("Skip(%d) reports %d draws", n, b.Draws())
	}
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge %d draws after Skip", i)
		}
	}
}

func TestSkipResumesLaplaceStreamExactly(t *testing.T) {
	// The crash-recovery scenario in miniature: consume part of a seeded
	// Laplace stream, journal the position, re-seed, fast-forward, and
	// require the continuation to be bit-identical.
	orig := New(99)
	for i := 0; i < 50; i++ {
		orig.Laplace(2.5)
	}
	pos := orig.Draws()
	rebuilt := New(99)
	rebuilt.Skip(pos)
	for i := 0; i < 50; i++ {
		if orig.Laplace(2.5) != rebuilt.Laplace(2.5) {
			t.Fatalf("Laplace continuation diverges at %d", i)
		}
	}
}
