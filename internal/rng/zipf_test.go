package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(4, 1.0)
	// Weights 1, 1/2, 1/3, 1/4; total 25/12.
	total := 1.0 + 0.5 + 1.0/3 + 0.25
	for k := 1; k <= 4; k++ {
		want := (1 / float64(k)) / total
		if got := z.Prob(k); math.Abs(got-want) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", k, got, want)
		}
	}
	if z.Prob(0) != 0 || z.Prob(5) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	src := New(21)
	z := NewZipf(10, 1.2)
	const n = 200000
	counts := make([]int, z.N()+1)
	for i := 0; i < n; i++ {
		k := z.Sample(src)
		if k < 1 || k > z.N() {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	for k := 1; k <= z.N(); k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / n
		se := math.Sqrt(want * (1 - want) / n)
		if math.Abs(got-want) > 6*se+1e-4 {
			t.Errorf("rank %d frequency %v, want %v", k, got, want)
		}
	}
}

// Property: Zipf probabilities are decreasing in rank and sum to 1.
func TestQuickZipfMonotoneNormalized(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%100) + 1
		s := float64(sRaw%30)/10 + 0.1
		z := NewZipf(n, s)
		sum := 0.0
		prev := math.Inf(1)
		for k := 1; k <= n; k++ {
			p := z.Prob(k)
			if p > prev+1e-15 {
				return false
			}
			prev = p
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, 0}, {5, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.s)
				}
			}()
			NewZipf(c.n, c.s)
		}()
	}
}

func TestDiscreteSample(t *testing.T) {
	src := New(22)
	d := NewDiscrete([]float64{1, 0, 3})
	const n = 100000
	var counts [3]int
	for i := 0; i < n; i++ {
		counts[d.Sample(src)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("bucket 0 frequency %v, want ~0.25", got)
	}
	if got := float64(counts[2]) / n; math.Abs(got-0.75) > 0.01 {
		t.Errorf("bucket 2 frequency %v, want ~0.75", got)
	}
}

func TestDiscretePanics(t *testing.T) {
	bad := [][]float64{
		{},
		{1, -1},
		{0, 0},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, w := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDiscrete(%v) did not panic", w)
				}
			}()
			NewDiscrete(w)
		}()
	}
}

// Property: Discrete sampling always returns an in-range index with a
// positive weight.
func TestQuickDiscreteInRangePositiveWeight(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		weights := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				any = true
			}
		}
		if !any {
			return true // all-zero weights panic by contract; skip
		}
		d := NewDiscrete(weights)
		src := New(seed)
		for i := 0; i < 20; i++ {
			idx := d.Sample(src)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
