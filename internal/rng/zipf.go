package rng

import "math"

// Zipf samples from a bounded Zipf distribution over ranks {1, ..., n}
// with exponent s > 0: Pr[X = k] ∝ 1/k^s.
//
// The dataset generators use it to draw items for synthetic transactions
// whose item-frequency profile follows a power law, which is how the paper
// characterizes BMS-POS, Kosarak, AOL and its synthetic Zipf workload
// (Figure 3 plots all four as near-lines on log-log axes).
type Zipf struct {
	n       int
	s       float64
	cdf     []float64 // cdf[k] = Pr[X <= k+1]; len n
	weights []float64 // unnormalized 1/k^s; len n
	total   float64
}

// NewZipf builds a bounded Zipf sampler over {1..n} with exponent s.
// It panics if n <= 0 or s <= 0. Construction is O(n); sampling is
// O(log n) via binary search over the precomputed CDF, which is the right
// trade-off here because every generator draws millions of variates from a
// single distribution.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf support size must be positive")
	}
	if !(s > 0) {
		panic("rng: Zipf exponent must be positive")
	}
	z := &Zipf{n: n, s: s}
	z.weights = make([]float64, n)
	z.cdf = make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		w := math.Exp(-s * math.Log(float64(k)))
		z.weights[k-1] = w
		sum += w
		z.cdf[k-1] = sum
	}
	z.total = sum
	return z
}

// N returns the support size.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Prob returns Pr[X = k] for rank k in {1..n}.
func (z *Zipf) Prob(k int) float64 {
	if k < 1 || k > z.n {
		return 0
	}
	return z.weights[k-1] / z.total
}

// Sample draws a rank in {1..n} using src.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64() * z.total
	// Binary search for the first index whose cumulative weight exceeds u.
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Discrete samples from an arbitrary finite distribution given by
// non-negative weights. It is the general-purpose workhorse behind the
// calibrated dataset generators, which use empirical (non-Zipf) head
// profiles for the first few hundred items.
type Discrete struct {
	cdf   []float64
	total float64
}

// NewDiscrete builds a sampler over {0, ..., len(weights)-1} with
// Pr[X = i] ∝ weights[i]. It panics if weights is empty, contains a
// negative or non-finite value, or sums to zero.
func NewDiscrete(weights []float64) *Discrete {
	if len(weights) == 0 {
		panic("rng: Discrete requires at least one weight")
	}
	d := &Discrete{cdf: make([]float64, len(weights))}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("rng: Discrete weights must be finite and non-negative")
		}
		sum += w
		d.cdf[i] = sum
	}
	if sum == 0 {
		panic("rng: Discrete weights sum to zero")
	}
	d.total = sum
	return d
}

// N returns the support size.
func (d *Discrete) N() int { return len(d.cdf) }

// Sample draws an index in [0, N) using src.
func (d *Discrete) Sample(src *Source) int {
	u := src.Float64() * d.total
	lo, hi := 0, len(d.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if d.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
