package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov-Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| of the sample against the reference CDF.
// The sampler test suites use it to verify distributional correctness of
// the noise generators beyond first moments. It panics on an empty sample
// or a nil CDF.
func KSStatistic(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		panic("stats: KSStatistic on empty sample")
	}
	if cdf == nil {
		panic("stats: KSStatistic with nil CDF")
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	maxD := 0.0
	for i, x := range sorted {
		f := cdf(x)
		// Empirical CDF jumps from i/n to (i+1)/n at x; check both sides.
		if d := math.Abs(f - float64(i)/n); d > maxD {
			maxD = d
		}
		if d := math.Abs(f - float64(i+1)/n); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// KSCritical returns the large-sample critical value of the one-sample KS
// statistic at significance alpha: c(α)/√n with c(α) = √(−ln(α/2)/2).
// A sample whose KSStatistic exceeds this rejects the reference
// distribution at level alpha. It panics unless n > 0 and alpha ∈ (0, 1).
func KSCritical(n int, alpha float64) float64 {
	if n <= 0 {
		panic("stats: KSCritical with non-positive n")
	}
	if !(alpha > 0 && alpha < 1) {
		panic("stats: KSCritical alpha out of (0,1)")
	}
	return math.Sqrt(-math.Log(alpha/2)/2) / math.Sqrt(float64(n))
}
