package stats

import (
	"math"
	"testing"

	"github.com/dpgo/svt/internal/rng"
)

func TestKSStatisticExactSmallCase(t *testing.T) {
	// Sample {0.5} against Uniform(0,1): F(0.5)=0.5, ECDF jumps 0→1, so
	// D = max(|0.5−0|, |0.5−1|) = 0.5.
	d := KSStatistic([]float64{0.5}, func(x float64) float64 { return x })
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("D = %v, want 0.5", d)
	}
}

func TestKSAcceptsMatchingDistribution(t *testing.T) {
	src := rng.New(71)
	const n = 20000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = src.Laplace(2)
	}
	d := KSStatistic(sample, func(x float64) float64 { return rng.LaplaceCDF(x, 2) })
	if crit := KSCritical(n, 0.001); d > crit {
		t.Fatalf("KS rejected correct Laplace sampler: D=%v > crit=%v", d, crit)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	src := rng.New(72)
	const n = 20000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = src.Laplace(2)
	}
	// Test the Laplace(2) sample against a Laplace(3) reference.
	d := KSStatistic(sample, func(x float64) float64 { return rng.LaplaceCDF(x, 3) })
	if crit := KSCritical(n, 0.001); d <= crit {
		t.Fatalf("KS failed to reject wrong scale: D=%v <= crit=%v", d, crit)
	}
}

func TestKSGumbelAndExponentialSamplers(t *testing.T) {
	src := rng.New(73)
	const n = 20000
	crit := KSCritical(n, 0.001)

	gumbel := make([]float64, n)
	for i := range gumbel {
		gumbel[i] = src.Gumbel(1)
	}
	d := KSStatistic(gumbel, func(x float64) float64 { return math.Exp(-math.Exp(-x)) })
	if d > crit {
		t.Errorf("Gumbel sampler rejected: D=%v > %v", d, crit)
	}

	exp := make([]float64, n)
	for i := range exp {
		exp[i] = src.Exponential(3)
	}
	d = KSStatistic(exp, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-x/3)
	})
	if d > crit {
		t.Errorf("Exponential sampler rejected: D=%v > %v", d, crit)
	}
}

func TestKSPanics(t *testing.T) {
	cases := map[string]func(){
		"empty sample": func() { KSStatistic(nil, func(float64) float64 { return 0 }) },
		"nil cdf":      func() { KSStatistic([]float64{1}, nil) },
		"bad n":        func() { KSCritical(0, 0.05) },
		"alpha zero":   func() { KSCritical(10, 0) },
		"alpha one":    func() { KSCritical(10, 1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
