// Package stats provides the small statistical toolkit used by the
// experiment and audit harnesses: streaming moments, quantiles, binomial
// confidence intervals, and numerically careful log-domain helpers.
package stats

import (
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's algorithm.
// The zero value is ready to use. It is the building block for every
// "mean ± SD over 100 runs" cell in the reproduced figures.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates the observation x.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or NaN if empty.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance, or NaN if fewer than two
// observations were added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs, or NaN if
// fewer than two values are given.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.StdDev()
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It panics if xs is empty or p is outside [0, 1]. xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("stats: Quantile probability out of [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// LogSumExp returns log(sum_i exp(xs[i])) computed stably. The exponential
// mechanism's inverse-CDF sampler normalizes scores with it so that large
// ε·q values cannot overflow.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := math.Inf(-1)
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// WilsonInterval returns the Wilson-score 1-alpha confidence interval for a
// binomial proportion with k successes out of n trials. The audit harness
// uses it to put conservative bounds on empirically estimated output
// probabilities before comparing privacy-loss ratios. alpha must be in
// (0, 1); n must be positive.
func WilsonInterval(k, n int, alpha float64) (lo, hi float64) {
	if n <= 0 {
		panic("stats: WilsonInterval with non-positive n")
	}
	if k < 0 || k > n {
		panic("stats: WilsonInterval successes out of range")
	}
	if !(alpha > 0 && alpha < 1) {
		panic("stats: WilsonInterval alpha out of (0,1)")
	}
	z := NormalQuantile(1 - alpha/2)
	nf := float64(n)
	p := float64(k) / nf
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// NormalQuantile returns the standard normal quantile function at p in
// (0, 1) using the Acklam rational approximation (relative error < 1.15e-9,
// ample for confidence intervals).
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("stats: NormalQuantile probability out of (0,1)")
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// Histogram is a fixed-width-bin histogram over [Min, Max). Values outside
// the range are clamped into the first/last bin; the experiment renderers
// use it for quick distribution sketches.
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max). It panics if bins <= 0 or min >= max.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if !(min < max) {
		panic("stats: NewHistogram requires min < max")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Min) / (h.Max - h.Min))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
