package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dpgo/svt/internal/rng"
)

func TestAccumulatorAgainstDirect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, -3, 7.5}
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	mean := Mean(xs)
	if math.Abs(a.Mean()-mean) > 1e-12 {
		t.Errorf("mean %v vs %v", a.Mean(), mean)
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	wantVar := ss / float64(len(xs)-1)
	if math.Abs(a.Variance()-wantVar) > 1e-12 {
		t.Errorf("variance %v vs %v", a.Variance(), wantVar)
	}
	wantSE := math.Sqrt(wantVar / float64(len(xs)))
	if math.Abs(a.StdErr()-wantSE) > 1e-12 {
		t.Errorf("stderr %v vs %v", a.StdErr(), wantSE)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Variance()) || !math.IsNaN(a.StdErr()) {
		t.Error("empty accumulator should report NaN moments")
	}
	a.Add(1)
	if a.Mean() != 1 {
		t.Errorf("single-value mean %v", a.Mean())
	}
	if !math.IsNaN(a.Variance()) {
		t.Error("variance of one value should be NaN")
	}
}

// Property: Welford matches the two-pass computation on arbitrary data.
func TestQuickAccumulatorMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 7
		}
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(wantVar))
		return math.Abs(a.Mean()-mean) < 1e-9 &&
			math.Abs(a.Variance()-wantVar)/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(StdDev([]float64{1})) {
		t.Error("StdDev of one value should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile modified its input")
	}
	if got := Median([]float64{5}); got != 5 {
		t.Errorf("Median single = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	cases := []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { Quantile([]float64{1}, math.NaN()) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: the quantile is monotone in p and bracketed by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int8, p1Raw, p2Raw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		minV, maxV := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			minV = math.Min(minV, xs[i])
			maxV = math.Max(maxV, xs[i])
		}
		p1 := float64(p1Raw) / 255
		p2 := float64(p2Raw) / 255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, q2 := Quantile(xs, p1), Quantile(xs, p2)
		return q1 <= q2+1e-12 && q1 >= minV-1e-12 && q2 <= maxV+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{0, math.Log(2), math.Log(3)}
	if got, want := LogSumExp(xs), math.Log(6); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogSumExp = %v, want %v", got, want)
	}
	// Stability: huge inputs must not overflow.
	big := []float64{1000, 1000}
	if got, want := LogSumExp(big), 1000+math.Log(2); math.Abs(got-want) > 1e-9 {
		t.Errorf("LogSumExp big = %v, want %v", got, want)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	allNegInf := []float64{math.Inf(-1), math.Inf(-1)}
	if !math.IsInf(LogSumExp(allNegInf), -1) {
		t.Error("LogSumExp of -Inf inputs should be -Inf")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.9999, 3.719016},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestWilsonIntervalCoversTruth(t *testing.T) {
	// Simulate coin flips and verify coverage of the 95% interval.
	src := rng.New(33)
	const trials = 400
	const n = 200
	p := 0.3
	covered := 0
	for trial := 0; trial < trials; trial++ {
		k := 0
		for i := 0; i < n; i++ {
			if src.Float64() < p {
				k++
			}
		}
		lo, hi := WilsonInterval(k, n, 0.05)
		if lo <= p && p <= hi {
			covered++
		}
	}
	// Expected coverage ~0.95; allow generous slack for 400 trials.
	if frac := float64(covered) / trials; frac < 0.90 {
		t.Fatalf("Wilson interval coverage %v too low", frac)
	}
}

func TestWilsonIntervalBoundsAndPanics(t *testing.T) {
	lo, hi := WilsonInterval(0, 10, 0.05)
	if lo != 0 || hi <= 0 || hi > 1 {
		t.Errorf("WilsonInterval(0,10) = (%v,%v)", lo, hi)
	}
	lo, hi = WilsonInterval(10, 10, 0.05)
	if hi != 1 || lo >= 1 || lo < 0 {
		t.Errorf("WilsonInterval(10,10) = (%v,%v)", lo, hi)
	}
	cases := []func(){
		func() { WilsonInterval(0, 0, 0.05) },
		func() { WilsonInterval(-1, 10, 0.05) },
		func() { WilsonInterval(11, 10, 0.05) },
		func() { WilsonInterval(5, 10, 0) },
		func() { WilsonInterval(5, 10, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	// Bins: [0,2) gets -1, 0, 1.9 => 3; [2,4) gets 2 => 1; [8,10) gets 9.99, 10, 100 => 3.
	want := []int{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Fraction(0); math.Abs(got-3.0/7) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	cases := []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
		func() { NewHistogram(2, 1, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
	empty := NewHistogram(0, 1, 2)
	if empty.Fraction(0) != 0 {
		t.Error("Fraction on empty histogram should be 0")
	}
}
