package svt

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
)

// Method selects the mechanism used by TopC for non-interactive top-c
// selection.
type Method int

const (
	// MethodEM runs c rounds of the Exponential Mechanism — the paper's
	// recommendation for the non-interactive setting (§5, Figure 5). It
	// needs no threshold.
	MethodEM Method = iota
	// MethodSVT is a single pass of the standard SVT at Threshold
	// ("SVT-S" in the paper).
	MethodSVT
	// MethodReTr is SVT with retraversal and an optional threshold boost
	// ("SVT-ReTr"): unselected queries are re-tested until c are found.
	MethodReTr
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case MethodEM:
		return "EM"
	case MethodSVT:
		return "SVT-S"
	case MethodReTr:
		return "SVT-ReTr"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SelectOptions configures TopC.
type SelectOptions struct {
	// Epsilon is the total privacy budget for the whole selection.
	Epsilon float64
	// Sensitivity is the score sensitivity Δ (1 for counting queries).
	Sensitivity float64
	// C is how many items to select.
	C int
	// Monotonic declares one-directional score changes between neighbors
	// (true for supports/counts under add/remove-one); it halves the
	// noise/exponent scale for all three methods.
	Monotonic bool
	// Method picks the mechanism; the zero value is MethodEM.
	Method Method
	// Threshold is the SVT comparison threshold (ignored by MethodEM).
	// A natural choice is an estimate of the c-th highest score.
	Threshold float64
	// BoostSD raises the threshold by this many standard deviations of
	// the query noise (MethodReTr only; the paper sweeps 1-5).
	BoostSD float64
	// MaxPasses bounds retraversal passes (MethodReTr only; 0 = default).
	MaxPasses int
	// Allocation picks the ε₁:ε₂ split for the SVT methods; the zero
	// value applies the paper's optimal allocation.
	Allocation Allocation
	// Seed 0 means crypto-seeded; fixed seeds reproduce runs exactly.
	Seed uint64
}

// TopC selects up to opts.C indices of scores with (approximately) the
// highest values under ε-DP, where scores[i] is the true answer of query i
// computed on the private data.
//
// The entire selection satisfies opts.Epsilon-DP for every method: EM by
// sequential composition over c rounds, the SVT methods by Theorems 4-5
// (retraversal only lengthens the query stream; it does not change the
// privacy argument).
func TopC(scores []float64, opts SelectOptions) ([]int, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("svt: TopC on empty score vector")
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("svt: scores[%d] must be finite, got %v", i, s)
		}
	}
	if !(opts.Epsilon > 0) || math.IsInf(opts.Epsilon, 0) {
		return nil, fmt.Errorf("svt: Epsilon must be positive and finite, got %v", opts.Epsilon)
	}
	if !(opts.Sensitivity > 0) || math.IsInf(opts.Sensitivity, 0) {
		return nil, fmt.Errorf("svt: Sensitivity must be positive and finite, got %v", opts.Sensitivity)
	}
	if opts.C <= 0 {
		return nil, fmt.Errorf("svt: C must be positive, got %d", opts.C)
	}
	if math.IsNaN(opts.Threshold) || math.IsInf(opts.Threshold, 0) {
		return nil, fmt.Errorf("svt: Threshold must be finite, got %v", opts.Threshold)
	}
	if opts.BoostSD < 0 || math.IsNaN(opts.BoostSD) {
		return nil, fmt.Errorf("svt: BoostSD must be non-negative, got %v", opts.BoostSD)
	}
	if opts.MaxPasses < 0 {
		return nil, fmt.Errorf("svt: MaxPasses must be non-negative, got %d", opts.MaxPasses)
	}
	src := rng.NewSeeded(opts.Seed)
	switch opts.Method {
	case MethodEM:
		return core.SelectEM(src, scores, opts.Epsilon, opts.Sensitivity, opts.C, opts.Monotonic), nil
	case MethodSVT, MethodReTr:
		ratio, err := opts.Allocation.ratio(opts.Monotonic)
		if err != nil {
			return nil, err
		}
		eps1, eps2 := ratio.Split(opts.Epsilon, opts.C)
		cfg := core.ReTrConfig{
			Eps1: eps1, Eps2: eps2,
			Delta: opts.Sensitivity, C: opts.C,
			Monotonic: opts.Monotonic,
			BoostSD:   opts.BoostSD,
			MaxPasses: opts.MaxPasses,
		}
		if opts.Method == MethodSVT {
			return core.SelectSVT(src, scores, opts.Threshold, cfg), nil
		}
		return core.SelectReTr(src, scores, opts.Threshold, cfg), nil
	default:
		return nil, fmt.Errorf("svt: unknown method %d", int(opts.Method))
	}
}

// Selected is one item of a TopCWithCounts result: an index together with
// a privately released (noisy) score.
type Selected struct {
	// Index into the scores vector.
	Index int
	// NoisyScore is the Laplace release of scores[Index].
	NoisyScore float64
}

// TopCWithCounts selects up to opts.C indices like TopC and additionally
// releases a noisy score for each selected index — the non-interactive
// counterpart of Algorithm 7's ε₃ phase (most applications need the counts,
// not just the identities; Lee & Clifton report supports, Shokri &
// Shmatikov upload gradient values).
//
// answerFraction in (0, 1) is the share of opts.Epsilon reserved for the
// numeric releases; the remainder funds the selection. Each released count
// gets (answerFraction·ε)/C of budget, so the total is still opts.Epsilon
// by sequential composition.
func TopCWithCounts(scores []float64, opts SelectOptions, answerFraction float64) ([]Selected, error) {
	if !(answerFraction > 0 && answerFraction < 1) || math.IsNaN(answerFraction) {
		return nil, fmt.Errorf("svt: answerFraction must be in (0, 1), got %v", answerFraction)
	}
	if !(opts.Epsilon > 0) || math.IsInf(opts.Epsilon, 0) {
		return nil, fmt.Errorf("svt: Epsilon must be positive and finite, got %v", opts.Epsilon)
	}
	if opts.C <= 0 {
		return nil, fmt.Errorf("svt: C must be positive, got %d", opts.C)
	}
	epsAnswers := opts.Epsilon * answerFraction
	selOpts := opts
	selOpts.Epsilon = opts.Epsilon - epsAnswers
	indices, err := TopC(scores, selOpts)
	if err != nil {
		return nil, err
	}
	src := rng.NewSeeded(deriveAnswerSeed(opts.Seed))
	perAnswerScale := opts.Sensitivity / (epsAnswers / float64(opts.C))
	out := make([]Selected, len(indices))
	for i, idx := range indices {
		out[i] = Selected{Index: idx, NoisyScore: scores[idx] + src.Laplace(perAnswerScale)}
	}
	return out, nil
}

// deriveAnswerSeed gives the numeric-release noise a stream independent of
// the selection's; seed 0 stays 0 (crypto-seeded).
func deriveAnswerSeed(seed uint64) uint64 {
	if seed == 0 {
		return 0
	}
	return rng.New(seed^0xa5a5a5a5a5a5a5a5).Uint64() | 1
}
