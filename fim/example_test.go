package fim_test

import (
	"fmt"

	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/fim"
)

// Mining all itemsets above a support threshold with FP-Growth.
func ExampleMine() {
	b := dataset.NewBuilder("groceries", 4)
	b.Add([]dataset.Item{0, 1})    // bread, milk
	b.Add([]dataset.Item{0, 1, 2}) // bread, milk, eggs
	b.Add([]dataset.Item{0, 2})    // bread, eggs
	b.Add([]dataset.Item{1, 3})    // milk, butter
	b.Add([]dataset.Item{0, 1})    // bread, milk
	store := b.Build()

	sets, err := fim.Mine(store, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range sets {
		fmt.Println(s)
	}
	// Output:
	// [0]:4
	// [1]:4
	// [0 1]:3
}

// Finding the k most frequent itemsets regardless of threshold.
func ExampleMineTopK() {
	b := dataset.NewBuilder("toy", 3)
	b.Add([]dataset.Item{0, 1})
	b.Add([]dataset.Item{0, 1, 2})
	b.Add([]dataset.Item{0})
	store := b.Build()

	sets, err := fim.MineTopK(store, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range sets {
		fmt.Println(s)
	}
	// Output:
	// [0]:3
	// [1]:2
}
