package fim

import (
	"fmt"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dataset"
)

// PrivateTopKOptions configures PrivateTopK.
type PrivateTopKOptions struct {
	// K is the number of itemsets to select.
	K int
	// Epsilon is the privacy budget for the selection step.
	Epsilon float64
	// Method selects the mechanism: MethodEM (the paper's recommendation
	// for this non-interactive workload), MethodSVT, or MethodReTr.
	Method svt.Method
	// CandidateFactor widens the candidate pool to CandidateFactor×K
	// itemsets mined by FP-Growth (default 4 when zero). A wider pool
	// costs accuracy per the paper's analysis — more low-quality
	// candidates dilute the selection — but too narrow a pool can exclude
	// true top-K sets whose supports the mechanism would have preferred.
	CandidateFactor int
	// BoostSD is the retraversal threshold boost (MethodReTr only).
	BoostSD float64
	// Seed 0 means crypto-seeded.
	Seed uint64
}

// PrivateTopK selects K itemsets with (approximately) the highest supports
// under ε-differential privacy, the workload of Lee and Clifton 2014 that
// motivated SVT Algorithm 4 and the paper's §5-6 comparison.
//
// The pipeline mirrors the corrected version of that work: FP-Growth mines
// a candidate pool, then a private mechanism selects K candidates by their
// supports. Supports are counting queries — sensitivity 1 and monotonic —
// so the monotonic refinements apply. The reported Support fields are the
// true supports and are NOT private; callers needing private counts should
// release them separately with a Laplace mechanism (see svt.Options.
// AnswerFraction).
//
// Caveat (documented, as in the paper's §5 setting): the candidate pool
// itself is data-dependent. The paper's evaluation treats the candidate
// queries as given, measuring only the selection step's privacy/utility;
// this function reproduces that setting.
func PrivateTopK(s *dataset.Store, opts PrivateTopKOptions) ([]Itemset, error) {
	if s == nil {
		return nil, fmt.Errorf("fim: nil store")
	}
	if opts.K <= 0 {
		return nil, fmt.Errorf("fim: K must be positive, got %d", opts.K)
	}
	if !(opts.Epsilon > 0) {
		return nil, fmt.Errorf("fim: Epsilon must be positive, got %v", opts.Epsilon)
	}
	factor := opts.CandidateFactor
	if factor == 0 {
		factor = 4
	}
	if factor < 1 {
		return nil, fmt.Errorf("fim: CandidateFactor must be >= 1, got %d", factor)
	}
	candidates, err := MineTopK(s, opts.K*factor)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	scores := make([]float64, len(candidates))
	for i, c := range candidates {
		scores[i] = float64(c.Support)
	}
	// Threshold for the SVT methods: midpoint between the K-th and K+1-th
	// candidate supports, the same rule as the paper's evaluation.
	threshold := scores[len(scores)-1]
	if len(scores) > opts.K {
		threshold = (scores[opts.K-1] + scores[opts.K]) / 2
	}
	selected, err := svt.TopC(scores, svt.SelectOptions{
		Epsilon:     opts.Epsilon,
		Sensitivity: 1,
		C:           opts.K,
		Monotonic:   true,
		Method:      opts.Method,
		Threshold:   threshold,
		BoostSD:     opts.BoostSD,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Itemset, 0, len(selected))
	for _, idx := range selected {
		out = append(out, candidates[idx])
	}
	return out, nil
}
