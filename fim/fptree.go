// Package fim is the frequent-itemset-mining substrate: FP-Growth (the
// FP-tree algorithm Lee and Clifton build on), a brute-force Apriori
// baseline used for cross-checking, and a differentially private top-k
// itemset selector in the style the paper analyzes (§3, Algorithm 4's
// application; §5-6's top-c selection workload).
package fim

import (
	"fmt"
	"sort"

	"github.com/dpgo/svt/dataset"
)

// Itemset is a set of items with its support (the number of transactions
// containing every item of the set). Items are sorted ascending.
type Itemset struct {
	Items   []dataset.Item
	Support int
}

// String renders the itemset as "{a b c}:support".
func (is Itemset) String() string {
	return fmt.Sprintf("%v:%d", is.Items, is.Support)
}

// fpNode is one node of an FP-tree.
type fpNode struct {
	item     dataset.Item
	count    int
	parent   *fpNode
	next     *fpNode // header-table chain of nodes holding the same item
	children map[dataset.Item]*fpNode
}

// fpTree is an FP-tree with its header table.
type fpTree struct {
	root    *fpNode
	heads   map[dataset.Item]*fpNode // first node per item
	tails   map[dataset.Item]*fpNode // last node per item, for O(1) appends
	support map[dataset.Item]int     // per-item support within this tree
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{children: map[dataset.Item]*fpNode{}},
		heads:   map[dataset.Item]*fpNode{},
		tails:   map[dataset.Item]*fpNode{},
		support: map[dataset.Item]int{},
	}
}

// insert adds a frequency-ordered transaction with multiplicity count.
func (t *fpTree) insert(tx []dataset.Item, count int) {
	cur := t.root
	for _, it := range tx {
		child, ok := cur.children[it]
		if !ok {
			child = &fpNode{item: it, parent: cur, children: map[dataset.Item]*fpNode{}}
			cur.children[it] = child
			if t.tails[it] == nil {
				t.heads[it] = child
			} else {
				t.tails[it].next = child
			}
			t.tails[it] = child
		}
		child.count += count
		cur = child
	}
	for _, it := range tx {
		t.support[it] += count
	}
}

// itemOrder returns the tree's items sorted by ascending support (ties by
// descending id), the order in which FP-Growth peels suffixes.
func (t *fpTree) itemOrder() []dataset.Item {
	items := make([]dataset.Item, 0, len(t.support))
	for it := range t.support {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		si, sj := t.support[items[i]], t.support[items[j]]
		if si != sj {
			return si < sj
		}
		return items[i] > items[j]
	})
	return items
}

// Mine returns every itemset with support >= minSupport, found with
// FP-Growth. Results are sorted by descending support, then by ascending
// size and items, so output order is deterministic. minSupport must be
// positive: support-0 itemsets are the entire powerset and never useful.
func Mine(s *dataset.Store, minSupport int) ([]Itemset, error) {
	if s == nil {
		return nil, fmt.Errorf("fim: nil store")
	}
	if minSupport <= 0 {
		return nil, fmt.Errorf("fim: minSupport must be positive, got %d", minSupport)
	}
	// Pass 1: global item supports; keep frequent items only.
	supports := s.ItemSupports()
	frequent := map[dataset.Item]int{}
	for i, v := range supports {
		if v >= minSupport {
			frequent[dataset.Item(i)] = v
		}
	}
	// Pass 2: build the FP-tree over frequency-ordered filtered transactions.
	tree := newFPTree()
	var buf []dataset.Item
	s.Each(func(tx []dataset.Item) {
		buf = buf[:0]
		seen := map[dataset.Item]bool{}
		for _, it := range tx {
			if _, ok := frequent[it]; ok && !seen[it] {
				seen[it] = true
				buf = append(buf, it)
			}
		}
		if len(buf) == 0 {
			return
		}
		sort.Slice(buf, func(i, j int) bool {
			si, sj := frequent[buf[i]], frequent[buf[j]]
			if si != sj {
				return si > sj
			}
			return buf[i] < buf[j]
		})
		tree.insert(buf, 1)
	})
	var out []Itemset
	growth(tree, nil, minSupport, &out)
	sortItemsets(out)
	return out, nil
}

// growth is the recursive FP-Growth step: for each item in the tree it
// emits suffix ∪ {item} and recurses on the conditional tree.
func growth(t *fpTree, suffix []dataset.Item, minSupport int, out *[]Itemset) {
	for _, it := range t.itemOrder() {
		sup := t.support[it]
		if sup < minSupport {
			continue
		}
		itemset := make([]dataset.Item, 0, len(suffix)+1)
		itemset = append(itemset, suffix...)
		itemset = append(itemset, it)
		sorted := make([]dataset.Item, len(itemset))
		copy(sorted, itemset)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		*out = append(*out, Itemset{Items: sorted, Support: sup})

		// Conditional pattern base: prefix paths of every node holding it.
		cond := newFPTree()
		for node := t.heads[it]; node != nil; node = node.next {
			var path []dataset.Item
			for p := node.parent; p != nil && p.parent != nil; p = p.parent {
				path = append(path, p.item)
			}
			if len(path) == 0 {
				continue
			}
			// path is leaf-to-root; reverse to root-to-leaf insertion order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			cond.insert(path, node.count)
		}
		// Prune infrequent items from the conditional tree by rebuilding;
		// cheaper than filtering mid-recursion for the shallow trees here.
		pruned := pruneTree(cond, minSupport)
		if len(pruned.support) > 0 {
			growth(pruned, itemset, minSupport, out)
		}
	}
}

// pruneTree rebuilds a conditional tree keeping only items with support >=
// minSupport. Returns the input when nothing needs pruning.
func pruneTree(t *fpTree, minSupport int) *fpTree {
	needs := false
	for _, sup := range t.support {
		if sup < minSupport {
			needs = true
			break
		}
	}
	if !needs {
		return t
	}
	out := newFPTree()
	var walk func(n *fpNode, path []dataset.Item)
	walk = func(n *fpNode, path []dataset.Item) {
		// Each node's "own" weight is its count minus its children's sum:
		// that many transactions ended exactly here.
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
		}
		own := n.count - childSum
		if own > 0 && len(path) > 0 {
			filtered := make([]dataset.Item, 0, len(path))
			for _, it := range path {
				if t.support[it] >= minSupport {
					filtered = append(filtered, it)
				}
			}
			if len(filtered) > 0 {
				out.insert(filtered, own)
			}
		}
		for _, c := range n.children {
			walk(c, append(path, c.item))
		}
	}
	walk(t.root, nil)
	return out
}

// sortItemsets orders by descending support, then ascending length, then
// lexicographic items.
func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for k := range a.Items {
			if a.Items[k] != b.Items[k] {
				return a.Items[k] < b.Items[k]
			}
		}
		return false
	})
}

// MineTopK returns the k most frequent itemsets (of any size), lowering the
// support threshold geometrically until at least k are found — the standard
// top-k reduction over FP-Growth. It returns fewer than k only when the
// store has fewer than k itemsets with positive support.
func MineTopK(s *dataset.Store, k int) ([]Itemset, error) {
	if s == nil {
		return nil, fmt.Errorf("fim: nil store")
	}
	if k <= 0 {
		return nil, fmt.Errorf("fim: k must be positive, got %d", k)
	}
	// Start at the k-th highest single-item support: the top-k itemsets
	// can include at most k singletons, so this is a sound upper start.
	top := s.TopSupports(k)
	minSupport := 1
	if len(top) == k && top[k-1].Support > 0 {
		minSupport = top[k-1].Support
	}
	for {
		sets, err := Mine(s, minSupport)
		if err != nil {
			return nil, err
		}
		if len(sets) >= k {
			return sets[:k], nil
		}
		if minSupport == 1 {
			return sets, nil
		}
		minSupport /= 2
		if minSupport < 1 {
			minSupport = 1
		}
	}
}
