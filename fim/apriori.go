package fim

import (
	"fmt"
	"sort"

	"github.com/dpgo/svt/dataset"
)

// AprioriMine returns every itemset with support >= minSupport using the
// classic level-wise Apriori algorithm. It is exponentially slower than
// Mine on dense data and exists as an independent oracle: the tests check
// FP-Growth against it on small stores, and the ablation bench measures the
// gap.
func AprioriMine(s *dataset.Store, minSupport int) ([]Itemset, error) {
	if s == nil {
		return nil, fmt.Errorf("fim: nil store")
	}
	if minSupport <= 0 {
		return nil, fmt.Errorf("fim: minSupport must be positive, got %d", minSupport)
	}
	// Level 1: frequent single items.
	supports := s.ItemSupports()
	var level [][]dataset.Item
	for i, v := range supports {
		if v >= minSupport {
			level = append(level, []dataset.Item{dataset.Item(i)})
		}
	}
	var out []Itemset
	for _, set := range level {
		out = append(out, Itemset{Items: set, Support: supports[set[0]]})
	}
	for len(level) > 0 {
		candidates := aprioriGen(level)
		if len(candidates) == 0 {
			break
		}
		counts := make([]int, len(candidates))
		s.Each(func(tx []dataset.Item) {
			for ci, cand := range candidates {
				if containsAll(tx, cand) {
					counts[ci]++
				}
			}
		})
		level = level[:0]
		for ci, cand := range candidates {
			if counts[ci] >= minSupport {
				level = append(level, cand)
				out = append(out, Itemset{Items: cand, Support: counts[ci]})
			}
		}
	}
	sortItemsets(out)
	return out, nil
}

// aprioriGen joins frequent k-itemsets sharing a (k-1)-prefix into (k+1)-
// candidates and prunes those with an infrequent subset.
func aprioriGen(level [][]dataset.Item) [][]dataset.Item {
	sort.Slice(level, func(i, j int) bool { return lessItems(level[i], level[j]) })
	frequent := map[string]bool{}
	for _, set := range level {
		frequent[itemsKey(set)] = true
	}
	var out [][]dataset.Item
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				break // sorted order: no later j shares the prefix either
			}
			cand := make([]dataset.Item, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			if cand[k-1] > cand[k] {
				cand[k-1], cand[k] = cand[k], cand[k-1]
			}
			if allSubsetsFrequent(cand, frequent) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b []dataset.Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []dataset.Item, frequent map[string]bool) bool {
	sub := make([]dataset.Item, 0, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !frequent[itemsKey(sub)] {
			return false
		}
	}
	return true
}

func itemsKey(items []dataset.Item) string {
	b := make([]byte, 0, len(items)*4)
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// containsAll reports whether the transaction contains every item of set.
func containsAll(tx, set []dataset.Item) bool {
	for _, want := range set {
		found := false
		for _, it := range tx {
			if it == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
