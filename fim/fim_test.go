package fim

import (
	"sort"
	"testing"
	"testing/quick"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/internal/rng"
)

// classic toy dataset with well-known frequent itemsets.
func toyStore() *dataset.Store {
	b := dataset.NewBuilder("toy", 6)
	txs := [][]dataset.Item{
		{0, 1, 4},
		{1, 3},
		{1, 2},
		{0, 1, 3},
		{0, 2},
		{1, 2},
		{0, 2},
		{0, 1, 2, 4},
		{0, 1, 2},
	}
	for _, tx := range txs {
		b.Add(tx)
	}
	return b.Build()
}

func findSet(t *testing.T, sets []Itemset, items ...dataset.Item) Itemset {
	t.Helper()
	for _, s := range sets {
		if len(s.Items) != len(items) {
			continue
		}
		match := true
		for i := range items {
			if s.Items[i] != items[i] {
				match = false
				break
			}
		}
		if match {
			return s
		}
	}
	t.Fatalf("itemset %v not found in %v", items, sets)
	return Itemset{}
}

func TestMineKnownSupports(t *testing.T) {
	sets, err := Mine(toyStore(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed supports on the toy data.
	cases := []struct {
		items   []dataset.Item
		support int
	}{
		{[]dataset.Item{0}, 6},
		{[]dataset.Item{1}, 7},
		{[]dataset.Item{2}, 6},
		{[]dataset.Item{3}, 2},
		{[]dataset.Item{4}, 2},
		{[]dataset.Item{0, 1}, 4},
		{[]dataset.Item{0, 2}, 4},
		{[]dataset.Item{1, 2}, 4},
		{[]dataset.Item{0, 1, 2}, 2},
		{[]dataset.Item{1, 3}, 2},
		{[]dataset.Item{0, 1, 4}, 2},
	}
	for _, c := range cases {
		got := findSet(t, sets, c.items...)
		if got.Support != c.support {
			t.Errorf("support%v = %d, want %d", c.items, got.Support, c.support)
		}
	}
	// No itemset below the threshold may appear.
	for _, s := range sets {
		if s.Support < 2 {
			t.Errorf("itemset %v below minSupport", s)
		}
	}
}

func TestMineMatchesApriori(t *testing.T) {
	for _, minSup := range []int{1, 2, 3, 5} {
		a, err := Mine(toyStore(), minSup)
		if err != nil {
			t.Fatal(err)
		}
		b, err := AprioriMine(toyStore(), minSup)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("minSup=%d: FP-Growth %d sets, Apriori %d", minSup, len(a), len(b))
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("minSup=%d: position %d differs: %v vs %v", minSup, i, a[i], b[i])
			}
		}
	}
}

// Property: FP-Growth equals Apriori on random small stores — the classic
// differential oracle for mining correctness.
func TestQuickMineEqualsApriori(t *testing.T) {
	f := func(seed uint64, nRaw, minRaw uint8) bool {
		src := rng.New(seed)
		nTx := int(nRaw%30) + 5
		minSup := int(minRaw%3) + 1
		b := dataset.NewBuilder("rand", 8)
		for i := 0; i < nTx; i++ {
			var tx []dataset.Item
			for it := dataset.Item(0); it < 8; it++ {
				if src.Float64() < 0.3 {
					tx = append(tx, it)
				}
			}
			if len(tx) == 0 {
				tx = []dataset.Item{dataset.Item(src.Intn(8))}
			}
			b.Add(tx)
		}
		s := b.Build()
		a, errA := Mine(s, minSup)
		ap, errB := AprioriMine(s, minSup)
		if errA != nil || errB != nil {
			return false
		}
		if len(a) != len(ap) {
			return false
		}
		for i := range a {
			if a[i].String() != ap[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMineValidation(t *testing.T) {
	if _, err := Mine(nil, 1); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := Mine(toyStore(), 0); err == nil {
		t.Error("zero minSupport accepted")
	}
	if _, err := AprioriMine(nil, 1); err == nil {
		t.Error("apriori nil store accepted")
	}
	if _, err := AprioriMine(toyStore(), -1); err == nil {
		t.Error("apriori bad minSupport accepted")
	}
}

func TestMineHighThresholdEmpty(t *testing.T) {
	sets, err := Mine(toyStore(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 0 {
		t.Errorf("got %d sets above impossible threshold", len(sets))
	}
}

func TestMineTopK(t *testing.T) {
	sets, err := MineTopK(toyStore(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 5 {
		t.Fatalf("got %d sets, want 5", len(sets))
	}
	// Must be the 5 highest-support itemsets: {1}:7, {0}:6, {2}:6, then
	// the 4-support pairs.
	if sets[0].Support != 7 || sets[1].Support != 6 || sets[2].Support != 6 {
		t.Errorf("top supports %v", sets[:3])
	}
	// Sorted non-increasing.
	for i := 1; i < len(sets); i++ {
		if sets[i].Support > sets[i-1].Support {
			t.Errorf("not sorted at %d: %v", i, sets)
		}
	}
}

func TestMineTopKFewerThanK(t *testing.T) {
	b := dataset.NewBuilder("tiny", 2)
	b.Add([]dataset.Item{0})
	s := b.Build()
	sets, err := MineTopK(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 {
		t.Fatalf("got %d sets, want 1", len(sets))
	}
}

func TestMineTopKValidation(t *testing.T) {
	if _, err := MineTopK(nil, 1); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := MineTopK(toyStore(), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPrivateTopKHighEpsilon(t *testing.T) {
	// With a huge budget the private selection must match the true top-k.
	truth, err := MineTopK(toyStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []svt.Method{svt.MethodEM, svt.MethodReTr} {
		got, err := PrivateTopK(toyStore(), PrivateTopKOptions{
			K: 3, Epsilon: 500, Method: method, Seed: 9,
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(got) != 3 {
			t.Fatalf("%v: selected %d", method, len(got))
		}
		wantSup := []int{truth[0].Support, truth[1].Support, truth[2].Support}
		gotSup := []int{got[0].Support, got[1].Support, got[2].Support}
		sort.Ints(wantSup)
		sort.Ints(gotSup)
		for i := range wantSup {
			if wantSup[i] != gotSup[i] {
				t.Errorf("%v: supports %v, want %v", method, gotSup, wantSup)
			}
		}
	}
}

func TestPrivateTopKValidation(t *testing.T) {
	cases := map[string]PrivateTopKOptions{
		"zero k":     {K: 0, Epsilon: 1},
		"zero eps":   {K: 1, Epsilon: 0},
		"neg factor": {K: 1, Epsilon: 1, CandidateFactor: -1},
	}
	for name, opts := range cases {
		if _, err := PrivateTopK(toyStore(), opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := PrivateTopK(nil, PrivateTopKOptions{K: 1, Epsilon: 1}); err == nil {
		t.Error("nil store accepted")
	}
}

func TestItemsetString(t *testing.T) {
	is := Itemset{Items: []dataset.Item{1, 2}, Support: 5}
	if got := is.String(); got != "[1 2]:5" {
		t.Errorf("String = %q", got)
	}
}
