package svt_test

// Integration tests spanning the whole pipeline: dataset generation →
// mining → private selection → utility metrics, and the paper's headline
// qualitative claims at miniature scale. Each test exercises several
// packages together; per-package behaviour is covered by the unit suites.

import (
	"errors"
	"testing"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/dp"
	"github.com/dpgo/svt/fim"
	"github.com/dpgo/svt/metrics"
	"github.com/dpgo/svt/pmw"
)

// End to end: generate a store, select top-c items privately with both
// non-interactive methods, and check the utility ordering at high budget.
func TestPipelineTopItemSelection(t *testing.T) {
	store, err := dataset.Generate(dataset.Zipf, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	scores := store.SupportsFloat()
	const c = 20
	trueTop := metrics.TopIndices(scores, c)
	top := metrics.TopIndices(scores, c+1)
	threshold := (scores[top[c-1]] + scores[top[c]]) / 2

	for _, method := range []svt.Method{svt.MethodEM, svt.MethodReTr} {
		sel, err := svt.TopC(scores, svt.SelectOptions{
			Epsilon: 20, Sensitivity: 1, C: c, Monotonic: true,
			Method: method, Threshold: threshold, BoostSD: 1, Seed: 31,
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		ser := metrics.SER(scores, trueTop, sel)
		if ser > 0.1 {
			t.Errorf("%v: high-budget SER %v too large", method, ser)
		}
	}
}

// End to end: FP-Growth candidates into a private selection, checked
// against the exact miner.
func TestPipelinePrivateItemsets(t *testing.T) {
	store, err := dataset.Generate(dataset.BMSPOS, 0.002, 8)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	truth, err := fim.MineTopK(store, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != k {
		t.Fatalf("exact miner returned %d sets", len(truth))
	}
	got, err := fim.PrivateTopK(store, fim.PrivateTopKOptions{
		K: k, Epsilon: 100, Method: svt.MethodEM, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("private selection returned %d sets", len(got))
	}
	// At this budget the support mass of the selection must be close to
	// the truth's.
	truthMass, gotMass := 0, 0
	for i := range truth {
		truthMass += truth[i].Support
		gotMass += got[i].Support
	}
	if float64(gotMass) < 0.9*float64(truthMass) {
		t.Errorf("selected mass %d far below truth %d", gotMass, truthMass)
	}
}

// The paper's two headline orderings at miniature scale: the optimal
// allocation beats 1:1 and EM beats single-pass SVT, on a fresh workload
// (not the experiments package's own fixtures).
func TestPipelinePaperOrderings(t *testing.T) {
	store, err := dataset.Generate(dataset.Kosarak, 0.005, 77)
	if err != nil {
		t.Fatal(err)
	}
	scores := store.SupportsFloat()
	// ε is chosen so the miniature workload sits in the same regime as the
	// paper's full-scale one: EM needs ε·gap/c ≳ ln(#tail candidates) to
	// separate the head from the 41k-item tail (at full scale ε=0.1
	// suffices; 200× smaller supports need a proportionally larger ε).
	const c, eps, runs = 40, 2.0, 12
	trueTop := metrics.TopIndices(scores, c)
	top := metrics.TopIndices(scores, c+1)
	threshold := (scores[top[c-1]] + scores[top[c]]) / 2

	meanSER := func(method svt.Method, alloc svt.Allocation) float64 {
		sum := 0.0
		for r := 0; r < runs; r++ {
			sel, err := svt.TopC(scores, svt.SelectOptions{
				Epsilon: eps, Sensitivity: 1, C: c, Monotonic: true,
				Method: method, Threshold: threshold, Allocation: alloc,
				Seed: uint64(5000 + r),
			})
			if err != nil {
				t.Fatal(err)
			}
			sum += metrics.SER(scores, trueTop, sel)
		}
		return sum / runs
	}
	oneOne := meanSER(svt.MethodSVT, svt.Allocation1x1)
	optimal := meanSER(svt.MethodSVT, svt.AllocationAuto)
	em := meanSER(svt.MethodEM, svt.AllocationAuto)
	if !(optimal <= oneOne+0.02) {
		t.Errorf("optimal allocation SER %v worse than 1:1 %v", optimal, oneOne)
	}
	// EM's dominance over SVT is a claim about the paper's configuration
	// (ε=0.1, full-scale supports) and is asserted by the experiments
	// suite; here just require EM to be accurate in a budget-rich regime.
	if em > 0.15 {
		t.Errorf("EM SER %v too large at high budget", em)
	}
}

// Budget accounting across a composite pipeline: an Accountant tracks a
// selection step plus per-answer Laplace releases and refuses overspend.
func TestPipelineBudgetAccounting(t *testing.T) {
	acct, err := dp.NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	const selectionEps, perAnswerEps = 0.5, 0.1
	if err := acct.Spend(selectionEps); err != nil {
		t.Fatal(err)
	}
	store, err := dataset.Generate(dataset.Zipf, 0.005, 3)
	if err != nil {
		t.Fatal(err)
	}
	scores := store.SupportsFloat()
	sel, err := svt.TopC(scores, svt.SelectOptions{
		Epsilon: selectionEps, Sensitivity: 1, C: 3, Monotonic: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	for _, idx := range sel {
		if err := acct.Spend(perAnswerEps); err != nil {
			if !errors.Is(err, dp.ErrBudgetExhausted) {
				t.Fatal(err)
			}
			break
		}
		lap, err := dp.NewLaplace(perAnswerEps, 1, uint64(idx+1))
		if err != nil {
			t.Fatal(err)
		}
		_ = lap.Release(scores[idx])
		released++
	}
	if released != 3 {
		t.Fatalf("released %d answers, want 3", released)
	}
	if acct.Remaining() < 0.19 || acct.Remaining() > 0.21 {
		t.Fatalf("remaining budget %v, want 0.2", acct.Remaining())
	}
}

// The interactive engine built on the public SVT gate answers repeated
// workloads with bounded data accesses — the intro's motivating scenario.
func TestPipelineInteractiveEngine(t *testing.T) {
	store, err := dataset.Generate(dataset.BMSPOS, 0.002, 9)
	if err != nil {
		t.Fatal(err)
	}
	supports := store.ItemSupports()
	hist := make([]float64, 50)
	for item, sup := range supports {
		hist[item%50] += float64(sup)
	}
	engine, err := pmw.New(pmw.Config{
		Histogram: hist, Epsilon: 5, MaxUpdates: 10, Threshold: 40, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]int{{0, 1, 2}, {10, 20}, {0, 1, 2}, {5}, {10, 20}, {0, 1, 2}}
	for cycle := 0; cycle < 10; cycle++ {
		for _, q := range queries {
			if _, err := engine.Answer(q); err != nil && !errors.Is(err, pmw.ErrExhausted) {
				t.Fatal(err)
			}
		}
	}
	if engine.Answered() != 60 {
		t.Fatalf("answered %d", engine.Answered())
	}
	if engine.Updates() > 10 {
		t.Fatalf("updates %d exceeded cutoff", engine.Updates())
	}
}
