module github.com/dpgo/svt

go 1.24
