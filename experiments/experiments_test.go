package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyConfig keeps unit-test cost minimal while exercising the full path.
func tinyConfig() Config {
	return Config{
		Scale:    0.01,
		Runs:     3,
		Epsilon:  0.1,
		CValues:  []int{10, 25},
		Datasets: []string{"BMS-POS", "Zipf"},
		Seed:     99,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Scale = 1.5 },
		func(c *Config) { c.Scale = math.NaN() },
		func(c *Config) { c.Runs = 0 },
		func(c *Config) { c.Epsilon = 0 },
		func(c *Config) { c.CValues = nil },
		func(c *Config) { c.CValues = []int{0} },
	}
	for i, mut := range bad {
		cfg := tinyConfig()
		mut(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
	if err := QuickConfig().validate(); err != nil {
		t.Errorf("QuickConfig invalid: %v", err)
	}
}

func TestCellString(t *testing.T) {
	c := Cell{Mean: 0.1234, SD: 0.056}
	if got := c.String(); got != "0.123±0.056" {
		t.Errorf("Cell.String = %q", got)
	}
}

func TestTable1MatchesPaperAtFullScale(t *testing.T) {
	// Generating the full-scale stores takes a few seconds; use the two
	// smaller profiles to check exact record counts, and scale for AOL.
	cfg := tinyConfig()
	cfg.Scale = 1
	cfg.Datasets = []string{"BMS-POS"}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.GeneratedRecords != r.PaperRecords {
		t.Errorf("records %d != paper %d", r.GeneratedRecords, r.PaperRecords)
	}
	if r.GeneratedItems != r.PaperItems {
		t.Errorf("items %d != paper %d", r.GeneratedItems, r.PaperItems)
	}
}

func TestTable2IsThePaperTable(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Method != "SVT-DPBook" || rows[3].Method != "EM" {
		t.Errorf("unexpected methods: %+v", rows)
	}
	interactive := 0
	for _, r := range rows {
		if r.Setting == "Interactive" {
			interactive++
		}
	}
	if interactive != 2 {
		t.Errorf("interactive rows = %d, want 2", interactive)
	}
}

func TestFigure2AuditVerdicts(t *testing.T) {
	cols, err := Figure2(4000, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 6 {
		t.Fatalf("got %d columns", len(cols))
	}
	for _, c := range cols {
		ratio := c.AuditedEpsilonLower / c.AuditEpsilon
		if c.DP && ratio > 1 {
			t.Errorf("%s: audited loss %.2fε exceeds budget for a private variant", c.Name, ratio)
		}
		if !c.DP && ratio <= 1 {
			t.Errorf("%s: audited loss %.2fε does not expose the broken variant", c.Name, ratio)
		}
	}
	if _, err := Figure2(0, 1, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Figure2(10, 0, 1); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestFigure3ShapesAndDeterminism(t *testing.T) {
	cfg := tinyConfig()
	series, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Scores) != 300 {
			t.Errorf("%s: %d ranks, want 300", s.Dataset, len(s.Scores))
		}
		for i := 1; i < len(s.Scores); i++ {
			if s.Scores[i] > s.Scores[i-1] {
				t.Errorf("%s: scores not sorted at rank %d", s.Dataset, i+1)
			}
		}
		if s.Scores[0] <= 0 {
			t.Errorf("%s: top score %v", s.Dataset, s.Scores[0])
		}
	}
	again, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range series {
		for r := range series[i].Scores {
			if series[i].Scores[r] != again[i].Scores[r] {
				t.Fatalf("Figure3 not deterministic at %s rank %d", series[i].Dataset, r+1)
			}
		}
	}
}

func TestFigure4ShapeAndSanity(t *testing.T) {
	cfg := tinyConfig()
	results, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x 5 methods.
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r.C) != len(cfg.CValues) || len(r.SER) != len(cfg.CValues) || len(r.FNR) != len(cfg.CValues) {
			t.Fatalf("%s/%s: ragged result", r.Dataset, r.Method)
		}
		for i := range r.C {
			for name, cell := range map[string]Cell{"SER": r.SER[i], "FNR": r.FNR[i]} {
				if cell.Mean < -1e-9 || cell.Mean > 1+1e-9 || math.IsNaN(cell.Mean) {
					t.Errorf("%s/%s c=%d: %s mean %v out of [0,1]", r.Dataset, r.Method, r.C[i], name, cell.Mean)
				}
				if cell.SD < 0 {
					t.Errorf("%s/%s: negative SD", r.Dataset, r.Method)
				}
			}
		}
	}
}

func TestFigure4OrderingDPBookWorst(t *testing.T) {
	// The paper's headline ordering: SVT-DPBook is clearly worse than the
	// optimized allocations at moderate c. Use a slightly bigger config so
	// the separation is far outside noise.
	cfg := Config{
		Scale: 0.05, Runs: 8, Epsilon: 0.1,
		CValues: []int{100}, Datasets: []string{"Zipf"}, Seed: 31,
	}
	results, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ser := map[string]float64{}
	for _, r := range results {
		ser[r.Method] = r.SER[0].Mean
	}
	if !(ser["SVT-DPBook"] > ser["SVT-S-1:c23"]) {
		t.Errorf("DPBook SER %v not worse than 1:c23 %v", ser["SVT-DPBook"], ser["SVT-S-1:c23"])
	}
	if !(ser["SVT-S-1:1"] >= ser["SVT-S-1:c23"]-0.05) {
		t.Errorf("1:1 SER %v unexpectedly beats optimal %v", ser["SVT-S-1:1"], ser["SVT-S-1:c23"])
	}
}

func TestFigure5ShapeAndEMWins(t *testing.T) {
	cfg := Config{
		Scale: 0.05, Runs: 8, Epsilon: 0.1,
		CValues: []int{100}, Datasets: []string{"Zipf"}, Seed: 33,
	}
	results, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 dataset x 7 methods (SVT-S, 5x ReTr, EM).
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	ser := map[string]float64{}
	for _, r := range results {
		ser[r.Method] = r.SER[0].Mean
	}
	if !(ser["EM"] <= ser["SVT-S-1:c23"]+0.02) {
		t.Errorf("EM SER %v worse than SVT-S %v; paper's conclusion violated", ser["EM"], ser["SVT-S-1:c23"])
	}
}

func TestSweepRejectsOversizedC(t *testing.T) {
	cfg := tinyConfig()
	cfg.CValues = []int{5000} // larger than both item universes
	if _, err := Figure4(cfg); err == nil {
		t.Error("oversized c accepted")
	}
}

func TestAlphaComparison(t *testing.T) {
	points, err := AlphaComparison([]int{10, 100, 1000}, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.AlphaSVT <= p.AlphaEM {
			t.Errorf("k=%d: SVT bound %v not worse than EM %v", p.K, p.AlphaSVT, p.AlphaEM)
		}
		// §5: the EM bound is less than 1/8 of the SVT bound.
		if p.Ratio < 8 {
			t.Errorf("k=%d: ratio %v < 8", p.K, p.Ratio)
		}
	}
	if _, err := AlphaComparison(nil, 0.05, 0.1); err == nil {
		t.Error("empty ks accepted")
	}
	if _, err := AlphaComparison([]int{1}, 0.05, 0.1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := AlphaComparison([]int{10}, 0, 0.1); err == nil {
		t.Error("beta 0 accepted")
	}
	if _, err := AlphaComparison([]int{10}, 0.5, 0); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

func TestRenderers(t *testing.T) {
	cfg := tinyConfig()
	results, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	SortResults(results)
	var buf bytes.Buffer
	if err := RenderSweep(&buf, results, "SER"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BMS-POS", "Zipf", "SVT-DPBook", "c=25"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered sweep missing %q", want)
		}
	}
	if err := RenderSweep(&buf, results, "XXX"); err == nil {
		t.Error("bad metric accepted")
	}

	buf.Reset()
	if err := WriteSweepCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantLines := 1 + len(results)*len(cfg.CValues)
	if len(lines) != wantLines {
		t.Errorf("CSV has %d lines, want %d", len(lines), wantLines)
	}

	series, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderScoreSeries(&buf, series)
	if !strings.Contains(buf.String(), "rank") {
		t.Error("score series render missing header")
	}
	buf.Reset()
	if err := WriteScoreSeriesCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 1+2*300 {
		t.Errorf("score CSV lines = %d", got)
	}

	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "BMS-POS") {
		t.Error("table1 render missing dataset")
	}
	buf.Reset()
	RenderTable2(&buf, Table2())
	if !strings.Contains(buf.String(), "Exponential Mechanism") {
		t.Error("table2 render missing EM")
	}
	points, err := AlphaComparison([]int{10}, 0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	RenderAlpha(&buf, points)
	if !strings.Contains(buf.String(), "alpha_SVT") {
		t.Error("alpha render missing header")
	}
}

func TestRenderFigure2(t *testing.T) {
	cols, err := Figure2(500, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure2(&buf, cols)
	out := buf.String()
	for _, want := range []string{"Alg. 1", "Alg. 6", "∞-DP", "ε/4"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure2 render missing %q", want)
		}
	}
}

func TestSortResultsPaperOrder(t *testing.T) {
	rs := []MethodResult{
		{Dataset: "Zipf", Method: "b"},
		{Dataset: "BMS-POS", Method: "z"},
		{Dataset: "Zipf", Method: "a"},
		{Dataset: "AOL", Method: "m"},
	}
	SortResults(rs)
	want := []string{"BMS-POS", "AOL", "Zipf", "Zipf"}
	for i, w := range want {
		if rs[i].Dataset != w {
			t.Fatalf("position %d: %s, want %s", i, rs[i].Dataset, w)
		}
	}
	if rs[2].Method != "a" || rs[3].Method != "b" {
		t.Error("methods not sorted within dataset")
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"nope"}
	if _, err := Figure3(cfg); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Figure4(cfg); err == nil {
		t.Error("unknown dataset accepted in sweep")
	}
	if _, err := Table1(cfg); err == nil {
		t.Error("unknown dataset accepted in table1")
	}
}
