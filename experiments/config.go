// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): Table 1 (dataset characteristics), Table 2 (algorithm
// summary), Figure 2 (variant differences, with audited privacy verdicts),
// Figure 3 (top-300 score distributions), Figure 4 (interactive-setting
// comparison), Figure 5 (non-interactive comparison), and the §5
// closed-form α_SVT vs α_EM analysis.
//
// Every experiment is deterministic in Config.Seed and is exposed both as a
// library call (used by the benchmarks in the repository root) and through
// cmd/svtbench, which prints paper-style rows and CSV.
package experiments

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/stats"
)

// Config carries the evaluation parameters shared by the figure sweeps.
type Config struct {
	// Scale shrinks the generated datasets: 1 reproduces the exact Table 1
	// sizes; smaller values shrink record counts proportionally (shapes
	// are preserved, wall-clock drops). Must be in (0, 1].
	Scale float64
	// Runs is the number of randomized repetitions per configuration; the
	// paper uses 100.
	Runs int
	// Epsilon is the total privacy budget; the paper reports ε = 0.1.
	Epsilon float64
	// CValues is the sweep over the number of selected queries; the paper
	// uses 25, 50, ..., 300.
	CValues []int
	// Datasets restricts the sweep to the named profiles (nil = all four).
	Datasets []string
	// Seed makes the whole experiment reproducible.
	Seed uint64
}

// DefaultConfig returns the paper's evaluation settings at full scale.
func DefaultConfig() Config {
	return Config{
		Scale:   1.0,
		Runs:    100,
		Epsilon: 0.1,
		CValues: []int{25, 50, 75, 100, 125, 150, 175, 200, 225, 250, 275, 300},
		Seed:    20170401, // arbitrary fixed seed: VLDB 2017 volume date
	}
}

// QuickConfig returns a reduced-cost configuration with the same shape:
// smaller datasets and fewer runs. Tests and smoke benches use it.
func QuickConfig() Config {
	return Config{
		Scale:   0.02,
		Runs:    10,
		Epsilon: 0.1,
		CValues: []int{25, 100, 300},
		// The two small item universes; AOL's 2.3M-item sweep belongs in
		// the full harness, not in smoke tests.
		Datasets: []string{"BMS-POS", "Zipf"},
		Seed:     7,
	}
}

func (c Config) validate() error {
	if !(c.Scale > 0 && c.Scale <= 1) || math.IsNaN(c.Scale) {
		return fmt.Errorf("experiments: Scale must be in (0,1], got %v", c.Scale)
	}
	if c.Runs <= 0 {
		return fmt.Errorf("experiments: Runs must be positive, got %d", c.Runs)
	}
	if !(c.Epsilon > 0) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("experiments: Epsilon must be positive and finite, got %v", c.Epsilon)
	}
	if len(c.CValues) == 0 {
		return fmt.Errorf("experiments: CValues must be non-empty")
	}
	for _, cv := range c.CValues {
		if cv <= 0 {
			return fmt.Errorf("experiments: CValues must be positive, got %d", cv)
		}
	}
	return nil
}

// Cell is one aggregated measurement: mean and standard deviation over
// Config.Runs repetitions.
type Cell struct {
	Mean, SD float64
}

// String renders "mean±sd" with three decimals, the precision the paper's
// plots convey.
func (c Cell) String() string {
	return fmt.Sprintf("%.3f±%.3f", c.Mean, c.SD)
}

// cellOf aggregates an accumulator into a Cell; a single run has SD 0.
func cellOf(acc *stats.Accumulator) Cell {
	sd := acc.StdDev()
	if math.IsNaN(sd) {
		sd = 0
	}
	return Cell{Mean: acc.Mean(), SD: sd}
}
