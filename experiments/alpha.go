package experiments

import (
	"fmt"
	"math"
)

// AlphaPoint is one row of the §5 closed-form utility comparison between
// SVT and EM for selecting the single above-threshold query among k.
type AlphaPoint struct {
	// K is the number of queries; Beta the failure probability.
	K    int
	Beta float64
	// AlphaSVT is the (α, β)-accuracy bound of SVT (Dwork & Roth Thm 3.24,
	// c = Δ = 1): α = 8(ln k + ln(2/β))/ε.
	AlphaSVT float64
	// AlphaEM is the paper's bound for EM in the same setting:
	// α = (ln(k−1) + ln((1−β)/β))/ε.
	AlphaEM float64
	// Ratio is AlphaSVT/AlphaEM; the paper's point is that it exceeds 8.
	Ratio float64
}

// AlphaComparison evaluates both bounds over the given k values. epsilon
// and beta must be in their valid ranges; every k must be at least 2 (the
// EM bound needs k−1 ≥ 1).
func AlphaComparison(ks []int, beta, epsilon float64) ([]AlphaPoint, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiments: no k values")
	}
	if !(beta > 0 && beta < 1) {
		return nil, fmt.Errorf("experiments: beta must be in (0,1), got %v", beta)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("experiments: epsilon must be positive, got %v", epsilon)
	}
	out := make([]AlphaPoint, 0, len(ks))
	for _, k := range ks {
		if k < 2 {
			return nil, fmt.Errorf("experiments: k must be >= 2, got %d", k)
		}
		svt := 8 * (math.Log(float64(k)) + math.Log(2/beta)) / epsilon
		em := (math.Log(float64(k-1)) + math.Log((1-beta)/beta)) / epsilon
		out = append(out, AlphaPoint{
			K: k, Beta: beta,
			AlphaSVT: svt, AlphaEM: em, Ratio: svt / em,
		})
	}
	return out, nil
}
