package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderSweep writes the Figure 4/5 results as one paper-style text table
// per dataset: methods as rows, c values as columns, for the chosen metric
// ("SER" or "FNR").
func RenderSweep(w io.Writer, results []MethodResult, metric string) error {
	if metric != "SER" && metric != "FNR" {
		return fmt.Errorf("experiments: unknown metric %q (want SER or FNR)", metric)
	}
	byDataset := map[string][]MethodResult{}
	var order []string
	for _, r := range results {
		if _, ok := byDataset[r.Dataset]; !ok {
			order = append(order, r.Dataset)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	for _, ds := range order {
		rs := byDataset[ds]
		fmt.Fprintf(w, "\n%s, %s (mean±sd over runs)\n", ds, metric)
		header := []string{fmt.Sprintf("%-22s", "method")}
		for _, c := range rs[0].C {
			header = append(header, fmt.Sprintf("%13s", fmt.Sprintf("c=%d", c)))
		}
		fmt.Fprintln(w, strings.Join(header, " "))
		for _, r := range rs {
			row := []string{fmt.Sprintf("%-22s", r.Method)}
			cells := r.SER
			if metric == "FNR" {
				cells = r.FNR
			}
			for _, cell := range cells {
				row = append(row, fmt.Sprintf("%13s", cell.String()))
			}
			fmt.Fprintln(w, strings.Join(row, " "))
		}
	}
	return nil
}

// WriteSweepCSV writes the full sweep (both metrics) as CSV with the
// columns dataset,method,c,ser_mean,ser_sd,fnr_mean,fnr_sd.
func WriteSweepCSV(w io.Writer, results []MethodResult) error {
	if _, err := fmt.Fprintln(w, "dataset,method,c,ser_mean,ser_sd,fnr_mean,fnr_sd"); err != nil {
		return err
	}
	for _, r := range results {
		for i, c := range r.C {
			_, err := fmt.Fprintf(w, "%s,%s,%d,%.6f,%.6f,%.6f,%.6f\n",
				r.Dataset, r.Method, c,
				r.SER[i].Mean, r.SER[i].SD, r.FNR[i].Mean, r.FNR[i].SD)
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderScoreSeries writes Figure 3 as a rank/score table (one column per
// dataset, log-log shape left to the eye or a plotting tool), sampling a
// handful of ranks like the published plot's axis.
func RenderScoreSeries(w io.Writer, series []ScoreSeries) {
	fmt.Fprintln(w, "\nFigure 3: top-300 item supports (sampled ranks)")
	ranks := []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 300}
	header := []string{fmt.Sprintf("%6s", "rank")}
	for _, s := range series {
		header = append(header, fmt.Sprintf("%12s", s.Dataset))
	}
	fmt.Fprintln(w, strings.Join(header, " "))
	for _, r := range ranks {
		row := []string{fmt.Sprintf("%6d", r)}
		for _, s := range series {
			if r <= len(s.Scores) {
				row = append(row, fmt.Sprintf("%12.0f", s.Scores[r-1]))
			} else {
				row = append(row, fmt.Sprintf("%12s", "-"))
			}
		}
		fmt.Fprintln(w, strings.Join(row, " "))
	}
}

// WriteScoreSeriesCSV writes the full Figure 3 data as CSV.
func WriteScoreSeriesCSV(w io.Writer, series []ScoreSeries) error {
	if _, err := fmt.Fprintln(w, "dataset,rank,score"); err != nil {
		return err
	}
	for _, s := range series {
		for i, score := range s.Scores {
			if _, err := fmt.Fprintf(w, "%s,%d,%.0f\n", s.Dataset, i+1, score); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderTable1 writes Table 1 with the published and realized sizes.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "\nTable 1: dataset characteristics (paper vs generated)")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %14s\n", "dataset", "paper recs", "gen recs", "paper items", "gen items")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14d %14d %14d %14d\n",
			r.Name, r.PaperRecords, r.GeneratedRecords, r.PaperItems, r.GeneratedItems)
	}
}

// RenderTable2 writes Table 2.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "\nTable 2: summary of algorithms")
	fmt.Fprintf(w, "%-16s %-12s %s\n", "setting", "method", "description")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-12s %s\n", r.Setting, r.Method, r.Description)
	}
}

// RenderFigure2 writes the Figure 2 table with audit verdicts.
func RenderFigure2(w io.Writer, cols []Figure2Column) {
	fmt.Fprintln(w, "\nFigure 2: differences among Algorithms 1-6 (with audit verdicts)")
	fmt.Fprintf(w, "%-8s %-6s %-10s %-6s %-10s %-8s %-10s %-16s %s\n",
		"variant", "eps1", "rho scale", "reset", "nu scale", "numeric", "unbounded", "privacy", "audited loss (eps units)")
	for _, c := range cols {
		fmt.Fprintf(w, "%-8s %-6s %-10s %-6v %-10s %-8v %-10v %-16s %.2f\n",
			c.Name, fracString(c.Eps1Fraction), c.ThresholdNoiseScale, c.ResetsRho,
			c.QueryNoiseScale, c.OutputsNumeric, c.UnboundedPositives, c.PrivacyProperty,
			c.AuditedEpsilonLower/c.AuditEpsilon)
	}
}

func fracString(f float64) string {
	switch f {
	case 0.5:
		return "ε/2"
	case 0.25:
		return "ε/4"
	default:
		return fmt.Sprintf("%gε", f)
	}
}

// RenderAlpha writes the §5 α comparison.
func RenderAlpha(w io.Writer, points []AlphaPoint) {
	fmt.Fprintln(w, "\nSection 5: closed-form (alpha, beta)-accuracy, SVT vs EM")
	fmt.Fprintf(w, "%8s %8s %14s %14s %8s\n", "k", "beta", "alpha_SVT", "alpha_EM", "ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %8.3f %14.1f %14.1f %8.2f\n", p.K, p.Beta, p.AlphaSVT, p.AlphaEM, p.Ratio)
	}
}

// SortResults orders sweep results by dataset (paper order) then method
// name, giving deterministic output across map-iteration differences.
func SortResults(results []MethodResult) {
	paperOrder := map[string]int{"BMS-POS": 0, "Kosarak": 1, "AOL": 2, "Zipf": 3}
	sort.SliceStable(results, func(i, j int) bool {
		di, dj := paperOrder[results[i].Dataset], paperOrder[results[j].Dataset]
		if di != dj {
			return di < dj
		}
		return results[i].Method < results[j].Method
	})
}
