package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func mkResult(dataset, method string, sers ...float64) MethodResult {
	r := MethodResult{Dataset: dataset, Method: method}
	for i, s := range sers {
		r.C = append(r.C, 25*(i+1))
		r.SER = append(r.SER, Cell{Mean: s, SD: s / 10})
		r.FNR = append(r.FNR, Cell{Mean: s, SD: s / 10})
	}
	return r
}

func fig4Fixture(good bool) []MethodResult {
	if good {
		return []MethodResult{
			mkResult("X", "SVT-DPBook", 0.9, 0.8),
			mkResult("X", "SVT-S-1:1", 0.7, 0.6),
			mkResult("X", "SVT-S-1:3", 0.5, 0.4),
			mkResult("X", "SVT-S-1:c", 0.35, 0.32),
			mkResult("X", "SVT-S-1:c23", 0.3, 0.25),
		}
	}
	return []MethodResult{
		mkResult("X", "SVT-DPBook", 0.1, 0.1), // best instead of worst
		mkResult("X", "SVT-S-1:1", 0.7, 0.6),
		mkResult("X", "SVT-S-1:3", 0.5, 0.4),
		mkResult("X", "SVT-S-1:c", 0.35, 0.32),
		mkResult("X", "SVT-S-1:c23", 0.3, 0.25),
	}
}

func TestVerifyFigure4Fixtures(t *testing.T) {
	for _, c := range VerifyFigure4(fig4Fixture(true)) {
		if c.ID == "fig4/1c-higher-sd/X" {
			// SDs in the fixture scale with means, so 1:c (0.335 avg) has
			// higher SD than 1:c23 (0.275 avg): claim holds.
			if !c.Holds {
				t.Errorf("%s failed on good fixture: %s", c.ID, c.Detail)
			}
			continue
		}
		if !c.Holds {
			t.Errorf("claim %s failed on good fixture: %s", c.ID, c.Detail)
		}
	}
	failedAny := false
	for _, c := range VerifyFigure4(fig4Fixture(false)) {
		if !c.Holds {
			failedAny = true
		}
	}
	if !failedAny {
		t.Error("bad fixture passed all claims")
	}
}

func TestVerifyFigure5Fixtures(t *testing.T) {
	good := []MethodResult{
		mkResult("Y", "SVT-S-1:c23", 0.6, 0.5),
		mkResult("Y", "SVT-ReTr-1:c23-1D", 0.4, 0.35),
		mkResult("Y", "SVT-ReTr-1:c23-3D", 0.3, 0.25),
		mkResult("Y", "EM", 0.2, 0.15),
	}
	for _, c := range VerifyFigure5(good) {
		if !c.Holds {
			t.Errorf("claim %s failed on good fixture: %s", c.ID, c.Detail)
		}
	}
	bad := []MethodResult{
		mkResult("Y", "SVT-S-1:c23", 0.1, 0.1), // SVT-S beats EM and ReTr
		mkResult("Y", "SVT-ReTr-1:c23-1D", 0.4, 0.35),
		mkResult("Y", "EM", 0.2, 0.15),
	}
	failedAny := false
	for _, c := range VerifyFigure5(bad) {
		if !c.Holds {
			failedAny = true
		}
	}
	if !failedAny {
		t.Error("bad fixture passed all fig5 claims")
	}
}

// The real miniature sweeps must pass their own claims — the same check
// `svtbench -verify` runs at paper scale.
func TestVerifyOnMeasuredSweeps(t *testing.T) {
	cfg := Config{
		Scale: 0.05, Runs: 8, Epsilon: 0.1,
		CValues: []int{50, 100, 200}, Datasets: []string{"Zipf"}, Seed: 41,
	}
	f4, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if failed := RenderClaims(&buf, VerifyFigure4(f4)); failed > 0 {
		t.Errorf("figure 4 claims failed on measured sweep:\n%s", buf.String())
	}
	f5, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if failed := RenderClaims(&buf, VerifyFigure5(f5)); failed > 0 {
		t.Errorf("figure 5 claims failed on measured sweep:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Error("render produced no PASS lines")
	}
}
