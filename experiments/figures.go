package experiments

import (
	"fmt"

	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
	"github.com/dpgo/svt/internal/stats"
	"github.com/dpgo/svt/metrics"
)

// ScoreSeries is one curve of Figure 3: the supports of a dataset's top
// items by rank.
type ScoreSeries struct {
	Dataset string
	// Scores[r] is the support of the item at rank r+1 (descending).
	Scores []float64
}

// Figure3 regenerates the "distribution of the 300 highest scores" plot:
// for each dataset it generates the store and extracts the top-300 item
// supports. (At reduced Config.Scale supports shrink proportionally; the
// log-log shapes — the figure's point — are preserved.)
func Figure3(cfg Config) ([]ScoreSeries, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	profiles, err := selectedProfiles(cfg)
	if err != nil {
		return nil, err
	}
	const ranks = 300
	out := make([]ScoreSeries, 0, len(profiles))
	for pi, p := range profiles {
		store, err := dataset.Generate(p, cfg.Scale, cfg.Seed+uint64(pi))
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", p.Name, err)
		}
		top := store.TopSupports(ranks)
		series := ScoreSeries{Dataset: p.Name, Scores: make([]float64, len(top))}
		for i, ts := range top {
			series.Scores[i] = float64(ts.Support)
		}
		out = append(out, series)
	}
	return out, nil
}

// MethodResult is one curve of Figure 4 or 5 on one dataset: SER and FNR
// cells per c value.
type MethodResult struct {
	Dataset string
	Method  string
	C       []int
	SER     []Cell
	FNR     []Cell
}

// selector runs one private top-c selection over the (shuffled) scores and
// returns selected indices into the shuffled vector.
type selector func(src *rng.Source, shuffled []float64, threshold float64, c int) []int

// method pairs a paper label with its selector.
type method struct {
	name string
	run  selector
}

// interactiveMethods are the Figure 4 contenders: the Dwork-Roth book SVT
// and the paper's standard SVT under four budget allocations. Count
// queries are monotonic, so SVT-S uses the Theorem-5 noise (the paper does
// the same: "since the count query is monotonic, we use the version for
// monotonic queries").
func interactiveMethods(epsilon float64) []method {
	svtS := func(ratio core.Ratio) selector {
		return func(src *rng.Source, shuffled []float64, threshold float64, c int) []int {
			eps1, eps2 := ratio.Split(epsilon, c)
			return core.SelectSVT(src, shuffled, threshold, core.ReTrConfig{
				Eps1: eps1, Eps2: eps2, Delta: 1, C: c, Monotonic: true,
			})
		}
	}
	return []method{
		{"SVT-DPBook", func(src *rng.Source, shuffled []float64, threshold float64, c int) []int {
			alg := core.NewAlg2(src, epsilon, 1, c)
			selected := make([]int, 0, c)
			for idx, s := range shuffled {
				ans, ok := alg.Next(s, threshold)
				if !ok {
					break
				}
				if ans.Above {
					selected = append(selected, idx)
				}
			}
			return selected
		}},
		{"SVT-S-1:1", svtS(core.RatioOneOne)},
		{"SVT-S-1:3", svtS(core.RatioOneThree)},
		{"SVT-S-1:c", svtS(core.RatioOneC)},
		{"SVT-S-1:c23", svtS(core.RatioCubeRootC)},
	}
}

// nonInteractiveMethods are the Figure 5 contenders: the best interactive
// SVT, retraversal with threshold boosts of 1-5 noise SDs, and the
// exponential mechanism.
func nonInteractiveMethods(epsilon float64) []method {
	ms := []method{
		{"SVT-S-1:c23", func(src *rng.Source, shuffled []float64, threshold float64, c int) []int {
			eps1, eps2 := core.RatioCubeRootC.Split(epsilon, c)
			return core.SelectSVT(src, shuffled, threshold, core.ReTrConfig{
				Eps1: eps1, Eps2: eps2, Delta: 1, C: c, Monotonic: true,
			})
		}},
	}
	for boost := 1; boost <= 5; boost++ {
		b := float64(boost)
		ms = append(ms, method{
			name: fmt.Sprintf("SVT-ReTr-1:c23-%dD", boost),
			run: func(src *rng.Source, shuffled []float64, threshold float64, c int) []int {
				eps1, eps2 := core.RatioCubeRootC.Split(epsilon, c)
				return core.SelectReTr(src, shuffled, threshold, core.ReTrConfig{
					Eps1: eps1, Eps2: eps2, Delta: 1, C: c, Monotonic: true,
					BoostSD: b, MaxPasses: 200,
				})
			},
		})
	}
	ms = append(ms, method{"EM", func(src *rng.Source, shuffled []float64, threshold float64, c int) []int {
		return core.SelectEM(src, shuffled, epsilon, 1, c, true)
	}})
	return ms
}

// Figure4 regenerates the interactive-setting comparison (Figure 4 a-h):
// SER and FNR versus c for SVT-DPBook and SVT-S under four allocations, on
// each dataset.
func Figure4(cfg Config) ([]MethodResult, error) {
	return runSweep(cfg, interactiveMethods(cfg.Epsilon))
}

// Figure5 regenerates the non-interactive comparison (Figure 5 a-h):
// SVT-S-1:c^{2/3}, SVT-ReTr with 1D-5D threshold boosts, and EM.
func Figure5(cfg Config) ([]MethodResult, error) {
	return runSweep(cfg, nonInteractiveMethods(cfg.Epsilon))
}

// runSweep executes the shared §6 protocol: for every dataset and every c,
// the threshold is the midpoint of the c-th and (c+1)-th highest scores,
// the item order is reshuffled every run, and SER/FNR are averaged over
// Config.Runs runs.
func runSweep(cfg Config, methods []method) ([]MethodResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	profiles, err := selectedProfiles(cfg)
	if err != nil {
		return nil, err
	}
	var out []MethodResult
	for pi, p := range profiles {
		store, err := dataset.Generate(p, cfg.Scale, cfg.Seed+uint64(pi))
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", p.Name, err)
		}
		scores := store.SupportsFloat()
		results := make([]MethodResult, len(methods))
		for mi, m := range methods {
			results[mi] = MethodResult{Dataset: p.Name, Method: m.name}
		}
		master := rng.New(cfg.Seed ^ (0x9e3779b9 * uint64(pi+1)))
		shuffled := make([]float64, len(scores))
		for _, c := range cfg.CValues {
			if c >= len(scores) {
				return nil, fmt.Errorf("experiments: c=%d too large for %s (%d items)", c, p.Name, len(scores))
			}
			trueTop := metrics.TopIndices(scores, c)
			topSet := make(map[int]bool, c)
			for _, idx := range trueTop {
				topSet[idx] = true
			}
			threshold := thresholdFor(scores, c)
			serAcc := make([]stats.Accumulator, len(methods))
			fnrAcc := make([]stats.Accumulator, len(methods))
			for run := 0; run < cfg.Runs; run++ {
				perm := master.Perm(len(scores))
				for i, j := range perm {
					shuffled[i] = scores[j]
				}
				for mi, m := range methods {
					sel := m.run(master.Split(), shuffled, threshold, c)
					mapped := make([]int, len(sel))
					for i, pos := range sel {
						mapped[i] = perm[pos]
					}
					serAcc[mi].Add(metrics.SER(scores, trueTop, mapped))
					fnrAcc[mi].Add(metrics.FNR(trueTop, mapped))
				}
			}
			for mi := range methods {
				results[mi].C = append(results[mi].C, c)
				results[mi].SER = append(results[mi].SER, cellOf(&serAcc[mi]))
				results[mi].FNR = append(results[mi].FNR, cellOf(&fnrAcc[mi]))
			}
		}
		out = append(out, results...)
	}
	return out, nil
}

// thresholdFor returns the paper's threshold rule: the average of the c-th
// and (c+1)-th highest scores.
func thresholdFor(scores []float64, c int) float64 {
	top := metrics.TopIndices(scores, c+1)
	return (scores[top[c-1]] + scores[top[c]]) / 2
}

// selectedProfiles resolves Config.Datasets (nil = all of Table 1).
func selectedProfiles(cfg Config) ([]dataset.Profile, error) {
	if len(cfg.Datasets) == 0 {
		return dataset.Profiles(), nil
	}
	out := make([]dataset.Profile, 0, len(cfg.Datasets))
	for _, name := range cfg.Datasets {
		p, err := dataset.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
