package experiments

import (
	"fmt"
	"io"
)

// Claim is one of the paper's qualitative assertions checked against a
// measured sweep — the EXPERIMENTS.md checklist as code.
type Claim struct {
	// ID ties the claim to its paper location.
	ID string
	// Description is the assertion in words.
	Description string
	// Holds reports whether the measured data supports it.
	Holds bool
	// Detail carries the measured numbers behind the verdict.
	Detail string
}

// VerifyFigure4 checks the paper's Figure-4 claims on a measured
// interactive sweep: SVT-DPBook is worst, the allocation ordering
// DPBook ≥ 1:1 ≥ 1:3 ≥ best(1:c, 1:c^{2/3}), and 1:c's larger variance.
// Claims are evaluated on mean SER averaged over the c sweep per dataset.
func VerifyFigure4(results []MethodResult) []Claim {
	byDataset := groupByDataset(results)
	var claims []Claim
	for ds, rs := range byDataset {
		mean := map[string]float64{}
		sd := map[string]float64{}
		for _, r := range rs {
			mean[r.Method] = meanSER(r)
			sd[r.Method] = meanSD(r)
		}
		worst := Claim{
			ID:          "fig4/dpbook-worst/" + ds,
			Description: "SVT-DPBook has the highest average SER on " + ds,
		}
		worst.Holds = true
		for m, v := range mean {
			if m != "SVT-DPBook" && v > mean["SVT-DPBook"]+1e-9 {
				worst.Holds = false
			}
		}
		worst.Detail = fmt.Sprintf("DPBook %.3f vs others %s", mean["SVT-DPBook"], fmtMeans(mean))
		claims = append(claims, worst)

		ordering := Claim{
			ID:          "fig4/allocation-order/" + ds,
			Description: "average SER ordering 1:1 ≥ 1:3 ≥ min(1:c, 1:c^(2/3)) on " + ds,
		}
		best := mean["SVT-S-1:c"]
		if mean["SVT-S-1:c23"] < best {
			best = mean["SVT-S-1:c23"]
		}
		ordering.Holds = mean["SVT-S-1:1"]+1e-9 >= mean["SVT-S-1:3"] &&
			mean["SVT-S-1:3"]+1e-9 >= best
		ordering.Detail = fmtMeans(mean)
		claims = append(claims, ordering)

		variance := Claim{
			ID:          "fig4/1c-higher-sd/" + ds,
			Description: "1:c has a larger average SD than 1:c^(2/3) on " + ds,
			Holds:       sd["SVT-S-1:c"] > sd["SVT-S-1:c23"],
			Detail:      fmt.Sprintf("sd(1:c)=%.3f sd(1:c23)=%.3f", sd["SVT-S-1:c"], sd["SVT-S-1:c23"]),
		}
		claims = append(claims, variance)
	}
	return claims
}

// VerifyFigure5 checks the Figure-5 claims on a measured non-interactive
// sweep: EM is at least as good as every SVT method on average, and the
// retraversal boost improves on plain SVT-S.
func VerifyFigure5(results []MethodResult) []Claim {
	byDataset := groupByDataset(results)
	var claims []Claim
	for ds, rs := range byDataset {
		mean := map[string]float64{}
		for _, r := range rs {
			mean[r.Method] = meanSER(r)
		}
		em := Claim{
			ID:          "fig5/em-wins/" + ds,
			Description: "EM's average SER is lowest on " + ds,
		}
		// The 0.02 slack absorbs Monte-Carlo noise at small run counts; the
		// paper-scale gaps are an order of magnitude larger.
		em.Holds = true
		for m, v := range mean {
			if m != "EM" && v < mean["EM"]-0.02 {
				em.Holds = false
			}
		}
		em.Detail = fmtMeans(mean)
		claims = append(claims, em)

		bestReTr := 2.0
		for m, v := range mean {
			if len(m) > 8 && m[:8] == "SVT-ReTr" && v < bestReTr {
				bestReTr = v
			}
		}
		retr := Claim{
			ID:          "fig5/retraversal-helps/" + ds,
			Description: "the best retraversal boost beats single-pass SVT-S on " + ds,
			Holds:       bestReTr <= mean["SVT-S-1:c23"]+0.01,
			Detail:      fmt.Sprintf("best ReTr %.3f vs SVT-S %.3f", bestReTr, mean["SVT-S-1:c23"]),
		}
		claims = append(claims, retr)
	}
	return claims
}

// RenderClaims writes a pass/fail checklist.
func RenderClaims(w io.Writer, claims []Claim) (failed int) {
	fmt.Fprintln(w, "\nclaim verification:")
	for _, c := range claims {
		mark := "PASS"
		if !c.Holds {
			mark = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "[%s] %-34s %s\n       %s\n", mark, c.ID, c.Description, c.Detail)
	}
	return failed
}

func groupByDataset(results []MethodResult) map[string][]MethodResult {
	out := map[string][]MethodResult{}
	for _, r := range results {
		out[r.Dataset] = append(out[r.Dataset], r)
	}
	return out
}

func meanSER(r MethodResult) float64 {
	sum := 0.0
	for _, c := range r.SER {
		sum += c.Mean
	}
	return sum / float64(len(r.SER))
}

func meanSD(r MethodResult) float64 {
	sum := 0.0
	for _, c := range r.SER {
		sum += c.SD
	}
	return sum / float64(len(r.SER))
}

func fmtMeans(mean map[string]float64) string {
	// Stable order for the handful of known methods.
	order := []string{"SVT-DPBook", "SVT-S-1:1", "SVT-S-1:3", "SVT-S-1:c", "SVT-S-1:c23",
		"SVT-ReTr-1:c23-1D", "SVT-ReTr-1:c23-2D", "SVT-ReTr-1:c23-3D",
		"SVT-ReTr-1:c23-4D", "SVT-ReTr-1:c23-5D", "EM"}
	s := ""
	for _, m := range order {
		if v, ok := mean[m]; ok {
			s += fmt.Sprintf("%s=%.3f ", m, v)
		}
	}
	return s
}
