package experiments

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/audit"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
)

// Table1Row is one row of Table 1 (dataset characteristics), carrying both
// the published values and the realized values of the generated store.
type Table1Row struct {
	Name             string
	PaperRecords     int
	PaperItems       int
	GeneratedRecords int
	GeneratedItems   int
}

// Table1 regenerates Table 1 by actually generating each store at
// cfg.Scale and reporting realized sizes next to the published ones; at
// Scale 1 they must match exactly.
func Table1(cfg Config) ([]Table1Row, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	profiles, err := selectedProfiles(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Table1Row, 0, len(profiles))
	for pi, p := range profiles {
		store, err := dataset.Generate(p, cfg.Scale, cfg.Seed+uint64(pi))
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s: %w", p.Name, err)
		}
		out = append(out, Table1Row{
			Name:             p.Name,
			PaperRecords:     p.Records,
			PaperItems:       p.Items,
			GeneratedRecords: store.NumRecords(),
			GeneratedItems:   store.NumItems(),
		})
	}
	return out, nil
}

// Table2Row is one row of Table 2 (summary of algorithms).
type Table2Row struct {
	Setting     string
	Method      string
	Description string
}

// Table2 returns the paper's Table 2 verbatim.
func Table2() []Table2Row {
	return []Table2Row{
		{"Interactive", "SVT-DPBook", "DPBook SVT (Alg. 2)."},
		{"Interactive", "SVT-S", "Standard SVT (Alg. 7)."},
		{"Non-interactive", "SVT-ReTr", "Standard SVT with Retraversal."},
		{"Non-interactive", "EM", "Exponential Mechanism."},
	}
}

// Figure2Column is one column of Figure 2 ("Differences among Algorithms
// 1-6"): the published metadata plus this repository's audit verdict.
type Figure2Column struct {
	core.Metadata
	// AuditedEpsilonLower is a 95%-confidence lower bound on the privacy
	// loss ln(Pr[A(D)=a]/Pr[A(D′)=a]) measured on the variant's canonical
	// counterexample (or on the Lemma-1 scenario for the private
	// variants). For the ∞-DP variants it should comfortably exceed
	// AuditEpsilon; for the private ones it must stay below it.
	AuditedEpsilonLower float64
	// AuditEpsilon is the ε the audit ran with.
	AuditEpsilon float64
}

// Figure2 regenerates Figure 2's table and attaches Monte-Carlo audit
// verdicts. trials is the per-world trial count (10⁴ is plenty; the
// separations are orders of magnitude).
func Figure2(trials int, epsilon float64, seed uint64) ([]Figure2Column, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive, got %d", trials)
	}
	if !(epsilon > 0) {
		return nil, fmt.Errorf("experiments: epsilon must be positive, got %v", epsilon)
	}
	// Scenario per variant. The private ones get the hardest standard
	// scenario (Lemma-1 / mixed); the broken ones their counterexamples.
	// Alg3's counterexample involves a numeric output (measure-zero to
	// hit), so its verdict uses the closed-form Theorem-6 ratio instead of
	// Monte Carlo; Alg4's weakened guarantee is audited through the
	// Theorem-7-style construction adapted to its cutoff.
	out := make([]Figure2Column, 0, 6)
	for _, v := range core.AllVariants() {
		col := Figure2Column{Metadata: core.VariantMetadata(v), AuditEpsilon: epsilon}
		switch v {
		case core.VariantAlg1, core.VariantAlg2:
			scen := audit.MixedAlg1Scenario(epsilon, 4, 2)
			if v == core.VariantAlg2 {
				scen.Name = "thm2-mixed/alg2"
				scen.Build = func(src *rng.Source) core.Algorithm {
					return core.NewAlg2(src, epsilon, 1, 2)
				}
			}
			est, err := audit.Run(scen, trials, seed+uint64(v))
			if err != nil {
				return nil, err
			}
			col.AuditedEpsilonLower = est.EmpiricalEpsilon
		case core.VariantAlg3:
			// Closed form: ratio e^{(m−1)ε/2} at m=8 → privacy loss
			// already 3.5ε, and unbounded in m.
			ratio, _, err := audit.Theorem6Ratio(epsilon, 8)
			if err != nil {
				return nil, err
			}
			col.AuditedEpsilonLower = math.Log(ratio)
		case core.VariantAlg4:
			// Closed form at m = c = 8: the ratio is finite (Alg4 is
			// ((1+6c)/4)ε-DP) but clearly beyond e^ε.
			ratio, err := audit.Alg4Ratio(epsilon, 8)
			if err != nil {
				return nil, err
			}
			col.AuditedEpsilonLower = math.Log(ratio)
		case core.VariantAlg5:
			est, err := audit.Run(audit.Theorem3Scenario(epsilon), trials, seed+uint64(v))
			if err != nil {
				return nil, err
			}
			col.AuditedEpsilonLower = est.EmpiricalEpsilon
		case core.VariantAlg6:
			// Closed form at m = 4: ratio ≥ e^{2ε}.
			ratio, _, err := audit.Theorem7Ratio(epsilon, 4)
			if err != nil {
				return nil, err
			}
			col.AuditedEpsilonLower = math.Log(ratio)
		}
		out = append(out, col)
	}
	return out, nil
}
