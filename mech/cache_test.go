package mech

import "testing"

// cacheParams is a sparse instance that cannot halt within a test and
// answers ⊥ (or ⊤) with certainty via extreme thresholds.
func cacheParams() Params {
	return Params{Epsilon: 1, MaxPositives: 2, Seed: 7}
}

func mustSparse(t *testing.T, p Params) Instance {
	t.Helper()
	inst, err := Default.New("sparse", p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func negQ() Query  { return Query{Value: 0, Threshold: 1e12} }  // certain ⊥
func posQ() Query  { return Query{Value: 0, Threshold: -1e12} } // certain ⊤
func negQ2() Query { return Query{Value: 1, Threshold: 1e12} }

// TestCachedHitDrawsNothing: a repeated identical negative query is served
// from the cache — same result, no noise consumed, answered still counted.
func TestCachedHitDrawsNothing(t *testing.T) {
	c := NewCached(mustSparse(t, cacheParams()), 8)
	first, refused, err := c.Answer(negQ())
	if err != nil || refused || first.Above {
		t.Fatalf("first answer: %+v refused=%v err=%v", first, refused, err)
	}
	mainBefore, auxBefore := c.Draws()
	answeredBefore := c.Answered()
	second, refused, err := c.Answer(negQ())
	if err != nil || refused {
		t.Fatalf("cached answer: refused=%v err=%v", refused, err)
	}
	if second != first {
		t.Fatalf("cache hit changed the answer: %+v vs %+v", second, first)
	}
	mainAfter, auxAfter := c.Draws()
	if mainAfter != mainBefore || auxAfter != auxBefore {
		t.Fatalf("cache hit consumed noise: draws %d/%d -> %d/%d", mainBefore, auxBefore, mainAfter, auxAfter)
	}
	if c.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", c.Hits())
	}
	if c.Answered() != answeredBefore+1 {
		t.Fatalf("answered %d -> %d, want +1 on a hit", answeredBefore, c.Answered())
	}
}

// TestCachedDoesNotCachePositives: a ⊤ spends budget; repeating it must go
// back to the mechanism (and eventually halt it), never replay for free.
func TestCachedDoesNotCachePositives(t *testing.T) {
	c := NewCached(mustSparse(t, cacheParams()), 8)
	res, refused, err := c.Answer(posQ())
	if err != nil || refused || !res.Above || !res.SpentPositive {
		t.Fatalf("positive answer: %+v refused=%v err=%v", res, refused, err)
	}
	res, refused, err = c.Answer(posQ())
	if err != nil || refused || !res.SpentPositive {
		t.Fatalf("repeated positive must spend again: %+v refused=%v err=%v", res, refused, err)
	}
	if !c.Halted() {
		t.Fatal("two positives at cutoff 2 must halt")
	}
	// Halted instances delegate: refused, even for a previously-cached key.
	if _, refused, _ := c.Answer(posQ()); !refused {
		t.Fatal("halted instance answered")
	}
}

// TestCachedEviction: the FIFO ring caps the memo; an evicted key misses
// again (draws advance), a retained key still hits.
func TestCachedEviction(t *testing.T) {
	c := NewCached(mustSparse(t, cacheParams()), 2)
	queries := []Query{negQ(), negQ2(), {Value: 2, Threshold: 1e12}}
	for _, q := range queries {
		if _, _, err := c.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	// negQ was evicted by the third insert; negQ2 and the third remain.
	before, _ := c.Draws()
	if _, _, err := c.Answer(queries[2]); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.Draws(); after != before {
		t.Fatal("retained key missed the cache")
	}
	if _, _, err := c.Answer(negQ()); err != nil {
		t.Fatal(err)
	}
	if after, _ := c.Draws(); after == before {
		t.Fatal("evicted key hit the cache")
	}
	if len(c.m) > 2 {
		t.Fatalf("cache grew past its cap: %d entries", len(c.m))
	}
}

// TestCachedStateRoundTrip: the wrapper is transparent to the journal
// surface — state blobs, restore and budgets delegate.
func TestCachedStateRoundTrip(t *testing.T) {
	c := NewCached(mustSparse(t, cacheParams()), 4)
	if got := c.MarshalState(); got != nil {
		t.Fatalf("sparse journals no state, got %x", got)
	}
	e1, e2, e3 := c.Budgets()
	i1, i2, i3 := c.inner.Budgets()
	if e1 != i1 || e2 != i2 || e3 != i3 {
		t.Fatal("budgets not delegated")
	}
	if err := c.Restore(3, 1); err != nil {
		t.Fatal(err)
	}
	if c.Answered() != 3 || c.Remaining() != 1 {
		t.Fatalf("restore: answered=%d remaining=%d, want 3 and 1", c.Answered(), c.Remaining())
	}
}
