package mech

import (
	"errors"
	"fmt"

	"github.com/dpgo/svt/pmw"
)

func init() {
	Default.MustRegister(Factory{
		Name:    "pmw",
		Summary: "Private Multiplicative Weights mediator with the corrected SVT as its gate: free synthetic answers, budgeted updates",
		Caps: Capabilities{
			NumericReleases: true,
			Seedable:        true,
			NeedsHistogram:  true,
		},
		New: newPMW,
	})
}

// pmwInstance adapts pmw.Engine to the Instance seam. The primary noise
// stream is the Laplace update-release source, the auxiliary stream the SVT
// gate's source — matching the order the journal has recorded since codec
// v2.
type pmwInstance struct {
	e       *pmw.Engine
	buckets int
}

func newPMW(p Params) (Instance, error) {
	if p.Threshold == nil {
		return nil, fmt.Errorf("mech: pmw sessions require a threshold")
	}
	if p.Monotonic {
		return nil, fmt.Errorf("mech: pmw does not support the monotonic refinement")
	}
	if isSet(p.AnswerFraction) {
		return nil, fmt.Errorf("mech: pmw does not support answerFraction (every answer is numeric; updateFraction tunes the split)")
	}
	e, err := pmw.New(pmw.Config{
		Histogram:      p.Histogram,
		Epsilon:        p.Epsilon,
		MaxUpdates:     p.MaxPositives,
		Threshold:      *p.Threshold,
		UpdateFraction: p.UpdateFraction,
		LearningRate:   p.LearningRate,
		Seed:           p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &pmwInstance{e: e, buckets: len(p.Histogram)}, nil
}

func (m *pmwInstance) Validate(q Query) error {
	if len(q.Buckets) == 0 {
		return fmt.Errorf("mech: pmw query needs buckets")
	}
	seen := make(map[int]bool, len(q.Buckets))
	for _, b := range q.Buckets {
		if b < 0 || b >= m.buckets {
			return fmt.Errorf("mech: bucket %d out of range [0,%d)", b, m.buckets)
		}
		if seen[b] {
			return fmt.Errorf("mech: duplicate bucket %d in query", b)
		}
		seen[b] = true
	}
	return nil
}

// Answer never refuses: an exhausted pmw mediator keeps answering from the
// synthetic histogram with the Exhausted flag set.
func (m *pmwInstance) Answer(q Query) (Result, bool, error) {
	ans, err := m.e.Answer(q.Buckets)
	if err != nil && !errors.Is(err, pmw.ErrExhausted) {
		return Result{}, false, err
	}
	return Result{
		Numeric:       true,
		Value:         ans.Value,
		FromSynthetic: ans.FromSynthetic,
		Exhausted:     errors.Is(err, pmw.ErrExhausted),
		SpentPositive: !ans.FromSynthetic,
	}, false, nil
}

func (m *pmwInstance) Halted() bool   { return m.e.Exhausted() }
func (m *pmwInstance) Remaining() int { return m.e.UpdatesLeft() }
func (m *pmwInstance) Answered() int  { return m.e.Answered() }

func (m *pmwInstance) Budgets() (float64, float64, float64) { return m.e.Budgets() }

func (m *pmwInstance) Draws() (uint64, uint64) {
	gate, update := m.e.Draws()
	return update, gate
}

func (m *pmwInstance) FastForward(main, aux uint64) error {
	return m.e.FastForward(aux, main)
}

func (m *pmwInstance) Restore(answered, positives int) error {
	return m.e.Restore(answered, positives)
}

// MarshalState journals the learned synthetic histogram so a recovered
// mediator resumes from its learned distribution instead of the uniform
// prior. The histogram is derived entirely from already-released answers,
// so journaling it spends no privacy budget.
func (m *pmwInstance) MarshalState() []byte {
	return SyntheticStateBlob(m.e.Synthetic())
}

func (m *pmwInstance) UnmarshalState(data []byte) error {
	hist, err := syntheticFromState(data, m.buckets)
	if err != nil {
		return err
	}
	return m.e.RestoreSynthetic(hist)
}

// Synthetic exposes the mediator's public synthetic histogram for
// diagnostics and tests; it is already public information.
func (m *pmwInstance) Synthetic() []float64 { return m.e.Synthetic() }

// Updates reports how many real-data accesses have happened.
func (m *pmwInstance) Updates() int { return m.e.Updates() }
