package mech

// Response caching middleware over Instance — the caching direction the
// serving layer reserved when it was built (ROADMAP, PR 1).
//
// The privacy argument: once an SVT mechanism has released the answer to a
// query, re-releasing THAT SAME answer for the identical (value, threshold)
// pair is post-processing of an already-published output — it touches no
// private data, draws no noise and consumes no budget, so it is
// differentially private for free. What a cache hit gives up is the fresh,
// independent noisy comparison a repeat would otherwise get; an analyst
// who wants resampling semantics simply does not opt in. Only negative
// (⊥, nothing-spent) answers are cached: a positive consumes cutoff budget
// and advances the mechanism toward halting, so replaying it as a free hit
// would misrepresent the session's accounting.
//
// Streams of repeated identical queries are exactly the workload
// monotonic-refinement mechanisms serve (Theorem 5's refinement is about
// correlated query sets), which is why the serving layer gates the cache
// on that capability.

// Cached wraps an Instance with a bounded FIFO memo of negative answers.
// Like every Instance it is not safe for concurrent use; the session layer
// serializes access. The cache is deliberately NOT part of MarshalState:
// it is derived entirely from released outputs, so journaling it would
// waste journal bytes — but that also means a crash-recovered session
// restarts with a cold cache, re-drawing noise where a hit would have
// answered. Seedable sessions that promise bit-identical replay therefore
// must not be cached (the server enforces this at create time).
type Cached struct {
	inner Instance
	cap   int
	m     map[cacheKey]Result
	order []cacheKey // FIFO eviction ring, len == len(m)
	next  int        // ring slot the next eviction replaces
	hits  uint64
	// extraAnswered counts cache hits so Answered() stays the number of
	// queries the SESSION answered, not just the ones that reached the
	// inner mechanism.
	extraAnswered int
}

type cacheKey struct {
	value     float64
	threshold float64
}

var _ Instance = (*Cached)(nil)

// NewCached wraps inner with a cache of at most size negative answers.
// size must be positive.
func NewCached(inner Instance, size int) *Cached {
	return &Cached{inner: inner, cap: size, m: make(map[cacheKey]Result, size)}
}

// Validate implements Instance.
func (c *Cached) Validate(q Query) error { return c.inner.Validate(q) }

// Answer implements Instance: a repeated identical threshold query whose
// first answer was a free negative replays that answer without touching
// the mechanism; everything else — histogram queries, halted sessions,
// first sights — delegates.
func (c *Cached) Answer(q Query) (Result, bool, error) {
	if len(q.Buckets) > 0 || c.inner.Halted() {
		return c.inner.Answer(q)
	}
	k := cacheKey{value: q.Value, threshold: q.Threshold}
	if res, ok := c.m[k]; ok {
		c.hits++
		c.extraAnswered++
		return res, false, nil
	}
	res, refused, err := c.inner.Answer(q)
	if err == nil && !refused && !res.SpentPositive && !res.Numeric &&
		!res.FromSynthetic && !res.Exhausted {
		c.insert(k, res)
	}
	return res, refused, err
}

// insert adds a freshly released negative, evicting FIFO at capacity.
func (c *Cached) insert(k cacheKey, res Result) {
	if len(c.m) >= c.cap {
		delete(c.m, c.order[c.next])
		c.order[c.next] = k
		c.next = (c.next + 1) % c.cap
	} else {
		c.order = append(c.order, k)
	}
	c.m[k] = res
}

// Hits reports how many answers were served from the cache.
func (c *Cached) Hits() uint64 { return c.hits }

// Halted implements Instance.
func (c *Cached) Halted() bool { return c.inner.Halted() }

// Remaining implements Instance.
func (c *Cached) Remaining() int { return c.inner.Remaining() }

// Answered implements Instance, counting cache hits as answered queries.
func (c *Cached) Answered() int { return c.inner.Answered() + c.extraAnswered }

// Budgets implements Instance.
func (c *Cached) Budgets() (eps1, eps2, eps3 float64) { return c.inner.Budgets() }

// Draws implements Instance. Cache hits draw nothing, so the positions
// advance only when the inner mechanism actually answers.
func (c *Cached) Draws() (main, aux uint64) { return c.inner.Draws() }

// FastForward implements Instance.
func (c *Cached) FastForward(main, aux uint64) error { return c.inner.FastForward(main, aux) }

// Restore implements Instance: the journaled counters include cache hits,
// and the inner mechanism absorbs them all — over-counting answered on the
// mechanism side is harmless (only positives gate halting), while the
// session-visible totals come back exact.
func (c *Cached) Restore(answered, positives int) error { return c.inner.Restore(answered, positives) }

// MarshalState implements Instance; the cache itself is never journaled.
func (c *Cached) MarshalState() []byte { return c.inner.MarshalState() }

// UnmarshalState implements Instance.
func (c *Cached) UnmarshalState(data []byte) error { return c.inner.UnmarshalState(data) }
