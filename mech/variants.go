package mech

import (
	"fmt"

	"github.com/dpgo/svt/variants"
)

func init() {
	Default.MustRegister(Factory{
		Name:    "proposed",
		Summary: "the paper's Algorithm 1: fixed noisy threshold, hard-coded ε₁ = ε₂ = ε/2 split, indicator releases only",
		Caps:    Capabilities{Seedable: true},
		New: func(p Params) (Instance, error) {
			return newVariant("proposed", variants.NewProposed, p)
		},
	})
	Default.MustRegister(Factory{
		Name:    "dpbook",
		Summary: "Algorithm 2, the Dwork-Roth book SVT: threshold noise scales with c and is resampled after every positive outcome",
		Caps:    Capabilities{Seedable: true},
		New: func(p Params) (Instance, error) {
			return newVariant("dpbook", variants.NewDPBook, p)
		},
	})
}

// variantInstance adapts a variants.Stream (Algorithms 1 and 2) to the
// Instance seam. The stream types expose no query counter of their own, so
// the adapter owns the answered/positives accounting — which is what makes
// Restore advance BOTH counts on the mechanism side (the historical
// session-layer restore only forwarded positives for these mechanisms).
type variantInstance struct {
	s         variants.Stream
	eps       float64
	c         int
	seeded    bool
	answered  int
	positives int
}

func newVariant(name string, build func(epsilon, delta float64, c int, seed uint64) (variants.Stream, error), p Params) (Instance, error) {
	if err := rejectHistogramParams(name, p); err != nil {
		return nil, err
	}
	// Algorithms 1 and 2 hard-code their split and release indicators
	// only; accepting the sparse-only knobs silently would let an analyst
	// believe they got a refinement they did not.
	if p.Monotonic {
		return nil, fmt.Errorf("mech: %s does not support the monotonic refinement (use sparse)", name)
	}
	if isSet(p.AnswerFraction) {
		return nil, fmt.Errorf("mech: %s does not support ε₃ numeric releases (use sparse)", name)
	}
	s, err := build(p.Epsilon, p.delta(), p.MaxPositives, p.Seed)
	if err != nil {
		return nil, err
	}
	return &variantInstance{s: s, eps: p.Epsilon, c: p.MaxPositives, seeded: p.Seed != 0}, nil
}

func (v *variantInstance) Validate(q Query) error { return validateThresholdQuery(q) }

func (v *variantInstance) Answer(q Query) (Result, bool, error) {
	r, ok := v.s.Next(q.Value, q.Threshold)
	if !ok {
		return Result{}, true, nil
	}
	v.answered++
	if r.Above {
		v.positives++
	}
	return Result{Above: r.Above, Numeric: r.Numeric, Value: r.Value, SpentPositive: r.Above}, false, nil
}

func (v *variantInstance) Halted() bool   { return v.s.Halted() }
func (v *variantInstance) Remaining() int { return v.c - v.positives }
func (v *variantInstance) Answered() int  { return v.answered }

func (v *variantInstance) Budgets() (float64, float64, float64) {
	// Both algorithms hard-code ε₁ = ε₂ = ε/2 and release indicators only.
	return v.eps / 2, v.eps / 2, 0
}

func (v *variantInstance) Draws() (uint64, uint64) {
	if d, ok := v.s.(variants.StreamState); ok {
		return d.Draws(), 0
	}
	return 0, 0
}

func (v *variantInstance) FastForward(main, aux uint64) error {
	if err := singleStreamAux("variant", aux); err != nil {
		return err
	}
	d, ok := v.s.(variants.StreamState)
	if !ok {
		return fmt.Errorf("mech: %T does not support stream fast-forward", v.s)
	}
	return d.FastForward(main)
}

func (v *variantInstance) Restore(answered, positives int) error {
	if err := restoreChecks(answered, positives, v.c); err != nil {
		return err
	}
	r, ok := v.s.(variants.Restorer)
	if !ok {
		return fmt.Errorf("mech: %T does not support restore", v.s)
	}
	if err := r.Restore(positives); err != nil {
		return err
	}
	v.answered = answered
	v.positives = positives
	return nil
}

// MarshalState journals the evolving noisy-threshold offset ρ of seeded
// streams that resample it (dpbook): the current value cannot be re-derived
// from seed + position alone. Fixed-ρ streams and unseeded sessions (whose
// recovery draws fresh noise anyway) have nothing to journal.
func (v *variantInstance) MarshalState() []byte {
	if !v.seeded {
		return nil
	}
	rs, ok := v.s.(variants.RhoState)
	if !ok {
		return nil
	}
	rho, evolving := rs.Rho()
	if !evolving {
		return nil
	}
	return RhoStateBlob(rho)
}

func (v *variantInstance) UnmarshalState(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	rho, err := rhoFromState(data)
	if err != nil {
		return err
	}
	rs, ok := v.s.(variants.RhoState)
	if !ok {
		return fmt.Errorf("mech: %T journals no evolving state", v.s)
	}
	rs.SetRho(rho)
	return nil
}
