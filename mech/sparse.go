package mech

import (
	"errors"
	"fmt"

	svt "github.com/dpgo/svt"
)

func init() {
	Default.MustRegister(Factory{
		Name:    "sparse",
		Summary: "the paper's corrected, generalized SVT (Algorithm 7): optimal ε₁:ε₂ allocation, optional monotonic refinement and ε₃ numeric releases",
		Caps: Capabilities{
			NumericReleases:     true,
			MonotonicRefinement: true,
			Seedable:            true,
		},
		New: newSparse,
	})
}

// sparseInstance adapts svt.Sparse to the Instance seam.
type sparseInstance struct {
	m *svt.Sparse
}

func newSparse(p Params) (Instance, error) {
	if err := rejectHistogramParams("sparse", p); err != nil {
		return nil, err
	}
	m, err := svt.New(svt.Options{
		Epsilon:        p.Epsilon,
		Sensitivity:    p.delta(),
		MaxPositives:   p.MaxPositives,
		Monotonic:      p.Monotonic,
		AnswerFraction: p.AnswerFraction,
		Seed:           p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &sparseInstance{m: m}, nil
}

func (s *sparseInstance) Validate(q Query) error { return validateThresholdQuery(q) }

func (s *sparseInstance) Answer(q Query) (Result, bool, error) {
	r, err := s.m.Next(q.Value, q.Threshold)
	if errors.Is(err, svt.ErrHalted) {
		return Result{}, true, nil
	}
	if err != nil {
		return Result{}, false, err
	}
	return Result{Above: r.Above, Numeric: r.Numeric, Value: r.Value, SpentPositive: r.Above}, false, nil
}

func (s *sparseInstance) Halted() bool   { return s.m.Halted() }
func (s *sparseInstance) Remaining() int { return s.m.Remaining() }
func (s *sparseInstance) Answered() int  { return s.m.Answered() }
func (s *sparseInstance) Budgets() (float64, float64, float64) {
	return s.m.Budgets()
}

func (s *sparseInstance) Draws() (uint64, uint64) { return s.m.Draws(), 0 }

func (s *sparseInstance) FastForward(main, aux uint64) error {
	if err := singleStreamAux("sparse", aux); err != nil {
		return err
	}
	return s.m.FastForward(main)
}

func (s *sparseInstance) Restore(answered, positives int) error {
	return s.m.Restore(answered, positives)
}

func (s *sparseInstance) MarshalState() []byte { return nil }

func (s *sparseInstance) UnmarshalState(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("mech: sparse journals no evolving state, got a %d-byte blob", len(data))
	}
	return nil
}
