package mech

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
)

// esvt is the accuracy-enhanced exponential-noise SVT of Liu et al.
// (arXiv 2407.20068), wired entirely through the registry: no server code
// names it. See internal/core.ESVT for the algorithm and the privacy
// argument; the comparison-noise variance is half the Laplace SVT's at the
// same ε, because one-sided exponential noise satisfies the same one-sided
// ratio bounds the classic proof actually uses.

func init() {
	Default.MustRegister(Factory{
		Name:    "esvt",
		Summary: "accuracy-enhanced SVT with mean-centered exponential noise (Liu et al., arXiv 2407.20068): half the comparison variance of Laplace at the same ε",
		Caps: Capabilities{
			MonotonicRefinement: true,
			Seedable:            true,
		},
		New: newESVT,
	})
}

// esvtInstance owns the answered/positives accounting on top of core.ESVT,
// like the variants adapter.
type esvtInstance struct {
	alg        *core.ESVT
	eps1, eps2 float64
	c          int
	answered   int
	positives  int
}

func newESVT(p Params) (Instance, error) {
	if err := rejectHistogramParams("esvt", p); err != nil {
		return nil, err
	}
	if isSet(p.AnswerFraction) {
		return nil, fmt.Errorf("mech: esvt releases indicators only, answerFraction is not supported (use sparse)")
	}
	if !(p.Epsilon > 0) || math.IsInf(p.Epsilon, 0) {
		return nil, fmt.Errorf("mech: esvt epsilon must be positive and finite, got %v", p.Epsilon)
	}
	if !(p.delta() > 0) || math.IsInf(p.delta(), 0) {
		return nil, fmt.Errorf("mech: esvt sensitivity must be positive and finite, got %v", p.Sensitivity)
	}
	if p.MaxPositives <= 0 {
		return nil, fmt.Errorf("mech: esvt maxPositives must be positive, got %d", p.MaxPositives)
	}
	// The variance-minimizing allocation has the same form as the paper's
	// §4.2 (the objective b₁²+b₂² differs from the Laplace 2(b₁²+b₂²) only
	// by the constant factor): ε₁:ε₂ = 1:(2c)^{2/3}, 1:c^{2/3} monotonic.
	eps1, eps2 := core.OptimalRatio(p.Monotonic).Split(p.Epsilon, p.MaxPositives)
	alg := core.NewESVT(rng.NewSeeded(p.Seed), core.ESVTConfig{
		Eps1:      eps1,
		Eps2:      eps2,
		Delta:     p.delta(),
		C:         p.MaxPositives,
		Monotonic: p.Monotonic,
	})
	return &esvtInstance{alg: alg, eps1: eps1, eps2: eps2, c: p.MaxPositives}, nil
}

func (e *esvtInstance) Validate(q Query) error { return validateThresholdQuery(q) }

func (e *esvtInstance) Answer(q Query) (Result, bool, error) {
	r, ok := e.alg.Next(q.Value, q.Threshold)
	if !ok {
		return Result{}, true, nil
	}
	e.answered++
	if r.Above {
		e.positives++
	}
	return Result{Above: r.Above, SpentPositive: r.Above}, false, nil
}

func (e *esvtInstance) Halted() bool   { return e.alg.Halted() }
func (e *esvtInstance) Remaining() int { return e.alg.Remaining() }
func (e *esvtInstance) Answered() int  { return e.answered }

func (e *esvtInstance) Budgets() (float64, float64, float64) { return e.eps1, e.eps2, 0 }

func (e *esvtInstance) Draws() (uint64, uint64) { return e.alg.Draws(), 0 }

func (e *esvtInstance) FastForward(main, aux uint64) error {
	if err := singleStreamAux("esvt", aux); err != nil {
		return err
	}
	cur := e.alg.Draws()
	if main < cur {
		return fmt.Errorf("mech: cannot fast-forward esvt to draw %d, stream already at %d", main, cur)
	}
	e.alg.Skip(main - cur)
	return nil
}

func (e *esvtInstance) Restore(answered, positives int) error {
	if err := restoreChecks(answered, positives, e.c); err != nil {
		return err
	}
	e.alg.Restore(positives)
	e.answered = answered
	e.positives = positives
	return nil
}

// MarshalState returns nil: esvt's ρ is fixed at construction, so seed +
// stream position re-derive the full mechanism state.
func (e *esvtInstance) MarshalState() []byte { return nil }

func (e *esvtInstance) UnmarshalState(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("mech: esvt journals no evolving state, got a %d-byte blob", len(data))
	}
	return nil
}
