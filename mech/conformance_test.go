package mech

// Conformance suite: every mechanism registered in the default registry —
// including any future one — must satisfy the contracts the session server
// and its crash-recovery codec lean on. A new mechanism that registers a
// Factory is picked up here automatically; passing this suite is the
// admission test for being servable.

import (
	"math"
	"testing"
)

func ptr(v float64) *float64 { return &v }

// conformanceParams builds valid create parameters for any factory, using
// its capability flags to decide the shape.
func conformanceParams(f Factory, seed uint64) Params {
	p := Params{Epsilon: 1, MaxPositives: 4, Seed: seed}
	if f.Caps.NeedsHistogram {
		p.Epsilon = 2
		p.Threshold = ptr(5.0)
		p.Histogram = []float64{100, 5, 80, 10, 240, 30}
	}
	return p
}

// sureSpend is a query that consumes positive/update budget with
// probability indistinguishable from 1 for the conformance parameters.
func sureSpend(f Factory) Query {
	if f.Caps.NeedsHistogram {
		// The uniform prior is ~77.5 on bucket 4 vs a truth of 240: the
		// error dwarfs the threshold of 5 and every realistic gate draw.
		return Query{Buckets: []int{4}}
	}
	return Query{Value: 0, Threshold: -1e12}
}

// coinScript is a deterministic script whose outcomes genuinely depend on
// the noise: margins sit on top of the threshold.
func coinScript(f Factory, n int) []Query {
	out := make([]Query, n)
	for i := range out {
		if f.Caps.NeedsHistogram {
			out[i] = Query{Buckets: []int{i % 6, (i + 3) % 6}}
			continue
		}
		out[i] = Query{Value: float64(i%5) - 2, Threshold: 0}
	}
	return out
}

func mustNew(t *testing.T, f Factory, p Params) Instance {
	t.Helper()
	inst, err := f.New(p)
	if err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	return inst
}

func TestConformanceCreateAnswerHalt(t *testing.T) {
	for _, f := range Default.Factories() {
		t.Run(f.Name, func(t *testing.T) {
			p := conformanceParams(f, 21)
			inst := mustNew(t, f, p)

			e1, e2, e3 := inst.Budgets()
			if !(e1 > 0) || !(e2 > 0) || e3 < 0 {
				t.Fatalf("budgets (%v, %v, %v): ε₁ and ε₂ must be positive, ε₃ non-negative", e1, e2, e3)
			}
			if sum := e1 + e2 + e3; math.Abs(sum-p.Epsilon) > 1e-9 {
				t.Fatalf("budgets sum to %v, want the configured ε %v", sum, p.Epsilon)
			}
			if inst.Halted() || inst.Remaining() != p.MaxPositives || inst.Answered() != 0 {
				t.Fatalf("fresh instance: halted=%v remaining=%d answered=%d", inst.Halted(), inst.Remaining(), inst.Answered())
			}

			q := sureSpend(f)
			if err := inst.Validate(q); err != nil {
				t.Fatalf("sure-spend query rejected: %v", err)
			}
			spent, answered := 0, 0
			for i := 0; i < 50 && !inst.Halted(); i++ {
				res, refused, err := inst.Answer(q)
				if err != nil {
					t.Fatal(err)
				}
				if refused {
					t.Fatal("unhalted instance refused a query")
				}
				answered++
				if res.SpentPositive {
					spent++
				}
				if want := p.MaxPositives - spent; inst.Remaining() != want {
					t.Fatalf("remaining %d after %d spends, want %d", inst.Remaining(), spent, want)
				}
			}
			if !inst.Halted() {
				t.Fatalf("instance did not halt within 50 sure-spend queries (%d spent)", spent)
			}
			if spent != p.MaxPositives || inst.Remaining() != 0 {
				t.Fatalf("halted after %d spends with %d remaining, want %d/0", spent, inst.Remaining(), p.MaxPositives)
			}
			if inst.Answered() != answered {
				t.Fatalf("mechanism answered count %d, want %d", inst.Answered(), answered)
			}

			// Post-halt behavior: refuse outright, or answer with an
			// explicitly Exhausted, budget-free result.
			res, refused, err := inst.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if !refused && (!res.Exhausted || res.SpentPositive) {
				t.Fatalf("post-halt answer neither refused nor exhausted-flagged: %+v", res)
			}
		})
	}
}

func TestConformanceValidateRejectsMalformed(t *testing.T) {
	for _, f := range Default.Factories() {
		t.Run(f.Name, func(t *testing.T) {
			inst := mustNew(t, f, conformanceParams(f, 3))
			var bad []Query
			if f.Caps.NeedsHistogram {
				bad = []Query{
					{},                     // no buckets
					{Buckets: []int{-1}},   // out of range
					{Buckets: []int{99}},   // out of range
					{Buckets: []int{2, 2}}, // duplicate
				}
			} else {
				bad = []Query{
					{Value: 1, Threshold: math.NaN()},           // no threshold anywhere
					{Value: math.NaN(), Threshold: 0},           // non-finite value
					{Value: math.Inf(1), Threshold: 0},          // non-finite value
					{Value: 1, Threshold: math.Inf(-1)},         // non-finite threshold
					{Value: 1, Threshold: 0, Buckets: []int{0}}, // buckets on a threshold mechanism
				}
			}
			for i, q := range bad {
				if err := inst.Validate(q); err == nil {
					t.Errorf("malformed query %d accepted: %+v", i, q)
				}
			}
			if inst.Answered() != 0 {
				t.Fatalf("Validate touched mechanism state: answered=%d", inst.Answered())
			}
		})
	}
}

// TestConformanceRestoreKeepsHalted is the regression test for the
// historical restore asymmetry: Restore must advance BOTH the answered and
// the positive count on the mechanism side for every mechanism (the old
// session-layer restore forwarded only positives for the variants
// streams), and a fully-spent budget must come back halted.
func TestConformanceRestoreKeepsHalted(t *testing.T) {
	for _, f := range Default.Factories() {
		t.Run(f.Name, func(t *testing.T) {
			p := conformanceParams(f, 5)
			inst := mustNew(t, f, p)
			const answered = 7
			if err := inst.Restore(answered, p.MaxPositives); err != nil {
				t.Fatal(err)
			}
			if !inst.Halted() || inst.Remaining() != 0 {
				t.Fatalf("restored-to-cutoff instance: halted=%v remaining=%d, want true/0", inst.Halted(), inst.Remaining())
			}
			if inst.Answered() != answered {
				t.Fatalf("restored answered %d on the mechanism side, want %d (the counters must move together)", inst.Answered(), answered)
			}
			if res, refused, err := inst.Answer(sureSpend(f)); err != nil {
				t.Fatal(err)
			} else if !refused && res.SpentPositive {
				t.Fatal("restored-halted instance spent budget")
			}

			// Partial restore keeps serving with the right residual budget.
			partial := mustNew(t, f, p)
			if err := partial.Restore(3, 2); err != nil {
				t.Fatal(err)
			}
			if partial.Halted() || partial.Remaining() != p.MaxPositives-2 || partial.Answered() != 3 {
				t.Fatalf("partial restore: halted=%v remaining=%d answered=%d", partial.Halted(), partial.Remaining(), partial.Answered())
			}

			// Inconsistent or over-budget counters must be refused.
			for _, c := range [][2]int{{1, 2}, {-1, -1}, {10, p.MaxPositives + 1}} {
				fresh := mustNew(t, f, p)
				if err := fresh.Restore(c[0], c[1]); err == nil {
					t.Errorf("Restore(%d, %d) accepted", c[0], c[1])
				}
			}
		})
	}
}

// TestConformanceSeededReplayBitIdentity proves the crash-recovery
// contract at the mechanism layer: restore + state blob + stream
// fast-forward on a freshly re-seeded instance must continue the answer
// stream bit-identically to an uninterrupted run, for every mechanism.
func TestConformanceSeededReplayBitIdentity(t *testing.T) {
	const n, kill = 30, 11
	for _, f := range Default.Factories() {
		if !f.Caps.Seedable {
			continue
		}
		t.Run(f.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				p := conformanceParams(f, seed)
				p.MaxPositives = 12
				if f.Caps.NeedsHistogram {
					p.Threshold = ptr(20.0)
				}
				script := coinScript(f, n)

				answer := func(inst Instance, qs []Query) []Result {
					var out []Result
					for _, q := range qs {
						res, refused, err := inst.Answer(q)
						if err != nil {
							t.Fatal(err)
						}
						if refused {
							break
						}
						out = append(out, res)
					}
					return out
				}

				ref := mustNew(t, f, p)
				want := answer(ref, script)

				// Interrupted run: answer kill queries, capture the
				// journaled state, rebuild and continue.
				pre := mustNew(t, f, p)
				got := answer(pre, script[:kill])
				answered := pre.Answered()
				positives := 0
				for _, r := range got {
					if r.SpentPositive {
						positives++
					}
				}
				state := pre.MarshalState()
				main, aux := pre.Draws()

				rec := mustNew(t, f, p)
				if err := rec.Restore(answered, positives); err != nil {
					t.Fatal(err)
				}
				if len(state) > 0 {
					if err := rec.UnmarshalState(state); err != nil {
						t.Fatal(err)
					}
				}
				if err := rec.FastForward(main, aux); err != nil {
					t.Fatal(err)
				}
				got = append(got, answer(rec, script[kill:])...)

				if len(got) != len(want) {
					t.Fatalf("seed %d: recovered stream has %d answers, want %d", seed, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d: recovered stream diverged at %d:\n got  %+v\n want %+v", seed, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestConformanceStateRoundTrip pins MarshalState/UnmarshalState: the blob
// captured from a progressed instance must install cleanly on a fresh twin
// and re-marshal to the identical bytes.
func TestConformanceStateRoundTrip(t *testing.T) {
	for _, f := range Default.Factories() {
		t.Run(f.Name, func(t *testing.T) {
			p := conformanceParams(f, 9)
			inst := mustNew(t, f, p)
			// Progress until some budget is spent so evolving state exists.
			for i := 0; i < 3; i++ {
				if _, _, err := inst.Answer(sureSpend(f)); err != nil {
					t.Fatal(err)
				}
			}
			state := inst.MarshalState()

			twin := mustNew(t, f, p)
			if len(state) == 0 {
				// Nothing evolving to journal: the no-state contract is that
				// an empty blob installs as a no-op.
				if err := twin.UnmarshalState(nil); err != nil {
					t.Fatalf("empty state rejected: %v", err)
				}
				return
			}
			if err := twin.UnmarshalState(state); err != nil {
				t.Fatal(err)
			}
			re := twin.MarshalState()
			if string(re) != string(state) {
				t.Fatalf("state round trip diverged:\n in  %x\n out %x", state, re)
			}
		})
	}
}

// TestConformanceFastForwardRefusesRewind: a stream can only move forward —
// rewinding would re-emit noise the analyst may already have observed.
func TestConformanceFastForwardRefusesRewind(t *testing.T) {
	for _, f := range Default.Factories() {
		if !f.Caps.Seedable {
			continue
		}
		t.Run(f.Name, func(t *testing.T) {
			inst := mustNew(t, f, conformanceParams(f, 13))
			for i := 0; i < 2; i++ {
				if _, _, err := inst.Answer(sureSpend(f)); err != nil {
					t.Fatal(err)
				}
			}
			main, aux := inst.Draws()
			if main == 0 {
				t.Fatal("seeded instance reports no draws; stream positions are not being counted")
			}
			if err := inst.FastForward(main-1, aux); err == nil {
				t.Fatal("fast-forward to a past position accepted")
			}
		})
	}
}
