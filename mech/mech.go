// Package mech is the pluggable mechanism layer between the repo's SVT
// mechanism implementations (svt.Sparse, the variants streams, pmw.Engine,
// and new additions) and the multi-tenant session server.
//
// The paper's whole point is that SVT is a *family* of mechanisms
// distinguished by small structural choices, and the family keeps growing
// (Chen & Machanavajjhala's taxonomy, Liu et al.'s exponential-noise SVT).
// This package turns that observation into an architecture: every servable
// mechanism is an Instance built by a Factory looked up in a Registry, and
// the server holds exactly one Instance per session — no per-kind dispatch
// anywhere above this seam. Adding a mechanism is one file that registers a
// Factory; the server, its journal codec, its discovery endpoint and its
// per-mechanism counters pick it up without modification.
package mech

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Params is the mechanism-facing subset of a session-create request. Every
// Factory validates the fields it consumes and rejects the ones it does not
// (a silently ignored knob is a privacy footgun: an analyst who believes
// they got the monotonic refinement must not silently run without it).
type Params struct {
	// Epsilon is the total privacy budget of the interaction. Required.
	Epsilon float64
	// Sensitivity is the query sensitivity Δ; 0 defaults to 1.
	Sensitivity float64
	// MaxPositives is the positive-outcome cutoff c (for histogram
	// mediators: the update budget). Required.
	MaxPositives int
	// Threshold is the session's default threshold; nil when the analyst
	// will supply one per query. Histogram mediators require it (the error
	// level T that triggers a real-data access).
	Threshold *float64
	// Monotonic claims the Theorem-5 monotonic-query refinement.
	Monotonic bool
	// AnswerFraction reserves ε₃ for numeric releases.
	AnswerFraction float64
	// Seed makes the mechanism reproducible; 0 means crypto-seeded.
	Seed uint64
	// Histogram is the private dataset for histogram mediators.
	Histogram []float64
	// UpdateFraction and LearningRate tune histogram mediators; zero means
	// their defaults.
	UpdateFraction float64
	LearningRate   float64
}

// isSet reports whether an optional float parameter was supplied. This is
// the one sanctioned exact float comparison in the package: 0 is the
// JSON-absent sentinel, assigned, never the result of budget arithmetic.
func isSet(x float64) bool {
	return x != 0 //nolint:svtlint/floateq // 0 is the unset-param sentinel, never computed
}

// delta returns the sensitivity with the package-wide default applied.
func (p Params) delta() float64 {
	if !isSet(p.Sensitivity) {
		return 1
	}
	return p.Sensitivity
}

// Query is one already-resolved query item: the session layer applies its
// default threshold before handing the item to the mechanism.
type Query struct {
	// Value is the true, unperturbed answer q(D) computed by the trusted
	// side on the private data (threshold mechanisms).
	Value float64
	// Threshold is the resolved threshold; NaN when neither the session
	// default nor the query carried one.
	Threshold float64
	// Buckets is a linear counting query: distinct histogram indices
	// (histogram mediators).
	Buckets []int
}

// Result is one released answer.
type Result struct {
	// Above reports a positive outcome (⊤).
	Above bool
	// Numeric reports that Value carries a released number.
	Numeric bool
	// Value is the released number when Numeric is set.
	Value float64
	// FromSynthetic marks a free synthetic-histogram answer (no budget
	// spent).
	FromSynthetic bool
	// Exhausted marks an answer released after the update budget was
	// spent: an unchecked synthetic estimate.
	Exhausted bool
	// SpentPositive reports that this answer consumed one unit of the
	// mechanism's positive-outcome (or update) budget. The server journals
	// the running count as "positives"; mechanisms own this accounting so
	// no caller has to know which result shape spends budget for which
	// mechanism kind.
	SpentPositive bool
}

// Instance is one live mechanism. Instances are not safe for concurrent
// use; the session layer serializes access.
type Instance interface {
	// Validate rejects a malformed query without touching mechanism state
	// or noise, so a bad batch can be refused before any budget is spent.
	Validate(q Query) error
	// Answer answers one already-validated query. refused reports that the
	// mechanism's positive-outcome budget is spent and nothing was
	// released; mechanisms that keep answering after exhaustion (pmw)
	// instead return results flagged Exhausted.
	Answer(q Query) (res Result, refused bool, err error)
	// Halted reports that the positive-outcome (or update) budget is spent.
	Halted() bool
	// Remaining returns how many more positive outcomes / updates may be
	// released.
	Remaining() int
	// Answered returns how many queries the instance has answered,
	// restored ones included.
	Answered() int
	// Budgets returns the realized (ε₁, ε₂, ε₃) split; parts sum to the
	// configured Epsilon.
	Budgets() (eps1, eps2, eps3 float64)
	// Draws returns the noise streams' absolute positions: the primary
	// stream and an auxiliary stream (0 for single-stream mechanisms).
	// Crash recovery journals them so seeded instances resume exactly.
	Draws() (main, aux uint64)
	// FastForward advances freshly re-seeded noise streams to the
	// journaled absolute positions, discarding the skipped values, so a
	// recovered instance continues the pre-crash stream bit-identically
	// without ever re-emitting a draw the analyst may have observed.
	FastForward(main, aux uint64) error
	// Restore fast-forwards a freshly built instance's accounting to
	// journaled counters: answered queries and consumed positives. It must
	// advance BOTH counts on the mechanism side for every mechanism, and
	// re-arm the halt state when positives reaches the cutoff — spent
	// budget is never refreshed by a restart.
	Restore(answered, positives int) error
	// MarshalState returns the mechanism's evolving opaque state: whatever
	// future answers depend on that is NOT re-derivable from Params + seed
	// + stream position (dpbook's resampled ρ, pmw's learned synthetic
	// histogram). nil means nothing needs journaling. The blob format is
	// private to the mechanism; the journal stores it verbatim.
	MarshalState() []byte
	// UnmarshalState restores a blob previously returned by MarshalState
	// on an identically-parameterized fresh instance.
	UnmarshalState(data []byte) error
}

// ---- Opaque state blob formats ----
//
// Each mechanism owns its blob layout; these two are exported because the
// server's journal codec must map LEGACY (pre-v3) records — which carried a
// special-cased ρ or synthetic histogram instead of an opaque blob — onto
// the blobs the corresponding mechanisms expect today. New code never
// touches them outside MarshalState/UnmarshalState.

// RhoStateBlob encodes an evolving noisy-threshold offset ρ: 8 bytes,
// float64 little-endian bits. It is the MarshalState format of mechanisms
// whose ρ is resampled mid-stream (dpbook).
func RhoStateBlob(rho float64) []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(rho))
}

// rhoFromState decodes RhoStateBlob.
func rhoFromState(data []byte) (float64, error) {
	if len(data) != 8 {
		return 0, fmt.Errorf("mech: rho state blob has %d bytes, want 8", len(data))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
}

// SyntheticStateBlob encodes a learned synthetic histogram: 8 bytes per
// bucket, float64 little-endian bits, length implied. It is the
// MarshalState format of histogram mediators (pmw).
func SyntheticStateBlob(hist []float64) []byte {
	out := make([]byte, 0, 8*len(hist))
	for _, v := range hist {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// syntheticFromState decodes SyntheticStateBlob, checking the bucket count.
func syntheticFromState(data []byte, buckets int) ([]float64, error) {
	if len(data) != 8*buckets {
		return nil, fmt.Errorf("mech: synthetic state blob has %d bytes, want %d (%d buckets)", len(data), 8*buckets, buckets)
	}
	hist := make([]float64, buckets)
	for i := range hist {
		hist[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return hist, nil
}

// ---- Shared validation helpers for threshold (SVT-family) mechanisms ----

// validateThresholdQuery is the common Validate of every SVT-family
// mechanism: no buckets, a present and finite threshold, a finite value.
func validateThresholdQuery(q Query) error {
	if len(q.Buckets) > 0 {
		return fmt.Errorf("mech: buckets are only valid for histogram mechanisms")
	}
	if math.IsNaN(q.Threshold) {
		return fmt.Errorf("mech: no threshold: session has no default and the query carries none")
	}
	if math.IsNaN(q.Value) || math.IsInf(q.Value, 0) || math.IsInf(q.Threshold, 0) {
		return fmt.Errorf("mech: query and threshold must be finite, got %v and %v", q.Value, q.Threshold)
	}
	return nil
}

// rejectHistogramParams fails when histogram-mediator-only knobs are set on
// a threshold mechanism.
func rejectHistogramParams(name string, p Params) error {
	if len(p.Histogram) > 0 {
		return fmt.Errorf("mech: histogram is not valid for %s sessions", name)
	}
	if isSet(p.UpdateFraction) || isSet(p.LearningRate) {
		return fmt.Errorf("mech: updateFraction/learningRate are not valid for %s sessions", name)
	}
	return nil
}

// restoreChecks is the generic part of every Restore implementation.
func restoreChecks(answered, positives, cutoff int) error {
	if positives < 0 || answered < positives {
		return fmt.Errorf("mech: restored counters answered=%d positives=%d are inconsistent", answered, positives)
	}
	if positives > cutoff {
		return fmt.Errorf("mech: restored positives %d exceed the cutoff %d", positives, cutoff)
	}
	return nil
}

// singleStreamAux rejects a non-zero auxiliary stream position for
// mechanisms with one noise stream.
func singleStreamAux(name string, aux uint64) error {
	if aux != 0 {
		return fmt.Errorf("mech: %s has a single noise stream, cannot fast-forward aux stream to %d", name, aux)
	}
	return nil
}
