package mech

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Capabilities are the static, discovery-relevant properties of a
// mechanism, surfaced by the server's GET /v1/mechanisms endpoint so an
// analyst can pick a mechanism without reading Go source.
type Capabilities struct {
	// NumericReleases reports that the mechanism can release numbers
	// (ε₃-budgeted answers, or mediator estimates), not just ⊤/⊥.
	NumericReleases bool
	// MonotonicRefinement reports that the mechanism supports the
	// Theorem-5 monotonic-query noise reduction.
	MonotonicRefinement bool
	// Seedable reports that a non-zero Seed makes the answer stream
	// deterministic (and crash-replayable bit-identically).
	Seedable bool
	// NeedsHistogram reports that creation requires the private dataset as
	// a histogram (mediator mechanisms).
	NeedsHistogram bool
}

// Factory builds instances of one registered mechanism. New must validate
// every Params field it consumes and reject the ones it does not.
type Factory struct {
	// Name is the registry key and the wire name analysts use.
	Name string
	// Summary is a one-line human-readable description.
	Summary string
	// Caps are the mechanism's static capability flags.
	Caps Capabilities
	// New validates p and builds a ready instance.
	New func(p Params) (Instance, error)
}

// Registry maps mechanism names to factories. The zero value is not
// usable; use NewRegistry. A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a factory. Names must be non-empty, lowercase tokens and
// unique within the registry.
func (r *Registry) Register(f Factory) error {
	if f.Name == "" || f.Name != strings.ToLower(f.Name) || strings.ContainsAny(f.Name, " \t\n/") {
		return fmt.Errorf("mech: invalid mechanism name %q", f.Name)
	}
	if f.New == nil {
		return fmt.Errorf("mech: mechanism %q has no constructor", f.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[f.Name]; dup {
		return fmt.Errorf("mech: mechanism %q already registered", f.Name)
	}
	r.factories[f.Name] = f
	return nil
}

// MustRegister is Register for package-init wiring, panicking on error.
func (r *Registry) MustRegister(f Factory) {
	if err := r.Register(f); err != nil {
		panic(err)
	}
}

// Lookup returns the factory registered under name.
func (r *Registry) Lookup(name string) (Factory, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[name]
	return f, ok
}

// Names returns every registered mechanism name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for name := range r.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Factories returns every registered factory, sorted by name.
func (r *Registry) Factories() []Factory {
	names := r.Names()
	out := make([]Factory, 0, len(names))
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range names {
		out = append(out, r.factories[name])
	}
	return out
}

// New builds an instance of the named mechanism, delegating parameter
// validation to its factory.
func (r *Registry) New(name string, p Params) (Instance, error) {
	f, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("mech: unknown mechanism %q (registered: %s)", name, strings.Join(r.Names(), ", "))
	}
	return f.New(p)
}

// Default is the process-wide registry every built-in mechanism registers
// itself with at init time; the server uses it unless configured with its
// own.
var Default = NewRegistry()
