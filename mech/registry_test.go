package mech

import (
	"sort"
	"strings"
	"testing"
)

func TestDefaultRegistryBuiltins(t *testing.T) {
	names := Default.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"sparse", "proposed", "dpbook", "pmw", "esvt"} {
		if _, ok := Default.Lookup(want); !ok {
			t.Errorf("built-in mechanism %q not registered (have %v)", want, names)
		}
	}
	// The broken historical variants must never be servable.
	for _, banned := range []string{"roth11", "leeclifton", "stoddard", "chen", "gptt"} {
		if _, ok := Default.Lookup(banned); ok {
			t.Errorf("non-private variant %q is registered", banned)
		}
	}
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	ok := Factory{Name: "x", New: func(Params) (Instance, error) { return nil, nil }}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate registration accepted")
	}
	for _, bad := range []Factory{
		{Name: "", New: ok.New},
		{Name: "Upper", New: ok.New},
		{Name: "with space", New: ok.New},
		{Name: "slash/y", New: ok.New},
		{Name: "nonew"},
	} {
		if err := r.Register(bad); err == nil {
			t.Errorf("bad factory %+v accepted", bad)
		}
	}
}

func TestRegistryUnknownMechanism(t *testing.T) {
	_, err := Default.New("no-such-mechanism", Params{Epsilon: 1, MaxPositives: 1})
	if err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if !strings.Contains(err.Error(), "no-such-mechanism") || !strings.Contains(err.Error(), "esvt") {
		t.Errorf("error %q should name the unknown mechanism and list the registered ones", err)
	}
}

// TestFactoriesValidateTheirOwnParams pins per-factory parameter
// validation: knobs a mechanism does not consume must be rejected, not
// silently ignored — an analyst who believes they got a refinement must
// not run without it.
func TestFactoriesValidateTheirOwnParams(t *testing.T) {
	th := 5.0
	hist := []float64{1, 2, 3}
	cases := []struct {
		name string
		p    Params
	}{
		{"sparse", Params{Epsilon: 1, MaxPositives: 1, Histogram: hist}},
		{"sparse", Params{Epsilon: 0, MaxPositives: 1}},
		{"proposed", Params{Epsilon: 1, MaxPositives: 1, Monotonic: true}},
		{"proposed", Params{Epsilon: 1, MaxPositives: 1, AnswerFraction: 0.2}},
		{"dpbook", Params{Epsilon: 1, MaxPositives: 1, Histogram: hist}},
		{"dpbook", Params{Epsilon: 1, MaxPositives: 0}},
		{"esvt", Params{Epsilon: 1, MaxPositives: 1, AnswerFraction: 0.2}},
		{"esvt", Params{Epsilon: 1, MaxPositives: 1, Histogram: hist}},
		{"esvt", Params{Epsilon: 1, MaxPositives: 0}},
		{"pmw", Params{Epsilon: 1, MaxPositives: 1, Histogram: hist}}, // no threshold
		{"pmw", Params{Epsilon: 1, MaxPositives: 1, Threshold: &th}},  // no histogram
		{"pmw", Params{Epsilon: 1, MaxPositives: 1, Threshold: &th, Histogram: hist, Monotonic: true}},
	}
	for i, tc := range cases {
		if _, err := Default.New(tc.name, tc.p); err == nil {
			t.Errorf("case %d: %s accepted %+v", i, tc.name, tc.p)
		}
	}

	// The accepted shapes still work, including the esvt monotonic
	// refinement and sensitivity defaulting.
	good := []struct {
		name string
		p    Params
	}{
		{"esvt", Params{Epsilon: 1, MaxPositives: 3, Monotonic: true}},
		{"esvt", Params{Epsilon: 1, MaxPositives: 3, Sensitivity: 2}},
		{"sparse", Params{Epsilon: 1, MaxPositives: 3, Monotonic: true, AnswerFraction: 0.25}},
	}
	for i, tc := range good {
		if _, err := Default.New(tc.name, tc.p); err != nil {
			t.Errorf("good case %d: %s rejected %+v: %v", i, tc.name, tc.p, err)
		}
	}
}
