package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopIndices(t *testing.T) {
	scores := []float64{5, 9, 9, 1, 7}
	got := TopIndices(scores, 3)
	// 9s at indices 1 and 2 (tie → lower index first), then 7 at index 4.
	want := []int{1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopIndices = %v, want %v", got, want)
		}
	}
	if all := TopIndices(scores, 5); len(all) != 5 {
		t.Errorf("full top = %v", all)
	}
}

func TestTopIndicesPanics(t *testing.T) {
	for _, c := range []int{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TopIndices(c=%d) did not panic", c)
				}
			}()
			TopIndices([]float64{1, 2, 3}, c)
		}()
	}
}

func TestFNR(t *testing.T) {
	trueTop := []int{0, 1, 2, 3}
	cases := []struct {
		sel  []int
		want float64
	}{
		{[]int{0, 1, 2, 3}, 0},
		{[]int{3, 2, 1, 0}, 0},
		{[]int{0, 1, 7, 8}, 0.5},
		{nil, 1},
		{[]int{9}, 1},
	}
	for _, c := range cases {
		if got := FNR(trueTop, c.sel); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FNR(%v) = %v, want %v", c.sel, got, c.want)
		}
	}
}

func TestFNRPanicsOnEmptyTruth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FNR(nil, []int{1})
}

func TestSER(t *testing.T) {
	scores := []float64{100, 90, 80, 10, 5}
	trueTop := []int{0, 1} // avg 95
	cases := []struct {
		sel  []int
		want float64
	}{
		{[]int{0, 1}, 0},
		{[]int{1, 0}, 0},
		{[]int{0, 2}, 1 - 90.0/95}, // avg 90
		{[]int{3, 4}, 1 - 7.5/95},  // avg 7.5
		{[]int{0}, 1 - 50.0/95},    // short selection: missing slot scores 0
		{nil, 1},                   // nothing selected
	}
	for _, c := range cases {
		if got := SER(scores, trueTop, c.sel); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SER(%v) = %v, want %v", c.sel, got, c.want)
		}
	}
}

func TestSERPanics(t *testing.T) {
	scores := []float64{1, 2, 3}
	cases := map[string]func(){
		"empty truth": func() { SER(scores, nil, []int{0}) },
		"bad truth":   func() { SER(scores, []int{5}, []int{0}) },
		"bad sel":     func() { SER(scores, []int{0}, []int{-1}) },
		"zero truth":  func() { SER([]float64{0, 0}, []int{0, 1}, []int{0}) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// Properties tying the two metrics together: selecting exactly the true
// top gives 0 on both; any selection keeps both within [0, 1] when scores
// are non-negative; and SER of a selection that swaps in strictly lower-
// scored items is positive.
func TestQuickMetricBounds(t *testing.T) {
	f := func(raw []uint8, cRaw uint8, selRaw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 30 {
			raw = raw[:30]
		}
		scores := make([]float64, len(raw))
		positive := false
		for i, v := range raw {
			scores[i] = float64(v)
			if v > 0 {
				positive = true
			}
		}
		if !positive {
			return true
		}
		c := int(cRaw)%len(scores) + 1
		trueTop := TopIndices(scores, c)
		if avg := avgOf(scores, trueTop); avg <= 0 {
			return true // zero truth average panics by contract
		}
		// Perfect selection scores zero on both metrics.
		if FNR(trueTop, trueTop) != 0 || math.Abs(SER(scores, trueTop, trueTop)) > 1e-12 {
			return false
		}
		// Arbitrary selection (distinct, in range) keeps metrics in [0,1].
		sel := make([]int, 0, len(selRaw))
		seen := map[int]bool{}
		for _, v := range selRaw {
			idx := int(v) % len(scores)
			if !seen[idx] && len(sel) < c {
				seen[idx] = true
				sel = append(sel, idx)
			}
		}
		fnr := FNR(trueTop, sel)
		ser := SER(scores, trueTop, sel)
		return fnr >= 0 && fnr <= 1 && ser >= -1e-12 && ser <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func avgOf(scores []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += scores[i]
	}
	return s / float64(len(idx))
}
