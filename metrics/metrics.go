// Package metrics implements the utility measures of the paper's
// evaluation (§6): the False Negative Rate and the Score Error Rate.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// TopIndices returns the indices of the c highest scores, ties broken by
// lower index, in decreasing score order. It panics if c is not in
// [1, len(scores)] — callers choose c against a known score vector.
func TopIndices(scores []float64, c int) []int {
	if c <= 0 || c > len(scores) {
		panic(fmt.Sprintf("metrics: c = %d out of [1, %d]", c, len(scores)))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:c]
}

// FNR is the False Negative Rate: the fraction of the true top-c queries
// missing from the selection. When the selection has exactly c elements
// this equals the false positive rate (§6, Utility Measures). It panics on
// an empty truth set.
func FNR(trueTop, selected []int) float64 {
	if len(trueTop) == 0 {
		panic("metrics: FNR with empty truth set")
	}
	sel := make(map[int]bool, len(selected))
	for _, i := range selected {
		sel[i] = true
	}
	missed := 0
	for _, i := range trueTop {
		if !sel[i] {
			missed++
		}
	}
	return float64(missed) / float64(len(trueTop))
}

// SER is the Score Error Rate: 1 − avgScore(selected)/avgScore(trueTop),
// the paper's refinement of FNR that weights misses by how much score they
// cost. A selection smaller than the truth set is averaged over the truth
// set's size, so unfilled slots count as zero score — matching the paper's
// accounting where selecting fewer than c queries wastes budget. It panics
// on an empty truth set, an out-of-range index, or a zero/negative truth
// average (scores are supports, hence non-negative, and a zero truth
// average makes the ratio meaningless).
func SER(scores []float64, trueTop, selected []int) float64 {
	if len(trueTop) == 0 {
		panic("metrics: SER with empty truth set")
	}
	sum := func(idx []int) float64 {
		s := 0.0
		for _, i := range idx {
			if i < 0 || i >= len(scores) {
				panic(fmt.Sprintf("metrics: index %d out of range [0,%d)", i, len(scores)))
			}
			s += scores[i]
		}
		return s
	}
	truthAvg := sum(trueTop) / float64(len(trueTop))
	if !(truthAvg > 0) || math.IsNaN(truthAvg) {
		panic(fmt.Sprintf("metrics: truth average score %v must be positive", truthAvg))
	}
	// Average the selection over the truth-set size: if fewer than c were
	// selected, the missing slots contribute zero.
	n := len(trueTop)
	if len(selected) > n {
		n = len(selected)
	}
	selAvg := sum(selected) / float64(n)
	return 1 - selAvg/truthAvg
}
