package metrics_test

import (
	"fmt"

	"github.com/dpgo/svt/metrics"
)

// Scoring a private selection against the true top-c.
func ExampleSER() {
	scores := []float64{100, 90, 80, 10, 5}
	trueTop := metrics.TopIndices(scores, 2) // [0 1], average score 95
	selected := []int{0, 2}                  // picked the 3rd-best instead of the 2nd

	fmt.Printf("true top: %v\n", trueTop)
	fmt.Printf("FNR: %.2f\n", metrics.FNR(trueTop, selected))
	fmt.Printf("SER: %.4f\n", metrics.SER(scores, trueTop, selected))
	// Output:
	// true top: [0 1]
	// FNR: 0.50
	// SER: 0.0526
}
