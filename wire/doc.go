// Package wire is the binary wire protocol for the SVT service: a
// length-prefixed frame codec shared by the server's binary listener
// (server.WireServer, svtserve -wire-addr) and the Go client SDK
// (client package).
//
// A connection starts with a hello exchange (protocol version, tenant,
// optional W3C traceparent), after which every frame is
//
//	| length uvarint | op byte | requestID uvarint | body |
//
// Request IDs let a client pipeline requests and match responses that
// arrive out of order; a response carries the request's op with RespFlag
// (0x80) set, or OpError with a typed code, message and retry-after hint.
// The hot query path (OpQuery / OpQueryOK) is fully binary — varints and
// little-endian float64s, the journal codec's discipline — and its
// decoders alias the frame buffer and reuse caller-owned slices so a
// pooled steady state allocates nothing. Cold control ops (create,
// status, mechanisms) carry the HTTP API's JSON bodies verbatim, keeping
// one source of truth for request semantics across both edges.
//
// The package is self-contained (stdlib only, no server imports) so
// clients link it without pulling in the service.
package wire
