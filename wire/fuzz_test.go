package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecodeFrame feeds an arbitrary byte stream through the full inbound
// pipeline — frame reader, header parse, per-op body decoder — and checks
// that nothing panics, that the size cap holds, and that whatever decodes
// successfully survives an encode/decode roundtrip unchanged. The seeds
// pin the hostile shapes the hand-written tests cover: truncated frames,
// oversized frames, and length prefixes that would wrap an int.
func FuzzDecodeFrame(f *testing.F) {
	// Valid single-frame streams, one per op family.
	hello := AppendHelloBody(AppendHeader(nil, OpHello, 1), &Hello{Version: 1, Tenant: "t", Traceparent: "00-x"})
	f.Add(AppendFrame(nil, hello))
	query := AppendQueryBody(AppendHeader(nil, OpQuery, 2), "sess", "corr", []QueryItem{
		{Query: 1.5},
		{Query: -2, Threshold: 3, HasThreshold: true, Buckets: []int{0, 5, -1}},
	})
	f.Add(AppendFrame(nil, query))
	qok := AppendQueryOKBody(AppendHeader(nil, OpQueryOK, 2), []byte("corr"), true, 9,
		[]Result{{Above: true, Numeric: true, Value: 4.25}, {Exhausted: true}})
	f.Add(AppendFrame(nil, qok))
	f.Add(AppendFrame(nil, AppendErrorBody(AppendHeader(nil, OpError, 3),
		&ErrorFrame{Code: "rate_limited", Message: "m", RetryAfterSeconds: 1})))
	f.Add(AppendFrame(nil, AppendIDBody(AppendHeader(nil, OpStatus, 4), "sess")))
	f.Add(AppendFrame(nil, AppendHelloOKBody(AppendHeader(nil, OpHelloOK, 1),
		&HelloOK{Version: 1, MaxFrame: 1 << 20, MaxBatch: 1024})))
	// Two frames back to back: the reader must stop exactly on the boundary.
	f.Add(AppendFrame(AppendFrame(nil, hello), query))

	// Hostile shapes.
	f.Add([]byte{})
	f.Add(AppendFrame(nil, query)[:3])                 // truncated mid-frame
	f.Add(binary.AppendUvarint(nil, 1<<21))            // length beyond cap, no body
	f.Add(binary.AppendUvarint(nil, math.MaxUint64-1)) // length wraps an int
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0xff, 0xff, 0xff, 0x01}) // 11-byte uvarint prefix

	const maxFrame = 1 << 20
	f.Fuzz(func(t *testing.T, stream []byte) {
		br := bufio.NewReader(bytes.NewReader(stream))
		var buf []byte
		var req QueryRequest
		var resp QueryResponse
		for frames := 0; frames < 64; frames++ {
			payload, err := ReadFrame(br, buf, maxFrame)
			if err != nil {
				return
			}
			if len(payload) > maxFrame {
				t.Fatalf("frame of %d bytes escaped the %d cap", len(payload), maxFrame)
			}
			buf = payload
			op, reqID, body, err := ParseHeader(payload)
			if err != nil {
				continue
			}
			switch op {
			case OpHello:
				var h Hello
				if err := DecodeHelloBody(body, &h); err == nil {
					re := AppendHelloBody(nil, &h)
					var h2 Hello
					if err := DecodeHelloBody(re, &h2); err != nil || h2 != h {
						t.Fatalf("hello roundtrip diverged: %+v vs %+v (%v)", h, h2, err)
					}
				}
			case OpHelloOK:
				var h HelloOK
				if err := DecodeHelloOKBody(body, &h); err == nil {
					var h2 HelloOK
					if err := DecodeHelloOKBody(AppendHelloOKBody(nil, &h), &h2); err != nil || h2 != h {
						t.Fatalf("helloOK roundtrip diverged")
					}
				}
			case OpQuery:
				if err := DecodeQueryBody(body, &req); err == nil {
					re := AppendQueryBody(nil, string(req.Session), string(req.Corr), req.Items)
					var req2 QueryRequest
					if err := DecodeQueryBody(re, &req2); err != nil {
						t.Fatalf("query re-decode failed: %v", err)
					}
					if len(req2.Items) != len(req.Items) || string(req2.Session) != string(req.Session) {
						t.Fatalf("query roundtrip diverged")
					}
					for i := range req.Items {
						if !sameItem(req.Items[i], req2.Items[i]) {
							t.Fatalf("query item %d diverged: %+v vs %+v", i, req.Items[i], req2.Items[i])
						}
					}
				}
			case OpQueryOK:
				if err := DecodeQueryOKBody(body, &resp); err == nil {
					re := AppendQueryOKBody(nil, resp.Corr, resp.Halted, resp.Remaining, resp.Results)
					var resp2 QueryResponse
					if err := DecodeQueryOKBody(re, &resp2); err != nil {
						t.Fatalf("queryOK re-decode failed: %v", err)
					}
					// resp2's fields alias re; compare before the next decode
					// reuses resp's arenas.
					if resp2.Halted != resp.Halted || resp2.Remaining != resp.Remaining ||
						len(resp2.Results) != len(resp.Results) || string(resp2.Corr) != string(resp.Corr) {
						t.Fatalf("queryOK roundtrip diverged")
					}
				}
			case OpError:
				var e ErrorFrame
				if err := DecodeErrorBody(body, &e); err == nil {
					var e2 ErrorFrame
					if err := DecodeErrorBody(AppendErrorBody(nil, &e), &e2); err != nil || e2 != e {
						t.Fatalf("error roundtrip diverged")
					}
				}
			case OpStatus, OpDelete:
				if id, err := DecodeIDBody(body); err == nil {
					if id2, err := DecodeIDBody(AppendIDBody(nil, string(id))); err != nil || string(id2) != string(id) {
						t.Fatalf("id roundtrip diverged")
					}
				}
			}
			_ = reqID
		}
	})
}

// sameItem compares two query items treating NaN == NaN (bit-identical
// floats survive the codec, but Go's == on NaN is always false).
func sameItem(a, b QueryItem) bool {
	if math.Float64bits(a.Query) != math.Float64bits(b.Query) ||
		a.HasThreshold != b.HasThreshold ||
		math.Float64bits(a.Threshold) != math.Float64bits(b.Threshold) ||
		len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}
