package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{
		{},
		{0x01},
		bytes.Repeat([]byte{0xab}, 300),
		bytes.Repeat([]byte{0x00}, 1<<16),
	}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	var buf []byte
	for i, want := range payloads {
		got, err := ReadFrame(br, buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
		buf = got
	}
	if _, err := ReadFrame(br, buf, 0); err != io.EOF {
		t.Fatalf("expected io.EOF at stream end, got %v", err)
	}
}

func TestWriteFrameMatchesAppendFrame(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 513)
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)
	if err := WriteFrame(bw, payload); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := AppendFrame(nil, payload); !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("WriteFrame and AppendFrame disagree")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, bytes.Repeat([]byte{0x7f}, 100))
	for _, cut := range []int{1, 2, 50, len(full) - 1} {
		br := bufio.NewReader(bytes.NewReader(full[:cut]))
		if _, err := ReadFrame(br, nil, 0); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameCaps(t *testing.T) {
	over := AppendFrame(nil, bytes.Repeat([]byte{1}, 64))
	br := bufio.NewReader(bytes.NewReader(over))
	if _, err := ReadFrame(br, nil, 63); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}

	// A length prefix near 2^64 must be refused before any allocation,
	// even though it would wrap a signed int.
	wrap := binary.AppendUvarint(nil, math.MaxUint64-1)
	br = bufio.NewReader(bytes.NewReader(wrap))
	if _, err := ReadFrame(br, nil, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("length-wrap frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	stream := AppendFrame(nil, bytes.Repeat([]byte{2}, 32))
	stream = AppendFrame(stream, bytes.Repeat([]byte{3}, 16))
	br := bufio.NewReader(bytes.NewReader(stream))
	buf := make([]byte, 0, 64)
	p1, err := ReadFrame(br, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &p1[0] != &buf[:1][0] {
		t.Fatal("first frame did not reuse the caller's buffer")
	}
	p2, err := ReadFrame(br, p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != 16 || p2[0] != 3 {
		t.Fatalf("second frame corrupt: % x", p2)
	}
}

func TestHeaderRoundtrip(t *testing.T) {
	for _, id := range []uint64{0, 1, 127, 128, math.MaxUint64} {
		p := AppendHeader(nil, OpQuery, id)
		p = append(p, 0xde, 0xad)
		op, got, body, err := ParseHeader(p)
		if err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if op != OpQuery || got != id || !bytes.Equal(body, []byte{0xde, 0xad}) {
			t.Fatalf("id %d: got op=%#x id=%d body=% x", id, op, got, body)
		}
	}
	if _, _, _, err := ParseHeader(nil); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("empty payload: got %v", err)
	}
	if _, _, _, err := ParseHeader([]byte{OpQuery}); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("missing request id: got %v", err)
	}
}

func TestHelloRoundtrip(t *testing.T) {
	in := Hello{Version: 1, Tenant: "acme", Traceparent: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"}
	body := AppendHelloBody(nil, &in)
	var out Hello
	if err := DecodeHelloBody(body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	if err := DecodeHelloBody(body[:len(body)-1], &out); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated hello: got %v", err)
	}
	if err := DecodeHelloBody(append(body, 0), &out); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing bytes: got %v", err)
	}
}

func TestHelloOKRoundtrip(t *testing.T) {
	in := HelloOK{Version: 1, MaxFrame: 1 << 20, MaxBatch: 1024}
	body := AppendHelloOKBody(nil, &in)
	var out HelloOK
	if err := DecodeHelloOKBody(body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestQueryRoundtrip(t *testing.T) {
	items := []QueryItem{
		{Query: 42.5},
		{Query: -1, Threshold: 10.25, HasThreshold: true},
		{Query: 0, Buckets: []int{0, 7, 12345, -3}},
		{Query: math.Inf(1), Threshold: math.SmallestNonzeroFloat64, HasThreshold: true, Buckets: []int{1}},
	}
	body := AppendQueryBody(nil, "sess-1", "corr-9", items)
	var req QueryRequest
	if err := DecodeQueryBody(body, &req); err != nil {
		t.Fatal(err)
	}
	if string(req.Session) != "sess-1" || string(req.Corr) != "corr-9" {
		t.Fatalf("ids: session=%q corr=%q", req.Session, req.Corr)
	}
	if !reflect.DeepEqual(normalizeItems(req.Items), normalizeItems(items)) {
		t.Fatalf("items:\n got %+v\nwant %+v", req.Items, items)
	}

	// Reuse: a second decode into the same request must not allocate new
	// item storage when capacities suffice.
	body2 := AppendQueryBody(nil, "s", "", items[:2])
	if err := DecodeQueryBody(body2, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Corr) != 0 || len(req.Items) != 2 {
		t.Fatalf("reuse decode: corr=%q items=%d", req.Corr, len(req.Items))
	}
}

// normalizeItems maps empty and nil bucket slices to a canonical form so
// DeepEqual compares semantics, not backing-array identity.
func normalizeItems(in []QueryItem) []QueryItem {
	out := make([]QueryItem, len(in))
	for i, it := range in {
		out[i] = it
		if len(it.Buckets) == 0 {
			out[i].Buckets = nil
		} else {
			out[i].Buckets = append([]int(nil), it.Buckets...)
		}
	}
	return out
}

func TestQueryDecodeRejectsCorrupt(t *testing.T) {
	good := AppendQueryBody(nil, "s", "", []QueryItem{{Query: 1, Threshold: 2, HasThreshold: true, Buckets: []int{3}}})
	var req QueryRequest
	for cut := 0; cut < len(good); cut++ {
		if err := DecodeQueryBody(good[:cut], &req); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := DecodeQueryBody(append(append([]byte(nil), good...), 0xff), &req); err == nil {
		t.Fatal("trailing byte accepted")
	}

	// An unknown item flag bit must be rejected, not silently ignored:
	// it would change the item layout in a future protocol revision.
	bad := AppendQueryBody(nil, "s", "", nil)
	bad[len(bad)-1] = 1 // item count 1
	bad = append(bad, 0x80)
	bad = binary.LittleEndian.AppendUint64(bad, 0)
	if err := DecodeQueryBody(bad, &req); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("unknown flag bit: got %v", err)
	}

	// A hostile item count larger than the remaining body must fail fast
	// without sizing an allocation from it.
	huge := appendString(nil, "s")
	huge = appendString(huge, "")
	huge = binary.AppendUvarint(huge, 1<<30)
	if err := DecodeQueryBody(huge, &req); err == nil {
		t.Fatal("hostile item count accepted")
	}
}

func TestQueryOKRoundtrip(t *testing.T) {
	results := []Result{
		{Above: true},
		{Above: true, Numeric: true, Value: -12.75},
		{Exhausted: true},
		{FromSynthetic: true, Above: true},
		{},
	}
	body := AppendQueryOKBody(nil, []byte("req-77"), true, 3, results)
	var resp QueryResponse
	if err := DecodeQueryOKBody(body, &resp); err != nil {
		t.Fatal(err)
	}
	if string(resp.Corr) != "req-77" || !resp.Halted || resp.Remaining != 3 {
		t.Fatalf("envelope: %+v", resp)
	}
	if !reflect.DeepEqual(resp.Results, results) {
		t.Fatalf("results:\n got %+v\nwant %+v", resp.Results, results)
	}

	for cut := 0; cut < len(body); cut++ {
		if err := DecodeQueryOKBody(body[:cut], &resp); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestErrorRoundtrip(t *testing.T) {
	in := ErrorFrame{Code: "rate_limited", Message: `tenant "acme" exceeded 100 requests/sec`, RetryAfterSeconds: 2}
	body := AppendErrorBody(nil, &in)
	var out ErrorFrame
	if err := DecodeErrorBody(body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestIDBodyRoundtrip(t *testing.T) {
	body := AppendIDBody(nil, "sess-abc")
	id, err := DecodeIDBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if string(id) != "sess-abc" {
		t.Fatalf("got %q", id)
	}
	if _, err := DecodeIDBody(append(body, 1)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing bytes: got %v", err)
	}
	if _, err := DecodeIDBody(body[:2]); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("truncated: got %v", err)
	}
}
