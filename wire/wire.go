package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Frame layout, shared by both directions:
//
//	| length uvarint | payload (length bytes) |
//
// where the payload is
//
//	| op byte | requestID uvarint | body (rest) |
//
// The length prefix lets a reader skip to the next frame without parsing
// the body; the request ID lets a client pipeline many requests on one
// connection and match responses arriving out of order. Response frames
// echo the request's ID and carry the request op with RespFlag set (an
// error response uses OpError instead). Body layouts are defined per op
// below; the hot-path bodies (query, query response) are fully binary with
// the same varint + float64-LE discipline as the server's journal codec,
// while the cold control ops (create, status, mechanisms) carry the HTTP
// API's JSON bodies verbatim, so the two edges can never disagree about
// request semantics.

// Version is the protocol generation negotiated in the hello exchange.
// A server refuses a hello carrying a version it does not speak.
const Version = 1

// DefaultMaxFrameBytes caps a frame's payload when the caller passes no
// explicit cap: 1 MiB, matching the HTTP edge's default body cap.
const DefaultMaxFrameBytes = 1 << 20

// RespFlag is OR-ed into a request op to form its success-response op.
const RespFlag byte = 0x80

// Request ops (client to server).
const (
	// OpHello must be the first frame on a connection: it carries the
	// protocol version, the calling tenant and an optional W3C traceparent
	// that seeds trace correlation for the whole connection.
	OpHello byte = 0x01
	// OpQuery is the hot path: a batch of threshold queries against one
	// session.
	OpQuery byte = 0x02
	// OpCreate creates a session; the body is the HTTP API's CreateParams
	// JSON. The tenant always comes from the hello frame, never the body.
	OpCreate byte = 0x03
	// OpStatus fetches one session's status; the body is the session ID.
	OpStatus byte = 0x04
	// OpDelete ends a session; the body is the session ID.
	OpDelete byte = 0x05
	// OpMechanisms lists the server's mechanism registry with capability
	// flags (the GET /v1/mechanisms document); the body is empty.
	OpMechanisms byte = 0x06
)

// Response ops (server to client).
const (
	OpHelloOK      = OpHello | RespFlag
	OpQueryOK      = OpQuery | RespFlag
	OpCreateOK     = OpCreate | RespFlag
	OpStatusOK     = OpStatus | RespFlag
	OpDeleteOK     = OpDelete | RespFlag
	OpMechanismsOK = OpMechanisms | RespFlag
	// OpError is the typed failure response for any request: a stable
	// machine-readable code (the HTTP API's error codes), a human-readable
	// message, and a retry-after hint for rate-limited requests.
	OpError byte = 0xFF
)

// Decoding error sentinels. ErrFrameTooLarge also guards against hostile
// length prefixes (including uvarint values that would wrap an int), so a
// reader never allocates more than its configured cap.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds the size cap")
	ErrCorruptFrame  = errors.New("wire: corrupt frame")
)

// AppendFrame appends payload as one length-prefixed frame to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// WriteFrame writes payload as one length-prefixed frame to bw. The header
// is built on the stack, so framing an already-encoded payload allocates
// nothing.
//
//svt:hotpath
func WriteFrame(bw *bufio.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// ReadFrame reads one frame's payload into buf's backing array, growing it
// only when the frame outgrows its capacity, and returns the payload
// slice. max caps the payload length (0 means DefaultMaxFrameBytes); a
// larger or int-wrapping length prefix fails with ErrFrameTooLarge before
// anything is allocated. A clean EOF at a frame boundary returns io.EOF;
// EOF mid-frame returns io.ErrUnexpectedEOF.
//
//svt:hotpath
func ReadFrame(br *bufio.Reader, buf []byte, max int) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return buf[:0], err
	}
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if n > uint64(max) {
		return buf[:0], fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf[:0], err
	}
	return buf, nil
}

// AppendHeader appends the payload header (op, request ID) to dst; the
// caller appends the body and frames the result.
//
//svt:hotpath
func AppendHeader(dst []byte, op byte, reqID uint64) []byte {
	dst = append(dst, op)
	return binary.AppendUvarint(dst, reqID)
}

// ParseHeader splits a frame payload into its op, request ID and body.
//
//svt:hotpath
func ParseHeader(payload []byte) (op byte, reqID uint64, body []byte, err error) {
	if len(payload) == 0 {
		return 0, 0, nil, fmt.Errorf("%w: empty payload", ErrCorruptFrame)
	}
	id, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad request id", ErrCorruptFrame)
	}
	return payload[0], id, payload[1+n:], nil
}

// dec walks a frame body, remembering the first failure so field reads
// chain without per-field error plumbing — the journal codec's decoder
// discipline (server/persist.go).
type dec struct {
	b   []byte
	bad bool
}

func (d *dec) uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte_() byte {
	if len(d.b) == 0 {
		d.bad = true
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) float() float64 {
	if len(d.b) < 8 {
		d.bad = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// count reads a uvarint that must survive the cast to int AND be plausible
// for the bytes that remain (every counted element is at least one byte),
// so a hostile count can neither wrap negative nor size a huge allocation.
func (d *dec) count() int {
	v := d.uvarint()
	if v > math.MaxInt32 || v > uint64(len(d.b)) {
		d.bad = true
		return 0
	}
	return int(v)
}

// bytes returns the next length-prefixed byte string, ALIASING the frame
// buffer: valid only until the caller's next ReadFrame on the same buffer.
func (d *dec) bytes() []byte {
	n := d.count()
	if d.bad {
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Hello is the OpHello body: the connection handshake. Body layout:
// version uvarint, tenant string, traceparent string (strings are uvarint
// length + bytes; traceparent may be empty).
type Hello struct {
	Version     uint64
	Tenant      string
	Traceparent string
}

// AppendHelloBody appends h to dst.
func AppendHelloBody(dst []byte, h *Hello) []byte {
	dst = binary.AppendUvarint(dst, h.Version)
	dst = appendString(dst, h.Tenant)
	return appendString(dst, h.Traceparent)
}

// DecodeHelloBody decodes an OpHello body. The strings are copied: the
// handshake is once per connection and its fields outlive the frame.
func DecodeHelloBody(body []byte, h *Hello) error {
	d := dec{b: body}
	h.Version = d.uvarint()
	h.Tenant = string(d.bytes())
	h.Traceparent = string(d.bytes())
	if d.bad || len(d.b) != 0 {
		return fmt.Errorf("%w: bad hello body", ErrCorruptFrame)
	}
	return nil
}

// HelloOK is the OpHelloOK body: the server's accepted version and the
// connection's negotiated caps. Body layout: three uvarints.
type HelloOK struct {
	Version  uint64
	MaxFrame uint64
	MaxBatch uint64
}

// AppendHelloOKBody appends h to dst.
func AppendHelloOKBody(dst []byte, h *HelloOK) []byte {
	dst = binary.AppendUvarint(dst, h.Version)
	dst = binary.AppendUvarint(dst, h.MaxFrame)
	return binary.AppendUvarint(dst, h.MaxBatch)
}

// DecodeHelloOKBody decodes an OpHelloOK body.
func DecodeHelloOKBody(body []byte, h *HelloOK) error {
	d := dec{b: body}
	h.Version = d.uvarint()
	h.MaxFrame = d.uvarint()
	h.MaxBatch = d.uvarint()
	if d.bad || len(d.b) != 0 {
		return fmt.Errorf("%w: bad hello response body", ErrCorruptFrame)
	}
	return nil
}

// QueryItem flag bits.
const (
	qiHasThreshold = 1 << 0 // per-query threshold float64 follows the query
	qiHasBuckets   = 1 << 1 // bucket list follows: uvarint count + count varints
)

// QueryItem is one threshold query (or one linear counting query, when
// Buckets is set) in an OpQuery batch.
type QueryItem struct {
	// Query is the true, unperturbed answer.
	Query float64
	// Threshold overrides the session default when HasThreshold is set; a
	// flag rather than a pointer so the decoded batch needs no per-item
	// box.
	Threshold    float64
	HasThreshold bool
	// Buckets is a linear counting query's histogram indices.
	Buckets []int
}

// QueryRequest is a decoded OpQuery body. Session and Corr ALIAS the frame
// buffer and are valid only until the next ReadFrame; Items and its bucket
// arena are reused across decodes, so a pooled QueryRequest makes the
// steady-state decode allocation-free. Body layout: session string, corr
// string (empty means the server mints one), uvarint item count, then per
// item a flags byte, the query float64 LE, an optional threshold float64
// LE and an optional bucket list (uvarint count + count varints).
type QueryRequest struct {
	Session []byte
	Corr    []byte
	Items   []QueryItem

	// buckets is the flat arena the items' Buckets slices point into.
	buckets []int
}

// AppendQueryBody appends a query batch to dst.
func AppendQueryBody(dst []byte, session, corr string, items []QueryItem) []byte {
	dst = appendString(dst, session)
	dst = appendString(dst, corr)
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for i := range items {
		it := &items[i]
		var flags byte
		if it.HasThreshold {
			flags |= qiHasThreshold
		}
		if len(it.Buckets) > 0 {
			flags |= qiHasBuckets
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(it.Query))
		if it.HasThreshold {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(it.Threshold))
		}
		if len(it.Buckets) > 0 {
			dst = binary.AppendUvarint(dst, uint64(len(it.Buckets)))
			for _, b := range it.Buckets {
				dst = binary.AppendVarint(dst, int64(b))
			}
		}
	}
	return dst
}

// DecodeQueryBody decodes an OpQuery body into req, reusing req's slices.
//
//svt:hotpath
func DecodeQueryBody(body []byte, req *QueryRequest) error {
	d := dec{b: body}
	req.Session = d.bytes()
	req.Corr = d.bytes()
	n := d.count()
	if d.bad {
		return fmt.Errorf("%w: bad query body", ErrCorruptFrame)
	}
	items := req.Items[:0]
	if cap(items) < n {
		items = make([]QueryItem, 0, n)
	}
	buckets := req.buckets[:0]
	for i := 0; i < n; i++ {
		flags := d.byte_()
		if flags&^byte(qiHasThreshold|qiHasBuckets) != 0 {
			return fmt.Errorf("%w: bad query item flags", ErrCorruptFrame)
		}
		it := QueryItem{Query: d.float()}
		if flags&qiHasThreshold != 0 {
			it.Threshold = d.float()
			it.HasThreshold = true
		}
		if flags&qiHasBuckets != 0 {
			bn := d.count()
			if d.bad {
				return fmt.Errorf("%w: bad bucket count", ErrCorruptFrame)
			}
			start := len(buckets)
			for j := 0; j < bn; j++ {
				buckets = append(buckets, int(d.varint()))
			}
			// Full-slice expression: a later arena grow must copy, never
			// scribble past this item's view.
			it.Buckets = buckets[start:len(buckets):len(buckets)]
		}
		if d.bad {
			return fmt.Errorf("%w: truncated query item", ErrCorruptFrame)
		}
		items = append(items, it)
	}
	if d.bad || len(d.b) != 0 {
		return fmt.Errorf("%w: bad query body", ErrCorruptFrame)
	}
	req.Items, req.buckets = items, buckets
	return nil
}

// Result flag bits.
const (
	resAbove         = 1 << 0
	resNumeric       = 1 << 1
	resFromSynthetic = 1 << 2
	resExhausted     = 1 << 3
	resHasValue      = 1 << 4 // released value float64 follows
)

// queryOKHalted is the QueryOK batch-level flag bit.
const queryOKHalted = 1 << 0

// Result is one released answer in an OpQueryOK body, mirroring the HTTP
// API's QueryResult field for field.
type Result struct {
	Above         bool
	Numeric       bool
	FromSynthetic bool
	Exhausted     bool
	Value         float64
}

// QueryResponse is a decoded OpQueryOK body. Corr aliases the frame
// buffer; Results is reused across decodes. Body layout: corr string (the
// request's correlation ID, echoed, or a server-minted one), a flags byte
// (halted), uvarint remaining, uvarint result count, then per result a
// flags byte and an optional value float64 LE.
type QueryResponse struct {
	Corr      []byte
	Halted    bool
	Remaining int
	Results   []Result
}

// AppendQueryOKBody appends a query response to dst.
//
//svt:hotpath
func AppendQueryOKBody(dst []byte, corr []byte, halted bool, remaining int, results []Result) []byte {
	dst = appendBytes(dst, corr)
	var flags byte
	if halted {
		flags |= queryOKHalted
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(remaining))
	dst = binary.AppendUvarint(dst, uint64(len(results)))
	for i := range results {
		r := &results[i]
		var rf byte
		if r.Above {
			rf |= resAbove
		}
		if r.Numeric {
			rf |= resNumeric
		}
		if r.FromSynthetic {
			rf |= resFromSynthetic
		}
		if r.Exhausted {
			rf |= resExhausted
		}
		if r.Value != 0 {
			rf |= resHasValue
		}
		dst = append(dst, rf)
		if r.Value != 0 {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Value))
		}
	}
	return dst
}

// DecodeQueryOKBody decodes an OpQueryOK body into resp, reusing
// resp.Results.
//
//svt:hotpath
func DecodeQueryOKBody(body []byte, resp *QueryResponse) error {
	d := dec{b: body}
	resp.Corr = d.bytes()
	flags := d.byte_()
	if flags&^byte(queryOKHalted) != 0 {
		return fmt.Errorf("%w: bad query response flags", ErrCorruptFrame)
	}
	resp.Halted = flags&queryOKHalted != 0
	rem := d.uvarint()
	if rem > math.MaxInt32 {
		return fmt.Errorf("%w: bad remaining count", ErrCorruptFrame)
	}
	resp.Remaining = int(rem)
	n := d.count()
	if d.bad {
		return fmt.Errorf("%w: bad query response body", ErrCorruptFrame)
	}
	results := resp.Results[:0]
	if cap(results) < n {
		results = make([]Result, 0, n)
	}
	for i := 0; i < n; i++ {
		rf := d.byte_()
		if rf&^byte(resAbove|resNumeric|resFromSynthetic|resExhausted|resHasValue) != 0 {
			return fmt.Errorf("%w: bad result flags", ErrCorruptFrame)
		}
		r := Result{
			Above:         rf&resAbove != 0,
			Numeric:       rf&resNumeric != 0,
			FromSynthetic: rf&resFromSynthetic != 0,
			Exhausted:     rf&resExhausted != 0,
		}
		if rf&resHasValue != 0 {
			r.Value = d.float()
		}
		if d.bad {
			return fmt.Errorf("%w: truncated result", ErrCorruptFrame)
		}
		results = append(results, r)
	}
	if d.bad || len(d.b) != 0 {
		return fmt.Errorf("%w: bad query response body", ErrCorruptFrame)
	}
	resp.Results = results
	return nil
}

// ErrorFrame is a decoded OpError body: the HTTP API's stable error code
// vocabulary (bad_request, not_found, too_large, too_many_sessions,
// store_failure, rate_limited, unavailable) plus a retry hint. Body
// layout: code string, message string, uvarint retry-after seconds (0
// when not applicable). "unavailable" and "rate_limited" are the
// retryable codes; both always carry a non-zero retry hint.
type ErrorFrame struct {
	Code              string
	Message           string
	RetryAfterSeconds uint64
}

// AppendErrorBody appends e to dst.
func AppendErrorBody(dst []byte, e *ErrorFrame) []byte {
	dst = appendString(dst, e.Code)
	dst = appendString(dst, e.Message)
	return binary.AppendUvarint(dst, e.RetryAfterSeconds)
}

// DecodeErrorBody decodes an OpError body; strings are copied (errors are
// off the hot path and outlive the frame).
func DecodeErrorBody(body []byte, e *ErrorFrame) error {
	d := dec{b: body}
	e.Code = string(d.bytes())
	e.Message = string(d.bytes())
	e.RetryAfterSeconds = d.uvarint()
	if d.bad || len(d.b) != 0 {
		return fmt.Errorf("%w: bad error body", ErrCorruptFrame)
	}
	return nil
}

// AppendIDBody appends a bare session-ID body (OpStatus, OpDelete) to dst.
func AppendIDBody(dst []byte, id string) []byte {
	return appendString(dst, id)
}

// DecodeIDBody decodes a bare session-ID body, ALIASING the frame buffer.
func DecodeIDBody(body []byte) ([]byte, error) {
	d := dec{b: body}
	id := d.bytes()
	if d.bad || len(d.b) != 0 {
		return nil, fmt.Errorf("%w: bad id body", ErrCorruptFrame)
	}
	return id, nil
}
