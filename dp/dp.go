// Package dp provides the differential-privacy primitives the paper builds
// on (§2 Background): the Laplace mechanism, the Exponential Mechanism, and
// a sequential-composition budget accountant.
//
// Definitions follow Dwork et al.: a randomized mechanism A is ε-DP when
// for all neighboring datasets D ≃ D′ and all outputs S,
// Pr[A(D) = S] ≤ e^ε · Pr[A(D′) = S]. Neighbors differ in one tuple.
//
// Randomness: mechanisms draw noise from a deterministic generator seeded
// either explicitly (reproducible experiments) or, by default, from
// crypto/rand. Like essentially all floating-point DP implementations,
// the samplers are subject to the caveats of Mironov (CCS 2012) on
// floating-point artifacts; this library targets research reproduction,
// not adversarial deployment.
package dp

import (
	"errors"
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// ErrBudgetExhausted is returned by Accountant.Spend when a request would
// exceed the total privacy budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Laplace is the Laplace mechanism: Release(x) = x + Lap(Δ/ε).
type Laplace struct {
	src         *rng.Source
	epsilon     float64
	sensitivity float64
}

// NewLaplace builds a Laplace mechanism with per-release budget epsilon and
// global sensitivity Δ = sensitivity. Seed 0 means crypto-seeded.
func NewLaplace(epsilon, sensitivity float64, seed uint64) (*Laplace, error) {
	if !(epsilon > 0) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("dp: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(sensitivity > 0) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("dp: sensitivity must be positive and finite, got %v", sensitivity)
	}
	return &Laplace{src: rng.NewSeeded(seed), epsilon: epsilon, sensitivity: sensitivity}, nil
}

// Release returns value + Lap(Δ/ε). Each call is one ε-DP release; callers
// compose budgets with an Accountant.
func (l *Laplace) Release(value float64) float64 {
	return value + l.src.Laplace(l.sensitivity/l.epsilon)
}

// Scale returns the Laplace noise scale Δ/ε used by Release.
func (l *Laplace) Scale() float64 { return l.sensitivity / l.epsilon }

// Exponential is the Exponential Mechanism of McSherry and Talwar: it
// selects an output r with probability proportional to exp(ε·q(D,r)/(2Δq)),
// or exp(ε·q(D,r)/Δq) when the quality changes are one-directional
// (monotonic), as for counting queries under add/remove-one neighbors.
type Exponential struct {
	src         *rng.Source
	epsilon     float64
	sensitivity float64
	monotonic   bool
}

// NewExponential builds an exponential mechanism with budget epsilon and
// quality-function sensitivity Δq = sensitivity. Seed 0 means
// crypto-seeded.
func NewExponential(epsilon, sensitivity float64, monotonic bool, seed uint64) (*Exponential, error) {
	if !(epsilon > 0) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("dp: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(sensitivity > 0) || math.IsInf(sensitivity, 0) {
		return nil, fmt.Errorf("dp: sensitivity must be positive and finite, got %v", sensitivity)
	}
	return &Exponential{src: rng.NewSeeded(seed), epsilon: epsilon, sensitivity: sensitivity, monotonic: monotonic}, nil
}

// Select returns the index of one candidate drawn with probability
// proportional to exp(coef·quality[i]), where coef is ε/(2Δq) — ε/Δq when
// monotonic. It uses the Gumbel-max trick, which samples the softmax
// exactly. It returns an error if quality is empty or contains a NaN.
func (e *Exponential) Select(quality []float64) (int, error) {
	if len(quality) == 0 {
		return 0, errors.New("dp: Select on empty candidate set")
	}
	coef := e.epsilon / (2 * e.sensitivity)
	if e.monotonic {
		coef = e.epsilon / e.sensitivity
	}
	best, bestVal := -1, math.Inf(-1)
	for i, q := range quality {
		if math.IsNaN(q) {
			return 0, fmt.Errorf("dp: quality[%d] is NaN", i)
		}
		if v := coef*q + e.src.Gumbel(1); v > bestVal {
			best, bestVal = i, v
		}
	}
	return best, nil
}

// Accountant tracks sequential composition against a fixed total budget.
// It is not safe for concurrent use; guard it with a mutex if shared.
type Accountant struct {
	total float64
	spent float64
}

// NewAccountant creates an accountant with the given total ε budget.
func NewAccountant(total float64) (*Accountant, error) {
	if !(total > 0) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("dp: total budget must be positive and finite, got %v", total)
	}
	return &Accountant{total: total}, nil
}

// Spend reserves eps from the budget, or returns ErrBudgetExhausted
// (wrapped with the amounts involved) without spending anything.
func (a *Accountant) Spend(eps float64) error {
	if !(eps > 0) {
		return fmt.Errorf("dp: spend amount must be positive, got %v", eps)
	}
	// A relative tolerance absorbs float accumulation across many spends.
	if a.spent+eps > a.total*(1+1e-9) {
		return fmt.Errorf("%w: requested %v with %v of %v remaining",
			ErrBudgetExhausted, eps, a.Remaining(), a.total)
	}
	a.spent += eps
	return nil
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	r := a.total - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// Spent returns the consumed budget.
func (a *Accountant) Spent() float64 { return a.spent }

// Total returns the configured total budget.
func (a *Accountant) Total() float64 { return a.total }
