package dp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSeedingBehaviour(t *testing.T) {
	mk := func(seed uint64) float64 {
		l, err := NewLaplace(1, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		return l.Release(0)
	}
	if mk(5) != mk(5) {
		t.Fatal("same seed diverged")
	}
	// Zero seed draws entropy: two instances should almost surely differ.
	if mk(0) == mk(0) {
		t.Fatal("crypto-seeded mechanisms collided (astronomically unlikely)")
	}
}

func TestLaplaceReleaseStatistics(t *testing.T) {
	l, err := NewLaplace(0.5, 2.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l.Scale(), 4.0; got != want {
		t.Fatalf("Scale = %v, want %v", got, want)
	}
	const n = 100000
	const value = 10.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := l.Release(value)
		sum += v
		sumAbs += math.Abs(v - value)
	}
	if mean := sum / n; math.Abs(mean-value) > 0.1 {
		t.Errorf("release mean %v, want ~%v", mean, value)
	}
	// E|noise| should be the scale Δ/ε = 4.
	if meanAbs := sumAbs / n; math.Abs(meanAbs-4) > 0.1 {
		t.Errorf("mean |noise| = %v, want ~4", meanAbs)
	}
}

func TestNewLaplaceValidation(t *testing.T) {
	bad := []struct{ eps, sens float64 }{
		{0, 1}, {-1, 1}, {math.Inf(1), 1}, {math.NaN(), 1},
		{1, 0}, {1, -2}, {1, math.Inf(1)}, {1, math.NaN()},
	}
	for _, c := range bad {
		if _, err := NewLaplace(c.eps, c.sens, 1); err == nil {
			t.Errorf("NewLaplace(%v, %v) accepted", c.eps, c.sens)
		}
	}
}

func TestExponentialSelectDistribution(t *testing.T) {
	quality := []float64{0, 1, 2}
	const eps = 2.0
	coef := eps / 2 // Δq = 1, general case
	var want [3]float64
	z := 0.0
	for _, q := range quality {
		z += math.Exp(coef * q)
	}
	for i, q := range quality {
		want[i] = math.Exp(coef*q) / z
	}
	e, err := NewExponential(eps, 1, false, 77)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 100000
	var counts [3]int
	for i := 0; i < trials; i++ {
		idx, err := e.Select(quality)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i := range counts {
		got := float64(counts[i]) / trials
		if math.Abs(got-want[i]) > 0.01 {
			t.Errorf("bucket %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestExponentialMonotonicDoubling(t *testing.T) {
	// With monotonic=true the coefficient doubles; verify via the odds of
	// the top item in a two-candidate race: odds = exp(coef*Δscore).
	quality := []float64{0, 1}
	const trials = 200000
	frac := func(monotonic bool, seed uint64) float64 {
		e, err := NewExponential(1.0, 1, monotonic, seed)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for i := 0; i < trials; i++ {
			idx, _ := e.Select(quality)
			if idx == 1 {
				hits++
			}
		}
		return float64(hits) / trials
	}
	pGeneral := frac(false, 5)
	pMono := frac(true, 6)
	wantGeneral := math.Exp(0.5) / (1 + math.Exp(0.5))
	wantMono := math.Exp(1.0) / (1 + math.Exp(1.0))
	if math.Abs(pGeneral-wantGeneral) > 0.01 {
		t.Errorf("general top fraction %v, want %v", pGeneral, wantGeneral)
	}
	if math.Abs(pMono-wantMono) > 0.01 {
		t.Errorf("monotonic top fraction %v, want %v", pMono, wantMono)
	}
}

func TestExponentialSelectErrors(t *testing.T) {
	e, err := NewExponential(1, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Select(nil); err == nil {
		t.Error("Select(nil) succeeded")
	}
	if _, err := e.Select([]float64{1, math.NaN()}); err == nil {
		t.Error("Select with NaN succeeded")
	}
}

func TestNewExponentialValidation(t *testing.T) {
	if _, err := NewExponential(0, 1, false, 1); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewExponential(1, 0, false, 1); err == nil {
		t.Error("zero sensitivity accepted")
	}
}

func TestAccountantSequentialComposition(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Spend(0.1); err != nil {
			t.Fatalf("spend %d failed: %v", i, err)
		}
	}
	if err := a.Spend(0.01); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overspend error = %v, want ErrBudgetExhausted", err)
	}
	if got := a.Remaining(); got > 1e-9 {
		t.Errorf("Remaining = %v, want ~0", got)
	}
	if got := a.Spent(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Spent = %v, want 1", got)
	}
	if a.Total() != 1.0 {
		t.Errorf("Total = %v", a.Total())
	}
}

func TestAccountantRejectsBadSpend(t *testing.T) {
	a, _ := NewAccountant(1.0)
	for _, eps := range []float64{0, -0.5, math.NaN()} {
		if err := a.Spend(eps); err == nil {
			t.Errorf("Spend(%v) accepted", eps)
		}
	}
	// Failed spends must not consume budget.
	if a.Spent() != 0 {
		t.Errorf("failed spends consumed %v", a.Spent())
	}
}

func TestNewAccountantValidation(t *testing.T) {
	for _, total := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewAccountant(total); err == nil {
			t.Errorf("NewAccountant(%v) accepted", total)
		}
	}
}

// Property: an accountant never lets Spent exceed Total (beyond float
// tolerance), no matter the spend sequence.
func TestQuickAccountantNeverOverspends(t *testing.T) {
	f := func(raw []uint8) bool {
		a, err := NewAccountant(1.0)
		if err != nil {
			return false
		}
		for _, v := range raw {
			eps := float64(v%100)/100 + 0.001
			_ = a.Spend(eps) // error is fine; overspending is not
		}
		return a.Spent() <= a.Total()*(1+1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
