package dp_test

import (
	"errors"
	"fmt"

	"github.com/dpgo/svt/dp"
)

// Releasing a count with the Laplace mechanism.
func ExampleLaplace() {
	mech, err := dp.NewLaplace(1.0, 1, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	noisy := mech.Release(1000)
	// The release is within a few noise scales of the truth.
	fmt.Println("scale:", mech.Scale())
	fmt.Println("plausible:", noisy > 990 && noisy < 1010)
	// Output:
	// scale: 1
	// plausible: true
}

// Selecting the (approximately) best candidate with the Exponential
// Mechanism.
func ExampleExponential() {
	mech, err := dp.NewExponential(5.0, 1, true, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	quality := []float64{1, 30, 2, 3}
	idx, err := mech.Select(quality)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("selected index:", idx)
	// Output:
	// selected index: 1
}

// Tracking sequential composition against a fixed total budget.
func ExampleAccountant() {
	acct, err := dp.NewAccountant(1.0)
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 3; i++ {
		if err := acct.Spend(0.4); err != nil {
			if errors.Is(err, dp.ErrBudgetExhausted) {
				fmt.Println("stopped: budget exhausted")
				break
			}
			fmt.Println(err)
			return
		}
		fmt.Printf("spent 0.4, remaining %.1f\n", acct.Remaining())
	}
	// Output:
	// spent 0.4, remaining 0.6
	// spent 0.4, remaining 0.2
	// stopped: budget exhausted
}

// The §3.4 advanced-composition bound: k small-ε steps compose far better
// than the basic k·ε sum.
func ExampleAdvancedComposition() {
	eps, err := dp.AdvancedComposition(10000, 0.001, 1e-6)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("advanced: %.3f vs basic: %.1f\n", eps, 10000*0.001)
	// Output:
	// advanced: 0.536 vs basic: 10.0
}
