package dp

import (
	"fmt"
	"math"
)

// AdvancedComposition returns the (ε′, δ′)-DP guarantee of running k
// instances of an ε-DP mechanism, per the boosting theorem of Dwork,
// Rothblum and Vadhan (FOCS 2010) that the paper's §3.4 cites:
//
//	ε′ = √(2k·ln(1/δ′))·ε + k·ε·(e^ε − 1).
//
// It returns an error unless k ≥ 1, ε > 0 and δ′ ∈ (0, 1). For small ε and
// large k this is far tighter than the basic k·ε bound; the (ε, δ)-DP SVT
// variants the paper sets aside in §3.4 are built on it.
func AdvancedComposition(k int, epsilon, deltaPrime float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("dp: k must be >= 1, got %d", k)
	}
	if !(epsilon > 0) || math.IsInf(epsilon, 0) {
		return 0, fmt.Errorf("dp: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(deltaPrime > 0 && deltaPrime < 1) {
		return 0, fmt.Errorf("dp: delta' must be in (0,1), got %v", deltaPrime)
	}
	kf := float64(k)
	return math.Sqrt(2*kf*math.Log(1/deltaPrime))*epsilon + kf*epsilon*(math.Expm1(epsilon)), nil
}

// PerStepEpsilon inverts AdvancedComposition: the largest per-step ε such
// that k steps compose to at most (totalEpsilon, deltaPrime)-DP. It solves
// the monotone equation by bisection to within 1e-12 relative error.
func PerStepEpsilon(k int, totalEpsilon, deltaPrime float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("dp: k must be >= 1, got %d", k)
	}
	if !(totalEpsilon > 0) || math.IsInf(totalEpsilon, 0) {
		return 0, fmt.Errorf("dp: total epsilon must be positive and finite, got %v", totalEpsilon)
	}
	if !(deltaPrime > 0 && deltaPrime < 1) {
		return 0, fmt.Errorf("dp: delta' must be in (0,1), got %v", deltaPrime)
	}
	lo, hi := 0.0, totalEpsilon // per-step ε never exceeds the total
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi { //nolint:svtlint/floateq // bisection termination: exact equality detects that [lo,hi] has no representable midpoint
			break
		}
		got, err := AdvancedComposition(k, mid, deltaPrime)
		if err != nil {
			return 0, err
		}
		if got > totalEpsilon {
			hi = mid
		} else {
			lo = mid
		}
	}
	if lo <= 0 {
		return 0, fmt.Errorf("dp: no positive per-step epsilon satisfies the target")
	}
	return lo, nil
}

// BasicComposition returns the ε of sequentially composing the given
// per-mechanism budgets (the §2 composition the whole paper runs on): the
// plain sum. It errors on non-positive entries so silent budget accounting
// bugs surface early.
func BasicComposition(epsilons ...float64) (float64, error) {
	if len(epsilons) == 0 {
		return 0, fmt.Errorf("dp: no budgets to compose")
	}
	total := 0.0
	for i, e := range epsilons {
		if !(e > 0) || math.IsInf(e, 0) {
			return 0, fmt.Errorf("dp: budget %d must be positive and finite, got %v", i, e)
		}
		total += e
	}
	return total, nil
}
