package dp

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// Geometric is the geometric mechanism (Ghosh, Roughgarden, Sundararajan):
// the discrete analogue of the Laplace mechanism for integer-valued
// queries. Release(v) = v + X where X is two-sided geometric with
// Pr[X = k] ∝ α^{|k|}, α = e^{−ε/Δ}. For counting queries it is utility-
// optimal among ε-DP mechanisms and avoids the floating-point artifacts of
// continuous noise — useful when SVT's selected counts are released as
// integers.
type Geometric struct {
	src         *rng.Source
	alpha       float64 // e^{-ε/Δ}
	epsilon     float64
	sensitivity int64
}

// NewGeometric builds a geometric mechanism with per-release budget
// epsilon and integer sensitivity. Seed 0 means crypto-seeded.
func NewGeometric(epsilon float64, sensitivity int64, seed uint64) (*Geometric, error) {
	if !(epsilon > 0) || math.IsInf(epsilon, 0) {
		return nil, fmt.Errorf("dp: epsilon must be positive and finite, got %v", epsilon)
	}
	if sensitivity <= 0 {
		return nil, fmt.Errorf("dp: sensitivity must be a positive integer, got %d", sensitivity)
	}
	return &Geometric{
		src:         rng.NewSeeded(seed),
		alpha:       math.Exp(-epsilon / float64(sensitivity)),
		epsilon:     epsilon,
		sensitivity: sensitivity,
	}, nil
}

// Release returns value + two-sided geometric noise.
func (g *Geometric) Release(value int64) int64 {
	return value + g.sample()
}

// sample draws a two-sided geometric variate with parameter alpha:
// Pr[X=k] = (1−α)/(1+α) · α^{|k|}. Sampled as the difference of two
// one-sided geometric variates, which has exactly this law.
func (g *Geometric) sample() int64 {
	p := 1 - g.alpha
	a := int64(g.src.Geometric(p))
	b := int64(g.src.Geometric(p))
	return a - b
}

// Alpha returns the noise decay parameter α = e^{−ε/Δ}.
func (g *Geometric) Alpha() float64 { return g.alpha }
