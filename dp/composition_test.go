package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdvancedCompositionKnownValue(t *testing.T) {
	// k=100, eps=0.1, delta'=1e-5: sqrt(2*100*ln(1e5))*0.1 + 100*0.1*(e^0.1-1)
	got, err := AdvancedComposition(100, 0.1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2*100*math.Log(1e5))*0.1 + 100*0.1*(math.Exp(0.1)-1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAdvancedCompositionBeatsBasicForSmallEps(t *testing.T) {
	// The §3.4 point: for many small-ε steps the advanced bound is far
	// below k·ε.
	const k, eps = 10000, 0.001
	adv, err := AdvancedComposition(k, eps, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if basic := float64(k) * eps; adv >= basic {
		t.Fatalf("advanced %v not below basic %v", adv, basic)
	}
}

func TestAdvancedCompositionValidation(t *testing.T) {
	cases := []struct {
		k     int
		eps   float64
		delta float64
	}{
		{0, 0.1, 0.1}, {-1, 0.1, 0.1},
		{1, 0, 0.1}, {1, -1, 0.1}, {1, math.Inf(1), 0.1},
		{1, 0.1, 0}, {1, 0.1, 1}, {1, 0.1, -0.5},
	}
	for _, c := range cases {
		if _, err := AdvancedComposition(c.k, c.eps, c.delta); err == nil {
			t.Errorf("AdvancedComposition(%d, %v, %v) accepted", c.k, c.eps, c.delta)
		}
	}
}

func TestPerStepEpsilonInverts(t *testing.T) {
	for _, k := range []int{1, 10, 1000} {
		for _, total := range []float64{0.1, 1, 5} {
			per, err := PerStepEpsilon(k, total, 1e-5)
			if err != nil {
				t.Fatal(err)
			}
			if per <= 0 || per > total {
				t.Fatalf("k=%d total=%v: per-step %v out of range", k, total, per)
			}
			back, err := AdvancedComposition(k, per, 1e-5)
			if err != nil {
				t.Fatal(err)
			}
			if back > total*(1+1e-9) {
				t.Fatalf("k=%d: composed %v exceeds target %v", k, back, total)
			}
			// Tightness: nudging the per-step budget up must overshoot.
			over, err := AdvancedComposition(k, per*1.001, 1e-5)
			if err != nil {
				t.Fatal(err)
			}
			if over <= total {
				t.Fatalf("k=%d: inversion not tight (%v still under %v)", k, over, total)
			}
		}
	}
	if _, err := PerStepEpsilon(0, 1, 0.1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PerStepEpsilon(1, 0, 0.1); err == nil {
		t.Error("total 0 accepted")
	}
	if _, err := PerStepEpsilon(1, 1, 0); err == nil {
		t.Error("delta 0 accepted")
	}
}

// Property: advanced composition is monotone in k and ε.
func TestQuickAdvancedCompositionMonotone(t *testing.T) {
	f := func(kRaw uint8, epsRaw uint8) bool {
		k := int(kRaw%100) + 1
		eps := float64(epsRaw%50)/100 + 0.01
		a, err1 := AdvancedComposition(k, eps, 1e-5)
		b, err2 := AdvancedComposition(k+1, eps, 1e-5)
		c, err3 := AdvancedComposition(k, eps*1.1, 1e-5)
		return err1 == nil && err2 == nil && err3 == nil && b > a && c > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBasicComposition(t *testing.T) {
	got, err := BasicComposition(0.1, 0.2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("got %v", got)
	}
	if _, err := BasicComposition(); err == nil {
		t.Error("empty composition accepted")
	}
	if _, err := BasicComposition(0.1, 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := BasicComposition(math.Inf(1)); err == nil {
		t.Error("infinite budget accepted")
	}
}

func TestGeometricReleaseDistribution(t *testing.T) {
	g, err := NewGeometric(1.0, 1, 91)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.Alpha(), math.Exp(-1); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Alpha = %v, want %v", got, want)
	}
	const n = 200000
	counts := map[int64]int{}
	for i := 0; i < n; i++ {
		counts[g.Release(0)]++
	}
	alpha := math.Exp(-1.0)
	norm := (1 - alpha) / (1 + alpha)
	for _, k := range []int64{-2, -1, 0, 1, 2} {
		want := norm * math.Pow(alpha, math.Abs(float64(k)))
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pr[X=%d] = %v, want %v", k, got, want)
		}
	}
	// DP ratio check on the pmf: Pr[X=k]/Pr[X=k+1] = 1/alpha = e^eps for k >= 0.
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatal("degenerate sample")
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-math.E) > 0.2 {
		t.Errorf("pmf ratio %v, want ~e", ratio)
	}
}

func TestGeometricSensitivityScalesNoise(t *testing.T) {
	g1, _ := NewGeometric(1.0, 1, 5)
	g4, _ := NewGeometric(1.0, 4, 5)
	if !(g4.Alpha() > g1.Alpha()) {
		t.Fatal("higher sensitivity should mean slower decay (more noise)")
	}
}

func TestNewGeometricValidation(t *testing.T) {
	if _, err := NewGeometric(0, 1, 1); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := NewGeometric(math.Inf(1), 1, 1); err == nil {
		t.Error("infinite epsilon accepted")
	}
	if _, err := NewGeometric(1, 0, 1); err == nil {
		t.Error("zero sensitivity accepted")
	}
	if _, err := NewGeometric(1, -3, 1); err == nil {
		t.Error("negative sensitivity accepted")
	}
}
