// Package svt implements the Sparse Vector Technique (SVT) for
// differential privacy as analyzed and fixed by Lyu, Su and Li,
// "Understanding the Sparse Vector Technique for Differential Privacy"
// (PVLDB 10(6), 2017; arXiv:1603.01699).
//
// # What SVT does
//
// Given a stream of queries q₁, q₂, ... (each with sensitivity at most Δ)
// and thresholds T₁, T₂, ..., SVT releases for each query only whether its
// answer is above (⊤) or below (⊥) the threshold. Its unique property is
// that only positive outcomes consume privacy budget: with a cutoff of c
// positives, the whole — arbitrarily long — interaction is ε-DP.
//
// # What this package provides
//
//   - Sparse: a streaming above-threshold mechanism implementing the
//     paper's Algorithm 7 (the corrected, generalized SVT proved
//     (ε₁+ε₂+ε₃)-DP in Theorem 4) with the monotonic-query refinement of
//     Theorem 5 and the variance-optimal budget allocation of §4.2.
//   - TopC: non-interactive top-c selection via single-pass SVT, SVT with
//     retraversal (§5), or the Exponential Mechanism — the paper's
//     recommendation for the non-interactive setting.
//
// The subpackage variants exposes the paper's six historical SVT variants
// (including the broken, non-private ones) for research and auditing; the
// packages dataset, fim, pmw, metrics, audit and experiments reproduce the
// paper's evaluation end to end.
//
// The mech subpackage is the pluggable mechanism layer: every servable
// mechanism implements mech.Instance and registers a factory, so the
// serving stack never dispatches on mechanism kind. The registered family:
//
//	sparse    the corrected SVT (Algorithm 7), optimal ε₁:ε₂ split,
//	          monotonic refinement, optional ε₃ numeric releases
//	esvt      the accuracy-enhanced exponential-noise SVT of Liu et al.
//	          (arXiv 2407.20068): half the comparison variance at equal ε
//	proposed  Algorithm 1 (fixed ρ, ε₁ = ε₂ = ε/2)
//	dpbook    Algorithm 2, the Dwork-Roth book SVT (resampled ρ)
//	pmw       Private Multiplicative Weights with the corrected SVT gate
//
// The server subpackage turns that registry into a sharded, multi-tenant
// session service (JSON over HTTP, GET /v1/mechanisms discovery, TTL-based
// session expiry, per-session (ε₁, ε₂, ε₃) budget accounting) served by
// cmd/svtserve; the store subpackage gives it durable, crash-recoverable
// session persistence (a write-ahead log with snapshot compaction,
// mmap-backed appends and group commit — store.BatchAppender journals a
// multi-event transition as one crash-atomic unit), so spent privacy
// budget survives restarts at a per-query cost small enough for
// million-query-per-second serving. The wire subpackage defines a
// length-prefixed binary protocol for the query hot path (svtserve
// -wire-addr serves it alongside HTTP), and the client subpackage is its
// pipelining, registry-driven Go SDK.
//
// # Choosing between SVT and EM
//
// In the interactive setting (queries not known in advance) use Sparse. In
// the non-interactive setting the paper shows the Exponential Mechanism
// dominates SVT for top-c selection; use TopC with MethodEM.
package svt
