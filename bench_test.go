package svt_test

// One benchmark per table and figure of the paper, plus the ablation
// benches DESIGN.md §5 calls out and micro-benchmarks of the hot paths.
//
// Benchmarks regenerate each artifact end to end at a reduced, fixed
// configuration so `go test -bench=.` finishes on a laptop; the full
// paper-scale regeneration (scale 1, 100 runs, all four datasets) is
// cmd/svtbench's job, and EXPERIMENTS.md records its output against the
// published results.

import (
	"testing"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/audit"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/experiments"
	"github.com/dpgo/svt/fim"
	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
	"github.com/dpgo/svt/metrics"
)

// benchConfig is the reduced sweep configuration shared by the figure
// benches.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:    0.05,
		Runs:     5,
		Epsilon:  0.1,
		CValues:  []int{25, 100, 300},
		Datasets: []string{"BMS-POS", "Zipf"},
		Seed:     1234,
	}
}

// --- Tables and figures -------------------------------------------------

func BenchmarkTable1DatasetGen(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig2Audit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cols, err := experiments.Figure2(2000, 1.0, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(cols) != 6 {
			b.Fatal("wrong column count")
		}
	}
}

func BenchmarkFig3Scores(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatal("wrong series count")
		}
	}
}

func BenchmarkFig4Interactive(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkFig5NonInteractive(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSec5Alpha(b *testing.B) {
	ks := []int{10, 100, 1000, 10000, 100000}
	for i := 0; i < b.N; i++ {
		points, err := experiments.AlphaComparison(ks, 0.05, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != len(ks) {
			b.Fatal("wrong point count")
		}
	}
}

// --- Audits (Theorems 3, 6, 7; Lemma 1; GPTT) ---------------------------

func BenchmarkAuditThm3(b *testing.B) {
	scen := audit.Theorem3Scenario(1.0)
	for i := 0; i < b.N; i++ {
		if _, err := audit.Run(scen, 5000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuditThm6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := audit.Theorem6Ratio(1.0, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuditThm7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := audit.Theorem7Ratio(1.0, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuditLemma1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := audit.Lemma1Ratio(1.0, 100, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuditGPTT(b *testing.B) {
	ts := []int{1, 4, 16}
	for i := 0; i < b.N; i++ {
		if _, err := audit.GPTTAnalyze(1.0, ts); err != nil {
			b.Fatal(err)
		}
		if _, err := audit.Alg1FakeProofAnalyze(1.0, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// benchScores builds one fixed Zipf score vector for the ablations.
func benchScores(b *testing.B) []float64 {
	b.Helper()
	store, err := dataset.Generate(dataset.Zipf, 0.05, 11)
	if err != nil {
		b.Fatal(err)
	}
	return store.SupportsFloat()
}

func BenchmarkAblationAllocation(b *testing.B) {
	scores := benchScores(b)
	const c = 50
	trueTop := metrics.TopIndices(scores, c)
	threshold := scores[trueTop[c-1]]
	for _, alloc := range []svt.Allocation{
		svt.Allocation1x1, svt.Allocation1x3, svt.Allocation1xC, svt.Allocation1xC23,
	} {
		b.Run(alloc.String(), func(b *testing.B) {
			ser := 0.0
			for i := 0; i < b.N; i++ {
				sel, err := svt.TopC(scores, svt.SelectOptions{
					Epsilon: 0.1, Sensitivity: 1, C: c, Monotonic: true,
					Method: svt.MethodSVT, Threshold: threshold,
					Allocation: alloc, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				ser += metrics.SER(scores, trueTop, sel)
			}
			b.ReportMetric(ser/float64(b.N), "SER/op")
		})
	}
}

func BenchmarkAblationResample(b *testing.B) {
	// Alg1 (fixed rho) vs Alg2 (c-scaled, resampled rho): same budget,
	// same stream; the metric is how many of the true top survive.
	scores := benchScores(b)
	const c = 50
	trueTop := metrics.TopIndices(scores, c)
	threshold := scores[trueTop[c-1]]
	run := func(b *testing.B, build func(src *rng.Source) core.Algorithm) {
		ser := 0.0
		for i := 0; i < b.N; i++ {
			alg := build(rng.New(uint64(i + 1)))
			var sel []int
			for idx, s := range scores {
				ans, ok := alg.Next(s, threshold)
				if !ok {
					break
				}
				if ans.Above {
					sel = append(sel, idx)
				}
			}
			ser += metrics.SER(scores, trueTop, sel)
		}
		b.ReportMetric(ser/float64(b.N), "SER/op")
	}
	b.Run("fixed-rho/alg1", func(b *testing.B) {
		run(b, func(src *rng.Source) core.Algorithm { return core.NewAlg1(src, 0.1, 1, c) })
	})
	b.Run("resampled-rho/alg2", func(b *testing.B) {
		run(b, func(src *rng.Source) core.Algorithm { return core.NewAlg2(src, 0.1, 1, c) })
	})
}

func BenchmarkAblationMonotonic(b *testing.B) {
	scores := benchScores(b)
	const c = 50
	trueTop := metrics.TopIndices(scores, c)
	threshold := scores[trueTop[c-1]]
	for _, monotonic := range []bool{false, true} {
		name := "general-2c"
		if monotonic {
			name = "monotonic-c"
		}
		b.Run(name, func(b *testing.B) {
			ser := 0.0
			for i := 0; i < b.N; i++ {
				sel, err := svt.TopC(scores, svt.SelectOptions{
					Epsilon: 0.1, Sensitivity: 1, C: c, Monotonic: monotonic,
					Method: svt.MethodSVT, Threshold: threshold, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				ser += metrics.SER(scores, trueTop, sel)
			}
			b.ReportMetric(ser/float64(b.N), "SER/op")
		})
	}
}

func BenchmarkAblationRetraversalBoost(b *testing.B) {
	scores := benchScores(b)
	const c = 50
	trueTop := metrics.TopIndices(scores, c)
	threshold := scores[trueTop[c-1]]
	for boost := 0; boost <= 5; boost++ {
		b.Run("boost="+string(rune('0'+boost))+"D", func(b *testing.B) {
			ser := 0.0
			for i := 0; i < b.N; i++ {
				sel, err := svt.TopC(scores, svt.SelectOptions{
					Epsilon: 0.1, Sensitivity: 1, C: c, Monotonic: true,
					Method: svt.MethodReTr, Threshold: threshold,
					BoostSD: float64(boost), MaxPasses: 100, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				ser += metrics.SER(scores, trueTop, sel)
			}
			b.ReportMetric(ser/float64(b.N), "SER/op")
		})
	}
}

func BenchmarkAblationEMSampler(b *testing.B) {
	scores := benchScores(b)
	const c = 50
	b.Run("gumbel-topc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SelectEM(rng.New(uint64(i+1)), scores, 0.1, 1, c, true)
		}
	})
	b.Run("sequential-invcdf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SelectEMInvCDF(rng.New(uint64(i+1)), scores, 0.1, 1, c, true)
		}
	})
}

// --- Micro-benchmarks of the hot paths ----------------------------------

func BenchmarkLaplaceSample(b *testing.B) {
	src := rng.New(1)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += src.Laplace(2.0)
	}
	_ = sink
}

func BenchmarkSparseNext(b *testing.B) {
	mech, err := svt.New(svt.Options{
		Epsilon: 0.1, Sensitivity: 1, MaxPositives: 1 << 30, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mech.Next(float64(i%100), 1e12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEMTopC(b *testing.B) {
	scores := benchScores(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SelectEM(rng.New(uint64(i+1)), scores, 0.1, 1, 300, true)
	}
}

func BenchmarkFPGrowthMine(b *testing.B) {
	store, err := dataset.Generate(dataset.BMSPOS, 0.01, 13)
	if err != nil {
		b.Fatal(err)
	}
	minSup := store.NumRecords() / 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fim.Mine(store, minSup); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItemSupports(b *testing.B) {
	store, err := dataset.Generate(dataset.Kosarak, 0.02, 13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := store.ItemSupports(); len(got) != store.NumItems() {
			b.Fatal("bad supports")
		}
	}
}
