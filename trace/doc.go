// Package trace is the service's zero-dependency in-process span tracer:
// explicit-parent spans, head sampling, and a fixed-size retention store
// (a lock-free ring of the last N completed traces plus an always-keep
// slowest-per-route reservoir) that the server exposes on GET /v1/traces.
// It answers the question the metrics layer cannot: for THIS slow
// request, where did the time go — decode, mechanism answer, journal
// wait, group-commit gather, write or sync?
//
// # Model
//
// Spans are explicit-parent: a child is created from its parent's handle
// (Span.StartChild), never from context magic or goroutine-local state,
// so the tree mirrors the call structure the server actually has — the
// HTTP handler owns the root and hands the manager a span through the
// QueryTrace seam, the manager hands the journal span its store-phase
// children. A span carries a name, start/end timestamps on a monotonic
// process clock (Now), string attributes, and children. Spans measured
// elsewhere (the WAL's flush phases, observed through the
// store.Instrumenter hook) are grafted in with Span.AttachChild, which
// clamps the interval to the parent's bounds so child durations always
// nest.
//
// # Not-sampled cost
//
// Every Span method is nil-safe. The head-sampling decision
// (Tracer.Sample) is made once per request: one unforced request in
// SampleEvery is traced; a request carrying a traceparent or an
// X-Request-Id is always traced (someone upstream is already correlating
// it). A not-sampled request carries a nil *Span through all three
// layers — one atomic add, zero allocations, which is how the serving
// path's ≤10 allocs/request pin holds with tracing compiled in. Sampled
// requests allocate their span tree; at the default 1-in-16 that
// amortizes to well under the benchgate regression budget.
//
// # Retention and retrieval
//
// A completed root publishes into a fixed-size ring (atomic slot store,
// no lock) retaining the last Capacity traces, and into a small
// slowest-per-route reservoir that survives ring churn so the worst
// request per route is always retrievable. The server serves
// GET /v1/traces (summaries, filterable by route and minimum duration)
// and GET /v1/traces/{id}, which accepts either the 32-hex trace ID or
// the X-Request-Id and returns the full span tree as JSON.
//
// # Correlation
//
// W3C traceparent headers are parsed (ParseTraceparent) to adopt an
// upstream trace ID and echoed (FormatTraceparent) with this process's
// root span ID. Sampled latency observations in the telemetry package
// carry the trace ID as an OpenMetrics exemplar, so a latency spike seen
// in /metrics clicks through to the exact trace: scrape with
// `Accept: application/openmetrics-text`, read the `# {trace_id="..."}`
// exemplar off the slow bucket, and GET /v1/traces/{that id}.
package trace
