package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSampleRate: the unforced decision fires exactly once per
// SampleEvery, force always samples, and a nil tracer never does.
func TestSampleRate(t *testing.T) {
	tr := New(Config{SampleEvery: 4})
	hits := 0
	for i := 0; i < 400; i++ {
		if tr.Sample(false) {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampling hit %d of 400", hits)
	}
	for i := 0; i < 10; i++ {
		if !tr.Sample(true) {
			t.Fatal("forced request not sampled")
		}
	}
	one := New(Config{SampleEvery: 1})
	if !one.Sample(false) {
		t.Fatal("SampleEvery=1 must sample everything")
	}
	var nilTracer *Tracer
	if nilTracer.Sample(true) {
		t.Fatal("nil tracer sampled a request")
	}
}

// TestNilSpanSafety: every span operation on the not-sampled (nil) path
// must be a no-op, and the whole not-sampled flow must not allocate.
func TestNilSpanSafety(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("child of nil span is not nil")
	}
	s.AttachChild("y", 1, 2)
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 7)
	s.End()
	if start, end := s.Bounds(); start != 0 || end != 0 {
		t.Fatal("nil span has bounds")
	}
	if s.TraceIDString() != "" || !s.TraceID().IsZero() {
		t.Fatal("nil span has an identity")
	}

	tr := New(Config{SampleEvery: 1 << 30})
	allocs := testing.AllocsPerRun(100, func() {
		if tr.Sample(false) {
			t.Fatal("sampled despite a huge period")
		}
		var root *Span
		child := root.StartChild("decode")
		child.End()
		root.SetAttr("session", "s")
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("not-sampled path allocates %.1f/op, want 0", allocs)
	}
}

// TestSpanTreeAndFinalize: a root publishes its tree on End; children
// abandoned open are clamped to the root's end, and attached intervals
// are clamped into their parent, so rendered durations always nest.
func TestSpanTreeAndFinalize(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 8})
	root := tr.StartRoot("http", "/q", "req-1", TraceID{})
	child := root.StartChild("decode")
	child.End()
	abandoned := root.StartChild("manager") // never ended: an error path bailed
	abandoned.StartChild("answer")          // nor its child
	start, _ := root.Bounds()
	root.AttachChild("early", start-500, start+1) // starts before the root: clamped
	time.Sleep(time.Millisecond)
	root.End()
	root.End() // double-End must not double-publish

	if got := len(tr.Recent("", 0, 0)); got != 1 {
		t.Fatalf("published %d traces, want 1", got)
	}
	v, ok := tr.Lookup(root.TraceIDString())
	if !ok {
		t.Fatal("published trace not retrievable by trace ID")
	}
	if v.RequestID != "req-1" || v.Route != "/q" {
		t.Fatalf("view identity: %+v", v)
	}
	if len(v.Root.Children) != 3 {
		t.Fatalf("root has %d children, want 3", len(v.Root.Children))
	}
	var check func(n Node, parentDur int64)
	check = func(n Node, parentDur int64) {
		if n.DurationNanos < 0 {
			t.Fatalf("span %s has negative duration", n.Name)
		}
		if n.OffsetNanos < 0 {
			t.Fatalf("span %s starts before the root", n.Name)
		}
		if n.OffsetNanos+n.DurationNanos > parentDur {
			t.Fatalf("span %s [%d,+%d] escapes its parent (%d)",
				n.Name, n.OffsetNanos, n.DurationNanos, parentDur)
		}
		for _, c := range n.Children {
			check(c, v.Root.DurationNanos)
		}
	}
	for _, c := range v.Root.Children {
		check(c, v.Root.DurationNanos)
	}

	// Lookup by the correlated request ID must find the same trace.
	if byReq, ok := tr.Lookup("req-1"); !ok || byReq.TraceID != v.TraceID {
		t.Fatal("lookup by request ID failed")
	}
}

// TestRingEvictionAndSlowestReservoir: the ring keeps the last Capacity
// roots; the reservoir keeps each route's slowest beyond that, capped at
// MaxRoutes routes.
func TestRingEvictionAndSlowestReservoir(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 4, MaxRoutes: 2})

	// A deliberately slow trace on route A, then enough fast traces to
	// recycle its ring slot several times over.
	slow := tr.StartRoot("http", "A", "slow-req", TraceID{})
	time.Sleep(5 * time.Millisecond)
	slow.End()
	for i := 0; i < 16; i++ {
		tr.StartRoot("http", "A", fmt.Sprintf("fast-%d", i), TraceID{}).End()
	}
	if _, ok := tr.Lookup("slow-req"); !ok {
		t.Fatal("route's slowest trace was recycled with the ring")
	}
	var found bool
	for _, s := range tr.Recent("A", 0, 0) {
		if s.RequestID == "slow-req" {
			found = true
			if !s.Slowest {
				t.Fatal("reservoir entry not marked slowest")
			}
		}
	}
	if !found {
		t.Fatal("slowest trace missing from Recent")
	}

	// minDuration filters the fast traces out.
	for _, s := range tr.Recent("A", 2*time.Millisecond, 0) {
		if s.RequestID != "slow-req" {
			t.Fatalf("minDuration let %q through", s.RequestID)
		}
	}

	// Route cardinality is capped: routes beyond MaxRoutes get no
	// reservoir slot, so their traces die with the ring.
	tr.StartRoot("http", "B", "", TraceID{}).End()
	victim := tr.StartRoot("http", "C", "victim", TraceID{})
	time.Sleep(time.Millisecond)
	victim.End()
	for i := 0; i < 8; i++ {
		tr.StartRoot("http", "A", "", TraceID{}).End()
	}
	if _, ok := tr.Lookup("victim"); ok {
		t.Fatal("route past MaxRoutes kept a reservoir slot")
	}
}

// TestRingConcurrent hammers the ring with concurrent writers and readers;
// run under -race this is the memory-model check for the lock-free
// publish path.
func TestRingConcurrent(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 32, MaxRoutes: 4})
	const writers, perWriter, readers = 8, 200, 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Recent("", 0, 16) {
					if s.DurationNanos < 0 || s.Spans < 1 {
						t.Errorf("inconsistent summary read: %+v", s)
						return
					}
					if _, ok := tr.Lookup(s.TraceID); !ok {
						continue // recycled between list and lookup: fine
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := fmt.Sprintf("route-%d", w%3)
			for i := 0; i < perWriter; i++ {
				root := tr.StartRoot("http", route, "", TraceID{})
				c := root.StartChild("work")
				c.SetAttrInt("i", int64(i))
				c.End()
				root.End()
			}
		}(w)
	}
	// Writers finish on their own; readers run until released.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	<-done

	got := tr.Recent("", 0, 0)
	if len(got) == 0 || len(got) > 32+4 {
		t.Fatalf("retained %d traces, want 1..36", len(got))
	}
}

// TestIDMinting: minted IDs are non-zero and render as fixed-width hex.
func TestIDMinting(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := mintTraceID()
		if id.IsZero() {
			t.Fatal("minted a zero trace ID")
		}
		s := id.String()
		if len(s) != 32 {
			t.Fatalf("trace ID %q not 32 hex chars", s)
		}
		if seen[s] {
			t.Fatalf("trace ID %q repeated within 100 mints", s)
		}
		seen[s] = true
		if sp := mintSpanID(); sp == (SpanID{}) || len(sp.String()) != 16 {
			t.Fatal("bad span ID mint")
		}
	}
}
