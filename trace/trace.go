package trace

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors the package's monotonic clock; Now values are nanoseconds
// since process start, matching the telemetry package's clock discipline
// (one monotonic read, no wall-clock read). Only differences are
// meaningful. Each root additionally records a wall-clock anchor so traces
// render with absolute timestamps.
var epoch = time.Now()

// Now returns the tracer's monotonic timestamp in nanoseconds since
// process start. Span Start/End read it internally; callers only need it
// to anchor explicitly-attached child intervals (see Span.AttachChild).
func Now() int64 { return int64(time.Since(epoch)) }

// Defaults for Config zero values.
const (
	DefaultSampleEvery = 16
	DefaultCapacity    = 1024
	DefaultMaxRoutes   = 64
)

// Config sizes a Tracer. The zero value applies the defaults.
type Config struct {
	// SampleEvery is the head-sampling rate: one unforced request in
	// SampleEvery starts a trace. 1 traces everything; 0 means
	// DefaultSampleEvery. (Forced requests — see Tracer.Sample — are
	// always traced.)
	SampleEvery int
	// Capacity is how many completed root spans the ring buffer retains;
	// 0 means DefaultCapacity.
	Capacity int
	// MaxRoutes caps the slowest-per-route reservoir (and so bounds the
	// memory a path-spraying client can pin); 0 means DefaultMaxRoutes.
	MaxRoutes int
}

// Tracer is the in-process trace store: a head-sampling decision, span
// construction, and a fixed-size lock-free ring of completed root spans
// plus an always-keep reservoir holding the slowest trace per route.
//
// Spans are explicit-parent — a child is created from its parent's
// handle, never from goroutine-local state — and every span method is
// nil-safe, so the not-sampled path carries a nil *Span through the
// layers and allocates nothing.
type Tracer struct {
	every uint64
	tick  atomic.Uint64

	// slots is the ring of completed roots: publish stores at pos (mod
	// len) and bumps pos. Readers load slots atomically; an overwritten
	// root stays valid for readers that already hold it.
	slots []atomic.Pointer[Root]
	pos   atomic.Uint64

	// slowest retains the slowest completed root per route even after the
	// ring has recycled it, so "why was this route slow an hour ago"
	// survives bursts. Guarded by mu; touched once per published trace.
	mu      sync.Mutex
	slowest map[string]*Root
	maxRts  int
}

// New returns a ready Tracer.
func New(cfg Config) *Tracer {
	every := cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	maxRoutes := cfg.MaxRoutes
	if maxRoutes <= 0 {
		maxRoutes = DefaultMaxRoutes
	}
	return &Tracer{
		every:   uint64(every),
		slots:   make([]atomic.Pointer[Root], capacity),
		slowest: make(map[string]*Root, maxRoutes),
		maxRts:  maxRoutes,
	}
}

// Sample is the head-sampling decision, made once per request before any
// span exists: true for one unforced request in SampleEvery, and always
// true when forced (the caller saw a traceparent or client request ID —
// someone upstream is already correlating this request). Not-sampled
// requests cost one atomic add and allocate nothing. Nil-safe: a nil
// Tracer samples nothing.
func (t *Tracer) Sample(force bool) bool {
	if t == nil {
		return false
	}
	if force {
		return true
	}
	if t.every <= 1 {
		return true
	}
	return t.tick.Add(1)%t.every == 0
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation in a trace tree. A span is mutated only by
// the goroutine running the operation it measures (children are created
// and ended in request flow); readers see it only after the root
// publishes, which the ring's atomic store orders. All methods are
// nil-safe no-ops so call sites never branch on "is this request traced".
type Span struct {
	name     string
	start    int64 // Now() at StartChild/StartRoot
	end      int64 // Now() at End; 0 until then
	attrs    []Attr
	children []*Span

	// root is set on the root span only; End on it publishes the trace.
	root *Root
}

// Root is the per-trace envelope around the root span: identity,
// correlation and the wall-clock anchor.
type Root struct {
	span      Span
	tracer    *Tracer
	id        TraceID
	idHex     string // rendered once; echoed in headers and exemplars
	spanID    SpanID
	requestID string
	route     string
	wallStart time.Time
	published atomic.Bool
}

// StartRoot begins a new trace: id is adopted when non-zero (the request
// carried a valid traceparent) and minted otherwise, and a fresh root
// span ID is always minted (this process is a new segment of the
// distributed trace either way). requestID is the X-Request-Id the trace
// is correlated with; route labels the trace for filtering and the
// slowest-per-route reservoir. Nil-safe: a nil Tracer returns a nil span.
func (t *Tracer) StartRoot(name, route, requestID string, id TraceID) *Span {
	if t == nil {
		return nil
	}
	if id.IsZero() {
		id = mintTraceID()
	}
	r := &Root{
		tracer:    t,
		id:        id,
		idHex:     id.String(),
		spanID:    mintSpanID(),
		requestID: requestID,
		route:     route,
		wallStart: time.Now(),
	}
	r.span = Span{name: name, start: Now(), root: r}
	return &r.span
}

// mintTraceID mints a random 128-bit trace ID. math/rand/v2's global
// generator (ChaCha8, per-P state) is used rather than crypto/rand: trace
// IDs are correlation handles, not secrets, and the sampled path should
// stay cheap.
func mintTraceID() TraceID {
	var id TraceID
	putUint64(id[:8], rand.Uint64())
	putUint64(id[8:], rand.Uint64())
	if id.IsZero() { // all-zero is invalid in W3C trace context
		id[15] = 1
	}
	return id
}

// mintSpanID mints a random 64-bit span ID.
func mintSpanID() SpanID {
	var id SpanID
	putUint64(id[:], rand.Uint64())
	if id == (SpanID{}) {
		id[7] = 1
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// StartChild begins a child span under s, started now. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: Now()}
	s.children = append(s.children, c)
	return c
}

// AttachChild adds an already-measured interval as a child span: the
// caller observed [start, end] (in Now clock units) elsewhere — e.g. a
// store's flush-phase breakdown reported through an instrumentation hook
// — and grafts it into the tree. The interval is clamped to s's own
// bounds so child durations always nest within their parent. Nil-safe.
func (s *Span) AttachChild(name string, start, end int64) *Span {
	if s == nil {
		return nil
	}
	if start < s.start {
		start = s.start
	}
	if s.end != 0 && end > s.end {
		end = s.end
	}
	if end < start {
		end = start
	}
	c := &Span{name: name, start: start, end: end}
	s.children = append(s.children, c)
	return c
}

// SetAttr records a string attribute on the span. Nil-safe.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, value})
}

// SetAttrInt records an integer attribute on the span. Nil-safe.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{key, itoa(v)})
}

// itoa avoids strconv so the package stays import-light; values are small.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// End completes the span. Ending the root span finalizes the tree (a
// child abandoned by an error path inherits its parent's end) and
// publishes the trace into the tracer's ring; double-End on a root is a
// no-op. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.end == 0 {
		s.end = Now()
	}
	if s.root != nil {
		s.root.publish()
	}
}

// Bounds returns the span's start and end in Now clock units (end is 0
// while the span is open). Nil-safe.
func (s *Span) Bounds() (start, end int64) {
	if s == nil {
		return 0, 0
	}
	return s.start, s.end
}

// TraceID returns the trace ID, zero for a nil or non-root span.
func (s *Span) TraceID() TraceID {
	if s == nil || s.root == nil {
		return TraceID{}
	}
	return s.root.id
}

// TraceIDString returns the 32-hex trace ID, "" for a nil or non-root
// span. The string is rendered once at StartRoot, so this is free.
func (s *Span) TraceIDString() string {
	if s == nil || s.root == nil {
		return ""
	}
	return s.root.idHex
}

// SpanID returns the root span's ID, zero for a nil or non-root span.
func (s *Span) SpanID() SpanID {
	if s == nil || s.root == nil {
		return SpanID{}
	}
	return s.root.spanID
}

// finalize closes any span an error path abandoned: a zero end becomes
// the parent's end, so rendered durations always nest.
func finalize(s *Span, parentEnd int64) {
	if s.end == 0 || s.end > parentEnd {
		s.end = parentEnd
	}
	for _, c := range s.children {
		finalize(c, s.end)
	}
}

// publish moves a completed root into the ring and the slowest-per-route
// reservoir. The atomic slot store is the publication barrier: every
// mutation the request goroutine made to the tree happens-before a
// reader's load of the slot.
func (r *Root) publish() {
	if r.published.Swap(true) {
		return
	}
	for _, c := range r.span.children {
		finalize(c, r.span.end)
	}
	t := r.tracer
	i := t.pos.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(r)

	dur := r.span.end - r.span.start
	t.mu.Lock()
	cur := t.slowest[r.route]
	switch {
	case cur == nil:
		if len(t.slowest) < t.maxRts {
			t.slowest[r.route] = r
		}
	case dur > cur.span.end-cur.span.start:
		t.slowest[r.route] = r
	}
	t.mu.Unlock()
}
