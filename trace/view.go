package trace

import "time"

// Summary is one completed trace in a GET /v1/traces listing.
type Summary struct {
	TraceID       string    `json:"traceId"`
	RequestID     string    `json:"requestId,omitempty"`
	Route         string    `json:"route"`
	Name          string    `json:"name"`
	Start         time.Time `json:"start"`
	DurationNanos int64     `json:"durationNanos"`
	// Spans is the total span count in the tree.
	Spans int `json:"spans"`
	// Slowest marks the trace currently retained as its route's slowest.
	Slowest bool `json:"slowest,omitempty"`
}

// View is one full trace: the root span tree with identity and the
// wall-clock anchor. Span offsets are relative to the root's start, so a
// view is self-contained.
type View struct {
	TraceID       string    `json:"traceId"`
	RequestID     string    `json:"requestId,omitempty"`
	Route         string    `json:"route"`
	Start         time.Time `json:"start"`
	DurationNanos int64     `json:"durationNanos"`
	Root          Node      `json:"root"`
}

// Node is one span in a View's tree.
type Node struct {
	Name string `json:"name"`
	// OffsetNanos is the span's start relative to the ROOT span's start.
	OffsetNanos   int64  `json:"offsetNanos"`
	DurationNanos int64  `json:"durationNanos"`
	Attrs         []Attr `json:"attrs,omitempty"`
	Children      []Node `json:"children,omitempty"`
}

// node renders a finalized span subtree relative to the root's start.
func node(s *Span, rootStart int64) Node {
	n := Node{
		Name:          s.name,
		OffsetNanos:   s.start - rootStart,
		DurationNanos: s.end - s.start,
		Attrs:         s.attrs,
	}
	if len(s.children) > 0 {
		n.Children = make([]Node, len(s.children))
		for i, c := range s.children {
			n.Children[i] = node(c, rootStart)
		}
	}
	return n
}

func (r *Root) summary(slowest bool) Summary {
	return Summary{
		TraceID:       r.idHex,
		RequestID:     r.requestID,
		Route:         r.route,
		Name:          r.span.name,
		Start:         r.wallStart,
		DurationNanos: r.span.end - r.span.start,
		Spans:         countSpans(&r.span),
		Slowest:       slowest,
	}
}

func countSpans(s *Span) int {
	n := 1
	for _, c := range s.children {
		n += countSpans(c)
	}
	return n
}

func (r *Root) view() View {
	return View{
		TraceID:       r.idHex,
		RequestID:     r.requestID,
		Route:         r.route,
		Start:         r.wallStart,
		DurationNanos: r.span.end - r.span.start,
		Root:          node(&r.span, r.span.start),
	}
}

// Recent lists completed traces, newest first: the ring's contents plus
// any slowest-per-route reservoir entries the ring has already recycled.
// route filters to one route when non-empty; minDuration drops faster
// traces; limit caps the result (0 means no cap beyond the retained set).
// Nil-safe: a nil Tracer lists nothing.
func (t *Tracer) Recent(route string, minDuration time.Duration, limit int) []Summary {
	if t == nil {
		return nil
	}
	n := uint64(len(t.slots))
	pos := t.pos.Load()
	seen := make(map[*Root]bool, n)
	var out []Summary

	// Reservoir membership is read first so ring entries can be marked.
	t.mu.Lock()
	slowRoots := make([]*Root, 0, len(t.slowest))
	for _, r := range t.slowest {
		slowRoots = append(slowRoots, r)
	}
	t.mu.Unlock()
	isSlowest := make(map[*Root]bool, len(slowRoots))
	for _, r := range slowRoots {
		isSlowest[r] = true
	}

	keep := func(r *Root) bool {
		if r == nil || seen[r] {
			return false
		}
		seen[r] = true
		if route != "" && r.route != route {
			return false
		}
		if minDuration > 0 && time.Duration(r.span.end-r.span.start) < minDuration {
			return false
		}
		return true
	}
	for i := uint64(0); i < n && pos > i; i++ {
		r := t.slots[(pos-1-i)%n].Load()
		if keep(r) {
			out = append(out, r.summary(isSlowest[r]))
		}
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
	for _, r := range slowRoots {
		if keep(r) {
			out = append(out, r.summary(true))
		}
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
	return out
}

// Lookup retrieves one retained trace by its 32-hex trace ID or by the
// request ID it is correlated with. Nil-safe.
func (t *Tracer) Lookup(id string) (View, bool) {
	if t == nil || id == "" {
		return View{}, false
	}
	match := func(r *Root) bool {
		return r != nil && (r.idHex == id || r.requestID == id)
	}
	// Newest ring entry wins (a request ID could in principle recur).
	n := uint64(len(t.slots))
	pos := t.pos.Load()
	for i := uint64(0); i < n && pos > i; i++ {
		if r := t.slots[(pos-1-i)%n].Load(); match(r) {
			return r.view(), true
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.slowest {
		if match(r) {
			return r.view(), true
		}
	}
	return View{}, false
}
