package trace

// W3C Trace Context (https://www.w3.org/TR/trace-context/) traceparent
// handling: version 00, `00-{32 hex trace-id}-{16 hex parent-id}-{2 hex
// flags}`. The server accepts the header to adopt an upstream trace ID and
// echoes a traceparent carrying its own root span ID, so this process
// slots into a distributed trace as one segment.

// TraceID is a 128-bit W3C trace ID. The zero value is invalid.
type TraceID [16]byte

// SpanID is a 64-bit W3C parent/span ID. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

const hexDigits = "0123456789abcdef"

// String renders the trace ID as 32 lowercase hex characters.
func (id TraceID) String() string {
	var buf [32]byte
	for i, b := range id {
		buf[2*i] = hexDigits[b>>4]
		buf[2*i+1] = hexDigits[b&0xf]
	}
	return string(buf[:])
}

// String renders the span ID as 16 lowercase hex characters.
func (id SpanID) String() string {
	var buf [16]byte
	for i, b := range id {
		buf[2*i] = hexDigits[b>>4]
		buf[2*i+1] = hexDigits[b&0xf]
	}
	return string(buf[:])
}

// hexNibble decodes one hex digit, ok=false on anything else. Uppercase
// is accepted on parse (the spec forbids sending it but tolerating it is
// harmless); output is always lowercase.
func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func decodeHex(dst, src []byte) bool {
	for i := 0; i < len(dst); i++ {
		hi, ok1 := hexNibble(src[2*i])
		lo, ok2 := hexNibble(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// ParseTraceparent parses a traceparent header. ok is false — and the
// header is to be ignored, per spec — on anything malformed: wrong
// length or separators, non-hex digits, an unknown version, or an
// all-zero trace or parent ID. Future versions with trailing fields are
// accepted as long as the version-00 prefix parses.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	var id TraceID
	var span SpanID
	// 00-<32>-<16>-<2> = 55 bytes minimum; longer only for version > 00.
	if len(h) < 55 {
		return id, span, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return id, span, false
	}
	v1, ok1 := hexNibble(h[0])
	v2, ok2 := hexNibble(h[1])
	if !ok1 || !ok2 {
		return id, span, false
	}
	version := v1<<4 | v2
	if version == 0xff {
		return id, span, false // ff is forbidden by spec
	}
	if version == 0 && len(h) != 55 {
		return id, span, false // version 00 has no trailing fields
	}
	if version > 0 && len(h) > 55 && h[55] != '-' {
		return id, span, false
	}
	if !decodeHex(id[:], []byte(h[3:35])) || !decodeHex(span[:], []byte(h[36:52])) {
		return TraceID{}, SpanID{}, false
	}
	if _, ok := hexNibble(h[53]); !ok {
		return TraceID{}, SpanID{}, false
	}
	if _, ok := hexNibble(h[54]); !ok {
		return TraceID{}, SpanID{}, false
	}
	if id.IsZero() || span == (SpanID{}) {
		return TraceID{}, SpanID{}, false
	}
	return id, span, true
}

// FormatTraceparent renders the version-00 traceparent the server echoes:
// our root span as the parent ID, the sampled flag set (we only echo on
// traces we recorded).
func FormatTraceparent(id TraceID, span SpanID) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	for _, b := range id {
		buf = append(buf, hexDigits[b>>4], hexDigits[b&0xf])
	}
	buf = append(buf, '-')
	for _, b := range span {
		buf = append(buf, hexDigits[b>>4], hexDigits[b&0xf])
	}
	buf = append(buf, "-01"...)
	return string(buf)
}
