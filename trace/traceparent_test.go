package trace

import "testing"

// TestTraceparentRoundTrip: what FormatTraceparent emits, ParseTraceparent
// accepts, and the IDs survive the trip.
func TestTraceparentRoundTrip(t *testing.T) {
	id := mintTraceID()
	span := mintSpanID()
	h := FormatTraceparent(id, span)
	if len(h) != 55 {
		t.Fatalf("formatted traceparent %q is %d bytes, want 55", h, len(h))
	}
	gotID, gotSpan, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("own traceparent %q rejected", h)
	}
	if gotID != id || gotSpan != span {
		t.Fatalf("round trip mangled IDs: %s/%s -> %s/%s", id, span, gotID, gotSpan)
	}
}

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name string
		h    string
		ok   bool
	}{
		{"valid", valid, true},
		{"valid uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01", true},
		{"future version with extension", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"empty", "", false},
		{"truncated", valid[:54], false},
		{"version 00 with trailing data", valid + "-extra", false},
		{"future version with unseparated trailing", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra", false},
		{"version ff forbidden", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"wrong separator", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473x-00f067aa0ba902b7-01", false},
		{"non-hex span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bx-01", false},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, span, ok := ParseTraceparent(tc.h)
			if ok != tc.ok {
				t.Fatalf("ParseTraceparent(%q) ok=%v, want %v", tc.h, ok, tc.ok)
			}
			if ok && (id.IsZero() || span == (SpanID{})) {
				t.Fatalf("accepted %q but returned zero IDs", tc.h)
			}
			if !ok && (!id.IsZero() || span != (SpanID{})) {
				t.Fatalf("rejected %q but leaked partial IDs", tc.h)
			}
		})
	}
}
