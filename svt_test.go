package svt_test

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	svt "github.com/dpgo/svt"
)

func mustNew(t *testing.T, opts svt.Options) *svt.Sparse {
	t.Helper()
	s, err := svt.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func baseOptions() svt.Options {
	return svt.Options{Epsilon: 1.0, Sensitivity: 1.0, MaxPositives: 3, Seed: 7}
}

func TestNewValidation(t *testing.T) {
	bad := []struct {
		name string
		mut  func(*svt.Options)
	}{
		{"zero epsilon", func(o *svt.Options) { o.Epsilon = 0 }},
		{"negative epsilon", func(o *svt.Options) { o.Epsilon = -1 }},
		{"inf epsilon", func(o *svt.Options) { o.Epsilon = math.Inf(1) }},
		{"NaN epsilon", func(o *svt.Options) { o.Epsilon = math.NaN() }},
		{"zero sensitivity", func(o *svt.Options) { o.Sensitivity = 0 }},
		{"inf sensitivity", func(o *svt.Options) { o.Sensitivity = math.Inf(1) }},
		{"zero cutoff", func(o *svt.Options) { o.MaxPositives = 0 }},
		{"negative cutoff", func(o *svt.Options) { o.MaxPositives = -5 }},
		{"answer fraction 1", func(o *svt.Options) { o.AnswerFraction = 1 }},
		{"answer fraction neg", func(o *svt.Options) { o.AnswerFraction = -0.1 }},
		{"answer fraction NaN", func(o *svt.Options) { o.AnswerFraction = math.NaN() }},
		{"bad allocation", func(o *svt.Options) { o.Allocation = svt.Allocation(99) }},
	}
	for _, c := range bad {
		opts := baseOptions()
		c.mut(&opts)
		if _, err := svt.New(opts); err == nil {
			t.Errorf("%s: New accepted invalid options", c.name)
		}
	}
}

func TestBudgetsSumToEpsilon(t *testing.T) {
	for _, alloc := range []svt.Allocation{
		svt.AllocationAuto, svt.Allocation1x1, svt.Allocation1x3,
		svt.Allocation1xC, svt.Allocation1xC23, svt.Allocation1x2C23,
	} {
		for _, frac := range []float64{0, 0.25, 0.5} {
			opts := baseOptions()
			opts.Allocation = alloc
			opts.AnswerFraction = frac
			s := mustNew(t, opts)
			e1, e2, e3 := s.Budgets()
			if e1 <= 0 || e2 <= 0 || e3 < 0 {
				t.Errorf("%v frac=%v: non-positive shares (%v,%v,%v)", alloc, frac, e1, e2, e3)
			}
			if math.Abs(e1+e2+e3-opts.Epsilon) > 1e-12 {
				t.Errorf("%v frac=%v: shares sum to %v", alloc, frac, e1+e2+e3)
			}
			if math.Abs(e3-opts.Epsilon*frac) > 1e-12 {
				t.Errorf("%v: eps3 = %v, want %v", alloc, e3, opts.Epsilon*frac)
			}
		}
	}
}

func TestAllocationAutoMatchesMonotonicity(t *testing.T) {
	// Auto must give the queries more budget in the general case than in
	// the monotonic case (coefficient (2c)^{2/3} > c^{2/3}).
	general := baseOptions()
	s1 := mustNew(t, general)
	mono := baseOptions()
	mono.Monotonic = true
	s2 := mustNew(t, mono)
	g1, _, _ := s1.Budgets()
	m1, _, _ := s2.Budgets()
	if !(g1 < m1) {
		t.Errorf("general eps1 %v should be smaller than monotonic eps1 %v", g1, m1)
	}
}

func TestNextHaltsAfterMaxPositives(t *testing.T) {
	s := mustNew(t, baseOptions())
	positives := 0
	for i := 0; i < 100; i++ {
		res, err := s.Next(1e9, 0)
		if errors.Is(err, svt.ErrHalted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Above {
			positives++
		}
	}
	if positives != 3 {
		t.Fatalf("released %d positives, want 3", positives)
	}
	if !s.Halted() {
		t.Fatal("not halted")
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	if _, err := s.Next(5, 0); !errors.Is(err, svt.ErrHalted) {
		t.Fatalf("post-halt error = %v, want ErrHalted", err)
	}
}

func TestNextRejectsNonFinite(t *testing.T) {
	s := mustNew(t, baseOptions())
	for _, q := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := s.Next(q, 0); err == nil {
			t.Errorf("Next(%v, 0) accepted", q)
		}
		if _, err := s.Next(0, q); err == nil {
			t.Errorf("Next(0, %v) accepted", q)
		}
	}
	if s.Answered() != 0 {
		t.Errorf("rejected queries counted as answered: %d", s.Answered())
	}
}

func TestRunStopsAtHalt(t *testing.T) {
	opts := baseOptions()
	opts.MaxPositives = 2
	s := mustNew(t, opts)
	queries := []float64{1e9, -1e9, 1e9, 1e9, 1e9}
	out, err := s.Run(queries, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	// Expect ⊤ ⊥ ⊤ then halt.
	if len(out) != 3 {
		t.Fatalf("answered %d queries, want 3: %v", len(out), out)
	}
	if !out[0].Above || out[1].Above || !out[2].Above {
		t.Fatalf("unexpected pattern %v", out)
	}
	if s.Answered() != 3 {
		t.Fatalf("Answered = %d", s.Answered())
	}
}

func TestRunThresholdValidation(t *testing.T) {
	s := mustNew(t, baseOptions())
	if _, err := s.Run([]float64{1, 2, 3}, []float64{0, 0}); err == nil {
		t.Error("mismatched thresholds accepted")
	}
	// Per-query thresholds are applied positionally.
	s2 := mustNew(t, baseOptions())
	out, err := s2.Run([]float64{0, 0}, []float64{-1e9, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Above || out[1].Above {
		t.Fatalf("per-query thresholds misapplied: %v", out)
	}
}

func TestRunPropagatesBadQuery(t *testing.T) {
	s := mustNew(t, baseOptions())
	out, err := s.Run([]float64{-1e9, math.NaN()}, []float64{0})
	if err == nil {
		t.Fatal("NaN query accepted")
	}
	if len(out) != 1 {
		t.Fatalf("partial results length %d, want 1", len(out))
	}
}

func TestNumericAnswers(t *testing.T) {
	opts := baseOptions()
	opts.AnswerFraction = 0.4
	opts.MaxPositives = 20
	s := mustNew(t, opts)
	const truth = 1e6
	sawNumeric := 0
	var sum float64
	for i := 0; i < 20; i++ {
		res, err := s.Next(truth, 0)
		if errors.Is(err, svt.ErrHalted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Above {
			if !res.Numeric {
				t.Fatal("positive outcome without numeric value despite AnswerFraction")
			}
			sawNumeric++
			sum += res.Value
		}
	}
	if sawNumeric == 0 {
		t.Fatal("no numeric answers released")
	}
	if mean := sum / float64(sawNumeric); math.Abs(mean-truth) > truth*0.1 {
		t.Fatalf("numeric answers mean %v far from truth %v", mean, truth)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []svt.Result {
		s := mustNew(t, baseOptions())
		out, err := s.Run([]float64{3, -2, 8, 1, -5, 4}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d", i)
		}
	}
}

func TestResultString(t *testing.T) {
	if got := (svt.Result{}).String(); got != "⊥" {
		t.Errorf("zero Result = %q", got)
	}
	if got := (svt.Result{Above: true}).String(); got != "⊤" {
		t.Errorf("Above Result = %q", got)
	}
	if got := (svt.Result{Above: true, Numeric: true, Value: 1.5}).String(); got != "1.5" {
		t.Errorf("numeric Result = %q", got)
	}
}

func TestAllocationString(t *testing.T) {
	want := map[svt.Allocation]string{
		svt.AllocationAuto:   "auto",
		svt.Allocation1x1:    "1:1",
		svt.Allocation1x3:    "1:3",
		svt.Allocation1xC:    "1:c",
		svt.Allocation1xC23:  "1:c^(2/3)",
		svt.Allocation1x2C23: "1:(2c)^(2/3)",
		svt.Allocation(42):   "Allocation(42)",
	}
	for a, s := range want {
		if got := a.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", int(a), got, s)
		}
	}
}

// Property: no matter the query stream, positives never exceed
// MaxPositives, and Answered never exceeds the stream length.
func TestQuickSparseInvariants(t *testing.T) {
	f := func(seed uint64, raw []int8, cRaw uint8) bool {
		opts := svt.Options{
			Epsilon: 0.5, Sensitivity: 1,
			MaxPositives: int(cRaw%4) + 1,
			Seed:         seed | 1,
		}
		s, err := svt.New(opts)
		if err != nil {
			return false
		}
		positives := 0
		for _, v := range raw {
			res, err := s.Next(float64(v), 0)
			if errors.Is(err, svt.ErrHalted) {
				break
			}
			if err != nil {
				return false
			}
			if res.Above {
				positives++
			}
		}
		return positives <= opts.MaxPositives && s.Answered() <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopCValidation(t *testing.T) {
	good := svt.SelectOptions{Epsilon: 1, Sensitivity: 1, C: 2, Seed: 3}
	if _, err := svt.TopC([]float64{1, 2, 3}, good); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	bad := []struct {
		name   string
		scores []float64
		mut    func(*svt.SelectOptions)
	}{
		{"empty scores", nil, func(o *svt.SelectOptions) {}},
		{"NaN score", []float64{1, math.NaN()}, func(o *svt.SelectOptions) {}},
		{"inf score", []float64{math.Inf(1)}, func(o *svt.SelectOptions) {}},
		{"zero epsilon", []float64{1}, func(o *svt.SelectOptions) { o.Epsilon = 0 }},
		{"zero sensitivity", []float64{1}, func(o *svt.SelectOptions) { o.Sensitivity = 0 }},
		{"zero c", []float64{1}, func(o *svt.SelectOptions) { o.C = 0 }},
		{"NaN threshold", []float64{1}, func(o *svt.SelectOptions) { o.Threshold = math.NaN() }},
		{"neg boost", []float64{1}, func(o *svt.SelectOptions) { o.BoostSD = -1 }},
		{"neg passes", []float64{1}, func(o *svt.SelectOptions) { o.MaxPasses = -1 }},
		{"bad method", []float64{1}, func(o *svt.SelectOptions) { o.Method = svt.Method(9) }},
		{"bad allocation", []float64{1}, func(o *svt.SelectOptions) {
			o.Method = svt.MethodSVT
			o.Allocation = svt.Allocation(9)
		}},
	}
	for _, c := range bad {
		opts := good
		c.mut(&opts)
		if _, err := svt.TopC(c.scores, opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTopCMethods(t *testing.T) {
	scores := []float64{5, 100, 10, 90, 20, 80}
	for _, method := range []svt.Method{svt.MethodEM, svt.MethodSVT, svt.MethodReTr} {
		sel, err := svt.TopC(scores, svt.SelectOptions{
			Epsilon: 50, Sensitivity: 1, C: 3,
			Method: method, Threshold: 50, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(sel) > 3 {
			t.Fatalf("%v: selected %d > 3", method, len(sel))
		}
		seen := map[int]bool{}
		for _, idx := range sel {
			if idx < 0 || idx >= len(scores) || seen[idx] {
				t.Fatalf("%v: bad selection %v", method, sel)
			}
			seen[idx] = true
		}
		// With huge epsilon all methods should find the true top three.
		sort.Ints(sel)
		if method != svt.MethodSVT && (len(sel) != 3 || sel[0] != 1 || sel[1] != 3 || sel[2] != 5) {
			t.Errorf("%v: high-eps selection %v, want [1 3 5]", method, sel)
		}
	}
}

func TestTopCWithCounts(t *testing.T) {
	scores := []float64{100000, 5, 90000, 3, 80000}
	sel, err := svt.TopCWithCounts(scores, svt.SelectOptions{
		Epsilon: 10, Sensitivity: 1, C: 3, Monotonic: true,
		Method: svt.MethodEM, Seed: 21,
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selected %d, want 3", len(sel))
	}
	// Per-answer scale is 1/(5/3) = 0.6; releases must hug the truth.
	for _, s := range sel {
		if s.Index < 0 || s.Index >= len(scores) {
			t.Fatalf("bad index %d", s.Index)
		}
		if math.Abs(s.NoisyScore-scores[s.Index]) > 50 {
			t.Errorf("index %d: noisy score %v far from %v", s.Index, s.NoisyScore, scores[s.Index])
		}
	}
	// With huge epsilon, the selected set is the true top-3.
	seen := map[int]bool{}
	for _, s := range sel {
		seen[s.Index] = true
	}
	if !seen[0] || !seen[2] || !seen[4] {
		t.Errorf("selection %v missed the true top", sel)
	}
}

func TestTopCWithCountsValidation(t *testing.T) {
	scores := []float64{1, 2}
	good := svt.SelectOptions{Epsilon: 1, Sensitivity: 1, C: 1, Seed: 2}
	for _, frac := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := svt.TopCWithCounts(scores, good, frac); err == nil {
			t.Errorf("answerFraction %v accepted", frac)
		}
	}
	bad := good
	bad.Epsilon = 0
	if _, err := svt.TopCWithCounts(scores, bad, 0.5); err == nil {
		t.Error("zero epsilon accepted")
	}
	bad = good
	bad.C = 0
	if _, err := svt.TopCWithCounts(scores, bad, 0.5); err == nil {
		t.Error("zero C accepted")
	}
	if _, err := svt.TopCWithCounts(nil, good, 0.5); err == nil {
		t.Error("empty scores accepted")
	}
}

func TestTopCWithCountsDeterministicAndIndependentStreams(t *testing.T) {
	scores := []float64{10, 20, 30, 40}
	opts := svt.SelectOptions{Epsilon: 2, Sensitivity: 1, C: 2, Method: svt.MethodEM, Seed: 77}
	a, err := svt.TopCWithCounts(scores, opts, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svt.TopCWithCounts(scores, opts, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The selection with the same seed but indicator-only must match the
	// indices: the answer noise must not perturb the selection stream.
	selOpts := opts
	selOpts.Epsilon = opts.Epsilon * 0.6
	indices, err := svt.TopC(scores, selOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range indices {
		if indices[i] != a[i].Index {
			t.Fatalf("selection differs from indicator-only run: %v vs %+v", indices, a)
		}
	}
}

func TestMethodString(t *testing.T) {
	want := map[svt.Method]string{
		svt.MethodEM:   "EM",
		svt.MethodSVT:  "SVT-S",
		svt.MethodReTr: "SVT-ReTr",
		svt.Method(7):  "Method(7)",
	}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", int(m), got, s)
		}
	}
}

func TestSparseFastForwardResumesBitIdentical(t *testing.T) {
	opts := svt.Options{Epsilon: 1, Sensitivity: 1, MaxPositives: 30, AnswerFraction: 0.25, Seed: 31}
	full, err := svt.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]float64, 60)
	for i := range queries {
		queries[i] = float64(i%3) - 1
	}
	// Uninterrupted run, recording the answer stream and the journal point.
	var want []svt.Result
	var draws uint64
	var answered, positives int
	for i, q := range queries {
		res, err := full.Next(q, 0)
		if errors.Is(err, svt.ErrHalted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
		if i == 9 { // the "crash point"
			draws = full.Draws()
			answered = full.Answered()
			positives = opts.MaxPositives - full.Remaining()
		}
	}
	if draws == 0 {
		t.Fatal("setup: mechanism halted before the crash point")
	}
	// Rebuild from the same seed, restore the accounting, fast-forward the
	// stream, and require the continuation to match bit-for-bit.
	rebuilt, err := svt.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Restore(answered, positives); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.FastForward(draws); err != nil {
		t.Fatal(err)
	}
	got := want[:10:10]
	for _, q := range queries[10:] {
		res, err := rebuilt.Next(q, 0)
		if errors.Is(err, svt.ErrHalted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed run released %d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer %d diverged after fast-forward: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSparseFastForwardRejectsRewind(t *testing.T) {
	s, err := svt.New(svt.Options{Epsilon: 1, Sensitivity: 1, MaxPositives: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(0, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := s.FastForward(0); err == nil {
		t.Fatal("fast-forward to a PAST position succeeded; that would replay emitted noise")
	}
}
