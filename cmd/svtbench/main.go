// Command svtbench regenerates the paper's tables and figures.
//
// Usage:
//
//	svtbench -exp all                        # everything, paper settings
//	svtbench -exp fig4 -scale 0.25 -runs 30  # one figure, reduced cost
//	svtbench -exp fig5 -datasets Zipf,AOL -csv out.csv
//
// Experiments: table1, table2, fig2, fig3, fig4, fig5, alpha, all.
// Figures 4 and 5 at full paper settings (-scale 1 -runs 100, all four
// datasets) take a while on one core — the AOL profile alone sweeps 2.3M
// candidate queries per run; use -scale/-runs/-datasets to trade fidelity
// for time. Shapes are stable well below full scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dpgo/svt/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1, table2, fig2, fig3, fig4, fig5, alpha, all")
		scale    = flag.Float64("scale", 1.0, "dataset scale in (0,1]; 1 = exact Table 1 sizes")
		runs     = flag.Int("runs", 100, "randomized repetitions per configuration")
		epsilon  = flag.Float64("eps", 0.1, "total privacy budget")
		datasets = flag.String("datasets", "", "comma-separated subset of BMS-POS,Kosarak,AOL,Zipf (empty = all)")
		cvalues  = flag.String("cvalues", "", "comma-separated c sweep (empty = paper's 25..300 step 25)")
		seed     = flag.Uint64("seed", 20170401, "master seed")
		trials   = flag.Int("audit-trials", 20000, "Monte-Carlo trials per world for fig2 audits")
		csvPath  = flag.String("csv", "", "also write sweep results as CSV to this path")
		verify   = flag.Bool("verify", false, "check the paper's qualitative claims against the measured sweeps; non-zero exit on failure")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Runs = *runs
	cfg.Epsilon = *epsilon
	cfg.Seed = *seed
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *cvalues != "" {
		cfg.CValues = cfg.CValues[:0]
		for _, s := range strings.Split(*cvalues, ",") {
			var c int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &c); err != nil {
				fmt.Fprintf(os.Stderr, "svtbench: bad -cvalues entry %q: %v\n", s, err)
				os.Exit(2)
			}
			cfg.CValues = append(cfg.CValues, c)
		}
	}

	if err := run(*exp, cfg, *trials, *csvPath, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "svtbench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiments.Config, trials int, csvPath string, verify bool) error {
	out := os.Stdout
	var sweeps []experiments.MethodResult

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		ran = true
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		experiments.RenderTable1(out, rows)
	}
	if want("table2") {
		ran = true
		experiments.RenderTable2(out, experiments.Table2())
	}
	if want("fig2") {
		ran = true
		cols, err := experiments.Figure2(trials, 1.0, cfg.Seed)
		if err != nil {
			return err
		}
		experiments.RenderFigure2(out, cols)
	}
	if want("fig3") {
		ran = true
		series, err := experiments.Figure3(cfg)
		if err != nil {
			return err
		}
		experiments.RenderScoreSeries(out, series)
	}
	if want("fig4") {
		ran = true
		fmt.Fprintf(out, "\n=== Figure 4: interactive setting (eps=%g, runs=%d, scale=%g) ===\n",
			cfg.Epsilon, cfg.Runs, cfg.Scale)
		results, err := experiments.Figure4(cfg)
		if err != nil {
			return err
		}
		experiments.SortResults(results)
		if err := experiments.RenderSweep(out, results, "SER"); err != nil {
			return err
		}
		if err := experiments.RenderSweep(out, results, "FNR"); err != nil {
			return err
		}
		if verify {
			if failed := experiments.RenderClaims(out, experiments.VerifyFigure4(results)); failed > 0 {
				return fmt.Errorf("%d figure-4 claims failed", failed)
			}
		}
		sweeps = append(sweeps, results...)
	}
	if want("fig5") {
		ran = true
		fmt.Fprintf(out, "\n=== Figure 5: non-interactive setting (eps=%g, runs=%d, scale=%g) ===\n",
			cfg.Epsilon, cfg.Runs, cfg.Scale)
		results, err := experiments.Figure5(cfg)
		if err != nil {
			return err
		}
		experiments.SortResults(results)
		if err := experiments.RenderSweep(out, results, "SER"); err != nil {
			return err
		}
		if err := experiments.RenderSweep(out, results, "FNR"); err != nil {
			return err
		}
		if verify {
			if failed := experiments.RenderClaims(out, experiments.VerifyFigure5(results)); failed > 0 {
				return fmt.Errorf("%d figure-5 claims failed", failed)
			}
		}
		sweeps = append(sweeps, results...)
	}
	if want("alpha") {
		ran = true
		points, err := experiments.AlphaComparison(
			[]int{10, 100, 1000, 10000, 100000}, 0.05, cfg.Epsilon)
		if err != nil {
			return err
		}
		experiments.RenderAlpha(out, points)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if csvPath != "" && len(sweeps) > 0 {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteSweepCSV(f, sweeps); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", csvPath)
	}
	return nil
}
