// Command pmwserve runs a private interactive query-answering service: a
// Private-Multiplicative-Weights mediator (the paper's "iterative
// construction" use of SVT) behind an HTTP API.
//
//	pmwserve -profile Zipf -scale 0.05 -buckets 100 -eps 2 -updates 20 -threshold 50 -addr :8080
//
// The private histogram is the per-bucket item-support mass of a generated
// dataset (or a FIMI file via -data). Endpoints:
//
//	POST /v1/query      {"buckets":[0,1,2]} → noisy/synthetic count
//	GET  /v1/status     budget status
//	GET  /v1/synthetic  the public synthetic histogram
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/pmw"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataPath  = flag.String("data", "", "FIMI transaction file")
		profile   = flag.String("profile", "Zipf", "built-in profile when -data is empty")
		scale     = flag.Float64("scale", 0.05, "profile generation scale")
		buckets   = flag.Int("buckets", 100, "histogram buckets (items are folded modulo this)")
		eps       = flag.Float64("eps", 2.0, "total privacy budget")
		updates   = flag.Int("updates", 20, "maximum data accesses (SVT cutoff c)")
		threshold = flag.Float64("threshold", 50, "error threshold T")
		seed      = flag.Uint64("seed", 0, "0 = crypto-seeded")
	)
	flag.Parse()
	if err := run(*addr, *dataPath, *profile, *scale, *buckets, *eps, *updates, *threshold, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pmwserve:", err)
		os.Exit(1)
	}
}

func run(addr, dataPath, profile string, scale float64, buckets int, eps float64, updates int, threshold float64, seed uint64) error {
	var store *dataset.Store
	var err error
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		store, err = dataset.Read(f, dataPath, 0)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		p, perr := dataset.ProfileByName(profile)
		if perr != nil {
			return perr
		}
		genSeed := seed
		if genSeed == 0 {
			genSeed = 1
		}
		store, err = dataset.Generate(p, scale, genSeed)
		if err != nil {
			return err
		}
	}
	if buckets < 2 {
		return fmt.Errorf("need at least 2 buckets, got %d", buckets)
	}
	// Fold item supports into a fixed-size histogram: bucket b holds the
	// total support mass of items ≡ b (mod buckets). One person's
	// transaction touches few items, so sensitivity stays small; we keep
	// the conservative Δ=1-per-bucket accounting of the pmw package.
	supports := store.ItemSupports()
	hist := make([]float64, buckets)
	for item, sup := range supports {
		hist[item%buckets] += float64(sup)
	}
	engine, err := pmw.New(pmw.Config{
		Histogram:  hist,
		Epsilon:    eps,
		MaxUpdates: updates,
		Threshold:  threshold,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	handler, err := pmw.NewHandler(engine)
	if err != nil {
		return err
	}
	log.Printf("pmwserve: %s (%d records) → %d buckets, eps=%g, %d updates, T=%g, listening on %s",
		store.Name(), store.NumRecords(), buckets, eps, updates, threshold, addr)
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}
