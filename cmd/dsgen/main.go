// Command dsgen writes a synthetic transaction dataset in the FIMI text
// format (one transaction per line, space-separated item ids), using the
// Table-1-calibrated generators of the dataset package.
//
//	dsgen -profile Kosarak -scale 0.1 -seed 7 -o kosarak-small.dat
//
// The produced files feed cmd/svttop, cmd/pmwserve, or any standard
// frequent-itemset-mining tool.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dpgo/svt/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "Zipf", "profile: BMS-POS, Kosarak, AOL, Zipf")
		scale   = flag.Float64("scale", 0.1, "scale in (0,1]; 1 = exact Table 1 size")
		seed    = flag.Uint64("seed", 1, "generation seed (non-zero)")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()
	if err := run(*profile, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "dsgen:", err)
		os.Exit(1)
	}
}

func run(profile string, scale float64, seed uint64, out string) error {
	p, err := dataset.ProfileByName(profile)
	if err != nil {
		return err
	}
	if seed == 0 {
		return fmt.Errorf("seed must be non-zero for reproducible generation")
	}
	store, err := dataset.Generate(p, scale, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	n, err := store.WriteTo(w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dsgen: wrote %d transactions (%d bytes) for %s at scale %g\n",
		store.NumRecords(), n, p.Name, scale)
	return nil
}
