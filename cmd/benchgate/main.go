// Command benchgate compares a freshly measured benchmark summary (the
// JSON written by the server/store suites under SVT_BENCH_JSON) against a
// committed baseline and exits non-zero on regression, so CI catches a
// perf cliff before it merges.
//
//	go test -bench . -run '^$' ./server/  # with SVT_BENCH_JSON=/tmp/new.json
//	benchgate -baseline BENCH_server.json -candidate /tmp/new.json
//
// Two axes gate, matched per benchmark name:
//
//   - throughput (any "*PerSec" field): the candidate must reach at least
//     (1 - threshold) of the baseline, default threshold 10%.
//   - allocations (allocsPerOp): the candidate may exceed the baseline by
//     at most threshold, with one whole allocation of absolute headroom so
//     near-zero baselines (pooled paths measuring 0.0001 allocs/op) do not
//     fail on scheduler noise.
//
// Benchmarks present only in the candidate pass (new coverage); baselines
// whose benchmark disappeared fail, so a gate cannot be dodged by renaming
// the benchmark it guards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// summary mirrors the SVT_BENCH_JSON layout; entry fields stay generic so
// one gate reads both the server file (queriesPerSec) and the store file
// (appendsPerSec, snapshotsPerSec, ...).
type summary struct {
	Package    string           `json:"package"`
	Benchmarks []map[string]any `json:"benchmarks"`
}

func load(path string) (*summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// throughput returns the entry's "*PerSec" value. Entries carry exactly
// one; ok is false for benchmarks that only report latency.
func throughput(e map[string]any) (float64, bool) {
	for k, v := range e {
		if f, isNum := v.(float64); isNum && strings.HasSuffix(k, "PerSec") {
			return f, true
		}
	}
	return 0, false
}

func num(e map[string]any, key string) (float64, bool) {
	f, ok := e[key].(float64)
	return f, ok
}

// gate compares candidate against baseline and returns the list of
// regressions, empty when the gate passes.
func gate(baseline, candidate *summary, threshold float64) []string {
	byName := make(map[string]map[string]any, len(candidate.Benchmarks))
	for _, e := range candidate.Benchmarks {
		if name, ok := e["name"].(string); ok {
			byName[name] = e
		}
	}
	var failures []string
	for _, base := range baseline.Benchmarks {
		name, _ := base["name"].(string)
		cand, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but not measured", name))
			continue
		}
		if baseTP, ok := throughput(base); ok {
			candTP, ok := throughput(cand)
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: baseline has throughput, candidate does not", name))
			} else if floor := baseTP * (1 - threshold); candTP < floor {
				failures = append(failures, fmt.Sprintf(
					"%s: throughput %.0f/s is %.1f%% below baseline %.0f/s (floor %.0f/s)",
					name, candTP, 100*(1-candTP/baseTP), baseTP, floor))
			}
		}
		if baseAllocs, ok := num(base, "allocsPerOp"); ok {
			if candAllocs, ok := num(cand, "allocsPerOp"); ok {
				ceiling := baseAllocs*(1+threshold) + 1
				if candAllocs > ceiling {
					failures = append(failures, fmt.Sprintf(
						"%s: %.3f allocs/op exceeds baseline %.3f allocs/op (ceiling %.3f)",
						name, candAllocs, baseAllocs, ceiling))
				}
			}
		}
	}
	return failures
}

func main() {
	var (
		baselinePath  = flag.String("baseline", "", "committed baseline JSON (required)")
		candidatePath = flag.String("candidate", "", "freshly measured JSON (required)")
		threshold     = flag.Float64("threshold", 0.10, "allowed relative regression (0.10 = 10%)")
	)
	flag.Parse()
	if *baselinePath == "" || *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -candidate are required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	candidate, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	failures := gate(baseline, candidate, *threshold)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) vs %s (threshold %.0f%%):\n",
			len(failures), *baselinePath, *threshold*100)
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  ", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.0f%% of %s\n",
		len(baseline.Benchmarks), *threshold*100, *baselinePath)
}
