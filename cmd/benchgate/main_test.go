package main

import (
	"strings"
	"testing"
)

func entry(name string, perSecKey string, perSec, allocs float64) map[string]any {
	return map[string]any{"name": name, perSecKey: perSec, "allocsPerOp": allocs}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := &summary{Benchmarks: []map[string]any{
		entry("A", "queriesPerSec", 1000, 2),
		entry("B", "appendsPerSec", 5000, 0),
	}}
	cand := &summary{Benchmarks: []map[string]any{
		entry("A", "queriesPerSec", 910, 2.1), // -9% throughput: inside 10%
		entry("B", "appendsPerSec", 5200, 0.5),
		entry("C", "queriesPerSec", 1, 99), // new benchmark: not gated
	}}
	if fails := gate(base, cand, 0.10); len(fails) != 0 {
		t.Fatalf("gate failed on in-threshold candidate: %v", fails)
	}
}

func TestGateCatchesThroughputRegression(t *testing.T) {
	base := &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 1000, 1)}}
	cand := &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 850, 1)}}
	fails := gate(base, cand, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "below baseline") {
		t.Fatalf("15%% throughput drop not caught: %v", fails)
	}
}

func TestGateCatchesAllocRegression(t *testing.T) {
	base := &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 1000, 2)}}
	cand := &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 1000, 4)}}
	fails := gate(base, cand, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "allocs/op") {
		t.Fatalf("doubled allocs/op not caught: %v", fails)
	}
	// Near-zero baselines keep one whole allocation of headroom.
	base = &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 1000, 0.001)}}
	cand = &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 1000, 0.9)}}
	if fails := gate(base, cand, 0.10); len(fails) != 0 {
		t.Fatalf("sub-allocation noise failed the gate: %v", fails)
	}
}

func TestGateCatchesMissingBenchmark(t *testing.T) {
	base := &summary{Benchmarks: []map[string]any{entry("A", "queriesPerSec", 1000, 1)}}
	cand := &summary{Benchmarks: []map[string]any{entry("Renamed", "queriesPerSec", 1000, 1)}}
	fails := gate(base, cand, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "not measured") {
		t.Fatalf("vanished benchmark not caught: %v", fails)
	}
}
