// Command dpaudit runs the privacy audits that verify the paper's
// theorems: the ∞-DP counterexamples for Algorithms 3, 5 and 6, the
// Lemma-1 / Theorem-2 bound on the corrected Algorithm 1, the Lee-Clifton
// Algorithm-4 gap, and the GPTT proof-dependence analysis of §3.3.
//
// Usage:
//
//	dpaudit -case all
//	dpaudit -case thm7 -eps 0.5 -trials 100000
//
// Cases: thm3, thm6, thm7, alg4, lemma1, gptt, all.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/dpgo/svt/audit"
)

func main() {
	var (
		which  = flag.String("case", "all", "audit case: thm3, thm6, thm7, alg4, lemma1, gptt, all")
		eps    = flag.Float64("eps", 1.0, "privacy budget handed to the audited mechanisms")
		trials = flag.Int("trials", 50000, "Monte-Carlo trials per world")
		seed   = flag.Uint64("seed", 42, "master seed")
	)
	flag.Parse()
	if err := run(*which, *eps, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "dpaudit:", err)
		os.Exit(1)
	}
}

func run(which string, eps float64, trials int, seed uint64) error {
	want := func(name string) bool { return which == "all" || which == name }
	ran := false

	if want("thm3") {
		ran = true
		fmt.Printf("--- Theorem 3: Algorithm 5 (Stoddard et al.) is ∞-DP ---\n")
		pD, pDP, err := audit.Theorem3Probabilities(eps)
		if err != nil {
			return err
		}
		fmt.Printf("closed form: Pr[A(D)=⟨⊥,⊤⟩] = %.4f, Pr[A(D′)=⟨⊥,⊤⟩] = %g → ratio ∞\n", pD, pDP)
		est, err := audit.Run(audit.Theorem3Scenario(eps), trials, seed)
		if err != nil {
			return err
		}
		fmt.Printf("monte carlo (%d trials): PD=%.4f PD'=%.6f 95%%-lower ratio=%.1f (empirical ε ≥ %.2f)\n\n",
			est.Trials, est.PD, est.PDPrime, est.RatioLower, est.EmpiricalEpsilon)
	}
	if want("thm6") {
		ran = true
		fmt.Printf("--- Theorem 6: Algorithm 3 (Roth lecture notes) is ∞-DP ---\n")
		fmt.Printf("%6s %18s %18s\n", "m", "numeric ratio", "e^{(m-1)eps/2}")
		for _, m := range []int{1, 2, 4, 8, 16, 32} {
			numeric, closed, err := audit.Theorem6Ratio(eps, m)
			if err != nil {
				return err
			}
			fmt.Printf("%6d %18.4g %18.4g\n", m, numeric, closed)
		}
		fmt.Println()
	}
	if want("thm7") {
		ran = true
		fmt.Printf("--- Theorem 7: Algorithm 6 (Chen et al.) is ∞-DP ---\n")
		fmt.Printf("%6s %18s %18s\n", "m", "numeric ratio", "bound e^{m eps/2}")
		for _, m := range []int{1, 2, 4, 8, 16} {
			numeric, bound, err := audit.Theorem7Ratio(eps, m)
			if err != nil {
				return err
			}
			fmt.Printf("%6d %18.4g %18.4g\n", m, numeric, bound)
		}
		est, err := audit.Run(audit.Theorem7Scenario(eps, 3), trials, seed+1)
		if err != nil {
			return err
		}
		fmt.Printf("monte carlo m=3 (%d trials): PD=%.4f PD'=%.5f 95%%-lower ratio=%.2f (claimed e^eps=%.2f)\n\n",
			est.Trials, est.PD, est.PDPrime, est.RatioLower, math.Exp(eps))
	}
	if want("alg4") {
		ran = true
		fmt.Printf("--- Algorithm 4 (Lee & Clifton): actual loss vs advertised ε ---\n")
		fmt.Printf("%6s %16s %16s %18s\n", "c=m", "measured loss/ε", "advertised", "true ((1+6c)/4)")
		for _, m := range []int{1, 2, 4, 8, 16} {
			ratio, err := audit.Alg4Ratio(eps, m)
			if err != nil {
				return err
			}
			fmt.Printf("%6d %16.2f %16.2f %18.2f\n", m, math.Log(ratio)/eps, 1.0, (1.0+6*float64(m))/4)
		}
		fmt.Println()
	}
	if want("lemma1") {
		ran = true
		fmt.Printf("--- Lemma 1 / Theorem 2: Algorithm 1 stays within its budget ---\n")
		fmt.Printf("%6s %14s %14s\n", "ell", "ratio", "bound e^{eps/2}")
		for _, ell := range []int{1, 10, 100, 400} {
			ratio, bound, err := audit.Lemma1Ratio(eps, ell, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%6d %14.4f %14.4f\n", ell, ratio, bound)
		}
		est, err := audit.Run(audit.MixedAlg1Scenario(eps, 4, 2), trials, seed+2)
		if err != nil {
			return err
		}
		fmt.Printf("monte carlo mixed output (%d trials): empirical ε ≥ %.3f (budget %.3f) — must NOT exceed\n\n",
			est.Trials, est.EmpiricalEpsilon, eps)
	}
	if want("gptt") {
		ran = true
		fmt.Printf("--- §3.3 / Appendix 10.3: the flawed GPTT non-privacy proof ---\n")
		fmt.Printf("GPTT dependence chain (α↓, δ↑, κ↓ as t grows):\n")
		fmt.Printf("%6s %14s %10s %14s %14s %14s\n", "t", "alpha", "delta", "kappa", "kappa^{t/2}", "true ratio")
		points, err := audit.GPTTAnalyze(eps, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Printf("%6d %14.4g %10.2f %14.8f %14.4g %14.4g\n",
				p.T, p.Alpha, p.Delta, p.Kappa, p.KappaBound, p.TrueRatio)
		}
		fmt.Printf("\nSame technique applied to the ε-DP Algorithm 1 (the paper's contradiction):\n")
		fmt.Printf("%6s %14s %14s %14s %14s\n", "t", "kappa", "fake bound", "true ratio", "Lemma-1 cap")
		alg1, err := audit.Alg1FakeProofAnalyze(eps, []int{1, 4, 16, 64, 256})
		if err != nil {
			return err
		}
		for _, p := range alg1 {
			fmt.Printf("%6d %14.8f %14.4g %14.4g %14.4g\n",
				p.T, p.Kappa, p.FakeBound, p.TrueRatio, p.Lemma1Bound)
		}
		fmt.Printf("fake bound stays below the Lemma-1 cap for every t → the proof technique cannot be sound\n\n")
	}
	if !ran {
		return fmt.Errorf("unknown case %q", which)
	}
	return nil
}
