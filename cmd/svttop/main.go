// Command svttop selects the top-c most frequent items of a transaction
// dataset under ε-differential privacy.
//
// The input is either a FIMI-format file (one transaction per line,
// space-separated item ids) or a built-in synthetic profile:
//
//	svttop -data kosarak.dat -c 50 -eps 0.1 -method em
//	svttop -profile Kosarak -scale 0.1 -c 50 -method retr -boost 3
//
// Methods: em (exponential mechanism; the paper's recommendation for this
// non-interactive task), svt (single-pass SVT-S), retr (SVT with
// retraversal). The tool prints the selected items with their true
// supports plus the selection's SER/FNR against the true top-c, so the
// privacy-utility tradeoff is visible immediately.
package main

import (
	"flag"
	"fmt"
	"os"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/metrics"
)

func main() {
	var (
		dataPath = flag.String("data", "", "FIMI transaction file (one transaction per line)")
		profile  = flag.String("profile", "", "built-in profile: BMS-POS, Kosarak, AOL, Zipf")
		scale    = flag.Float64("scale", 0.1, "scale for -profile generation")
		c        = flag.Int("c", 25, "number of items to select")
		eps      = flag.Float64("eps", 0.1, "privacy budget")
		methodS  = flag.String("method", "em", "selection method: em, svt, retr")
		boost    = flag.Float64("boost", 2, "retraversal threshold boost in noise SDs (retr only)")
		seed     = flag.Uint64("seed", 0, "0 = crypto-seeded")
	)
	flag.Parse()
	if err := run(*dataPath, *profile, *scale, *c, *eps, *methodS, *boost, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "svttop:", err)
		os.Exit(1)
	}
}

func run(dataPath, profile string, scale float64, c int, eps float64, methodS string, boost float64, seed uint64) error {
	store, err := loadStore(dataPath, profile, scale, seed)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %q: %d records, %d items\n", store.Name(), store.NumRecords(), store.NumItems())

	var method svt.Method
	switch methodS {
	case "em":
		method = svt.MethodEM
	case "svt":
		method = svt.MethodSVT
	case "retr":
		method = svt.MethodReTr
	default:
		return fmt.Errorf("unknown method %q (want em, svt, retr)", methodS)
	}

	scores := store.SupportsFloat()
	if c <= 0 || c >= len(scores) {
		return fmt.Errorf("c must be in [1, %d), got %d", len(scores), c)
	}
	trueTop := metrics.TopIndices(scores, c)
	// The paper's threshold rule: midpoint of the c-th and (c+1)-th scores.
	top := metrics.TopIndices(scores, c+1)
	threshold := (scores[top[c-1]] + scores[top[c]]) / 2

	selected, err := svt.TopC(scores, svt.SelectOptions{
		Epsilon:     eps,
		Sensitivity: 1,
		C:           c,
		Monotonic:   true, // item supports are counting queries
		Method:      method,
		Threshold:   threshold,
		BoostSD:     boost,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("method %s, eps=%g, c=%d, threshold=%.1f → selected %d items\n",
		method, eps, c, threshold, len(selected))
	fmt.Printf("%8s %12s\n", "item", "true support")
	for _, idx := range selected {
		fmt.Printf("%8d %12.0f\n", idx, scores[idx])
	}
	fmt.Printf("\nutility vs true top-%d: SER=%.4f FNR=%.4f\n",
		c, metrics.SER(scores, trueTop, selected), metrics.FNR(trueTop, selected))
	fmt.Println("(supports shown are true values for inspection; release them privately via svt.Options.AnswerFraction)")
	return nil
}

func loadStore(dataPath, profile string, scale float64, seed uint64) (*dataset.Store, error) {
	switch {
	case dataPath != "" && profile != "":
		return nil, fmt.Errorf("use either -data or -profile, not both")
	case dataPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Read(f, dataPath, 0)
	case profile != "":
		p, err := dataset.ProfileByName(profile)
		if err != nil {
			return nil, err
		}
		if seed == 0 {
			seed = 1 // generation must be deterministic-friendly but non-zero
		}
		return dataset.Generate(p, scale, seed)
	default:
		return nil, fmt.Errorf("provide -data FILE or -profile NAME")
	}
}
