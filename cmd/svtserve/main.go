// Command svtserve runs the multi-tenant SVT session service: many
// analysts each create an interactive session (the corrected SVT of the
// paper's Algorithm 7, the Figure 1 private variants, or a PMW mediator)
// and stream threshold queries against it over JSON HTTP.
//
//	svtserve -addr :8080 -shards 32 -ttl 10m
//
// Endpoints (see the server package for request/response shapes):
//
//	POST   /v1/sessions            create a session
//	POST   /v1/sessions/{id}/query single or batched queries
//	GET    /v1/sessions/{id}       status, remaining budget, (ε₁, ε₂, ε₃)
//	DELETE /v1/sessions/{id}       end a session
//	GET    /v1/stats               service-wide counters
//	GET    /healthz                liveness
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dpgo/svt/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		shards      = flag.Int("shards", server.DefaultShards, "session-table lock stripes")
		ttl         = flag.Duration("ttl", server.DefaultTTL, "default idle session time-to-live")
		maxTTL      = flag.Duration("max-ttl", server.DefaultMaxTTL, "cap on per-session TTL requests")
		sweep       = flag.Duration("sweep", server.DefaultSweepInterval, "janitor sweep interval")
		maxSessions = flag.Int("max-sessions", 0, "live-session cap (0 = unlimited)")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body cap in bytes")
		maxBatch    = flag.Int("max-batch", server.DefaultMaxBatch, "queries per batch cap")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()
	if err := run(*addr, *shards, *ttl, *maxTTL, *sweep, *maxSessions, *maxBody, *maxBatch, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "svtserve:", err)
		os.Exit(1)
	}
}

func run(addr string, shards int, ttl, maxTTL, sweep time.Duration, maxSessions int, maxBody int64, maxBatch int, drain time.Duration) error {
	mgr := server.NewSessionManager(server.ManagerConfig{
		Shards:        shards,
		DefaultTTL:    ttl,
		MaxTTL:        maxTTL,
		SweepInterval: sweep,
		MaxSessions:   maxSessions,
	})
	defer mgr.Close()
	api := server.NewAPI(mgr, server.APIConfig{MaxBodyBytes: maxBody, MaxBatch: maxBatch})

	srv := &http.Server{
		Addr:              addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("svtserve: %d shards, ttl=%s, listening on %s", mgr.Shards(), ttl, addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("svtserve: shutting down (draining up to %s)", drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
