// Command svtserve runs the multi-tenant SVT session service: many
// analysts each create an interactive session against any mechanism in
// the mech registry — the corrected SVT of the paper's Algorithm 7, the
// exponential-noise esvt of Liu et al., the Figure 1 private variants, or
// a PMW mediator — and stream threshold queries against it over JSON HTTP.
//
//	svtserve -addr :8080 -shards 32 -ttl 10m
//	svtserve -store wal -wal-dir /var/lib/svtserve -fsync always
//	svtserve -addr :8080 -wire-addr :9090   # binary wire protocol alongside HTTP
//
// Endpoints (see the server package for request/response shapes):
//
//	GET    /v1/mechanisms          registry-driven mechanism discovery
//	POST   /v1/sessions            create a session
//	POST   /v1/sessions/{id}/query single or batched queries
//	GET    /v1/sessions/{id}       status, remaining budget, (ε₁, ε₂, ε₃)
//	DELETE /v1/sessions/{id}       end a session
//	GET    /v1/stats               service-wide counters + store health
//	GET    /v1/traces              recent + slowest-per-route trace summaries
//	GET    /v1/traces/{id}         one trace's full span tree
//	GET    /healthz                liveness (503 + reason when degraded)
//	GET    /metrics                Prometheus text exposition
//
// Persistence: with -store wal every budget-mutating event (session
// create, answered queries, consumed positives, halt, delete, expiry) is
// journaled to an append-only, CRC-checked write-ahead log before the
// response is released, and the full session table — including realized
// (ε₁, ε₂, ε₃) splits — is rebuilt on restart, so a crash can never
// silently refresh spent privacy budget. -fsync picks the durability
// level, -snapshot-interval the journal-compaction cadence, and
// -commit-window optionally stretches group commit so more concurrent
// appends share each flush (mainly useful with -fsync always).
//
// Observability: GET /metrics (on by default, -metrics=false to disable)
// serves Prometheus text exposition covering all three layers — HTTP
// (per-route latency, status classes, in-flight, body bytes, per-tenant
// 429s), manager (per-mechanism query latency, positives, halts, live
// sessions, per-tenant ε spent and near-halt counts, snapshot timing) and
// store (append/sync latency, group-commit batch sizes, journal size,
// recovery). -slow-query-ms logs a structured trace line (trace ID from
// X-Request-Id or generated, session, mechanism, batch size, journal
// wait) for /query requests over the threshold; -log-format picks text or
// json for all structured output. -trace-sample head-samples 1-in-N
// /query requests into in-process span trees (HTTP decode/encode →
// manager answer → journal wait → store gather/write/sync), retained in
// a fixed ring plus a slowest-per-route reservoir and served on GET
// /v1/traces; requests carrying a W3C traceparent or an X-Request-Id are
// always traced, and every /query response echoes both headers. Sampled
// latency observations carry the trace ID as an OpenMetrics exemplar, so
// a /metrics outlier links straight to its trace. -pprof-addr serves
// net/http/pprof on a separate listener, so hot-path regressions are
// profilable in production without exposing profiling endpoints to
// analyst traffic.
//
// Rate limiting: -rate enables per-tenant token buckets on /v1/* keyed by
// the X-Tenant header; rejected requests get a JSON 429 with Retry-After.
// /metrics and /healthz sit outside /v1/ and are never throttled.
//
// Wire protocol: -wire-addr additionally serves the length-prefixed
// binary protocol of the wire package on its own listener — the same
// sessions, mechanisms, rate limits, telemetry and traces as the HTTP
// API at a fraction of the per-query cost, with pipelined out-of-order
// responses per connection. The client package is the Go SDK. JSON HTTP
// stays on -addr for compatibility.
//
// The process drains in-flight requests on SIGINT or SIGTERM, stops the
// janitor, takes a final snapshot and flushes the store before exiting, so
// no acknowledged event is lost on a graceful shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"github.com/dpgo/svt/server"
	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		wireAddr    = flag.String("wire-addr", "", "binary wire-protocol listen address (e.g. :9090; empty = disabled)")
		shards      = flag.Int("shards", server.DefaultShards, "session-table lock stripes")
		ttl         = flag.Duration("ttl", server.DefaultTTL, "default idle session time-to-live")
		maxTTL      = flag.Duration("max-ttl", server.DefaultMaxTTL, "cap on per-session TTL requests")
		sweep       = flag.Duration("sweep", server.DefaultSweepInterval, "janitor sweep interval")
		maxSessions = flag.Int("max-sessions", 0, "live-session cap (0 = unlimited)")
		maxBody     = flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body cap in bytes")
		maxBatch    = flag.Int("max-batch", server.DefaultMaxBatch, "queries per batch cap")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")

		backend      = flag.String("store", "mem", "session store backend: mem (no persistence) or wal")
		walDir       = flag.String("wal-dir", "", "write-ahead-log directory (required with -store wal)")
		fsync        = flag.String("fsync", "interval", "WAL fsync policy: always, interval or none")
		fsyncInt     = flag.Duration("fsync-interval", store.DefaultSyncInterval, "background fsync cadence for -fsync interval")
		snapInt      = flag.Duration("snapshot-interval", server.DefaultSnapshotInterval, "journal-compaction snapshot cadence (<0 disables)")
		commitWindow = flag.Duration("commit-window", 0, "group-commit gather window: the WAL flush leader waits this long so more concurrent appends share one flush/fsync (0 = flush immediately)")

		rate  = flag.Float64("rate", 0, "per-tenant request rate limit in req/s on /v1/* (0 = disabled)")
		burst = flag.Float64("burst", 0, "rate-limit burst depth (0 = max(rate, 1))")

		journalDeadlineMS = flag.Int("journal-deadline-ms", 0, "journal-append wait deadline in milliseconds: a store stalled past it fails the request with a retryable 503 \"unavailable\" instead of hanging (0 = wait forever)")
		maxInFlight       = flag.Int("max-inflight", 0, "in-flight request cap per edge (HTTP /v1/* and wire queries); excess load is shed with a retryable \"unavailable\" (0 = unlimited)")
		wireIdleTimeout   = flag.Duration("wire-idle-timeout", 5*time.Minute, "wire connection idle read/write deadline (0 = none)")
		httpReadTimeout   = flag.Duration("http-read-timeout", 30*time.Second, "HTTP server full-request read timeout (0 = none)")
		httpWriteTimeout  = flag.Duration("http-write-timeout", 30*time.Second, "HTTP server response write timeout (0 = none)")
		httpIdleTimeout   = flag.Duration("http-idle-timeout", 2*time.Minute, "HTTP keep-alive connection idle timeout (0 = none)")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")

		metrics     = flag.Bool("metrics", true, "serve Prometheus text exposition on GET /metrics")
		slowQuery   = flag.Int("slow-query-ms", 0, "log a traced line for /query requests at or over this many milliseconds (0 = disabled)")
		logFormat   = flag.String("log-format", "text", "structured log output format: text or json")
		traceSample = flag.Int("trace-sample", trace.DefaultSampleEvery, "trace one /query request in N (1 = every request, 0 = tracing disabled); requests carrying traceparent or X-Request-Id are always traced")
		traceBuffer = flag.Int("trace-buffer", trace.DefaultCapacity, "completed traces retained for GET /v1/traces")
	)
	flag.Parse()
	if err := run(config{
		addr: *addr, wireAddr: *wireAddr, shards: *shards, ttl: *ttl, maxTTL: *maxTTL, sweep: *sweep,
		maxSessions: *maxSessions, maxBody: *maxBody, maxBatch: *maxBatch, drain: *drain,
		backend: *backend, walDir: *walDir, fsync: *fsync, fsyncInt: *fsyncInt, snapInt: *snapInt,
		commitWindow: *commitWindow, rate: *rate, burst: *burst, pprofAddr: *pprofAddr,
		metrics: *metrics, slowQueryMS: *slowQuery, logFormat: *logFormat,
		traceSample: *traceSample, traceBuffer: *traceBuffer,
		journalDeadline: time.Duration(*journalDeadlineMS) * time.Millisecond,
		maxInFlight:     *maxInFlight, wireIdleTimeout: *wireIdleTimeout,
		httpReadTimeout: *httpReadTimeout, httpWriteTimeout: *httpWriteTimeout,
		httpIdleTimeout: *httpIdleTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "svtserve:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags.
type config struct {
	addr, wireAddr                  string
	shards                          int
	ttl, maxTTL, sweep              time.Duration
	maxSessions                     int
	maxBody                         int64
	maxBatch                        int
	drain                           time.Duration
	backend, walDir, fsync          string
	fsyncInt, snapInt, commitWindow time.Duration
	rate, burst                     float64
	pprofAddr                       string
	metrics                         bool
	slowQueryMS                     int
	logFormat                       string
	traceSample, traceBuffer        int
	journalDeadline                 time.Duration
	maxInFlight                     int
	wireIdleTimeout                 time.Duration
	httpReadTimeout                 time.Duration
	httpWriteTimeout                time.Duration
	httpIdleTimeout                 time.Duration
}

// newLogger builds the process's structured logger per -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// buildVersion is the module version stamped by the toolchain, "devel"
// when built from a working tree.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// openStore builds the configured session store; nil means in-memory.
func openStore(cfg config) (store.SessionStore, error) {
	switch cfg.backend {
	case "mem":
		return nil, nil
	case "wal":
		if cfg.walDir == "" {
			return nil, errors.New("-store wal requires -wal-dir")
		}
		policy, err := store.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return nil, err
		}
		return store.NewWAL(store.WALConfig{Dir: cfg.walDir, Sync: policy, SyncInterval: cfg.fsyncInt, CommitWindow: cfg.commitWindow})
	default:
		return nil, fmt.Errorf("unknown -store backend %q (want mem or wal)", cfg.backend)
	}
}

func run(cfg config) error {
	logger, err := newLogger(cfg.logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	if cfg.pprofAddr != "" {
		// Diagnostics sidecar: pprof on its own listener so profiling a
		// production hot-path regression never mixes with (or is rate
		// limited like) analyst traffic. Failure to serve is logged, not
		// fatal — profiling is never worth refusing to serve.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("svtserve: pprof listening on %s", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, mux); err != nil {
				log.Printf("svtserve: pprof server failed: %v", err)
			}
		}()
	}
	st, err := openStore(cfg)
	if err != nil {
		return err
	}
	var reg *telemetry.Registry
	if cfg.metrics {
		reg = telemetry.NewRegistry()
		reg.RegisterBuildInfo("svt_build_info",
			"Constant 1, labeled with the svtserve build and Go runtime versions.",
			buildVersion())
	}
	var tracer *trace.Tracer
	if cfg.traceSample > 0 {
		tracer = trace.New(trace.Config{
			SampleEvery: cfg.traceSample,
			Capacity:    cfg.traceBuffer,
		})
	}
	mgr, err := server.Open(server.ManagerConfig{
		Shards:           cfg.shards,
		DefaultTTL:       cfg.ttl,
		MaxTTL:           cfg.maxTTL,
		SweepInterval:    cfg.sweep,
		MaxSessions:      cfg.maxSessions,
		Store:            st,
		SnapshotInterval: cfg.snapInt,
		JournalDeadline:  cfg.journalDeadline,
		Telemetry:        reg,
		Tracer:           tracer,
	})
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return err
	}
	if st != nil {
		log.Printf("svtserve: wal store at %s (fsync=%s), recovered %d sessions", cfg.walDir, cfg.fsync, mgr.Recovered())
	}

	api := server.NewAPI(mgr, server.APIConfig{
		MaxBodyBytes:       cfg.maxBody,
		MaxBatch:           cfg.maxBatch,
		MaxInFlight:        cfg.maxInFlight,
		Telemetry:          reg,
		SlowQueryThreshold: time.Duration(cfg.slowQueryMS) * time.Millisecond,
		Logger:             logger,
		Tracer:             tracer,
	})
	if tracer != nil {
		log.Printf("svtserve: tracing 1 in %d /query requests, last %d traces on GET /v1/traces", cfg.traceSample, cfg.traceBuffer)
	}
	var wireSrv *server.WireServer
	var wireLn net.Listener
	if cfg.wireAddr != "" {
		wireSrv = server.NewWireServer(mgr, server.WireConfig{
			MaxFrameBytes: int(cfg.maxBody),
			MaxBatch:      cfg.maxBatch,
			MaxInFlight:   cfg.maxInFlight,
			IdleTimeout:   cfg.wireIdleTimeout,
			Telemetry:     reg,
			Tracer:        tracer,
		})
		wireLn, err = net.Listen("tcp", cfg.wireAddr)
		if err != nil {
			mgr.Close()
			if st != nil {
				_ = st.Close()
			}
			return fmt.Errorf("wire listener: %w", err)
		}
	}
	var handler http.Handler = api
	if cfg.rate > 0 {
		rl, err := server.NewRateLimiter(server.RateLimitConfig{Rate: cfg.rate, Burst: cfg.burst})
		if err != nil {
			mgr.Close()
			if st != nil {
				_ = st.Close()
			}
			return err
		}
		api.SetRateLimiter(rl)
		handler = rl.Middleware(handler)
		if wireSrv != nil {
			// Both edges share the same limiter, so a tenant's budget is
			// one budget no matter which protocol it arrives over.
			wireSrv.SetRateLimiter(rl)
		}
		log.Printf("svtserve: per-tenant rate limit %g req/s", cfg.rate)
	}

	// One machine-parseable line with the effective configuration, so an
	// operator reading the log of a crashed or misbehaving instance knows
	// exactly what it was running with — resolved values, not flag text.
	logger.Info("svtserve configuration",
		slog.String("addr", cfg.addr),
		slog.String("wireAddr", cfg.wireAddr),
		slog.String("store", cfg.backend),
		slog.String("fsync", cfg.fsync),
		slog.Duration("fsyncInterval", cfg.fsyncInt),
		slog.Duration("commitWindow", cfg.commitWindow),
		slog.Duration("snapshotInterval", cfg.snapInt),
		slog.Int("shards", mgr.Shards()),
		slog.Duration("ttl", cfg.ttl),
		slog.Int("maxSessions", cfg.maxSessions),
		slog.Float64("rateLimit", cfg.rate),
		slog.Duration("journalDeadline", cfg.journalDeadline),
		slog.Int("maxInFlight", cfg.maxInFlight),
		slog.Duration("wireIdleTimeout", cfg.wireIdleTimeout),
		slog.Bool("metrics", cfg.metrics),
		slog.Int("slowQueryMs", cfg.slowQueryMS),
		slog.Int("traceSample", cfg.traceSample),
		slog.String("version", buildVersion()),
	)

	// Slowloris and stuck-peer protection: bound every phase of an HTTP
	// exchange. Request bodies are small (capped by -max-body) and no
	// endpoint streams, so whole-request/response timeouts are safe.
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.httpReadTimeout,
		WriteTimeout:      cfg.httpWriteTimeout,
		IdleTimeout:       cfg.httpIdleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mechs := make([]string, 0, 8)
	for _, mi := range mgr.Mechanisms() {
		mechs = append(mechs, mi.Name)
	}
	errc := make(chan error, 2)
	go func() {
		log.Printf("svtserve: %d shards, ttl=%s, store=%s, mechanisms=[%s], listening on %s",
			mgr.Shards(), cfg.ttl, cfg.backend, strings.Join(mechs, " "), cfg.addr)
		errc <- srv.ListenAndServe()
	}()
	if wireSrv != nil {
		go func() {
			log.Printf("svtserve: wire protocol listening on %s", cfg.wireAddr)
			if err := wireSrv.Serve(wireLn); !errors.Is(err, server.ErrWireServerClosed) {
				errc <- fmt.Errorf("wire serve: %w", err)
			}
		}()
	}

	select {
	case err := <-errc:
		mgr.Close()
		if st != nil {
			_ = st.Close()
		}
		return err
	case <-ctx.Done():
	}

	// Orderly teardown: drain in-flight HTTP (every response already
	// journaled by the time it is released), then stop the janitor and
	// snapshot loops so nothing appends anymore, take a final compacting
	// snapshot for a fast next boot, and only then flush and close the
	// store. An acknowledged event can no longer be lost past this line.
	// A failed final snapshot does not lose data — the journal remains
	// authoritative — but it IS a store malfunction the operator must see,
	// so it is reported and the process exits non-zero rather than
	// swallowing it into a clean-looking shutdown.
	log.Printf("svtserve: shutting down (draining up to %s)", cfg.drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if wireSrv != nil {
		// Drain the binary edge before the manager stops and the final
		// snapshot is cut: an in-flight wire request's journaled progress
		// must be in the state being snapshotted, and its response frame
		// must flush before the connection closes.
		if werr := wireSrv.Shutdown(shutCtx); werr != nil && shutErr == nil {
			shutErr = fmt.Errorf("wire: %w", werr)
		}
	}
	mgr.Close()
	snapErr := mgr.SnapshotNow()
	if snapErr != nil {
		log.Printf("svtserve: final snapshot failed (journal remains authoritative): %v", snapErr)
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
	}
	if shutErr != nil {
		return fmt.Errorf("shutdown: %w", shutErr)
	}
	if snapErr != nil {
		return fmt.Errorf("final snapshot: %w", snapErr)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
