package svt

import (
	"fmt"
	"math"
)

// ErrorGate is the §3.4 pattern as a first-class API: deciding whether the
// error of a derived (public) answer exceeds a threshold, the primitive at
// the heart of the iterative-construction frameworks (Roth-Roughgarden's
// median mechanism, Hardt-Rothblum's multiplicative weights).
//
// The original papers tested "if |q̃ᵢ − qᵢ(D) + νᵢ| ≥ T + ρ" — noise INSIDE
// the absolute value — which leaks the threshold noise: the left side is
// always non-negative, so any ⊤ reveals ρ ≥ −T and the free negative
// answers stop being free. The paper's fix is to treat rᵢ = |q̃ᵢ − qᵢ(D)|
// as the query and add the noise outside: "if |q̃ᵢ − qᵢ(D)| + νᵢ ≥ T + ρ".
// ErrorGate implements exactly that, as a thin wrapper over Sparse.
//
// Sensitivity: if q has sensitivity Δ and q̃ is public (computed from past
// released answers), then r = |q̃ − q(D)| also has sensitivity Δ.
type ErrorGate struct {
	sparse    *Sparse
	threshold float64
}

// NewErrorGate builds an error gate with the given error threshold. The
// remaining options are as for New; opts.Monotonic must be false because
// error queries r = |q̃ − q(D)| are not monotonic even when q is (the error
// can move either way when a record is added).
func NewErrorGate(threshold float64, opts Options) (*ErrorGate, error) {
	if !(threshold > 0) || math.IsInf(threshold, 0) {
		return nil, fmt.Errorf("svt: error threshold must be positive and finite, got %v", threshold)
	}
	if opts.Monotonic {
		return nil, fmt.Errorf("svt: error-gate queries are not monotonic; unset Monotonic")
	}
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	return &ErrorGate{sparse: s, threshold: threshold}, nil
}

// ExceedsThreshold reports (noisily) whether |estimate − truth| is at or
// above the gate's threshold. estimate must be derived from public
// information only; truth is the private value. Each true report consumes
// one of MaxPositives; false reports are free. It returns ErrHalted after
// the positive budget is spent.
func (g *ErrorGate) ExceedsThreshold(estimate, truth float64) (bool, error) {
	if math.IsNaN(estimate) || math.IsInf(estimate, 0) {
		return false, fmt.Errorf("svt: estimate must be finite, got %v", estimate)
	}
	if math.IsNaN(truth) || math.IsInf(truth, 0) {
		return false, fmt.Errorf("svt: truth must be finite, got %v", truth)
	}
	res, err := g.sparse.Next(math.Abs(estimate-truth), g.threshold)
	if err != nil {
		return false, err
	}
	return res.Above, nil
}

// Halted reports whether the gate has spent its positive budget.
func (g *ErrorGate) Halted() bool { return g.sparse.Halted() }

// Remaining returns how many more positive reports may be issued.
func (g *ErrorGate) Remaining() int { return g.sparse.Remaining() }

// Threshold returns the configured error threshold.
func (g *ErrorGate) Threshold() float64 { return g.threshold }
