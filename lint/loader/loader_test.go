package loader

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot locates the main module (the parent of lint/).
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Join(filepath.Dir(file), "..", "..")
}

// TestLoadRepoServerPackage type-checks the heaviest real package (server
// pulls in net/http, the store, mech, telemetry and trace) with test units.
func TestLoadRepoServerPackage(t *testing.T) {
	pkgs, err := Load(Config{Root: repoRoot(t), Tests: true}, "./server")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var sawTest bool
	for _, p := range pkgs {
		if p.RelPath != "server" {
			t.Errorf("RelPath = %q, want %q", p.RelPath, "server")
		}
		if p.Types == nil || p.TypesInfo == nil || len(p.TypesInfo.Types) == 0 {
			t.Errorf("%s: missing type information", p.PkgPath)
		}
		if p.IsTestUnit {
			sawTest = true
		}
	}
	if !sawTest {
		t.Error("expected at least one test unit for ./server")
	}
}

// TestLoadRepoAllPackages walks the whole module the way svtlint ./... does.
func TestLoadRepoAllPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	pkgs, err := Load(Config{Root: repoRoot(t), Tests: true}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	rels := make(map[string]bool)
	for _, p := range pkgs {
		rels[p.RelPath] = true
	}
	for _, want := range []string{"", "server", "store", "mech", "dp", "internal/rng"} {
		if !rels[want] {
			t.Errorf("missing package dir %q in ./... load (got %v)", want, rels)
		}
	}
}
