// Package loader type-checks the packages of one Go module from source using
// only the standard library.
//
// It exists because this environment builds offline: golang.org/x/tools
// (go/packages, go/analysis) cannot be fetched, so svtlint carries its own
// small loader. Imports are resolved two ways — module-local paths map onto
// directories under the module root, everything else must be a GOROOT
// standard-library package type-checked from $GOROOT/src. The module under
// analysis is required to be dependency-free, which the main repository is by
// policy; an unresolvable third-party import is a hard error.
//
// Dependencies are type-checked with IgnoreFuncBodies (only their exported
// shape matters); the requested target packages get full bodies plus a
// populated types.Info, and are additionally loaded as test units: the
// package including its in-package _test.go files, and the external
// package foo_test if present.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit.
type Package struct {
	// PkgPath is the import path ("github.com/dpgo/svt/server"); external
	// test units carry the "_test" suffix.
	PkgPath string
	// RelPath is the package directory relative to the module root
	// (forward slashes, "" for the root package).
	RelPath string
	// IsTestUnit reports whether the unit includes _test.go files.
	IsTestUnit bool

	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Config describes the module to load.
type Config struct {
	// Root is the module root directory (must contain the analyzed
	// packages; a go.mod is only required when Module is unset).
	Root string
	// Module is the module path. If empty it is read from Root/go.mod.
	Module string
	// Tests controls whether _test.go units are produced for targets.
	Tests bool
}

// Load type-checks the packages selected by patterns. A pattern is either
// "./..." (every package under Root, skipping testdata, hidden dirs and
// nested modules) or a directory path relative to Root such as "./server" or
// "server".
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	module := cfg.Module
	if module == "" {
		module, err = modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	ld := &loader{
		root:    root,
		module:  module,
		fset:    token.NewFileSet(),
		ctxt:    buildContext(),
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}

	dirs, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}

	var out []*Package
	for _, rel := range dirs {
		units, err := ld.loadTarget(rel, cfg.Tests)
		if err != nil {
			return nil, err
		}
		out = append(out, units...)
	}
	return out, nil
}

type loader struct {
	root    string
	module  string
	fset    *token.FileSet
	ctxt    *build.Context
	pkgs    map[string]*types.Package // import cache: path -> dep package (no tests, no bodies)
	loading map[string]bool           // cycle guard
}

// buildContext is build.Default narrowed for offline source type-checking:
// cgo off so that pure-Go fallback files are selected everywhere.
func buildContext() *build.Context {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &ctxt
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if after, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(after), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// expand turns patterns into a sorted list of module-relative package dirs.
func (ld *loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := ld.walk("", add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			base = strings.TrimPrefix(base, "./")
			if err := ld.walk(base, add); err != nil {
				return nil, err
			}
		default:
			add(strings.TrimPrefix(pat, "./"))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// walk visits every directory under rel that contains Go files, skipping
// testdata, hidden/underscore dirs and nested modules.
func (ld *loader) walk(rel string, add func(string)) error {
	dir := filepath.Join(ld.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	hasGo := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				continue
			}
			sub := path.Join(rel, name)
			// A nested go.mod marks a separate module: stay out.
			if _, err := os.Stat(filepath.Join(dir, name, "go.mod")); err == nil {
				continue
			}
			if err := ld.walk(sub, add); err != nil {
				return err
			}
			continue
		}
		if strings.HasSuffix(name, ".go") {
			hasGo = true
		}
	}
	if hasGo {
		add(rel)
	}
	return nil
}

// Import implements types.Importer for dependency resolution.
func (ld *loader) Import(ipath string) (*types.Package, error) {
	if ipath == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.pkgs[ipath]; ok {
		return pkg, nil
	}
	if ld.loading[ipath] {
		return nil, fmt.Errorf("import cycle through %q", ipath)
	}
	dir, err := ld.dirFor(ipath)
	if err != nil {
		return nil, err
	}
	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v", ipath, err)
	}
	files, err := ld.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	ld.loading[ipath] = true
	defer delete(ld.loading, ipath)

	conf := types.Config{
		Importer:         ld,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		// Dependencies only contribute their exported shape; tolerate
		// non-fatal issues rather than aborting the whole run.
		Error: func(error) {},
	}
	pkg, err := conf.Check(ipath, ld.fset, files, nil)
	if err != nil && pkg == nil {
		return nil, fmt.Errorf("type-checking %q: %v", ipath, err)
	}
	pkg.MarkComplete()
	ld.pkgs[ipath] = pkg
	return pkg, nil
}

// dirFor resolves an import path to a directory: module-local first, then
// GOROOT. Anything else is an error by the zero-dependency policy.
func (ld *loader) dirFor(ipath string) (string, error) {
	if ipath == ld.module {
		return ld.root, nil
	}
	if after, ok := strings.CutPrefix(ipath, ld.module+"/"); ok {
		return filepath.Join(ld.root, filepath.FromSlash(after)), nil
	}
	dir := filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(ipath))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q: not module-local and not in GOROOT (the analyzed module must be dependency-free)", ipath)
}

func (ld *loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// loadTarget type-checks the package at rel with full bodies and types.Info,
// producing up to three units: the plain package, the package with its
// in-package tests, and the external test package.
func (ld *loader) loadTarget(rel string, tests bool) ([]*Package, error) {
	dir := filepath.Join(ld.root, filepath.FromSlash(rel))
	bp, err := ld.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, fmt.Errorf("%s: %v", rel, err)
	}
	ipath := ld.module
	if rel != "" {
		ipath = ld.module + "/" + rel
	}

	var out []*Package
	check := func(suffix string, names []string, isTest bool) (*Package, error) {
		files, err := ld.parseFiles(dir, names)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		var firstErr error
		conf := types.Config{
			Importer:    ld,
			FakeImportC: true,
			Error: func(e error) {
				if firstErr == nil {
					firstErr = e
				}
			},
		}
		pkg, err := conf.Check(ipath+suffix, ld.fset, files, info)
		if firstErr != nil {
			return nil, fmt.Errorf("type-checking %s%s: %v", ipath, suffix, firstErr)
		}
		if err != nil {
			return nil, fmt.Errorf("type-checking %s%s: %v", ipath, suffix, err)
		}
		return &Package{
			PkgPath:    ipath + suffix,
			RelPath:    rel,
			IsTestUnit: isTest,
			Fset:       ld.fset,
			Files:      files,
			Types:      pkg,
			TypesInfo:  info,
		}, nil
	}

	if !tests {
		if len(bp.GoFiles) > 0 {
			unit, err := check("", bp.GoFiles, false)
			if err != nil {
				return nil, err
			}
			out = append(out, unit)
		}
		return out, nil
	}

	// Unit 1: package + in-package tests (or just the package when it has
	// no test files — one unit either way, never both, so each finding is
	// reported once).
	if n := len(bp.GoFiles) + len(bp.TestGoFiles); n > 0 {
		names := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
		unit, err := check("", names, len(bp.TestGoFiles) > 0)
		if err != nil {
			return nil, err
		}
		out = append(out, unit)
	}

	// Unit 2: external test package. It imports the same plain (no test
	// files) view of the package under test as every other dependency, so
	// type identity stays consistent across the import graph. This means
	// the export_test.go pattern is unsupported — the repository does not
	// use it, and if it ever does the loader fails loudly here.
	if len(bp.XTestGoFiles) > 0 {
		xunit, err := check("_test", bp.XTestGoFiles, true)
		if err != nil {
			return nil, err
		}
		out = append(out, xunit)
	}
	return out, nil
}
