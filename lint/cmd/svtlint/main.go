// Command svtlint is the multichecker for this repository's machine-enforced
// invariants. It type-checks the target module from source (offline,
// stdlib-only — see lint/loader) and runs every analyzer registered in
// lint/analyzers over each package, including _test.go units.
//
// Usage:
//
//	svtlint [-root dir] [-tests=false] [-list] [patterns...]
//
// Patterns default to ./... relative to -root. CI runs it from the lint
// module against the main module as:
//
//	go run ./cmd/svtlint -root .. ./...
//
// Findings print as file:line:col: message (svtlint/<analyzer>) and any
// finding makes the exit status 1. Suppressions use
// //nolint:svtlint/<name> // reason — the reason is mandatory (see
// lint/nolint).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/dpgo/svt/lint/analysis"
	"github.com/dpgo/svt/lint/analyzers"
	"github.com/dpgo/svt/lint/loader"
	"github.com/dpgo/svt/lint/nolint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("svtlint", flag.ExitOnError)
	root := fs.String("root", ".", "module root to analyze")
	tests := fs.Bool("tests", true, "also analyze _test.go units")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Parse(args)

	if *list {
		for _, a := range analyzers.All() {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, summary)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(loader.Config{Root: *root, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "svtlint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "svtlint: no packages matched")
		return 2
	}

	var findings []nolint.Finding
	var allFiles []*ast.File
	fset := pkgs[0].Fset
	for _, pkg := range pkgs {
		allFiles = append(allFiles, pkg.Files...)
		for _, a := range analyzers.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Module:    moduleOf(pkg),
				RelPath:   pkg.RelPath,
				Report: func(d analysis.Diagnostic) {
					findings = append(findings, nolint.Finding{
						Position: pkg.Fset.Position(d.Pos),
						Analyzer: a.Name,
						Message:  d.Message,
					})
				},
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "svtlint: %s on %s: %v\n", a.Name, pkg.PkgPath, err)
				return 2
			}
		}
	}

	findings = nolint.Apply(fset, allFiles, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	absRoot, _ := filepath.Abs(*root)
	for _, f := range findings {
		name := f.Position.Filename
		if rel, err := filepath.Rel(absRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s (svtlint/%s)\n",
			name, f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "svtlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleOf recovers the module path from a unit's import path and relative
// directory (the loader guarantees PkgPath = module[/rel][_test]).
func moduleOf(pkg *loader.Package) string {
	p := strings.TrimSuffix(pkg.PkgPath, "_test")
	if pkg.RelPath == "" {
		return p
	}
	return strings.TrimSuffix(p, "/"+pkg.RelPath)
}
