// Package lint is the repo's static-analysis suite: six analyzers that
// machine-check invariants this codebase's correctness arguments lean on but
// the compiler cannot see. Run it from this directory:
//
//	go run ./cmd/svtlint -root .. ./...
//
// CI runs exactly that (plus this module's own tests) as a required step,
// separate from staticcheck: staticcheck knows Go, svtlint knows THIS repo.
//
// # Why a vendored analysis kernel
//
// The suite is deliberately a separate Go module with zero dependencies, so
// the main module's go.mod stays empty and the linter can never leak into
// the served binary. golang.org/x/tools is not vendored either: the
// analysis/ package is a minimal API-compatible mirror of go/analysis, the
// loader/ package type-checks packages straight from source (module-local
// imports resolve under the module root, everything else must live in
// GOROOT), and analysistest/ re-implements the `// want "regex"` golden
// fixture protocol. Analyzers are written against the same Pass shape as
// upstream, so porting one to real x/tools later is mechanical.
//
// # The analyzers
//
//   - mechswitch — server/ must not dispatch on concrete mechanism types or
//     mechanism-name string sets; everything goes through the mech.Instance
//     seam and the registry. Guards the PR-4 registry invariant that adding
//     a mechanism never edits server code.
//   - noretain — store backends' Append/AppendAll implementations must not
//     retain Event.Data beyond the call without copying; callers recycle
//     those buffers through pools. Guards the pooled-encoder contract.
//   - seededrand — privacy-critical packages draw noise only through
//     internal/rng.Source, never math/rand, math/rand/v2 or crypto/rand
//     directly. Guards seeded-replay crash recovery: a stray generator
//     breaks bit-identical resume.
//   - canonheader — literal header keys passed to http.Header Get/Set/Del/
//     Add/Values must be in canonical MIME form; non-canonical keys pay a
//     per-call canonicalization allocation on the hot path.
//   - floateq — no ==/!= on floats in dp/, mech/ and audit/ non-test code;
//     budget arithmetic must use tolerances or sentinel helpers.
//   - hotclock — functions (or files) marked //svt:hotpath must not call
//     time.Now/time.Since (use telemetry.Now) or fmt.Sprint* (use pooled
//     encoding / strconv.Append*).
//
// # Suppressing a finding
//
// A justified exception takes a nolint directive on the offending line (or
// the line above) WITH a reason after a second "//":
//
//	return x != 0 //nolint:svtlint/floateq // 0 is the unset-param sentinel, never computed
//
// A reason-less directive suppresses nothing and is itself reported. Bare
// //nolint:svtlint (no analyzer name) suppresses every svtlint finding on
// the line and demands a reason the same way.
//
// # Adding an analyzer
//
// Write analyzers/<name>.go exporting an *analysis.Analyzer whose Doc says
// what it forbids and why (≥80 bytes; a meta-test enforces this), add it to
// All() in analyzers/registry.go, and give it golden fixtures under
// testdata/src/<name>/violating and testdata/src/<name>/clean. Fixtures
// load under the module path "svtfix" with the case directory as module
// root, so package paths like "server" or "internal/core" match the real
// repo and the analyzer's scoping logic is exercised verbatim.
package lint
