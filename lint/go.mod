module github.com/dpgo/svt/lint

go 1.24
