// Package analysistest runs one analyzer over a golden fixture tree and
// checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the subset svtlint
// uses (offline, stdlib-only — see lint/analysis for why).
//
// A fixture tree is a directory acting as a tiny module with path "svtfix":
// packages under it get RelPaths exactly like the real repository's, so
// analyzer scoping logic (server/, dp/, internal/core/ …) is exercised
// verbatim. Expectations are trailing comments of the form
//
//	code() // want "regexp" `second regexp`
//
// where each quoted pattern must match the message of a distinct diagnostic
// reported on that line, and every diagnostic must be matched by a pattern.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/dpgo/svt/lint/analysis"
	"github.com/dpgo/svt/lint/loader"
)

// FixtureModule is the module path fixture trees are loaded under.
const FixtureModule = "svtfix"

// Run loads the fixture tree rooted at dir (with test units) and applies a,
// failing t on any mismatch between reported diagnostics and // want
// expectations. It returns the diagnostics for further assertions.
func Run(t *testing.T, dir string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := loader.Load(loader.Config{Root: dir, Module: FixtureModule, Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s contains no packages", dir)
	}

	var diags []analysis.Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Module:    FixtureModule,
			RelPath:   pkg.RelPath,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}

	wants := collectWants(t, pkgs)
	matchDiagnostics(t, a, fset, diags, wants)
	return diags
}

// want is one expectation: a pattern attached to file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// collectWants parses // want comments from every fixture file. Files shared
// by two units (package + its test unit never overlap, but defensive dedup
// by filename keeps expectations single-counted).
func collectWants(t *testing.T, pkgs []*loader.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	seenFile := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fname := pkg.Fset.Position(f.Pos()).Filename
			if seenFile[fname] {
				continue
			}
			seenFile[fname] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range splitQuoted(t, pos, text) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
						}
						w := &want{file: pos.Filename, line: pos.Line, re: re, raw: raw}
						wants[key(w.file, w.line)] = append(wants[key(w.file, w.line)], w)
					}
				}
			}
		}
	}
	return wants
}

// splitQuoted tokenizes a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation near %q", pos, s)
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s: %v", pos, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[len(prefix):])
	}
	return out
}

func matchDiagnostics(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, diags []analysis.Diagnostic, wants map[string][]*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants[key(pos.Filename, pos.Line)] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, a.Name, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no %s diagnostic matched want %q", w.file, w.line, a.Name, w.raw)
			}
		}
	}
}
