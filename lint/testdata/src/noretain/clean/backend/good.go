package backend

import "svtfix/store"

// Good copies before any retention: every sanctioned idiom in one place.
type Good struct {
	buf   []byte
	sizes []int
	keys  map[string]int
}

// Append copies bytes out of the pooled slice before keeping anything.
func (g *Good) Append(ev store.Event) error {
	g.buf = append(g.buf, ev.Data...) // byte-copy append: no alias survives
	dst := make([]byte, len(ev.Data))
	n := copy(dst, ev.Data)
	g.sizes = append(g.sizes, n)
	g.keys[string(ev.Data)] = int(ev.Data[0]) // string() copies; indexing reads a byte
	local := map[string][]byte{}
	local["d"] = ev.Data // local container dies with the call
	delete(local, "d")
	return nil
}

// AppendBatch reuses Append element-wise; passing events to ordinary calls
// is the callee's contract to uphold.
func (g *Good) AppendBatch(evs []store.Event) error {
	for _, ev := range evs {
		if err := g.Append(ev); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot encodes into a scratch buffer it owns.
func (g *Good) Snapshot(evs []store.Event) error {
	var scratch []byte
	for _, ev := range evs {
		scratch = append(scratch, ev.Data...)
	}
	g.buf = scratch
	return nil
}
