// Package store mirrors the real store.Event shape.
package store

// Event is an opaque journal record; Data is pooled by the caller.
type Event struct {
	Kind byte
	ID   string
	Data []byte
}
