package backend

import "svtfix/store"

var lastData []byte

// Bad retains Event.Data in every way the contract forbids.
type Bad struct {
	last  []byte
	queue [][]byte
	evs   []store.Event
	ch    chan []byte
}

// Append aliases the pooled buffer five different ways.
func (b *Bad) Append(ev store.Event) error {
	b.last = ev.Data   // want `stores Event data in field last`
	lastData = ev.Data // want `stores Event data in package-level variable lastData`
	d := ev.Data
	b.queue = append(b.queue, d) // want `stores Event data in field queue`
	b.ch <- ev.Data              // want `sends Event data to a channel`
	go func() {                  // want `starts a goroutine capturing Event data`
		_ = ev.Data
	}()
	return nil
}

// AppendBatch retains the whole slice and each element.
func (b *Bad) AppendBatch(evs []store.Event) error {
	b.evs = append(b.evs, evs...) // want `stores Event data in field evs`
	for _, ev := range evs {
		b.last = ev.Data[1:] // want `stores Event data in field last`
	}
	return nil
}

// Snapshot hands the events to a goroutine by argument.
func (b *Bad) Snapshot(evs []store.Event) error {
	go stash(evs) // want `passes Event data to a goroutine`
	return nil
}

func stash(evs []store.Event) { _ = evs }
