package server

import (
	svt "svtfix"
	"svtfix/mech"
	"svtfix/variants"
)

// Dispatch reintroduces every pre-registry dispatch pattern PR 4 deleted.
func Dispatch(i mech.Instance, kind string) int {
	if s, ok := i.(*svt.Sparse); ok { // want `type assertion to concrete mechanism type`
		_ = s
		return 1
	}
	switch i.(type) {
	case *variants.Gap: // want `type assertion to concrete mechanism type`
		return 2
	}
	switch kind { // want `switch dispatches on 2 mechanism-name literals`
	case "sparse":
		return 3
	case "pmw":
		return 4
	}
	return 0
}
