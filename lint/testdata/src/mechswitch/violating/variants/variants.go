package variants

// Gap is a concrete mechanism implementation.
type Gap struct{ Rho float64 }

// Answer implements the fixture mech.Instance.
func (g *Gap) Answer(q float64) bool { return q > g.Rho }
