// Package svtfix stands in for the root svt package: it defines a concrete
// mechanism.
package svtfix

// Sparse is a concrete mechanism implementation.
type Sparse struct{ Eps float64 }

// Answer implements the fixture mech.Instance.
func (s *Sparse) Answer(q float64) bool { return q > s.Eps }
