package mech

// Instance is the registry's one handle on a mechanism.
type Instance interface {
	Answer(q float64) bool
}

// Seeder is a capability interface.
type Seeder interface {
	Seed(s int64)
}
