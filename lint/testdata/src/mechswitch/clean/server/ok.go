package server

import "svtfix/mech"

// Route uses only sanctioned patterns: capability-interface assertions, a
// single mechanism-name comparison (not a dispatch table) and switches on
// unrelated strings.
func Route(i mech.Instance, kind, fsync string) int {
	if s, ok := i.(mech.Seeder); ok { // capability interface: fine
		s.Seed(1)
	}
	if kind == "sparse" { // single-name special case, not a dispatch table
		return 1
	}
	switch fsync { // unrelated string switch
	case "always":
		return 2
	case "interval":
		return 3
	}
	type local struct{ n int }
	var v any = local{n: 4}
	if l, ok := v.(local); ok { // concrete assert to a server-local type: fine
		return l.n
	}
	return 0
}
