// Package other is outside server/: concrete mechanism asserts are allowed
// (conformance tests and adapters need them).
package other

import (
	"svtfix/mech"
	"svtfix/variants"
)

// Concrete asserts outside server/ are not flagged.
func Concrete(i mech.Instance) float64 {
	if g, ok := i.(*variants.Gap); ok {
		return g.Rho
	}
	switch kind := "sparse"; kind {
	case "sparse":
		return 1
	case "pmw":
		return 2
	}
	return 0
}
