package web

import "net/http"

// Headers exercises every checked http.Header method with a non-canonical
// literal key.
func Headers(h http.Header, r *http.Request, w http.ResponseWriter) string {
	h.Set("x-request-id", "1")      // want `non-canonical header key "x-request-id".*"X-Request-Id"`
	_ = r.Header.Get("traceparent") // want `non-canonical header key "traceparent".*"Traceparent"`
	w.Header().Del("content-type")  // want `non-canonical header key "content-type".*"Content-Type"`
	_ = h.Values("aCCept")          // want `non-canonical header key "aCCept".*"Accept"`
	h.Add("retry-after", "1")       // want `non-canonical header key "retry-after".*"Retry-After"`
	return h.Get("Accept")
}
