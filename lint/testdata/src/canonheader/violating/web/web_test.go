package web

import (
	"net/http/httptest"
	"testing"
)

// TestHeaders proves the check reaches _test.go files: test literals get
// copy-pasted into production code.
func TestHeaders(t *testing.T) {
	rec := httptest.NewRecorder()
	rec.Header().Set("cONTENT-type", "application/json") // want `non-canonical header key "cONTENT-type".*"Content-Type"`
	if rec.Header().Get("Content-Type") == "" {
		t.Fatal("unset")
	}
}
