package web

import (
	"net/http"
	"net/url"
)

// Headers uses canonical literals, dynamic keys and non-Header Get methods:
// none of these are flagged.
func Headers(h http.Header, key string) string {
	h.Set("X-Request-Id", "1")
	h.Del("Content-Type")
	_ = h.Get(key) // dynamic key: the caller owns canonicalization

	// url.Values has the same method set but no canonicalization cost.
	v := url.Values{}
	v.Set("traceparent", "00-abc-def-01")
	return h.Get("Traceparent") + v.Get("traceparent")
}
