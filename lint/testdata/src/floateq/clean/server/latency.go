package server

// SameLatency is outside dp/, mech/ and audit/: not budget arithmetic, not
// flagged.
func SameLatency(a, b float64) bool { return a == b }
