package dp

import "math"

const tol = 1e-9

// Exhausted restates the condition as an inequality.
func Exhausted(eps, spent float64) bool { return spent >= eps-tol }

// Close compares with an explicit tolerance.
func Close(a, b float64) bool { return math.Abs(a-b) <= tol }

// Ints may compare exactly.
func SameCount(a, b int) bool { return a == b }
