package dp

import "testing"

// TestBitIdentical needs exact comparison: replay tests pin bit-identical
// streams, so _test.go files are exempt.
func TestBitIdentical(t *testing.T) {
	a, b := 0.1+0.2, 0.1+0.2
	if a != b {
		t.Fatal("streams diverged")
	}
}
