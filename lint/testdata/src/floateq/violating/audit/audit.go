package audit

// Matches compares empirical and analytic epsilon exactly.
func Matches(empirical, analytic float64) bool {
	return empirical == analytic // want `floating-point == comparison`
}
