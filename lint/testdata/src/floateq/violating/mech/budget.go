package mech

// Halted compares a float32 budget exactly; both float widths are covered.
func Halted(left float32) bool {
	return left == 0 // want `floating-point == comparison`
}
