package dp

// Exhausted compares accumulated epsilon exactly: diverges after a handful
// of compositions.
func Exhausted(eps, spent float64) bool {
	if spent == eps { // want `floating-point == comparison`
		return true
	}
	return remaining(eps, spent) != 0 // want `floating-point != comparison`
}

func remaining(eps, spent float64) float64 { return eps - spent }

// Mode switches on a float: an implicit exact-equality chain.
func Mode(x float64) int {
	switch x { // want `switch on a floating-point value`
	case 0:
		return 0
	}
	return 1
}
