package mech

import "crypto/rand" // want `privacy-critical package "mech" imports "crypto/rand"`

// SeedBytes bypasses internal/rng: the draw is not replayable from the
// journal.
func SeedBytes(n int) []byte {
	b := make([]byte, n)
	rand.Read(b)
	return b
}
