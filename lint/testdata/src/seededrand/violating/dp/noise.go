package dp

import "math/rand" // want `privacy-critical package "dp" imports "math/rand"`

// Noise draws unseeded, unjournaled noise: exactly the bug class seededrand
// exists to catch.
func Noise() float64 { return rand.Float64() }
