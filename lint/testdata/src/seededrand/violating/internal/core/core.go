package core

import "math/rand/v2" // want `privacy-critical package "internal/core" imports "math/rand/v2"`

// Draw uses the global v2 generator, which has no journaled stream position.
func Draw() uint64 { return rand.Uint64() }
