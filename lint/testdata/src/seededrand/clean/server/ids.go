// Package server is not privacy-critical: ID minting may use math/rand/v2.
package server

import "math/rand/v2"

// MintID mints a correlation handle, not noise.
func MintID() uint64 { return rand.Uint64() }
