package dp

import "svtfix/internal/rng"

// Noise draws through the journaled source — the sanctioned path.
func Noise(src *rng.Source) float64 {
	return float64(src.Uint64()%1000) / 1000
}
