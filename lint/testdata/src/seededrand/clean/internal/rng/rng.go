// Package rng mirrors the real internal/rng: the one sanctioned place that
// touches crypto/rand (for seed material).
package rng

import "crypto/rand"

// Source stands in for the journaled PRNG.
type Source struct{ seed uint64 }

// New seeds a Source from the OS entropy pool.
func New() *Source {
	var b [8]byte
	rand.Read(b[:])
	var s uint64
	for _, x := range b {
		s = s<<8 | uint64(x)
	}
	return &Source{seed: s}
}

// Uint64 is a placeholder draw.
func (s *Source) Uint64() uint64 {
	s.seed = s.seed*6364136223846793005 + 1442695040888963407
	return s.seed
}
