package enc

import (
	"fmt"
	"time"
)

// Encode is on the per-request fast path.
//
//svt:hotpath
func Encode(buf []byte, v int64) []byte {
	now := time.Now()         // want `time.Now inside //svt:hotpath function Encode`
	_ = time.Since(now)       // want `time.Since inside //svt:hotpath function Encode`
	s := fmt.Sprintf("%d", v) // want `fmt.Sprintf inside //svt:hotpath function Encode`
	return append(buf, s...)
}
