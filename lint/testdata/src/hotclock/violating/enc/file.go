//svt:hotpath — the whole file is request fast path
package enc

import "time"

// Stamp is covered by the file-level directive.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now inside //svt:hotpath function Stamp`
}
