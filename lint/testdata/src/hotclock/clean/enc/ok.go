package enc

import (
	"strconv"
	"time"
)

// coarseNow stands in for telemetry.Now: the sanctioned clock helper.
func coarseNow() int64 { return int64(time.Since(epoch)) }

var epoch = time.Now()

// Encode is marked and uses only sanctioned forms.
//
//svt:hotpath
func Encode(buf []byte, v int64) []byte {
	start := coarseNow()
	buf = strconv.AppendInt(buf, v, 10)
	buf = strconv.AppendInt(buf, coarseNow()-start, 10)
	return buf
}

// Slow is unmarked: wall-clock reads and fmt are fine off the fast path.
func Slow() string { return time.Now().String() }
