// Package analysis is a deliberately minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that svtlint's analyzers need.
//
// The main module is zero-dependency by policy and this build environment is
// offline, so vendoring x/tools is not an option. The subset kept here is the
// part that matters for single-package syntax+types analyzers: an Analyzer
// with a name, a doc string and a Run function, and a Pass carrying one
// type-checked package. Facts, Requires chains and SuggestedFixes are out of
// scope; an analyzer that grows to need them is the signal to revisit the
// dependency decision.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:svtlint/<name> suppressions. It must be a valid identifier.
	Name string

	// Doc is the mandatory help text: first line is a one-sentence summary,
	// the rest explains the invariant and the sanctioned alternatives.
	Doc string

	// Run applies the check to one package unit and reports diagnostics via
	// pass.Report/Reportf. The returned value is ignored by the driver (it
	// exists to keep Run signatures source-compatible with x/tools).
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package unit through an analyzer. A unit is
// either a package together with its in-package _test.go files, or an
// external test package (package foo_test).
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the module path of the tree under analysis
	// (e.g. "github.com/dpgo/svt", or "svtfix" in analysistest fixtures).
	Module string

	// RelPath is the package directory relative to the module root, with
	// forward slashes; "" for the root package. Analyzers scope themselves
	// with this rather than the import path so that fixture trees exercise
	// the same path logic as the real repository.
	RelPath string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. End is optional.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos
	Message string
}
