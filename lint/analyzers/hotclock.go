package analyzers

import (
	"go/ast"
	"strings"

	"github.com/dpgo/svt/lint/analysis"
)

// hotpathDirective marks a function (doc comment) or a whole file (comment
// above the package clause) as allocation/syscall-budgeted hot path.
const hotpathDirective = "//svt:hotpath"

// hotclockBanned maps package path -> banned function names -> sanctioned
// replacement hint.
var hotclockBanned = map[string]map[string]string{
	"time": {
		"Now":   "telemetry.Now (one cheap monotonic read, sampled)",
		"Since": "a telemetry.Now delta",
	},
	"fmt": {
		"Sprintf":  "pooled encoding (server/persist.go idiom) or strconv.Append*",
		"Sprint":   "pooled encoding or strconv.Append*",
		"Sprintln": "pooled encoding or strconv.Append*",
	},
}

// Hotclock bans wall-clock reads and fmt formatting in //svt:hotpath scope.
var Hotclock = &analysis.Analyzer{
	Name: "hotclock",
	Doc: `no time.Now/time.Since or fmt.Sprint* inside //svt:hotpath scope

Functions on the per-request fast path hold a measured budget (the ≤10
allocs/req pin, the ~4% telemetry overhead ceiling). Mark them with a
//svt:hotpath line in the function doc comment — or mark a whole file with
the directive above its package clause — and this check bans the two
regressions that have actually bitten: raw clock reads (time.Now,
time.Since; use telemetry.Now, which is a single monotonic read and is what
the sampled instrumentation expects) and fmt.Sprintf/Sprint/Sprintln
(allocate per call; use the pooled-encoder idiom from server/persist.go or
strconv.Append*). Error paths that need formatting belong in a separate
unmarked function.`,
	Run: runHotclock,
}

func runHotclock(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		fileHot := fileMarkedHot(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fileHot || commentHasDirective(fd.Doc) {
				checkHotFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// fileMarkedHot reports whether a //svt:hotpath line appears above the
// package clause.
func fileMarkedHot(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		if commentHasDirective(cg) {
			return true
		}
	}
	return commentHasDirective(f.Doc)
}

func commentHasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if hint, banned := hotclockBanned[fn.Pkg().Path()][fn.Name()]; banned {
			pass.Reportf(call.Pos(),
				"%s.%s inside //svt:hotpath function %s; use %s",
				fn.Pkg().Name(), fn.Name(), fd.Name.Name, hint)
		}
		return true
	})
}
