package analyzers_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/dpgo/svt/lint/analysistest"
	"github.com/dpgo/svt/lint/analyzers"
)

func fixture(elems ...string) string {
	return filepath.Join(append([]string{"..", "testdata", "src"}, elems...)...)
}

// TestGolden runs every registered analyzer against its violating and clean
// fixture trees: the violating tree must produce diagnostics (each matched
// by a // want comment), the clean tree must produce none.
func TestGolden(t *testing.T) {
	for _, a := range analyzers.All() {
		t.Run(a.Name+"/violating", func(t *testing.T) {
			diags := analysistest.Run(t, fixture(a.Name, "violating"), a)
			if len(diags) == 0 {
				t.Fatalf("%s produced no diagnostics on its violating fixture", a.Name)
			}
		})
		t.Run(a.Name+"/clean", func(t *testing.T) {
			if diags := analysistest.Run(t, fixture(a.Name, "clean"), a); len(diags) != 0 {
				t.Fatalf("%s produced %d diagnostics on its clean fixture", a.Name, len(diags))
			}
		})
	}
}

// TestRegistryMeta asserts the registration contract: unique names, a real
// doc string (summary line + rationale) and golden fixtures for every
// analyzer, so an undocumented or untested analyzer cannot ship.
func TestRegistryMeta(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v missing Name, Doc or Run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Doc) < 80 {
			t.Errorf("%s: doc string is a stub (%d bytes); document the invariant and the sanctioned alternative", a.Name, len(a.Doc))
		}
		for _, kind := range []string{"violating", "clean"} {
			dir := fixture(a.Name, kind)
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				t.Errorf("%s: missing %s fixture tree at %s", a.Name, kind, dir)
			}
		}
	}
}
