package analyzers

import (
	"go/ast"
	"go/types"
	"net/textproto"
	"strconv"

	"github.com/dpgo/svt/lint/analysis"
)

// headerMethods are the http.Header methods that canonicalize their key
// argument on every call when it is not already in canonical form.
var headerMethods = map[string]bool{
	"Get": true, "Set": true, "Del": true, "Add": true, "Values": true,
}

// Canonheader requires string literals passed to http.Header methods to be
// pre-canonicalized.
var Canonheader = &analysis.Analyzer{
	Name: "canonheader",
	Doc: `string literals passed to http.Header.Get/Set/Del/Add/Values must be canonical

net/http canonicalizes non-canonical keys on every call, which costs an
allocation per request on hot paths — a non-canonical Get("traceparent")
cost the PR 7 traced hot path one alloc/req and was only found by hand
against the ≤10 allocs/req pin. Write the MIME-canonical form the way
textproto.CanonicalMIMEHeaderKey would ("Traceparent", "X-Request-Id",
"Content-Type") so the fast already-canonical path is taken. This applies in
tests too: test literals get copy-pasted into production code.`,
	Run: runCanonheader,
}

func runCanonheader(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !headerMethods[sel.Sel.Name] {
				return true
			}
			if !isHTTPHeader(pass.TypesInfo, sel) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true
			}
			key, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if canon := textproto.CanonicalMIMEHeaderKey(key); canon != key {
				pass.Reportf(lit.Pos(),
					"non-canonical header key %q forces a canonicalization alloc in http.Header.%s; write %q",
					key, sel.Sel.Name, canon)
			}
			return true
		})
	}
	return nil, nil
}

// isHTTPHeader reports whether sel selects a method on net/http.Header.
func isHTTPHeader(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	named := namedOrAlias(s.Recv())
	return named != nil &&
		named.Obj().Name() == "Header" &&
		named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http"
}
