package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// relOf maps an import path to its module-relative directory. ok is false
// for paths outside the analyzed module (stdlib).
func relOf(module, pkgPath string) (rel string, ok bool) {
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	if pkgPath == module {
		return "", true
	}
	if after, found := strings.CutPrefix(pkgPath, module+"/"); found {
		return after, true
	}
	return "", false
}

// underDir reports whether rel is dir or below it. underDir(rel, "") is true
// only for the module root itself.
func underDir(rel, dir string) bool {
	if dir == "" {
		return rel == ""
	}
	return rel == dir || strings.HasPrefix(rel, dir+"/")
}

// staticCallee resolves the *types.Func a call statically dispatches to, or
// nil for calls through function values, builtins and type conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isFunc reports whether fn is the function or method pkgPath.name.
func isFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// namedOrAlias unwraps pointers and aliases to the defining *types.Named, or
// nil for unnamed types.
func namedOrAlias(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}
