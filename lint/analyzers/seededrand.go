package analyzers

import (
	"strconv"

	"github.com/dpgo/svt/lint/analysis"
)

// privacyCriticalDirs are the module-relative directories whose code
// performs, composes or audits differentially-private releases. "" is the
// root svt package itself.
var privacyCriticalDirs = []string{"", "mech", "internal/core", "dp", "variants", "pmw"}

// forbiddenRandImports lists the randomness sources privacy-critical code
// must not reach directly.
var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// Seededrand enforces the replayable-noise invariant: every random draw in a
// privacy-critical package goes through internal/rng.Source.
var Seededrand = &analysis.Analyzer{
	Name: "seededrand",
	Doc: `privacy-critical packages must draw randomness only via internal/rng.Source

The packages implementing mechanisms and budget accounting (the root svt
package, mech/, internal/core/, dp/, variants/, pmw/) may not import
math/rand, math/rand/v2 or crypto/rand directly. Noise drawn outside
internal/rng.Source has no journaled seed or stream position, which breaks
bit-identical crash replay (PR 3) and makes privacy audits unable to
reproduce a run. internal/rng itself is the sanctioned wrapper and is exempt;
non-privacy packages (server/, trace/, telemetry/) may mint IDs however they
like.`,
	Run: runSeededrand,
}

func runSeededrand(pass *analysis.Pass) (any, error) {
	if !privacyCritical(pass.RelPath) || underDir(pass.RelPath, "internal/rng") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if forbiddenRandImports[path] {
				pass.Reportf(imp.Pos(),
					"privacy-critical package %q imports %q; draw randomness through internal/rng.Source so seeds and stream positions are journaled",
					displayPkg(pass), path)
			}
		}
	}
	return nil, nil
}

func privacyCritical(rel string) bool {
	for _, d := range privacyCriticalDirs {
		if underDir(rel, d) {
			return true
		}
	}
	return false
}

func displayPkg(pass *analysis.Pass) string {
	if pass.RelPath == "" {
		return pass.Module
	}
	return pass.RelPath
}
