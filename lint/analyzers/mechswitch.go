package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"github.com/dpgo/svt/lint/analysis"
)

// mechanismDirs are the module-relative directories that define concrete
// mechanism implementations. The root package holds svt.Sparse.
var mechanismDirs = []string{"", "mech", "internal/core", "variants", "pmw"}

// mechanismNames are the registered mechanism kind strings. A switch in
// server/ dispatching on two or more of them is per-mechanism dispatch that
// belongs behind mech.Registry.
var mechanismNames = map[string]bool{
	"sparse":   true,
	"proposed": true,
	"dpbook":   true,
	"pmw":      true,
	"esvt":     true,
}

// Mechswitch enforces the PR 4 registry invariant: server/ holds exactly one
// mech.Instance per session and contains zero mechanism-kind dispatch.
var Mechswitch = &analysis.Analyzer{
	Name: "mechswitch",
	Doc: `server/ must not dispatch on mechanism kinds or concrete mechanism types

The registry refactor (PR 4) left server/session.go holding exactly one
mech.Instance; adding a mechanism must require zero server edits. This check
flags, anywhere under server/: (a) type assertions and type-switch cases
whose target is a concrete (non-interface) type defined in a mechanism
package (the root svt package, mech/, internal/core/, variants/, pmw/) —
asserting to capability interfaces like mech.Seeder remains fine; and
(b) switch statements dispatching on two or more registered mechanism-name
string literals ("sparse", "proposed", "dpbook", "pmw", "esvt"). Route new
per-mechanism behavior through a mech.Registry capability flag or a new
mech.Instance method instead.`,
	Run: runMechswitch,
}

func runMechswitch(pass *analysis.Pass) (any, error) {
	if !underDir(pass.RelPath, "server") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if n.Type != nil { // nil inside a type switch; cases handled below
					checkAssertedType(pass, n.Type)
				}
			case *ast.TypeSwitchStmt:
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, texpr := range cc.List {
						checkAssertedType(pass, texpr)
					}
				}
			case *ast.SwitchStmt:
				checkStringSwitch(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkAssertedType flags T in x.(T) / case T: when T is a concrete type
// defined in a mechanism package.
func checkAssertedType(pass *analysis.Pass, texpr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[texpr]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return // capability-interface assertions are the sanctioned pattern
	}
	named := namedOrAlias(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	rel, local := relOf(pass.Module, named.Obj().Pkg().Path())
	if !local {
		return
	}
	for _, d := range mechanismDirs {
		if underDir(rel, d) {
			pass.Reportf(texpr.Pos(),
				"type assertion to concrete mechanism type %s in server/ bypasses the mech.Instance registry; add a capability interface or instance method instead",
				types.TypeString(tv.Type, nil))
			return
		}
	}
}

// checkStringSwitch flags switches whose cases compare against two or more
// registered mechanism-name literals.
func checkStringSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	seen := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			lit, ok := ast.Unparen(e).(*ast.BasicLit)
			if !ok {
				continue
			}
			if s, err := strconv.Unquote(lit.Value); err == nil && mechanismNames[s] {
				seen[s] = true
			}
		}
	}
	if len(seen) >= 2 {
		pass.Reportf(sw.Pos(),
			"switch dispatches on %d mechanism-name literals in server/; mechanism behavior belongs behind mech.Registry capabilities, not kind switches",
			len(seen))
	}
}
