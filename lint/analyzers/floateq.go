package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/dpgo/svt/lint/analysis"
)

// floateqDirs are the packages doing budget/epsilon arithmetic where exact
// float comparison is a correctness bug, not a style choice.
var floateqDirs = []string{"dp", "mech", "audit"}

// Floateq forbids ==/!= on floating-point values in budget-arithmetic
// packages.
var Floateq = &analysis.Analyzer{
	Name: "floateq",
	Doc: `no ==/!= on float64 values in dp/, mech/ and audit/

Epsilon and budget values are accumulated floating-point sums; exact
equality on them silently diverges after a handful of compositions (the
Lyu-Su-Li variants in the source paper are exactly this genre of
looks-correct arithmetic bug). Compare with an explicit tolerance
(math.Abs(a-b) <= tol, or the package's existing tolerance helper) or
restate the condition as an inequality. Switch statements on float values
are implicit equality chains and are flagged too. Non-test files only:
tests pinning bit-identical replay legitimately need exact comparison.`,
	Run: runFloateq,
}

func runFloateq(pass *analysis.Pass) (any, error) {
	inScope := false
	for _, d := range floateqDirs {
		if underDir(pass.RelPath, d) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) &&
					(isFloat(pass.TypesInfo, n.X) || isFloat(pass.TypesInfo, n.Y)) {
					pass.Reportf(n.OpPos,
						"floating-point %s comparison on budget arithmetic; use an explicit tolerance or an inequality", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(pass.TypesInfo, n.Tag) {
					pass.Reportf(n.Switch,
						"switch on a floating-point value is an implicit exact-equality chain; use explicit tolerance comparisons")
				}
			}
			return true
		})
	}
	return nil, nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
