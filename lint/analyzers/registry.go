// Package analyzers holds svtlint's repo-specific checks. Each analyzer
// machine-enforces one invariant that previously existed only as prose in
// ROADMAP.md or a code comment; see lint/doc.go for the catalog and the
// policy for adding a new one.
package analyzers

import "github.com/dpgo/svt/lint/analysis"

// All returns every registered analyzer, in stable order. Adding an analyzer
// here is what registers it with the svtlint multichecker, the analysistest
// meta-test (which requires a doc string and golden fixtures) and the
// //nolint:svtlint/<name> namespace.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Canonheader,
		Floateq,
		Hotclock,
		Mechswitch,
		Noretain,
		Seededrand,
	}
}
