package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/dpgo/svt/lint/analysis"
)

// appendLikeMethods are the SessionStore entry points whose Event arguments
// the caller's pooled encoders reuse as soon as the call returns.
var appendLikeMethods = map[string]bool{
	"Append": true, "AppendAll": true, "AppendBatch": true, "Snapshot": true,
}

// Noretain enforces the store contract from server/persist.go: Append-family
// implementations must not let Event.Data (or a whole Event) outlive the
// call without copying.
var Noretain = &analysis.Analyzer{
	Name: "noretain",
	Doc: `SessionStore Append/AppendAll/AppendBatch/Snapshot must not retain Event.Data

The server journals through pooled encoders: the []byte behind Event.Data is
returned to a sync.Pool the moment the store call returns, so any backend
that stores the slice (or a whole Event) in a field, package variable, map,
channel or spawned goroutine is aliasing memory that is about to be
rewritten — the corruption is silent and only visible as garbled WAL
records. Copy first: copy(dst, ev.Data), append(buf, ev.Data...) or
bytes.Clone. The check is a conservative taint walk over method bodies whose
parameters are store.Event values; holding tainted data only until the
method returns (e.g. a group-commit queue drained before Append unblocks)
is safe but beyond static scope — suppress those with
//nolint:svtlint/noretain and a reason stating the draining invariant.`,
	Run: runNoretain,
}

func runNoretain(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !appendLikeMethods[fd.Name.Name] {
				continue
			}
			seeds := eventParams(pass.TypesInfo, fd)
			if len(seeds) == 0 {
				continue
			}
			checkRetention(pass, fd, seeds)
		}
	}
	return nil, nil
}

// eventParams collects parameters whose type is store.Event, []store.Event
// or *store.Event.
func eventParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	seeds := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isEventish(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				seeds[obj] = true
			}
		}
	}
	return seeds
}

// isEventish matches store.Event and slices/pointers thereof, for any
// package whose directory is named "store" (the real module and fixture
// trees alike).
func isEventish(t types.Type) bool {
	t = types.Unalias(t)
	switch t := t.(type) {
	case *types.Slice:
		return isEventish(t.Elem())
	case *types.Pointer:
		return isEventish(t.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return named.Obj().Name() == "Event" && (p == "store" || strings.HasSuffix(p, "/store"))
}

// checkRetention runs a conservative taint analysis: seeds are the Event
// parameters; locals assigned from tainted expressions become tainted;
// tainted values reaching a location that outlives the call are reported.
func checkRetention(pass *analysis.Pass, fd *ast.FuncDecl, seeds map[types.Object]bool) {
	w := &retainWalker{pass: pass, fn: fd, tainted: seeds}
	// Propagate taint through local assignments to a fixed point first so
	// that source order does not matter, then report sinks.
	for range 4 {
		w.grew = false
		ast.Inspect(fd.Body, w.propagate)
		if !w.grew {
			break
		}
	}
	ast.Inspect(fd.Body, w.sink)
}

type retainWalker struct {
	pass    *analysis.Pass
	fn      *ast.FuncDecl
	tainted map[types.Object]bool
	grew    bool
}

func (w *retainWalker) taint(obj types.Object) {
	if obj != nil && !w.tainted[obj] {
		w.tainted[obj] = true
		w.grew = true
	}
}

// propagate grows the tainted set through := / = to locals and range
// clauses, without reporting.
func (w *retainWalker) propagate(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			rhs := pairedRHS(n, i)
			if rhs == nil || !w.taintedExpr(rhs) {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := w.localObj(id); obj != nil {
					w.taint(obj)
				}
			}
		}
	case *ast.RangeStmt:
		if w.taintedExpr(n.X) {
			if id, ok := n.Value.(*ast.Ident); ok {
				w.taint(w.localObj(id))
			}
		}
	}
	return true
}

// sink reports tainted values escaping the call.
func (w *retainWalker) sink(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			rhs := pairedRHS(n, i)
			if rhs == nil || !w.taintedExpr(rhs) {
				continue
			}
			w.checkLHS(lhs, rhs)
		}
	case *ast.SendStmt:
		if w.taintedExpr(n.Value) {
			w.report(n.Value.Pos(), "sends Event data to a channel")
		}
	case *ast.GoStmt:
		for _, arg := range n.Call.Args {
			if w.taintedExpr(arg) {
				w.report(arg.Pos(), "passes Event data to a goroutine")
			}
		}
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok && w.capturesTaint(lit) {
			w.report(n.Pos(), "starts a goroutine capturing Event data")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if w.taintedExpr(r) {
				w.report(r.Pos(), "returns Event data")
			}
		}
	}
	return true
}

// checkLHS decides whether an assignment target outlives the call.
func (w *retainWalker) checkLHS(lhs, rhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if w.localObj(l) == nil {
			w.report(rhs.Pos(), "stores Event data in package-level variable %s", l.Name)
		}
	case *ast.SelectorExpr:
		// Writing into any field: the struct outlives the call (receiver
		// fields certainly do; a field of a local struct is still a copy
		// the local owns, but distinguishing that soundly needs escape
		// analysis — be conservative).
		w.report(rhs.Pos(), "stores Event data in field %s", l.Sel.Name)
	case *ast.IndexExpr:
		// m[k] = tainted / s[i] = tainted: fine when the container itself
		// is a function-local, escaping otherwise.
		if base, ok := ast.Unparen(l.X).(*ast.Ident); ok && w.localObj(base) != nil {
			w.taint(w.localObj(base))
			return
		}
		w.report(rhs.Pos(), "stores Event data in a non-local map or slice")
	case *ast.StarExpr:
		w.report(rhs.Pos(), "stores Event data through a pointer")
	}
}

// localObj returns the object behind id when it is a parameter or a variable
// declared inside this function body; nil for package-level and foreign
// objects.
func (w *retainWalker) localObj(id *ast.Ident) types.Object {
	obj := w.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() &&
		v.Pos() >= w.fn.Pos() && v.Pos() <= w.fn.End() {
		return obj
	}
	return nil
}

// taintedExpr reports whether e can carry a live reference to Event.Data.
func (w *retainWalker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[e]
		}
		return w.tainted[obj]
	case *ast.SelectorExpr:
		return w.taintedExpr(e.X) // ev.Data, ev.ID, ...
	case *ast.SliceExpr:
		return w.taintedExpr(e.X) // reslicing keeps the alias
	case *ast.IndexExpr:
		// evs[i] stays tainted; ev.Data[i] is a byte copy.
		return w.taintedExpr(e.X) && !isBasic(w.pass.TypesInfo, e)
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	case *ast.StarExpr:
		return w.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if w.taintedExpr(elt) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		return w.capturesTaint(e)
	case *ast.CallExpr:
		return w.taintedCall(e)
	}
	return false
}

// taintedCall: append propagates taint unless it byte-copies via ellipsis;
// the sanctioned copy helpers neutralize taint; other calls are assumed to
// obey the contract themselves (a retaining helper inside the same package
// is analyzed at its own Append-family entry point, if it is one).
func (w *retainWalker) taintedCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return w.taintedAppend(call)
		}
	}
	if fn := staticCallee(w.pass.TypesInfo, call); fn != nil {
		full := ""
		if fn.Pkg() != nil {
			full = fn.Pkg().Path() + "." + fn.Name()
		}
		switch full {
		case "bytes.Clone", "slices.Clone", "strings.Clone":
			return false
		}
	}
	// string(ev.Data) conversions and copy() return values carry no alias;
	// arbitrary calls are trusted (documented limitation).
	return false
}

func (w *retainWalker) taintedAppend(call *ast.CallExpr) bool {
	{
		if call.Ellipsis != token.NoPos && len(call.Args) == 2 {
			// append(dst, src...): copies elements out of src. If the
			// elements are plain bytes the result holds no alias; if they
			// are Events the Data pointers ride along.
			return w.taintedExpr(call.Args[0]) || (w.taintedExpr(call.Args[1]) && !byteSliceElem(w.pass.TypesInfo, call.Args[1]))
		}
		for _, a := range call.Args {
			if w.taintedExpr(a) {
				return true
			}
		}
		return false
	}
}

// capturesTaint reports whether a func literal references any tainted
// variable.
func (w *retainWalker) capturesTaint(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && w.tainted[w.pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func (w *retainWalker) report(pos token.Pos, format string, args ...any) {
	w.pass.Reportf(pos, "%s.%s %s; Event.Data is pooled by the caller and rewritten after the call returns — copy it first (see store.SessionStore contract)",
		recvName(w.fn), w.fn.Name.Name, fmt.Sprintf(format, args...))
}

// pairedRHS matches the i-th LHS of an assignment with its RHS expression,
// or nil when the RHS is a multi-value call/assert (calls are untracked).
func pairedRHS(n *ast.AssignStmt, i int) ast.Expr {
	if len(n.Lhs) == len(n.Rhs) {
		return n.Rhs[i]
	}
	if len(n.Rhs) == 1 && len(n.Lhs) == 1 {
		return n.Rhs[0]
	}
	return nil
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "(recv)"
}

func isBasic(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, basic := types.Unalias(tv.Type).Underlying().(*types.Basic)
	return basic
}

func byteSliceElem(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	s, ok := types.Unalias(tv.Type).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}
