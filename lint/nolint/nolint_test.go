package nolint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const src = `package p

var a = 1.0 //nolint:svtlint/floateq // sentinel compare, never composed

//nolint:svtlint // whole-line escape with reason
var b = 2.0

var c = 3.0 //nolint:svtlint/floateq

var d = 4.0 //nolint:errcheck // other linter's namespace, not ours

var e = 5.0 //nolint:svtlint/hotclock // wrong analyzer for this finding
`

func load(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func finding(fset *token.FileSet, line int, analyzer string) Finding {
	return Finding{
		Position: token.Position{Filename: "p.go", Line: line, Column: 5},
		Analyzer: analyzer,
		Message:  "exact float comparison",
	}
}

func TestApply(t *testing.T) {
	fset, files := load(t)
	in := []Finding{
		finding(fset, 3, "floateq"),  // suppressed: same-line scoped directive
		finding(fset, 6, "floateq"),  // suppressed: bare svtlint on the line above
		finding(fset, 8, "floateq"),  // kept: directive lacks a reason
		finding(fset, 10, "floateq"), // kept: foreign-linter directive
		finding(fset, 12, "floateq"), // kept: directive names a different analyzer
	}
	out := Apply(fset, files, in)

	var kept, nolintFindings []Finding
	for _, f := range out {
		if f.Analyzer == "nolint" {
			nolintFindings = append(nolintFindings, f)
		} else {
			kept = append(kept, f)
		}
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d findings, want 3: %+v", len(kept), kept)
	}
	for i, wantLine := range []int{8, 10, 12} {
		if kept[i].Position.Line != wantLine {
			t.Errorf("kept[%d] at line %d, want %d", i, kept[i].Position.Line, wantLine)
		}
	}
	if len(nolintFindings) != 1 {
		t.Fatalf("got %d nolint findings, want 1 (the reason-less directive): %+v", len(nolintFindings), nolintFindings)
	}
	if nf := nolintFindings[0]; nf.Position.Line != 8 || !strings.Contains(nf.Message, "needs a reason") {
		t.Errorf("unexpected nolint finding: %+v", nf)
	}
}

func TestApplyDedupsSharedFiles(t *testing.T) {
	fset, files := load(t)
	// The same file appears in two analysis units (package + test unit);
	// the reason-less directive must be reported once, not twice.
	out := Apply(fset, append(files, files[0]), nil)
	if len(out) != 1 {
		t.Fatalf("got %d findings from duplicated file, want 1", len(out))
	}
}
