// Package nolint implements svtlint's suppression directives.
//
// A finding is suppressed by a comment on the same line or the line directly
// above it:
//
//	eps := spent //nolint:svtlint/floateq // exact-zero sentinel, never composed
//	//nolint:svtlint // generated file, audited by hand
//
// The scope list names analyzers as svtlint/<name>; bare "svtlint" suppresses
// every svtlint analyzer on that line. A reason after a second "//" is
// mandatory: a directive without one is itself reported (and suppresses
// nothing), so every escape hatch in the tree documents why it is safe.
package nolint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Finding is one rendered diagnostic.
type Finding struct {
	Position token.Position
	Analyzer string // analyzer name, e.g. "floateq"
	Message  string
}

// directive is one parsed //nolint comment.
type directive struct {
	pos    token.Position
	all    bool            // bare "svtlint": every analyzer
	names  map[string]bool // svtlint/<name> entries
	reason string
	other  bool // scopes only for other linters (staticcheck etc.): ignore
}

// Apply filters findings through the //nolint directives in files and
// appends one "nolint" finding per svtlint-scoped directive that lacks a
// reason. Files must cover every file findings point into; fset must be the
// one that produced them.
func Apply(fset *token.FileSet, files []*ast.File, findings []Finding) []Finding {
	byLine := map[string][]*directive{}
	var malformed []*directive
	seen := map[string]bool{} // dedup files shared across analysis units
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		if seen[fname] {
			continue
		}
		seen[fname] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(fset.Position(c.Pos()), c.Text)
				if d == nil || d.other {
					continue
				}
				if d.reason == "" {
					malformed = append(malformed, d)
					continue // an undocumented escape suppresses nothing
				}
				k := lineKey(d.pos.Filename, d.pos.Line)
				byLine[k] = append(byLine[k], d)
			}
		}
	}

	var out []Finding
	for _, f := range findings {
		if suppressed(byLine, f) {
			continue
		}
		out = append(out, f)
	}
	for _, d := range malformed {
		out = append(out, Finding{
			Position: d.pos,
			Analyzer: "nolint",
			Message:  "nolint directive needs a reason: //nolint:svtlint/<name> // <why this is safe>",
		})
	}
	return out
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

func suppressed(byLine map[string][]*directive, f Finding) bool {
	for _, line := range []int{f.Position.Line, f.Position.Line - 1} {
		for _, d := range byLine[lineKey(f.Position.Filename, line)] {
			if d.all || d.names[f.Analyzer] {
				return true
			}
		}
	}
	return false
}

// parseDirective parses one comment; nil when it is not a nolint comment.
func parseDirective(pos token.Position, text string) *directive {
	body, ok := strings.CutPrefix(strings.TrimSpace(text), "//nolint:")
	if !ok {
		return nil
	}
	scopes, reason, _ := strings.Cut(body, "//")
	d := &directive{
		pos:    pos,
		names:  map[string]bool{},
		reason: strings.TrimSpace(reason),
		other:  true,
	}
	for _, scope := range strings.Split(scopes, ",") {
		scope = strings.TrimSpace(scope)
		switch {
		case scope == "svtlint":
			d.all = true
			d.other = false
		case strings.HasPrefix(scope, "svtlint/"):
			d.names[strings.TrimPrefix(scope, "svtlint/")] = true
			d.other = false
		}
	}
	return d
}
