package svt

import (
	"errors"
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
)

// ErrHalted is returned by Sparse.Next once the mechanism has released its
// MaxPositives-th positive outcome and aborted.
var ErrHalted = errors.New("svt: mechanism halted after releasing MaxPositives positive outcomes")

// Result is one released answer of the mechanism.
type Result struct {
	// Above reports a positive outcome (⊤): the noisy query answer reached
	// the noisy threshold.
	Above bool
	// Numeric reports that Value carries a released number (only when the
	// mechanism was configured with AnswerFraction > 0 and Above is true).
	Numeric bool
	// Value is the ε₃-budgeted Laplace release of the query answer when
	// Numeric is true, and 0 otherwise.
	Value float64
}

// String renders ⊤/⊥ or the numeric value, matching the paper's notation.
func (r Result) String() string {
	switch {
	case r.Numeric:
		return fmt.Sprintf("%g", r.Value)
	case r.Above:
		return "⊤"
	default:
		return "⊥"
	}
}

// Sparse is a streaming above-threshold mechanism: the paper's corrected
// standard SVT (Algorithm 7). The total interaction — any number of
// queries, up to MaxPositives positive outcomes — satisfies ε-DP for the
// configured ε (Theorems 4 and 5).
//
// A Sparse value is not safe for concurrent use.
type Sparse struct {
	alg              *core.Alg7
	eps1, eps2, eps3 float64
	opts             Options
	answered         int
}

// New validates opts and returns a ready mechanism. The threshold noise is
// drawn at construction time.
func New(opts Options) (*Sparse, error) {
	eps1, eps2, eps3, err := opts.validate()
	if err != nil {
		return nil, err
	}
	src := rng.NewSeeded(opts.Seed)
	alg := core.NewAlg7(src, core.Alg7Config{
		Eps1: eps1, Eps2: eps2, Eps3: eps3,
		Delta: opts.Sensitivity, C: opts.MaxPositives,
		Monotonic: opts.Monotonic,
	})
	return &Sparse{alg: alg, eps1: eps1, eps2: eps2, eps3: eps3, opts: opts}, nil
}

// Next answers one threshold query: is query (true, unperturbed answer
// computed by the caller on the private data) above threshold? It returns
// ErrHalted once the positive-outcome budget is spent, and an error for
// non-finite inputs.
func (s *Sparse) Next(query, threshold float64) (Result, error) {
	if math.IsNaN(query) || math.IsInf(query, 0) {
		return Result{}, fmt.Errorf("svt: query answer must be finite, got %v", query)
	}
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return Result{}, fmt.Errorf("svt: threshold must be finite, got %v", threshold)
	}
	ans, ok := s.alg.Next(query, threshold)
	if !ok {
		return Result{}, ErrHalted
	}
	s.answered++
	return Result{Above: ans.Above, Numeric: ans.Numeric, Value: ans.Value}, nil
}

// Run feeds a batch of queries with per-query thresholds (thresholds may
// also have length 1, applying one threshold to every query). It stops
// early — without error — when the mechanism halts, so the returned slice
// may be shorter than queries.
func (s *Sparse) Run(queries, thresholds []float64) ([]Result, error) {
	if len(thresholds) != 1 && len(thresholds) != len(queries) {
		return nil, fmt.Errorf("svt: got %d thresholds for %d queries; want 1 or %d",
			len(thresholds), len(queries), len(queries))
	}
	out := make([]Result, 0, len(queries))
	for i, q := range queries {
		th := thresholds[0]
		if len(thresholds) > 1 {
			th = thresholds[i]
		}
		res, err := s.Next(q, th)
		if errors.Is(err, ErrHalted) {
			break
		}
		if err != nil {
			return out, fmt.Errorf("svt: query %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Halted reports whether the mechanism has aborted.
func (s *Sparse) Halted() bool { return s.alg.Halted() }

// Remaining returns how many more positive outcomes may be released.
func (s *Sparse) Remaining() int { return s.alg.Remaining() }

// Answered returns how many queries have been answered so far.
func (s *Sparse) Answered() int { return s.answered }

// Budgets returns the realized (ε₁, ε₂, ε₃) split; the three always sum to
// the configured Epsilon.
func (s *Sparse) Budgets() (eps1, eps2, eps3 float64) {
	return s.eps1, s.eps2, s.eps3
}

// Restore fast-forwards a freshly constructed mechanism's accounting to a
// state journaled before a crash: answered queries answered so far and
// positives positive outcomes already released. After Restore the mechanism
// can release at most MaxPositives−positives further positives, and is
// halted when positives == MaxPositives — spent budget is never refreshed
// by a restart. The noise stream is not restored: a recovered mechanism
// draws fresh threshold and query noise, so Restore preserves the privacy
// accounting, not the exact realized randomness.
func (s *Sparse) Restore(answered, positives int) error {
	if s.answered != 0 || s.alg.Remaining() != s.opts.MaxPositives {
		return errors.New("svt: Restore requires a freshly constructed mechanism")
	}
	if positives < 0 || positives > s.opts.MaxPositives {
		return fmt.Errorf("svt: restored positives %d out of [0, %d]", positives, s.opts.MaxPositives)
	}
	if answered < positives {
		return fmt.Errorf("svt: restored answered %d below positives %d", answered, positives)
	}
	s.answered = answered
	s.alg.Restore(positives)
	return nil
}

// Draws returns the noise stream's position: how many raw 64-bit draws the
// mechanism's source has consumed, including the ones spent drawing the
// threshold noise at construction. A crash-recovery layer journals it so a
// seeded mechanism can be resumed with FastForward.
func (s *Sparse) Draws() uint64 { return s.alg.Draws() }

// FastForward advances the noise stream to the absolute position draws
// (as previously reported by Draws), discarding the skipped values. For a
// seeded mechanism rebuilt from its original seed this makes the
// continuation bit-identical to the uninterrupted run while never
// re-emitting a pre-crash draw — replaying noise from position 0 would hand
// the analyst deterministic repeats of pre-crash comparisons, enough to
// binary-search the realized noisy threshold. It returns an error if the
// stream is already past draws.
func (s *Sparse) FastForward(draws uint64) error {
	cur := s.alg.Draws()
	if draws < cur {
		return fmt.Errorf("svt: cannot fast-forward to draw %d, stream already at %d", draws, cur)
	}
	s.alg.Skip(draws - cur)
	return nil
}
