package telemetry

import (
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is the exposition content type Handler serves
// when the scraper's Accept header asks for OpenMetrics.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Expose renders every registered family appended to buf in Prometheus
// text exposition format 0.0.4: a # HELP and # TYPE line per family,
// then one sample line per label set (histograms expand into cumulative
// _bucket lines plus _sum and _count). Families appear in registration
// order; label sets within a stored family in first-use order; collector
// output sorted by label string, so successive scrapes of the same state
// are byte-identical.
func (r *Registry) Expose(buf []byte) []byte { return r.expose(buf, false) }

// ExposeOpenMetrics renders the registry in OpenMetrics 1.0 text format.
// Differences from Expose: counter family HELP/TYPE lines drop the
// conventional _total name suffix (sample lines keep the full name),
// histogram bucket lines carry their bucket's exemplar when one has been
// recorded (see Histogram.ObserveNExemplar), and the document ends with
// the mandatory # EOF terminator.
func (r *Registry) ExposeOpenMetrics(buf []byte) []byte {
	buf = r.expose(buf, true)
	return append(buf, "# EOF\n"...)
}

func (r *Registry) expose(buf []byte, om bool) []byte {
	r.mu.Lock()
	families := r.families
	r.mu.Unlock()
	for _, f := range families {
		metaName := f.name
		if om && f.typ == "counter" {
			metaName = strings.TrimSuffix(metaName, "_total")
		}
		buf = append(buf, "# HELP "...)
		buf = append(buf, metaName...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, metaName...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		if f.collect != nil {
			for _, s := range sortedEmits(f.collect) {
				buf = appendSample(buf, f.name, s.labels, s.v)
			}
			continue
		}
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		metrics := make([]metric, len(order))
		for i, labels := range order {
			metrics[i] = f.metrics[labels]
		}
		f.mu.Unlock()
		for i, labels := range order {
			if h, ok := metrics[i].(*Histogram); ok && om {
				buf = h.appendSamplesOM(buf, f.name, labels)
				continue
			}
			buf = metrics[i].appendSamples(buf, f.name, labels)
		}
	}
	return buf
}

// appendEscapedHelp escapes \ and newline in HELP text.
func appendEscapedHelp(buf []byte, help string) []byte {
	for i := 0; i < len(help); i++ {
		switch help[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, help[i])
		}
	}
	return buf
}

// appendSample appends one `name{labels} value` line.
func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendValue(buf, v)
	return append(buf, '\n')
}

// appendValue renders a sample value; integers render without an
// exponent so counter output stays human-readable.
func appendValue(buf []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

func (c *Counter) appendSamples(buf []byte, name, labels string) []byte {
	return appendSample(buf, name, labels, float64(c.Value()))
}

func (g *Gauge) appendSamples(buf []byte, name, labels string) []byte {
	return appendSample(buf, name, labels, float64(g.Value()))
}

func (h *Histogram) appendSamples(buf []byte, name, labels string) []byte {
	return h.appendHistogram(buf, name, labels, false)
}

// appendSamplesOM is appendSamples in OpenMetrics form: bucket lines
// carry their recorded exemplar as ` # {trace_id="..."} value timestamp`.
func (h *Histogram) appendSamplesOM(buf []byte, name, labels string) []byte {
	return h.appendHistogram(buf, name, labels, true)
}

func (h *Histogram) appendHistogram(buf []byte, name, labels string, om bool) []byte {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		buf = append(buf, name...)
		buf = append(buf, "_bucket{"...)
		if labels != "" {
			buf = append(buf, labels...)
			buf = append(buf, ',')
		}
		buf = append(buf, `le="`...)
		buf = append(buf, le...)
		buf = append(buf, `"} `...)
		buf = strconv.AppendUint(buf, cum, 10)
		if om {
			if ex := h.exemplars[i].Load(); ex != nil {
				buf = append(buf, ` # {trace_id="`...)
				buf = append(buf, escapeLabel(ex.traceID)...)
				buf = append(buf, `"} `...)
				buf = appendValue(buf, ex.value)
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, ex.unix, 'f', 3, 64)
			}
		}
		buf = append(buf, '\n')
	}
	buf = appendSample(buf, name+"_sum", labels, h.Sum())
	buf = appendSample(buf, name+"_count", labels, float64(cum))
	return buf
}

// RegisterBuildInfo registers the conventional constant-1 build-info
// gauge carrying the service version and Go runtime version as labels.
func (r *Registry) RegisterBuildInfo(name, help, version string) {
	labels := Labels(Label("version", version), Label("goversion", runtime.Version()))
	r.NewCollector(name, help, "gauge", func(emit func(string, float64)) {
		emit(labels, 1)
	})
}

// Handler returns the /metrics endpoint: the registry rendered in text
// exposition format. Scrapes are read-only and safe concurrently with
// the record path. An Accept header asking for application/openmetrics-text
// gets the OpenMetrics rendering (with exemplars); everything else gets
// the 0.0.4 text format unchanged.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var body []byte
		ct := ContentType
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			body = r.ExposeOpenMetrics(make([]byte, 0, 16<<10))
			ct = OpenMetricsContentType
		} else {
			body = r.Expose(make([]byte, 0, 16<<10))
		}
		w.Header().Set("Content-Type", ct)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		if req.Method == http.MethodHead {
			return
		}
		w.Write(body)
	})
}
