// Package promtext is a hand-rolled validating parser for the Prometheus
// text exposition format (version 0.0.4), written so the repository can
// golden-test its own /metrics output — and CI can smoke-test a live
// endpoint — without adding a dependency on a Prometheus client library.
// It enforces the subset of the spec the telemetry package emits: HELP
// then TYPE then samples per family, valid metric and label names,
// parseable values, and cumulative non-decreasing histogram buckets
// ending in le="+Inf".
package promtext

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix for histogram series.
	Name string
	// Labels holds the decoded label pairs.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary or untyped
	Samples []Sample
}

// Parse validates text as Prometheus exposition format and returns the
// families in document order. Any spec violation the parser understands
// is an error carrying the 1-based line number.
func Parse(text string) ([]Family, error) {
	var (
		families []Family
		cur      *Family
		seen     = map[string]bool{}
	)
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line", ln)
			}
			if seen[name] {
				return nil, fmt.Errorf("line %d: duplicate family %s", ln, name)
			}
			seen[name] = true
			families = append(families, Family{Name: name, Help: unescapeHelp(help), Type: "untyped"})
			cur = &families[len(families)-1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line", ln)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", ln, typ)
			}
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", ln, name)
			}
			if len(cur.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE %s after samples", ln, name)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // plain comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln, err)
		}
		if cur == nil || !belongsTo(s.Name, cur) {
			return nil, fmt.Errorf("line %d: sample %s outside its family block", ln, s.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	for _, f := range families {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// belongsTo reports whether a sample name is part of family f (exact
// match, or the histogram/summary series suffixes).
func belongsTo(sample string, f *Family) bool {
	if sample == f.Name {
		return true
	}
	if f.Type == "histogram" || f.Type == "summary" {
		rest, ok := strings.CutPrefix(sample, f.Name)
		if !ok {
			return false
		}
		switch rest {
		case "_bucket", "_sum", "_count":
			return f.Type == "histogram" || rest != "_bucket"
		}
	}
	return false
}

// parseSample parses `name{labels} value` (labels optional).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels decodes `k="v",k2="v2"` into dst.
func parseLabels(body string, dst map[string]string) error {
	i := 0
	for i < len(body) {
		start := i
		for i < len(body) && isNameChar(body[i], i-start) {
			i++
		}
		key := body[start:i]
		if key == "" || !strings.HasPrefix(body[i:], `="`) {
			return fmt.Errorf("malformed label at %q", body[start:])
		}
		i += 2
		var val strings.Builder
		for {
			if i >= len(body) {
				return fmt.Errorf("unterminated label value for %s", key)
			}
			c := body[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(body) {
					return fmt.Errorf("dangling escape in label %s", key)
				}
				switch body[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("invalid escape \\%c in label %s", body[i], key)
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := dst[key]; dup {
			return fmt.Errorf("duplicate label %s", key)
		}
		dst[key] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return fmt.Errorf("expected , between labels, got %q", body[i:])
			}
			i++
		}
	}
	return nil
}

// checkHistogram validates each label-set's bucket series: cumulative,
// non-decreasing, le strictly increasing, +Inf present and equal to the
// series _count.
func checkHistogram(f Family) error {
	type series struct {
		les    []float64
		counts []float64
		hasInf bool
		count  float64
		gotCnt bool
	}
	bySet := map[string]*series{}
	key := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for _, s := range f.Samples {
		k := key(s.Labels)
		sr := bySet[k]
		if sr == nil {
			sr = &series{}
			bySet[k] = sr
		}
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			le := 0.0
			if leStr == "+Inf" {
				le = float64(1<<63 - 1) // any value larger than all bounds
				sr.hasInf = true
			} else {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("%s: bad le %q", f.Name, leStr)
				}
			}
			if n := len(sr.les); n > 0 && le <= sr.les[n-1] {
				return fmt.Errorf("%s{%s}: le not increasing", f.Name, k)
			}
			if n := len(sr.counts); n > 0 && s.Value < sr.counts[n-1] {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative", f.Name, k)
			}
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.Value)
		case f.Name + "_count":
			sr.count = s.Value
			sr.gotCnt = true
		}
	}
	for k, sr := range bySet {
		if !sr.hasInf {
			return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, k)
		}
		if !sr.gotCnt {
			return fmt.Errorf("%s{%s}: missing _count series", f.Name, k)
		}
		if inf := sr.counts[len(sr.counts)-1]; inf != sr.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %v != _count %v", f.Name, k, inf, sr.count)
		}
	}
	return nil
}

func isNameChar(c byte, pos int) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(pos > 0 && c >= '0' && c <= '9')
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i) {
			return false
		}
	}
	return true
}

func unescapeHelp(h string) string {
	if !strings.Contains(h, "\\") {
		return h
	}
	var b strings.Builder
	for i := 0; i < len(h); i++ {
		if h[i] == '\\' && i+1 < len(h) {
			i++
			switch h[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(h[i])
			}
			continue
		}
		b.WriteByte(h[i])
	}
	return b.String()
}
