package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dpgo/svt/telemetry/promtext"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.NewGauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "help", []float64{1, 10, 100})
	h.Observe(0.5)  // bucket le=1
	h.Observe(1)    // le=1 (inclusive upper bound)
	h.Observe(5)    // le=10
	h.Observe(1000) // +Inf
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got, want := h.Sum(), 0.5+1+5+1000; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	want := []uint64{2, 1, 0, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestHistogramObserveNWeights(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "help", []float64{1})
	h.ObserveN(0.5, 8)
	h.ObserveN(2, 0) // no-op
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := h.Sum(); got != 4 {
		t.Fatalf("sum = %v, want 4 (0.5 * weight 8)", got)
	}
	if got := h.counts[0].Load(); got != 8 {
		t.Fatalf("bucket 0 = %d, want 8", got)
	}
}

func TestHistogramBoundsMustAscend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	r := NewRegistry()
	r.NewHistogram("h", "help", []float64{1, 1})
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate family")
		}
	}()
	r.NewGauge("dup_total", "help")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for name %q", name)
				}
			}()
			NewRegistry().NewCounter(name, "help")
		}()
	}
}

func TestExposeGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("req_total", "requests")
	c.With(Label("route", "/a")).Add(3)
	c.With(Label("route", "/b")).Inc()
	g := r.NewGauge("in_flight", "in flight")
	g.Set(2)
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	got := string(r.Expose(nil))
	want := strings.Join([]string{
		"# HELP req_total requests",
		"# TYPE req_total counter",
		`req_total{route="/a"} 3`,
		`req_total{route="/b"} 1`,
		"# HELP in_flight in flight",
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 3.0505",
		"lat_seconds_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := promtext.Parse(got); err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
}

func TestExposeParsesWithLabelsAndCollectors(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("weird_total", "values with \\ and \"quotes\"").
		With(Label("k", "a\\b\"c\nd")).Add(5)
	r.NewCollector("col", "collector", "gauge", func(emit func(string, float64)) {
		// Emitted unsorted on purpose: exposition must sort.
		emit(Label("x", "b"), 2)
		emit(Label("x", "a"), 1)
	})
	r.RegisterBuildInfo("build_info", "build info", "test-1.0")

	text := string(r.Expose(nil))
	fams, err := promtext.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	byName := map[string]promtext.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	w := byName["weird_total"].Samples
	if len(w) != 1 || w[0].Labels["k"] != "a\\b\"c\nd" {
		t.Fatalf("label round-trip failed: %+v", w)
	}
	col := byName["col"].Samples
	if len(col) != 2 || col[0].Labels["x"] != "a" || col[1].Labels["x"] != "b" {
		t.Fatalf("collector output not sorted: %+v", col)
	}
	bi := byName["build_info"].Samples
	if len(bi) != 1 || bi[0].Value != 1 || bi[0].Labels["version"] != "test-1.0" || bi[0].Labels["goversion"] == "" {
		t.Fatalf("build info sample wrong: %+v", bi)
	}
}

func TestCollectorKindValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on histogram collector kind")
		}
	}()
	NewRegistry().NewCollector("c", "help", "histogram", func(func(string, float64)) {})
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("one_total", "help").Inc()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q, want %q", ct, ContentType)
	}
	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

// TestRecordPathAllocs pins the telemetry record path at zero
// allocations: counters, gauges and histogram observations (including
// weighted sampled observations and the Now clock) must be safe to call
// from the server's pooled query hot path.
func TestRecordPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "help")
	cv := r.NewCounterVec("cv_total", "help").With(Label("k", "v"))
	g := r.NewGauge("g", "help")
	h := r.NewHistogram("h", "help", LatencyBuckets)
	if allocs := testing.AllocsPerRun(1000, func() {
		start := Now()
		c.Inc()
		cv.Add(2)
		g.Add(1)
		g.Add(-1)
		h.ObserveN(Seconds(Now()-start), 8)
	}); allocs != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", allocs)
	}
}

func TestAddFloatConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "help", []float64{1})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				h.Observe(0.25)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := h.Sum(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("sum = %v, want 1000", got)
	}
	if got := h.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}
