// Package telemetry is the service's zero-dependency metrics layer:
// atomic counters, gauges and fixed-bucket histograms collected into a
// Registry and exposed in Prometheus text exposition format (see
// expose.go). It exists so the serving layers — HTTP, session manager and
// store — can publish latency distributions, privacy-budget gauges and
// WAL/group-commit internals without pulling a client library into the
// module.
//
// # Record-path cost
//
// The record path (Counter.Add, Gauge.Set, Histogram.Observe) is
// allocation-free and lock-free — a handful of atomic operations — so it
// is safe to call from the query hot path; the allocation budget is
// pinned by an AllocsPerRun test. Label lookups (the *Vec types) take a
// per-family mutex, so hot-path callers resolve their label handles once
// at startup and keep the pointer, exactly like the server's
// per-mechanism counter arrays.
//
// Clock reads are the dominant cost of latency instrumentation on hosts
// with a slow clock source, so the package provides a monotonic
// nanosecond clock (Now) that is cheaper than time.Now and supports
// SAMPLED observation: a call site reads the clock on one request in N
// and records the observation with weight N (Histogram.ObserveN), which
// keeps the steady-state overhead of a histogram to roughly
// (clock cost)/N while the bucket counts still estimate the full
// population. Sampled families say so in their help text. The full
// three-layer instrumentation costs the WAL-backed HTTP serving path
// about 4% (measured by BenchmarkHTTPQueryParallelWALTelemetry against
// its uninstrumented twin; the acceptance budget is 5%).
//
// # What the server registers
//
// With a Registry wired into server.ManagerConfig.Telemetry and
// server.APIConfig.Telemetry (cmd/svtserve does both unless
// -metrics=false), GET /metrics exposes, per layer:
//
//   - HTTP: svt_http_requests_total{route,class},
//     svt_http_request_duration_seconds{route} (sampled 1-in-8),
//     svt_http_in_flight_requests, request/response byte counters,
//     svt_http_encode_failures_total and
//     svt_http_rate_limited_total{tenant}.
//   - Manager: svt_query_duration_seconds{mechanism} (sampled, journal
//     wait included), svt_queries_total / svt_query_positives_total /
//     svt_session_halts_total by mechanism, session lifecycle events,
//     svt_sessions_live, snapshot duration and failures, and the
//     privacy-budget gauges svt_tenant_sessions,
//     svt_tenant_epsilon_spent and svt_tenant_sessions_near_halt.
//   - Store: svt_store_append_duration_seconds (sampled),
//     svt_store_commit_batch_events (group-commit batch sizes),
//     svt_store_sync_duration_seconds, append/flush/sync/failure
//     counters, journal bytes, segment count, mmap mode and
//     svt_store_recovery_duration_seconds, fed through the
//     store.Instrumenter hook.
//
// The telemetry/promtext subpackage is a validating parser for the
// exposition format, used by the tests (and usable by smoke checks) to
// keep /metrics structurally valid without importing a Prometheus
// client.
//
// # Tracing and profiling
//
// Request tracing rides alongside the metrics: the HTTP layer threads a
// per-request trace ID (the client's X-Request-Id, echoed back, or a
// generated one) through server.QueryTraced, and svtserve's
// -slow-query-ms flag logs one structured line — trace ID, session,
// mechanism, batch size, duration, WAL flush wait — for every /query
// request at or over the threshold. Arming the tracer costs a few extra
// clock reads per request and is off by default. For deeper digging,
// svtserve's -pprof-addr serves net/http/pprof on a separate listener
// so production profiling never mixes with analyst traffic.
package telemetry
