package telemetry

// Tests for the OpenMetrics rendering added alongside the 0.0.4 text
// format: exemplar attachment on histogram buckets, counter-suffix
// handling on HELP/TYPE lines, the # EOF terminator, and content-type
// negotiation on the Handler.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExemplarRoundTrip: a sampled observation recorded with a trace ID
// surfaces on exactly its bucket's OpenMetrics line; the 0.0.4 format
// never shows it; an empty trace ID records nothing.
func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.001, 0.1})
	h.ObserveNExemplar(0.05, 8, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveNExemplar(3, 8, "") // not trace-sampled: no exemplar stored
	h.Observe(0.0005)

	om := string(r.ExposeOpenMetrics(nil))
	want := `lat_seconds_bucket{le="0.1"} 9 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05 `
	if !strings.Contains(om, want) {
		t.Fatalf("exemplar missing from its bucket line:\n%s", om)
	}
	for _, line := range strings.Split(om, "\n") {
		if strings.Contains(line, "#") && strings.Contains(line, "trace_id") {
			if !strings.HasPrefix(line, `lat_seconds_bucket{le="0.1"}`) {
				t.Fatalf("exemplar leaked onto the wrong line: %s", line)
			}
		}
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics output lacks the # EOF terminator:\n%s", om)
	}

	// The 0.0.4 rendering must be unchanged by exemplar recording, and
	// remain parseable by the strict 0.0.4 parser.
	plain := string(r.Expose(nil))
	if strings.Contains(plain, "trace_id") || strings.Contains(plain, "EOF") {
		t.Fatalf("0.0.4 exposition contaminated by OpenMetrics syntax:\n%s", plain)
	}
}

// TestOpenMetricsCounterSuffix: counter HELP/TYPE lines drop the _total
// suffix in OpenMetrics, while sample lines keep the full series name.
func TestOpenMetricsCounterSuffix(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("req_total", "requests").Inc()
	g := r.NewGauge("in_flight_total", "gauge keeps its name") // not a counter
	g.Set(1)

	om := string(r.ExposeOpenMetrics(nil))
	for _, want := range []string{
		"# HELP req requests\n",
		"# TYPE req counter\n",
		"req_total 1\n",
		"# TYPE in_flight_total gauge\n",
	} {
		if !strings.Contains(om, want) {
			t.Fatalf("OpenMetrics output missing %q:\n%s", want, om)
		}
	}
	if strings.Contains(om, "# TYPE req_total counter") {
		t.Fatalf("counter TYPE line kept the _total suffix:\n%s", om)
	}
}

// TestHandlerContentNegotiation: the default scrape stays on the 0.0.4
// format byte-for-byte; an OpenMetrics Accept header switches format and
// content type.
func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("one_total", "help").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("default content type %q, want %q", ct, ContentType)
	}

	omReq, err := http.NewRequest(http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	omReq.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;q=0.5")
	omResp, err := srv.Client().Do(omReq)
	if err != nil {
		t.Fatal(err)
	}
	defer omResp.Body.Close()
	if ct := omResp.Header.Get("Content-Type"); ct != OpenMetricsContentType {
		t.Fatalf("negotiated content type %q, want %q", ct, OpenMetricsContentType)
	}
	body, err := io.ReadAll(omResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(body), "# EOF\n") {
		t.Fatalf("negotiated body is not OpenMetrics:\n%s", body)
	}
}
