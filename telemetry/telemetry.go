package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors the package's monotonic clock. All Now values are
// nanoseconds since process start; only differences are meaningful.
var epoch = time.Now()

// Now returns a monotonic timestamp in nanoseconds since process start.
// It is cheaper than time.Now (one monotonic clock read, no wall-clock
// read) and is the clock every latency measurement in this module uses.
func Now() int64 { return int64(time.Since(epoch)) }

// Seconds converts a difference of two Now values to seconds.
func Seconds(nanos int64) float64 { return float64(nanos) * 1e-9 }

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: observation counts per bucket
// plus a running sum, all atomics. Buckets are cumulative only at
// exposition time; the record path touches exactly one bucket counter.
// Each bucket additionally retains its most recent exemplar — a trace ID
// attached by ObserveNExemplar — exposed on OpenMetrics scrapes so a
// latency outlier in a bucket links directly to a retrievable trace.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending; an
	// implicit +Inf bucket follows the last bound.
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1
	total     atomic.Uint64
	sum       atomic.Uint64              // float64 bits, updated by CAS
	exemplars []atomic.Pointer[exemplar] // len(bounds)+1, last-write-wins
}

// exemplar links one observed value to the trace that produced it, with
// the wall-clock time of the observation (OpenMetrics exemplar fields).
type exemplar struct {
	traceID string
	value   float64
	unix    float64 // wall-clock seconds
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
}

// Observe records one observation of v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records one MEASURED observation of v standing for n
// population members (sampled instrumentation: the call site measured one
// request in n). The bucket v falls into and the observation count grow
// by n, and the sum grows by n*v, so rates and quantiles estimated from
// the histogram approximate the full population.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.counts[h.bucket(v)].Add(n)
	h.total.Add(n)
	if v != 0 {
		addFloat(&h.sum, v*float64(n))
	}
}

// ObserveNExemplar is ObserveN additionally tagging the observation's
// bucket with traceID as its exemplar ("" records no exemplar and costs
// nothing extra). The exemplar is last-write-wins per bucket: scrapes see
// the most recent trace that landed there.
func (h *Histogram) ObserveNExemplar(v float64, n uint64, traceID string) {
	if n == 0 {
		return
	}
	i := h.bucket(v)
	h.counts[i].Add(n)
	h.total.Add(n)
	if v != 0 {
		addFloat(&h.sum, v*float64(n))
	}
	if traceID != "" {
		h.exemplars[i].Store(&exemplar{
			traceID: traceID,
			value:   v,
			unix:    float64(time.Now().UnixNano()) * 1e-9,
		})
	}
}

// bucket returns the index of the bucket v falls into.
func (h *Histogram) bucket(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Count returns the total (weighted) observation count.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the (weighted) sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// addFloat atomically adds d to the float64 stored as bits in a.
func addFloat(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// LatencyBuckets is the default duration ladder in seconds: wide enough
// to resolve sub-microsecond WAL appends at one end and multi-second
// stalls at the other.
var LatencyBuckets = []float64{
	500e-9, 1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	2.5e-3, 10e-3, 50e-3, 250e-3, 1, 5,
}

// CountBuckets is the default ladder for small cardinalities (batch
// sizes, event counts): powers of two.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

// metric is anything a family can hold; exposition is in expose.go.
type metric interface {
	appendSamples(buf []byte, name, labels string) []byte
}

// family is one metric family: a name, help text, a TYPE, and either a
// set of label-addressed metrics or a scrape-time collector.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge" or "histogram"

	mu      sync.Mutex
	order   []string // label strings in first-use order
	metrics map[string]metric

	// collect, when set, produces the family's samples at scrape time
	// instead of from stored metrics (for values derived from live state:
	// session walks, store health).
	collect func(emit func(labels string, v float64))

	bounds []float64 // histogram families only
}

// with returns (creating if needed) the metric addressed by labels.
func (f *family) with(labels string) metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.metrics[labels]; ok {
		return m
	}
	var m metric
	switch f.typ {
	case "counter":
		m = new(Counter)
	case "gauge":
		m = new(Gauge)
	case "histogram":
		m = newHistogram(f.bounds)
	default:
		panic("telemetry: family " + f.name + " has no stored-metric type")
	}
	f.metrics[labels] = m
	f.order = append(f.order, labels)
	return m
}

// Registry holds metric families in registration order and renders them
// as one Prometheus text document. Registration panics on an invalid or
// duplicate name — both are programmer errors — and is expected to
// happen once at startup; the record paths of the registered metrics are
// then lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register validates and stores a family.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic("telemetry: invalid metric name " + f.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic("telemetry: duplicate metric family " + f.name)
	}
	f.metrics = make(map[string]metric)
	r.families = append(r.families, f)
	r.byName[f.name] = f
	return f
}

// validName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// NewCounter registers an unlabeled counter family.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	return f.with("").(*Counter)
}

// NewGauge registers an unlabeled gauge family.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	return f.with("").(*Gauge)
}

// NewHistogram registers an unlabeled histogram family with the given
// bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram", bounds: bounds})
	return f.with("").(*Histogram)
}

// CounterVec is a counter family addressed by a rendered label string.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string) *CounterVec {
	return &CounterVec{r.register(&family{name: name, help: help, typ: "counter"})}
}

// With returns the counter for the given rendered label string (see
// Label/Labels). The lookup takes the family mutex: resolve once and keep
// the pointer on hot paths.
func (v *CounterVec) With(labels string) *Counter { return v.f.with(labels).(*Counter) }

// GaugeVec is a gauge family addressed by a rendered label string.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string) *GaugeVec {
	return &GaugeVec{r.register(&family{name: name, help: help, typ: "gauge"})}
}

// With returns the gauge for the given rendered label string.
func (v *GaugeVec) With(labels string) *Gauge { return v.f.with(labels).(*Gauge) }

// HistogramVec is a histogram family addressed by a rendered label string.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64) *HistogramVec {
	return &HistogramVec{r.register(&family{name: name, help: help, typ: "histogram", bounds: bounds})}
}

// With returns the histogram for the given rendered label string.
func (v *HistogramVec) With(labels string) *Histogram { return v.f.with(labels).(*Histogram) }

// NewCollector registers a family whose samples are produced at scrape
// time by fn: fn is called once per exposition and emits (labels, value)
// pairs. kind must be "counter" or "gauge" (emitted counter values must
// be cumulative). Use collectors for values derived from live state — a
// session-table walk, a store health snapshot — rather than mirroring
// them into stored gauges on every change.
func (r *Registry) NewCollector(name, help, kind string, fn func(emit func(labels string, v float64))) {
	if kind != "counter" && kind != "gauge" {
		panic("telemetry: collector " + name + " kind must be counter or gauge, got " + kind)
	}
	r.register(&family{name: name, help: help, typ: kind, collect: fn})
}

// Label renders one escaped label pair for the *Vec and collector APIs.
func Label(key, value string) string {
	return key + `="` + escapeLabel(value) + `"`
}

// Labels joins rendered label pairs.
func Labels(pairs ...string) string {
	out := ""
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	clean := true
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	out := make([]byte, 0, len(v)+8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// sortedEmits collects a collector's output and orders it by label string
// so exposition is deterministic (collectors often walk maps).
func sortedEmits(fn func(emit func(labels string, v float64))) []emitSample {
	var out []emitSample
	fn(func(labels string, v float64) {
		out = append(out, emitSample{labels, v})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

type emitSample struct {
	labels string
	v      float64
}
