// Package variants exposes the six historical SVT variants of the paper's
// Figure 1 behind a common streaming interface, for research, auditing and
// comparison.
//
// Only NewProposed (Algorithm 1) and NewDPBook (Algorithm 2) are
// differentially private. NewRoth11, NewLeeClifton, NewStoddard and
// NewChen implement published variants whose privacy claims the paper
// refutes — they leak, and exist here so that the leaks can be measured
// (see the audit package). Never use them on sensitive data.
package variants

import (
	"fmt"
	"math"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
)

// Stream answers threshold queries one at a time. ok reports whether the
// variant was still live; it becomes false after a cutoff variant has
// released its c-th positive outcome.
type Stream interface {
	Next(query, threshold float64) (res svt.Result, ok bool)
	Halted() bool
}

// stream adapts an internal algorithm to the public interface.
type stream struct{ alg core.Algorithm }

func (s stream) Next(query, threshold float64) (svt.Result, bool) {
	ans, ok := s.alg.Next(query, threshold)
	return svt.Result{Above: ans.Above, Numeric: ans.Numeric, Value: ans.Value}, ok
}

func (s stream) Halted() bool { return s.alg.Halted() }

// Restorer is the optional crash-recovery side of a Stream: Restore
// fast-forwards the positive-outcome count of a freshly constructed stream
// to the value journaled before a crash, so spent budget is never refreshed
// by a restart. The differentially private streams (NewProposed, NewDPBook)
// support it; the broken historical variants do not need to.
type Restorer interface {
	Restore(positives int) error
}

// Restore implements Restorer when the wrapped algorithm supports it. The
// caller is responsible for keeping positives within the stream's cutoff c
// (the underlying algorithm panics outside [0, c], mirroring the paper
// implementations' precondition style).
func (s stream) Restore(positives int) error {
	r, ok := s.alg.(interface{ Restore(n int) })
	if !ok {
		return fmt.Errorf("variants: %T does not support restore", s.alg)
	}
	if positives < 0 {
		return fmt.Errorf("variants: restored positives must be non-negative, got %d", positives)
	}
	r.Restore(positives)
	return nil
}

// StreamState is the optional noise-stream side of crash recovery: Draws
// reports the stream position (raw 64-bit draws consumed, construction
// included) and FastForward advances a freshly rebuilt, identically seeded
// stream to that position, discarding the skipped values. Fast-forwarding is
// what keeps a recovered seeded stream both private and reproducible:
// pre-crash noise is never re-emitted, yet the continuation is bit-identical
// to an uninterrupted run. The differentially private streams (NewProposed,
// NewDPBook) support it.
type StreamState interface {
	Draws() uint64
	FastForward(draws uint64) error
}

// Draws implements StreamState when the wrapped algorithm counts draws;
// streams that do not return 0.
func (s stream) Draws() uint64 {
	if d, ok := s.alg.(interface{ Draws() uint64 }); ok {
		return d.Draws()
	}
	return 0
}

// FastForward implements StreamState when the wrapped algorithm supports
// skipping.
func (s stream) FastForward(draws uint64) error {
	alg, ok := s.alg.(interface {
		Draws() uint64
		Skip(n uint64)
	})
	if !ok {
		return fmt.Errorf("variants: %T does not support fast-forward", s.alg)
	}
	cur := alg.Draws()
	if draws < cur {
		return fmt.Errorf("variants: cannot fast-forward to draw %d, stream already at %d", draws, cur)
	}
	alg.Skip(draws - cur)
	return nil
}

// RhoState is implemented by streams that can surface their noisy-threshold
// offset ρ for crash recovery. Rho's second result reports whether ρ evolves
// after construction and therefore must be journaled: the Dwork-Roth book
// SVT (NewDPBook) resamples ρ on every positive outcome, so rebuilding from
// the seed alone cannot re-derive the current value. The journal is
// server-private state, exactly as sensitive as the seed ρ is derived from;
// SetRho restores the journaled value after fast-forwarding.
type RhoState interface {
	Rho() (rho float64, evolving bool)
	SetRho(v float64)
}

// Rho implements RhoState; evolving is false for algorithms whose ρ is fixed
// at construction (nothing to journal — reconstruction re-derives it).
func (s stream) Rho() (float64, bool) {
	if r, ok := s.alg.(interface{ Rho() float64 }); ok {
		return r.Rho(), true
	}
	return 0, false
}

// SetRho implements the restoring side of RhoState; it is a no-op for
// algorithms with construction-fixed ρ.
func (s stream) SetRho(v float64) {
	if r, ok := s.alg.(interface{ SetRho(v float64) }); ok {
		r.SetRho(v)
	}
}

func check(epsilon, delta float64, c int, needC bool) error {
	if !(epsilon > 0) || math.IsInf(epsilon, 0) {
		return fmt.Errorf("variants: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(delta > 0) || math.IsInf(delta, 0) {
		return fmt.Errorf("variants: sensitivity must be positive and finite, got %v", delta)
	}
	if needC && c <= 0 {
		return fmt.Errorf("variants: cutoff c must be positive, got %d", c)
	}
	return nil
}

// NewProposed returns the paper's Algorithm 1, an ε-DP SVT with fixed
// threshold noise Lap(Δ/ε₁) and query noise Lap(2cΔ/ε₂). Seed 0 means
// crypto-seeded.
func NewProposed(epsilon, delta float64, c int, seed uint64) (Stream, error) {
	if err := check(epsilon, delta, c, true); err != nil {
		return nil, err
	}
	return stream{core.NewAlg1(rng.NewSeeded(seed), epsilon, delta, c)}, nil
}

// NewDPBook returns Algorithm 2, the SVT of Dwork and Roth's 2014 book:
// ε-DP, but with threshold noise Lap(cΔ/ε₁) resampled after every positive
// outcome, giving much worse utility than NewProposed.
func NewDPBook(epsilon, delta float64, c int, seed uint64) (Stream, error) {
	if err := check(epsilon, delta, c, true); err != nil {
		return nil, err
	}
	return stream{core.NewAlg2(rng.NewSeeded(seed), epsilon, delta, c)}, nil
}

// NewRoth11 returns Algorithm 3 from Roth's 2011 lecture notes.
//
// NOT PRIVATE: it outputs the noisy query answer for positive outcomes and
// is not ε-DP for any finite ε (paper Theorem 6). Research use only.
func NewRoth11(epsilon, delta float64, c int, seed uint64) (Stream, error) {
	if err := check(epsilon, delta, c, true); err != nil {
		return nil, err
	}
	return stream{core.NewAlg3(rng.NewSeeded(seed), epsilon, delta, c)}, nil
}

// NewLeeClifton returns Algorithm 4 from Lee and Clifton 2014.
//
// NOT ε-DP: its query noise does not scale with c, so it satisfies only
// ((1+6c)/4)·ε-DP ( ((1+3c)/4)·ε for monotonic queries). Research use only.
func NewLeeClifton(epsilon, delta float64, c int, seed uint64) (Stream, error) {
	if err := check(epsilon, delta, c, true); err != nil {
		return nil, err
	}
	return stream{core.NewAlg4(rng.NewSeeded(seed), epsilon, delta, c)}, nil
}

// NewStoddard returns Algorithm 5 from Stoddard et al. 2014.
//
// NOT PRIVATE: it adds no noise to query answers and has no cutoff; it is
// not ε-DP for any finite ε (paper Theorem 3). Research use only.
func NewStoddard(epsilon, delta float64, seed uint64) (Stream, error) {
	if err := check(epsilon, delta, 0, false); err != nil {
		return nil, err
	}
	return stream{core.NewAlg5(rng.NewSeeded(seed), epsilon, delta)}, nil
}

// NewChen returns Algorithm 6 from Chen et al. 2015.
//
// NOT PRIVATE: its query noise does not scale with c and it has no cutoff;
// it is not ε-DP for any finite ε (paper Theorem 7). Research use only.
func NewChen(epsilon, delta float64, seed uint64) (Stream, error) {
	if err := check(epsilon, delta, 0, false); err != nil {
		return nil, err
	}
	return stream{core.NewAlg6(rng.NewSeeded(seed), epsilon, delta)}, nil
}

// NewGPTT returns the Generalized Private Threshold Testing algorithm of
// Chen and Machanavajjhala 2015, the abstraction analyzed in the paper's
// §3.3, with independent threshold/query budgets.
//
// NOT PRIVATE for any finite ε. Research use only.
func NewGPTT(eps1, eps2, delta float64, seed uint64) (Stream, error) {
	if !(eps1 > 0) || !(eps2 > 0) || math.IsInf(eps1, 0) || math.IsInf(eps2, 0) {
		return nil, fmt.Errorf("variants: eps1 and eps2 must be positive and finite, got %v and %v", eps1, eps2)
	}
	if !(delta > 0) || math.IsInf(delta, 0) {
		return nil, fmt.Errorf("variants: sensitivity must be positive and finite, got %v", delta)
	}
	return stream{core.NewGPTT(rng.NewSeeded(seed), eps1, eps2, delta)}, nil
}
