package variants

import (
	"testing"

	svt "github.com/dpgo/svt"
)

type ctor struct {
	name    string
	cutoff  bool
	numeric bool
	build   func(seed uint64) (Stream, error)
}

func ctors() []ctor {
	return []ctor{
		{"Proposed", true, false, func(seed uint64) (Stream, error) { return NewProposed(1, 1, 3, seed) }},
		{"DPBook", true, false, func(seed uint64) (Stream, error) { return NewDPBook(1, 1, 3, seed) }},
		{"Roth11", true, true, func(seed uint64) (Stream, error) { return NewRoth11(1, 1, 3, seed) }},
		{"LeeClifton", true, false, func(seed uint64) (Stream, error) { return NewLeeClifton(1, 1, 3, seed) }},
		{"Stoddard", false, false, func(seed uint64) (Stream, error) { return NewStoddard(1, 1, seed) }},
		{"Chen", false, false, func(seed uint64) (Stream, error) { return NewChen(1, 1, seed) }},
		{"GPTT", false, false, func(seed uint64) (Stream, error) { return NewGPTT(0.5, 0.5, 1, seed) }},
	}
}

func TestStreamsBehave(t *testing.T) {
	for _, c := range ctors() {
		s, err := c.build(13)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		positives, answered := 0, 0
		var lastPositive svt.Result
		for i := 0; i < 30; i++ {
			res, ok := s.Next(1e9, 0)
			if !ok {
				break
			}
			answered++
			if res.Above {
				positives++
				lastPositive = res
			}
		}
		if c.cutoff {
			if positives != 3 || answered != 3 {
				t.Errorf("%s: %d positives in %d answers, want 3/3", c.name, positives, answered)
			}
			if !s.Halted() {
				t.Errorf("%s: not halted", c.name)
			}
		} else {
			if answered != 30 || positives != 30 {
				t.Errorf("%s: %d positives in %d answers, want 30/30", c.name, positives, answered)
			}
			if s.Halted() {
				t.Errorf("%s: halted without cutoff", c.name)
			}
		}
		if lastPositive.Numeric != c.numeric {
			t.Errorf("%s: Numeric = %v, want %v", c.name, lastPositive.Numeric, c.numeric)
		}
	}
}

func TestStreamsDeterministicWithSeed(t *testing.T) {
	for _, c := range ctors() {
		run := func() []svt.Result {
			s, err := c.build(99)
			if err != nil {
				t.Fatal(err)
			}
			var out []svt.Result
			for _, q := range []float64{2, -1, 4, 0, -3, 6} {
				res, ok := s.Next(q, 1)
				if !ok {
					break
				}
				out = append(out, res)
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", c.name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: diverged at %d", c.name, i)
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := map[string]func() (Stream, error){
		"Proposed eps":   func() (Stream, error) { return NewProposed(0, 1, 3, 1) },
		"Proposed delta": func() (Stream, error) { return NewProposed(1, 0, 3, 1) },
		"Proposed c":     func() (Stream, error) { return NewProposed(1, 1, 0, 1) },
		"DPBook eps":     func() (Stream, error) { return NewDPBook(-1, 1, 3, 1) },
		"Roth11 c":       func() (Stream, error) { return NewRoth11(1, 1, -2, 1) },
		"LeeClifton eps": func() (Stream, error) { return NewLeeClifton(0, 1, 3, 1) },
		"Stoddard delta": func() (Stream, error) { return NewStoddard(1, 0, 1) },
		"Chen eps":       func() (Stream, error) { return NewChen(0, 1, 1) },
		"GPTT eps1":      func() (Stream, error) { return NewGPTT(0, 1, 1, 1) },
		"GPTT eps2":      func() (Stream, error) { return NewGPTT(1, 0, 1, 1) },
		"GPTT delta":     func() (Stream, error) { return NewGPTT(1, 1, 0, 1) },
	}
	for name, build := range cases {
		if _, err := build(); err == nil {
			t.Errorf("%s: invalid construction accepted", name)
		}
	}
}

func TestStreamStateFastForwardAllDPVariants(t *testing.T) {
	builders := []struct {
		name  string
		build func(seed uint64) (Stream, error)
	}{
		{"proposed", func(seed uint64) (Stream, error) { return NewProposed(1, 1, 10, seed) }},
		{"dpbook", func(seed uint64) (Stream, error) { return NewDPBook(1, 1, 10, seed) }},
	}
	queries := make([]float64, 50)
	for i := range queries {
		queries[i] = float64(i%3) - 1
	}
	for _, tc := range builders {
		t.Run(tc.name, func(t *testing.T) {
			full, err := tc.build(17)
			if err != nil {
				t.Fatal(err)
			}
			var want []svt.Result
			for _, q := range queries {
				res, ok := full.Next(q, 0)
				if !ok {
					break
				}
				want = append(want, res)
			}

			// Run a twin to a crash point, capture its journaled state.
			const kill = 12
			if len(want) <= kill {
				t.Fatalf("setup: only %d answers before halt", len(want))
			}
			crashed, err := tc.build(17)
			if err != nil {
				t.Fatal(err)
			}
			positives := 0
			for _, q := range queries[:kill] {
				res, ok := crashed.Next(q, 0)
				if !ok {
					t.Fatal("setup: halted before the crash point")
				}
				if res.Above {
					positives++
				}
			}
			draws := crashed.(StreamState).Draws()
			var rho float64
			var rhoEvolves bool
			if rs, ok := crashed.(RhoState); ok {
				rho, rhoEvolves = rs.Rho()
			}
			if tc.name == "dpbook" && !rhoEvolves {
				t.Fatal("dpbook must report an evolving ρ")
			}

			rebuilt, err := tc.build(17)
			if err != nil {
				t.Fatal(err)
			}
			if err := rebuilt.(Restorer).Restore(positives); err != nil {
				t.Fatal(err)
			}
			if err := rebuilt.(StreamState).FastForward(draws); err != nil {
				t.Fatal(err)
			}
			if rhoEvolves {
				rebuilt.(RhoState).SetRho(rho)
			}
			for i, q := range queries[kill:] {
				res, ok := rebuilt.Next(q, 0)
				if kill+i >= len(want) {
					// The uninterrupted run halted here; the resumed one must too.
					if ok {
						t.Fatalf("resumed stream kept answering past the uninterrupted halt at %d", len(want))
					}
					break
				}
				if !ok || res != want[kill+i] {
					t.Fatalf("answer %d diverged: got %+v ok=%v, want %+v", kill+i, res, ok, want[kill+i])
				}
			}
		})
	}
}
