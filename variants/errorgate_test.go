package variants

import (
	"math"
	"testing"
)

func TestBrokenErrorGateValidation(t *testing.T) {
	cases := map[string]func() (*BrokenErrorGate, error){
		"zero threshold": func() (*BrokenErrorGate, error) { return NewBrokenErrorGate(0, 1, 1, 1, 1) },
		"inf threshold":  func() (*BrokenErrorGate, error) { return NewBrokenErrorGate(math.Inf(1), 1, 1, 1, 1) },
		"zero epsilon":   func() (*BrokenErrorGate, error) { return NewBrokenErrorGate(1, 0, 1, 1, 1) },
		"zero delta":     func() (*BrokenErrorGate, error) { return NewBrokenErrorGate(1, 1, 0, 1, 1) },
		"zero cutoff":    func() (*BrokenErrorGate, error) { return NewBrokenErrorGate(1, 1, 1, 0, 1) },
	}
	for name, build := range cases {
		if _, err := build(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBrokenErrorGateBehaviour(t *testing.T) {
	gate, err := NewBrokenErrorGate(10, 2.0, 1, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	positives := 0
	for i := 0; i < 50; i++ {
		above, ok := gate.ExceedsThreshold(0, 1e9)
		if !ok {
			break
		}
		if above {
			positives++
		}
	}
	if positives != 3 {
		t.Fatalf("positives = %d, want 3", positives)
	}
	if !gate.Halted() {
		t.Fatal("not halted")
	}
	if _, ok := gate.ExceedsThreshold(0, 1e9); ok {
		t.Fatal("answered after halt")
	}
}

// The leak the paper describes in §3.4: the broken gate's compared value
// |q̃ − q + ν| is non-negative, so with a noticeably negative noisy
// threshold the broken gate reports ⊤ even for ZERO error — whereas the
// corrected gate's comparison |q̃ − q| + ν can itself go negative. The
// observable consequence: on zero-error streams the broken gate's ⊤ rate
// conditional on (T + ρ) < 0 is 1, revealing sign information about ρ.
func TestBrokenErrorGateLeaksThresholdSign(t *testing.T) {
	const trials = 4000
	leaked := 0
	for i := 0; i < trials; i++ {
		gate, err := NewBrokenErrorGate(1, 0.5, 1, 1, uint64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		// Zero-error query: estimate == truth.
		above, _ := gate.ExceedsThreshold(42, 42)
		if above && gate.rho < -1 {
			// A ⊤ was issued while the noisy threshold was negative:
			// the |·| >= negative test is vacuously true — pure leak.
			leaked++
		}
	}
	// With threshold 1 and rho ~ Lap(4), Pr[rho < -1] ≈ 0.39, and every
	// such trial fires: expect a large leaked count.
	if leaked < trials/10 {
		t.Fatalf("leak not reproduced: %d/%d", leaked, trials)
	}
}

// The corrected gate (svt.ErrorGate semantics) can output ⊥ even when the
// noisy threshold is very negative, because its query noise is OUTSIDE the
// absolute value and can be arbitrarily negative. The broken gate cannot:
// conditioned on T + ρ <= 0 it answers ⊤ with probability 1. This pair of
// facts is what makes ρ recoverable from the broken gate's outputs.
func TestBrokenErrorGateDeterministicGivenNegativeThreshold(t *testing.T) {
	found := false
	for i := 0; i < 2000 && !found; i++ {
		gate, err := NewBrokenErrorGate(1, 0.5, 1, 1000, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if gate.rho <= -1 { // noisy threshold T + rho <= 0
			found = true
			for q := 0; q < 200; q++ {
				above, ok := gate.ExceedsThreshold(0, 0)
				if !ok {
					break
				}
				if !above {
					t.Fatal("broken gate answered ⊥ despite non-positive noisy threshold")
				}
			}
		}
	}
	if !found {
		t.Skip("no negative noisy threshold drawn in 2000 seeds (improbable)")
	}
}
