package variants

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// BrokenErrorGate is the §3.4 error test exactly as used in the original
// iterative-construction papers (Hardt-Rothblum 2010, Roth-Roughgarden
// 2010): "if |q̃ᵢ − qᵢ(D) + νᵢ| ≥ T + ρ then output ⊤".
//
// NOT PRIVATE AS CLAIMED: the compared quantity is always non-negative, so
// the first ⊤ reveals that the noisy threshold T + ρ is at most the
// released magnitude — in particular any ⊤ at all reveals ρ ≥ −T. Once ρ
// is (partially) public, the "negative answers are free" argument
// collapses, the same failure mode as Algorithm 3's numeric outputs. The
// audit package measures the leak; use svt.ErrorGate for the corrected
// form. Research use only.
type BrokenErrorGate struct {
	src        *rng.Source
	rho        float64
	threshold  float64
	queryScale float64
	c          int
	count      int
	halted     bool
}

// NewBrokenErrorGate builds the historical (flawed) error gate. Noise
// scales follow Algorithm 3 (the lecture-notes abstraction of those works):
// ρ ~ Lap(Δ/ε₁), ν ~ Lap(cΔ/ε₂) with ε₁ = ε₂ = ε/2.
func NewBrokenErrorGate(threshold, epsilon, delta float64, c int, seed uint64) (*BrokenErrorGate, error) {
	if !(threshold > 0) || math.IsInf(threshold, 0) {
		return nil, fmt.Errorf("variants: error threshold must be positive and finite, got %v", threshold)
	}
	if err := check(epsilon, delta, c, true); err != nil {
		return nil, err
	}
	src := rng.NewSeeded(seed)
	eps1 := epsilon / 2
	eps2 := epsilon - eps1
	return &BrokenErrorGate{
		src:        src,
		rho:        src.Laplace(delta / eps1),
		threshold:  threshold,
		queryScale: float64(c) * delta / eps2,
		c:          c,
	}, nil
}

// ExceedsThreshold runs the flawed test. ok is false once the gate has
// issued c positive reports.
func (g *BrokenErrorGate) ExceedsThreshold(estimate, truth float64) (above, ok bool) {
	if g.halted {
		return false, false
	}
	// The flaw, verbatim: noise inside the absolute value.
	if math.Abs(estimate-truth+g.src.Laplace(g.queryScale)) >= g.threshold+g.rho {
		g.count++
		if g.count >= g.c {
			g.halted = true
		}
		return true, true
	}
	return false, true
}

// Halted reports whether the gate has aborted.
func (g *BrokenErrorGate) Halted() bool { return g.halted }
