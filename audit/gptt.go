package audit

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// This file reproduces the paper's §3.3/Appendix-10.3 analysis of the
// flawed GPTT non-privacy proof from Chen & Machanavajjhala 2015.
//
// That proof considers q(D)=0ᵗ1ᵗ, q(D′)=1ᵗ0ᵗ, a=⊥ᵗ⊤ᵗ, lower-bounds the
// integrand ratio by κ = min_{|z|≤δ} κ(z) on an interval [−δ, δ] chosen
// from α = Pr[GPTT(D′)=a], and claims κ^{t/2} → ∞. The paper's objection
// is the circular parameter dependence: α, δ and hence κ are all functions
// of t — α decreases, δ increases, and κ(δ) decays as t grows — so the
// divergence does not follow from the proof's own steps.
//
// GPTTAnalyze reproduces that dependence chain quantitatively.
// Alg1FakeProofAnalyze applies the identical proof technique to the
// provably ε-DP Algorithm 1 (the paper's decisive counter-demonstration):
// there the technique's bound κ(t)^{t/2} must stay below the Lemma-1 bound
// e^{ε/2} for every t, which our numbers confirm — so the technique cannot
// be sound.
//
// Reproduction note (recorded in EXPERIMENTS.md): the paper's prose says
// "when |z| goes to ∞, κ(z) goes to 1". For the GPTT κ below, the actual
// tail limit is e^{ε₂} (both tails), not 1; the κ → 1 decay holds for the
// Alg1 instance of the technique, where κ(z) = F(z)/F(z−1) → 1 as z → +∞.
// The substance of the paper's argument — κ's dependence on t via δ(t), and
// the Alg1 contradiction — is unaffected, and both are verified here.

// GPTTPoint is one row of the GPTT proof-dependence analysis.
type GPTTPoint struct {
	T int
	// Alpha is Pr[GPTT(D′)=a] (numerically integrated).
	Alpha float64
	// Delta is |F⁻¹_{ε₁}(α/4)|, the half-width of the proof's interval.
	Delta float64
	// Kappa is min_{|z|≤δ} κ(z), attained at the endpoints.
	Kappa float64
	// KappaBound is the proof's claimed lower bound κ^{t/2}.
	KappaBound float64
	// TrueRatio is the actual Pr[GPTT(D)=a]/Pr[GPTT(D′)=a] (numerically
	// integrated). GPTT is indeed ∞-DP — the ratio diverges — but that is
	// established by Theorem 7's argument, not by this proof's chain.
	TrueRatio float64
}

// GPTTKappa evaluates κ(z) for GPTT with query-noise budget eps2 and Δ=1:
//
//	κ(z) = [F(z) − F(z)F(z−1)] / [F(z−1) − F(z)F(z−1)]
//	     = [F(z)(1−F(z−1))] / [F(z−1)(1−F(z))],
//
// where F is the CDF of Lap(1/ε₂). κ(z) > e^{ε₂} > 1 everywhere, is
// maximal at the center, and decays toward e^{ε₂} as |z| → ∞.
func GPTTKappa(eps2, z float64) float64 {
	if !(eps2 > 0) {
		panic("audit: eps2 must be positive")
	}
	scale := 1 / eps2
	// κ(z) = F(z)·S(z−1) / (F(z−1)·S(z)) with S = 1−F evaluated through
	// the cancellation-free survival function: the naive 1−F(z) rounds to
	// zero in the far right tail, where the proof's δ(t) interval lives.
	fz := rng.LaplaceCDF(z, scale)
	fz1 := rng.LaplaceCDF(z-1, scale)
	sz := rng.LaplaceSF(z, scale)
	sz1 := rng.LaplaceSF(z-1, scale)
	return (fz * sz1) / (fz1 * sz)
}

// GPTTAnalyze computes the Appendix-10.3 quantities for each t in ts, using
// GPTT with ε₁ = ε₂ = ε/2 (the instantiation that equals Algorithm 6).
func GPTTAnalyze(epsilon float64, ts []int) ([]GPTTPoint, error) {
	if !(epsilon > 0) {
		return nil, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("audit: no t values given")
	}
	eps1 := epsilon / 2
	eps2 := epsilon / 2
	rhoScale := 1 / eps1
	nuScale := 1 / eps2
	F := func(x float64) float64 { return rng.LaplaceCDF(x, nuScale) }
	pRho := func(z float64) float64 { return rng.LaplacePDF(z, rhoScale) }
	span := 80 * math.Max(rhoScale, nuScale)

	out := make([]GPTTPoint, 0, len(ts))
	for _, t := range ts {
		if t < 1 {
			return nil, fmt.Errorf("audit: t must be >= 1, got %d", t)
		}
		tf := float64(t)
		// Pr[GPTT(D′)=a] = ∫ p_ρ(z)·(F(z−1)·(1−F(z)))^t dz.
		alpha := integrate(func(z float64) float64 {
			return pRho(z) * math.Pow(F(z-1)*(1-F(z)), tf)
		}, -span, span, quadPoints)
		numer := integrate(func(z float64) float64 {
			return pRho(z) * math.Pow(F(z)*(1-F(z-1)), tf)
		}, -span, span, quadPoints)
		// δ = |F⁻¹_{ε₁}(α/4)|; α/4 < 1/2 so the quantile is negative.
		delta := math.Abs(rng.LaplaceQuantile(alpha/4, rhoScale))
		// κ(z) decreases in |z| on each side; the minimum over [−δ, δ] is
		// at an endpoint.
		kappa := math.Min(GPTTKappa(eps2, delta), GPTTKappa(eps2, -delta))
		out = append(out, GPTTPoint{
			T:          t,
			Alpha:      alpha,
			Delta:      delta,
			Kappa:      kappa,
			KappaBound: math.Pow(kappa, tf/2),
			TrueRatio:  numer / alpha,
		})
	}
	return out, nil
}

// Alg1FakePoint is one row of the paper's counter-demonstration: the GPTT
// proof technique applied verbatim to the ε-DP Algorithm 1 (Appendix 10.3,
// second half), with c = 1, T = 0, Δ = 1, q(D) = 0ᵗ, q(D′) = 1ᵗ, a = ⊥ᵗ.
type Alg1FakePoint struct {
	T int
	// Beta is Pr[A(D)=⊥ᵗ] and Alpha is Pr[A(D′)=⊥ᵗ].
	Beta, Alpha float64
	// Delta satisfies ∫_{−δ}^{δ} Pr[ρ=z] dz = 1 − α/2.
	Delta float64
	// Kappa is min_{|z|≤δ} F(z)/F(z−1), attained at z = δ; it tends to 1
	// as δ grows — the decay the technique fails to account for.
	Kappa float64
	// FakeBound is the technique's claimed lower bound κᵗ/2 on β/α. If
	// the technique were sound this would diverge in t; Lemma 1 caps the
	// true ratio at e^{ε/2}, so the fake bound must stay below that.
	FakeBound float64
	// TrueRatio is β/α (numerically integrated).
	TrueRatio float64
	// Lemma1Bound is e^{ε/2}, the proven cap on TrueRatio.
	Lemma1Bound float64
}

// Alg1FakeProofAnalyze applies the flawed GPTT proof technique to
// Algorithm 1 for each t in ts. Every returned row must satisfy
// FakeBound ≤ TrueRatio ≤ Lemma1Bound: the chain of inequalities inside
// the technique is valid pointwise, but its bound cannot diverge — which
// contradicts the technique's concluding step and thereby invalidates it.
func Alg1FakeProofAnalyze(epsilon float64, ts []int) ([]Alg1FakePoint, error) {
	if !(epsilon > 0) {
		return nil, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("audit: no t values given")
	}
	// Algorithm 1 with c=1, Δ=1: ρ ~ Lap(2/ε), ν ~ Lap(4/ε).
	rhoScale := 2 / epsilon
	nuScale := 4 / epsilon
	F := func(x float64) float64 { return rng.LaplaceCDF(x, nuScale) }
	pRho := func(z float64) float64 { return rng.LaplacePDF(z, rhoScale) }

	out := make([]Alg1FakePoint, 0, len(ts))
	for _, t := range ts {
		if t < 1 {
			return nil, fmt.Errorf("audit: t must be >= 1, got %d", t)
		}
		tf := float64(t)
		// The ⊥ᵗ mass shifts right as t grows (only large thresholds keep
		// all t queries below); widen the window accordingly.
		span := (40 + math.Log(1+tf)) * math.Max(rhoScale, nuScale)
		beta := integrate(func(z float64) float64 {
			return pRho(z) * math.Pow(F(z), tf)
		}, -span, span, quadPoints)
		alpha := integrate(func(z float64) float64 {
			return pRho(z) * math.Pow(F(z-1), tf)
		}, -span, span, quadPoints)
		// Pr[|ρ| > δ] = e^{−δ/b} for Laplace; δ = b·ln(2/α) puts exactly
		// α/2 of ρ's mass outside [−δ, δ].
		delta := rhoScale * math.Log(2/alpha)
		// F(z)/F(z−1) equals e^{1/nuScale} for z ≤ 0 and decays toward 1
		// for z > 0, so the minimum over [−δ, δ] sits at +δ.
		kappa := F(delta) / F(delta-1)
		out = append(out, Alg1FakePoint{
			T:           t,
			Beta:        beta,
			Alpha:       alpha,
			Delta:       delta,
			Kappa:       kappa,
			FakeBound:   math.Pow(kappa, tf) / 2,
			TrueRatio:   beta / alpha,
			Lemma1Bound: math.Exp(epsilon / 2),
		})
	}
	return out, nil
}
