package audit

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
	"github.com/dpgo/svt/internal/stats"
)

// SelectionAudit is an end-to-end privacy audit of a whole selection
// pipeline (not just one algorithm): it runs an arbitrary randomized
// selection on two neighboring score vectors and estimates the probability
// of an arbitrary EVENT of the output on each side.
//
// ε-DP bounds the probability ratio of every event, not just every atomic
// output: Pr[A(D) ∈ S] ≤ e^ε · Pr[A(D′) ∈ S]. Auditing an event (for
// example "item i was selected") keeps both probabilities large enough to
// estimate, which atomic outputs of a top-c selection are not.
type SelectionAudit struct {
	// Name labels the audit in reports.
	Name string
	// ScoresD and ScoresDPrime are the query answers under the two
	// neighboring datasets; equal length, entries differing by at most the
	// sensitivity the audited mechanism assumes.
	ScoresD, ScoresDPrime []float64
	// Run executes the audited selection with the provided randomness.
	Run func(src *rng.Source, scores []float64) []int
	// Event is the audited output predicate.
	Event func(selected []int) bool
}

// RunSelectionAudit estimates the event probability on both worlds and
// returns the same Estimate as Run (scenario audits), including the 95%
// lower confidence bound on the privacy-loss ratio.
func RunSelectionAudit(a SelectionAudit, trials int, seed uint64) (Estimate, error) {
	if len(a.ScoresD) == 0 || len(a.ScoresD) != len(a.ScoresDPrime) {
		return Estimate{}, fmt.Errorf("audit: score vectors must be equal-length and non-empty (got %d, %d)",
			len(a.ScoresD), len(a.ScoresDPrime))
	}
	if a.Run == nil || a.Event == nil {
		return Estimate{}, fmt.Errorf("audit: Run and Event must be non-nil")
	}
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("audit: trials must be positive, got %d", trials)
	}
	master := rng.New(seed)
	count := func(scores []float64) int {
		hits := 0
		for t := 0; t < trials; t++ {
			if a.Event(a.Run(master.Split(), scores)) {
				hits++
			}
		}
		return hits
	}
	countD := count(a.ScoresD)
	countDP := count(a.ScoresDPrime)
	est := Estimate{
		Name:        a.Name,
		Trials:      trials,
		CountD:      countD,
		CountDPrime: countDP,
		PD:          float64(countD) / float64(trials),
		PDPrime:     float64(countDP) / float64(trials),
	}
	loD, _ := stats.WilsonInterval(countD, trials, 0.05)
	_, hiDP := stats.WilsonInterval(countDP, trials, 0.05)
	if hiDP <= 0 { // degenerate interval: avoid dividing by zero
		est.RatioLower = math.Inf(1)
	} else {
		est.RatioLower = loD / hiDP
	}
	est.EmpiricalEpsilon = math.Log(est.RatioLower)
	return est, nil
}

// ContainsIndex returns an Event reporting whether idx was selected — the
// canonical membership event for top-c audits.
func ContainsIndex(idx int) func([]int) bool {
	return func(selected []int) bool {
		for _, s := range selected {
			if s == idx {
				return true
			}
		}
		return false
	}
}
