package audit

import (
	"math"
	"testing"

	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
)

const testTrials = 30000

func TestTheorem3MonteCarlo(t *testing.T) {
	// Algorithm 5 must produce the target on D with clearly positive
	// frequency and on D′ never.
	est, err := Run(Theorem3Scenario(1.0), testTrials, 404)
	if err != nil {
		t.Fatal(err)
	}
	if est.CountDPrime != 0 {
		t.Fatalf("D′ produced the impossible output %d times", est.CountDPrime)
	}
	wantPD, _, err := Theorem3Probabilities(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.PD-wantPD) > 0.01 {
		t.Errorf("PD = %v, closed form %v", est.PD, wantPD)
	}
	if est.RatioLower < 100 {
		t.Errorf("ratio lower bound %v too small for an infinite-ratio scenario", est.RatioLower)
	}
}

func TestTheorem3ClosedForm(t *testing.T) {
	pD, pDP, err := Theorem3Probabilities(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pDP != 0 {
		t.Errorf("pDPrime = %v, want 0", pDP)
	}
	want := rng.LaplaceCDF(1, 4) - 0.5
	if math.Abs(pD-want) > 1e-12 {
		t.Errorf("pD = %v, want %v", pD, want)
	}
	if _, _, err := Theorem3Probabilities(0); err == nil {
		t.Error("epsilon 0 accepted")
	}
}

func TestTheorem7MonteCarloRatioGrows(t *testing.T) {
	// Empirical ratio of Algorithm 6 on the Theorem-7 construction must
	// clearly exceed e^ε (the claimed privacy level) already for small m.
	const eps = 2.0
	est, err := Run(Theorem7Scenario(eps, 3), testTrials, 405)
	if err != nil {
		t.Fatal(err)
	}
	if est.PD == 0 {
		t.Fatal("target output never seen on D; scenario miscalibrated")
	}
	// Lower confidence bound must beat e^ε (claimed) — the mechanism
	// leaks more than advertised.
	if est.RatioLower < math.Exp(eps) {
		t.Errorf("ratio lower bound %v does not exceed e^eps = %v (PD=%v, PD'=%v)",
			est.RatioLower, math.Exp(eps), est.PD, est.PDPrime)
	}
}

func TestTheorem7ClosedFormMatchesBoundAndGrows(t *testing.T) {
	const eps = 1.0
	prev := 0.0
	for _, m := range []int{1, 2, 4, 8, 16} {
		ratio, bound, err := Theorem7Ratio(eps, m)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < bound*(1-1e-6) {
			t.Errorf("m=%d: ratio %v below the paper's lower bound %v", m, ratio, bound)
		}
		if ratio <= prev {
			t.Errorf("m=%d: ratio %v did not grow (prev %v)", m, ratio, prev)
		}
		prev = ratio
	}
	if _, _, err := Theorem7Ratio(0, 1); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, _, err := Theorem7Ratio(1, 0); err == nil {
		t.Error("m 0 accepted")
	}
}

func TestAlg4RatioExceedsAdvertisedEpsilon(t *testing.T) {
	const eps = 1.0
	// At c = m = 1 Algorithm 4 is close to private; by m = 8 the measured
	// loss must clearly exceed the advertised ε while staying below the
	// true guarantee ((1+6c)/4)ε.
	r1, err := Alg4Ratio(eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Alg4Ratio(eps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(r8 > r1) {
		t.Errorf("ratio not growing: m=1 %v, m=8 %v", r1, r8)
	}
	if math.Log(r8) <= eps {
		t.Errorf("m=8 loss %v does not exceed advertised eps", math.Log(r8))
	}
	trueBound := (1.0 + 6*8) / 4 * eps
	if math.Log(r8) > trueBound {
		t.Errorf("m=8 loss %v exceeds the true ((1+6c)/4)eps bound %v", math.Log(r8), trueBound)
	}
	if _, err := Alg4Ratio(0, 1); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := MixedPatternRatio(0, 1, 1); err == nil {
		t.Error("bad rho scale accepted")
	}
	if _, err := MixedPatternRatio(1, 1, 0); err == nil {
		t.Error("m 0 accepted")
	}
}

func TestTheorem6ClosedForm(t *testing.T) {
	const eps = 1.0
	for _, m := range []int{1, 2, 5, 10, 40} {
		numeric, closed, err := Theorem6Ratio(eps, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(numeric-closed)/closed > 1e-6 {
			t.Errorf("m=%d: numeric ratio %v != closed form %v", m, numeric, closed)
		}
	}
	// The ratio is unbounded in m: for any epsilon' there is an m beyond it.
	numeric, _, err := Theorem6Ratio(eps, 50)
	if err != nil {
		t.Fatal(err)
	}
	if numeric < math.Exp(20) {
		t.Errorf("ratio %v at m=50 should exceed e^20", numeric)
	}
	if _, _, err := Theorem6Ratio(1, 0); err == nil {
		t.Error("m 0 accepted")
	}
}

func TestLemma1RatioBoundHolds(t *testing.T) {
	const eps = 1.0
	for _, c := range []int{1, 3} {
		for _, ell := range []int{1, 5, 20, 100, 400} {
			ratio, bound, err := Lemma1Ratio(eps, ell, c)
			if err != nil {
				t.Fatal(err)
			}
			if ratio > bound*(1+1e-6) {
				t.Errorf("c=%d ell=%d: ratio %v exceeds Lemma-1 bound %v", c, ell, ratio, bound)
			}
			if ratio < 1 {
				t.Errorf("c=%d ell=%d: ratio %v below 1; D should dominate", c, ell, ratio)
			}
		}
	}
	// The ratio approaches but never crosses the bound as ell grows: this
	// is exactly the sequence the flawed Appendix-10.3 "proof" would push
	// past any bound, so staying below refutes that proof technique.
	r20, bound, _ := Lemma1Ratio(eps, 20, 1)
	r400, _, _ := Lemma1Ratio(eps, 400, 1)
	if !(r400 >= r20) {
		t.Errorf("ratio should be non-decreasing in ell: r(400)=%v < r(20)=%v", r400, r20)
	}
	if r400 > bound {
		t.Errorf("r(400)=%v exceeded bound %v", r400, bound)
	}
	if _, _, err := Lemma1Ratio(1, 0, 1); err == nil {
		t.Error("ell 0 accepted")
	}
	if _, _, err := Lemma1Ratio(1, 1, 0); err == nil {
		t.Error("c 0 accepted")
	}
}

func TestLemma1MonteCarlo(t *testing.T) {
	const eps = 1.0
	est, err := Run(Lemma1Scenario(eps, 4, 1), testTrials, 406)
	if err != nil {
		t.Fatal(err)
	}
	if est.PD == 0 || est.PDPrime == 0 {
		t.Fatalf("degenerate scenario: PD=%v PD'=%v", est.PD, est.PDPrime)
	}
	ratio, _, err := Lemma1Ratio(eps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.PD / est.PDPrime; math.Abs(got-ratio)/ratio > 0.15 {
		t.Errorf("empirical ratio %v vs closed form %v", got, ratio)
	}
	// A 95% lower bound must not "prove" more privacy loss than the
	// algorithm's actual guarantee.
	if est.EmpiricalEpsilon > eps {
		t.Errorf("empirical epsilon %v exceeds the DP guarantee %v", est.EmpiricalEpsilon, eps)
	}
}

func TestMixedAlg1ScenarioWithinBudget(t *testing.T) {
	const eps = 1.5
	scen := MixedAlg1Scenario(eps, 4, 2)
	est, err := Run(scen, testTrials, 407)
	if err != nil {
		t.Fatal(err)
	}
	if est.PD == 0 || est.PDPrime == 0 {
		t.Fatalf("degenerate: PD=%v PD'=%v", est.PD, est.PDPrime)
	}
	if est.EmpiricalEpsilon > eps {
		t.Errorf("empirical epsilon %v exceeds guarantee %v", est.EmpiricalEpsilon, eps)
	}
	// Reverse direction must hold too (DP is symmetric over neighbors).
	rev := scen
	rev.QD, rev.QDPrime = scen.QDPrime, scen.QD
	estRev, err := Run(rev, testTrials, 408)
	if err != nil {
		t.Fatal(err)
	}
	if estRev.EmpiricalEpsilon > eps {
		t.Errorf("reverse empirical epsilon %v exceeds guarantee %v", estRev.EmpiricalEpsilon, eps)
	}
}

func TestRunValidation(t *testing.T) {
	good := Theorem3Scenario(1)
	cases := map[string]func(Scenario) Scenario{
		"empty queries":   func(s Scenario) Scenario { s.QD, s.QDPrime = nil, nil; return s },
		"length mismatch": func(s Scenario) Scenario { s.QDPrime = []float64{1}; return s },
		"bad target":      func(s Scenario) Scenario { s.Target = []bool{true}; return s },
		"bad thresholds":  func(s Scenario) Scenario { s.Thresholds = []float64{0, 0, 0}; return s },
		"nil build":       func(s Scenario) Scenario { s.Build = nil; return s },
	}
	for name, mut := range cases {
		if _, err := Run(mut(good), 10, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Run(good, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Theorem7Scenario(1, 2), 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Theorem7Scenario(1, 2), 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.CountD != b.CountD || a.CountDPrime != b.CountDPrime {
		t.Fatal("same seed diverged")
	}
}

func TestMatchesTargetAbortedRun(t *testing.T) {
	// An algorithm that aborts before completing the pattern cannot match.
	alg := core.NewAlg1(rng.New(1), 1, 1, 1)
	// First query forces the single allowed ⊤; second query then cannot
	// be answered, so a 2-long all-⊤ target must not match.
	if matchesTarget(alg, []float64{1e9, 1e9}, []float64{0}, []bool{true, true}) {
		t.Fatal("aborted run reported as matching")
	}
}

func TestGPTTKappaProperties(t *testing.T) {
	// κ(z) > e^{ε₂} everywhere, peaks at the center, and decays toward
	// e^{ε₂} as |z| grows. (The paper's prose says the tail limit is 1;
	// the measured limit for this κ is e^{ε₂} — see the file comment in
	// gptt.go. The t-dependence the paper exposes is unaffected.)
	const eps2 = 0.5
	tailLimit := math.Exp(eps2)
	for _, z := range []float64{-30, -5, -1, 0, 1, 5, 30} {
		if k := GPTTKappa(eps2, z); k <= tailLimit*(1-1e-9) {
			t.Errorf("kappa(%v) = %v, want > e^eps2 = %v", z, k, tailLimit)
		}
	}
	if !(GPTTKappa(eps2, 0) > GPTTKappa(eps2, 10)) {
		t.Error("kappa should decay away from 0 (positive side)")
	}
	if !(GPTTKappa(eps2, 0) > GPTTKappa(eps2, -10)) {
		t.Error("kappa should decay away from 0 (negative side)")
	}
	if math.Abs(GPTTKappa(eps2, 40)-tailLimit) > 0.01 {
		t.Errorf("kappa(40) = %v, want ≈ e^eps2 = %v", GPTTKappa(eps2, 40), tailLimit)
	}
	// Center value is 2e^{ε₂} − 1 exactly.
	if got, want := GPTTKappa(eps2, 0), 2*math.Exp(eps2)-1; math.Abs(got-want) > 1e-12 {
		t.Errorf("kappa(0) = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad eps2 accepted")
		}
	}()
	GPTTKappa(0, 1)
}

func TestAlg1FakeProofStaysBounded(t *testing.T) {
	// The decisive demonstration that the GPTT proof technique is flawed:
	// applied to the ε-DP Algorithm 1, its bound κ(t)^t/2 must stay below
	// the Lemma-1 cap e^{ε/2} for every t — so the technique's concluding
	// "choose t large enough" step is impossible.
	const eps = 1.0
	points, err := Alg1FakeProofAnalyze(eps, []int{1, 2, 4, 8, 16, 32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	cap95 := math.Exp(eps / 2)
	for i, p := range points {
		if !(p.FakeBound <= p.TrueRatio*(1+1e-6)) {
			t.Errorf("t=%d: fake bound %v exceeds true ratio %v — chain broken", p.T, p.FakeBound, p.TrueRatio)
		}
		if !(p.TrueRatio <= cap95*(1+1e-6)) {
			t.Errorf("t=%d: true ratio %v exceeds Lemma-1 bound %v", p.T, p.TrueRatio, cap95)
		}
		if !(p.Kappa > 1) {
			t.Errorf("t=%d: kappa %v <= 1", p.T, p.Kappa)
		}
		if i > 0 {
			prev := points[i-1]
			if !(p.Alpha < prev.Alpha) {
				t.Errorf("alpha not decreasing at t=%d", p.T)
			}
			if !(p.Delta > prev.Delta) {
				t.Errorf("delta not increasing at t=%d", p.T)
			}
			if !(p.Kappa < prev.Kappa) {
				t.Errorf("kappa not decreasing at t=%d", p.T)
			}
		}
	}
	// κ(t) must decay toward 1 — the decay the flawed proof ignores.
	last := points[len(points)-1]
	if last.Kappa > 1.2 {
		t.Errorf("kappa(t=%d) = %v; expected decay toward 1", last.T, last.Kappa)
	}
	if _, err := Alg1FakeProofAnalyze(0, []int{1}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := Alg1FakeProofAnalyze(1, nil); err == nil {
		t.Error("empty ts accepted")
	}
	if _, err := Alg1FakeProofAnalyze(1, []int{-1}); err == nil {
		t.Error("negative t accepted")
	}
}

func TestGPTTAnalyzeReproducesProofGap(t *testing.T) {
	points, err := GPTTAnalyze(1.0, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if p.Alpha <= 0 || p.Alpha >= 1 {
			t.Errorf("t=%d: alpha %v out of (0,1)", p.T, p.Alpha)
		}
		if p.Kappa <= 1 {
			t.Errorf("t=%d: kappa %v <= 1", p.T, p.Kappa)
		}
		if i > 0 {
			prev := points[i-1]
			// The paper's dependence chain: α decreases and δ increases
			// with t, dragging κ = κ(δ(t)) down toward its tail limit.
			if !(p.Alpha < prev.Alpha) {
				t.Errorf("alpha not decreasing at t=%d", p.T)
			}
			if !(p.Delta > prev.Delta) {
				t.Errorf("delta not increasing at t=%d", p.T)
			}
			// Non-increasing with tolerance: κ(δ(t)) reaches the float
			// representation of its tail limit for large t.
			if p.Kappa > prev.Kappa*(1+1e-12) {
				t.Errorf("kappa increased at t=%d", p.T)
			}
			// The true ratio does diverge (GPTT really is ∞-DP).
			if !(p.TrueRatio > prev.TrueRatio) {
				t.Errorf("true ratio not growing at t=%d", p.T)
			}
		}
	}
	if _, err := GPTTAnalyze(0, []int{1}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := GPTTAnalyze(1, nil); err == nil {
		t.Error("empty ts accepted")
	}
	if _, err := GPTTAnalyze(1, []int{0}); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestIntegrateKnownValues(t *testing.T) {
	// ∫₀¹ x² = 1/3.
	got := integrate(func(x float64) float64 { return x * x }, 0, 1, 1000)
	if math.Abs(got-1.0/3) > 1e-10 {
		t.Errorf("integral = %v, want 1/3", got)
	}
	// Laplace pdf integrates to 1.
	got = integrate(func(x float64) float64 { return rng.LaplacePDF(x, 2) }, -200, 200, 40000)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("Laplace pdf integral = %v, want 1", got)
	}
	// Odd subinterval counts are rounded up internally.
	got = integrate(func(x float64) float64 { return x }, 0, 2, 3)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("integral = %v, want 2", got)
	}
}
