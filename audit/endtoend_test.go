package audit

import (
	"math"
	"testing"

	"github.com/dpgo/svt/dataset"
	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
	"github.com/dpgo/svt/metrics"
)

// neighborScores builds a real store and its remove-one neighbor and
// returns both support vectors. The removed transaction is chosen to
// contain a borderline item so the audited event actually moves.
func neighborScores(t *testing.T) (scoresD, scoresDP []float64, borderline int) {
	t.Helper()
	p := dataset.Profile{Name: "audit", Records: 3000, Items: 40, MeanTxLen: 4, Exponent: 0.9}
	store, err := dataset.Generate(p, 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	scoresD = store.SupportsFloat()
	// The borderline item for a top-5 selection is rank 5 or 6.
	top := metrics.TopIndices(scoresD, 6)
	borderline = top[4]
	// Find a transaction containing the borderline item to remove, so the
	// neighbor differs exactly where the selection is most sensitive.
	removed := -1
	for i := 0; i < store.NumRecords(); i++ {
		for _, it := range store.Transaction(i) {
			if int(it) == borderline {
				removed = i
				break
			}
		}
		if removed >= 0 {
			break
		}
	}
	if removed < 0 {
		t.Fatal("no transaction contains the borderline item")
	}
	neighbor := store.WithoutRecord(removed)
	if neighbor.NumRecords() != store.NumRecords()-1 {
		t.Fatal("neighbor has wrong size")
	}
	scoresDP = neighbor.SupportsFloat()
	// Sanity: supports differ by at most 1 per item (sensitivity 1).
	for i := range scoresD {
		if d := math.Abs(scoresD[i] - scoresDP[i]); d > 1 {
			t.Fatalf("item %d support moved by %v > 1", i, d)
		}
	}
	return scoresD, scoresDP, borderline
}

func TestEndToEndEMWithinBudget(t *testing.T) {
	scoresD, scoresDP, borderline := neighborScores(t)
	const eps = 1.0
	a := SelectionAudit{
		Name:         "em-top5-neighbor",
		ScoresD:      scoresD,
		ScoresDPrime: scoresDP,
		Run: func(src *rng.Source, scores []float64) []int {
			return core.SelectEM(src, scores, eps, 1, 5, true)
		},
		Event: ContainsIndex(borderline),
	}
	est, err := RunSelectionAudit(a, 20000, 901)
	if err != nil {
		t.Fatal(err)
	}
	if est.PD == 0 {
		t.Fatal("borderline item never selected; audit has no power")
	}
	if est.EmpiricalEpsilon > eps {
		t.Fatalf("EM end-to-end audit measured eps %v over budget %v", est.EmpiricalEpsilon, eps)
	}
	// Reverse direction too: DP is symmetric over the neighbor pair.
	rev := a
	rev.ScoresD, rev.ScoresDPrime = a.ScoresDPrime, a.ScoresD
	estRev, err := RunSelectionAudit(rev, 20000, 902)
	if err != nil {
		t.Fatal(err)
	}
	if estRev.EmpiricalEpsilon > eps {
		t.Fatalf("reverse audit measured eps %v over budget %v", estRev.EmpiricalEpsilon, eps)
	}
}

func TestEndToEndSVTWithinBudget(t *testing.T) {
	scoresD, scoresDP, borderline := neighborScores(t)
	const eps = 1.0
	threshold := scoresD[borderline] // maximally contentious threshold
	a := SelectionAudit{
		Name:         "svt-top5-neighbor",
		ScoresD:      scoresD,
		ScoresDPrime: scoresDP,
		Run: func(src *rng.Source, scores []float64) []int {
			eps1, eps2 := core.RatioCubeRootC.Split(eps, 5)
			return core.SelectSVT(src, scores, threshold, core.ReTrConfig{
				Eps1: eps1, Eps2: eps2, Delta: 1, C: 5, Monotonic: true,
			})
		},
		Event: ContainsIndex(borderline),
	}
	est, err := RunSelectionAudit(a, 20000, 903)
	if err != nil {
		t.Fatal(err)
	}
	if est.PD == 0 {
		t.Fatal("audit has no power")
	}
	if est.EmpiricalEpsilon > eps {
		t.Fatalf("SVT end-to-end audit measured eps %v over budget %v", est.EmpiricalEpsilon, eps)
	}
}

// A non-private "mechanism" (exact top-c) must be caught immediately: on a
// borderline item whose rank flips between the neighbors, membership is
// deterministic on each side.
func TestEndToEndCatchesNonPrivateSelection(t *testing.T) {
	// Construct scores where removing one record demotes the borderline
	// item out of the top-2.
	scoresD := []float64{10, 8, 7, 1}  // top-2 = {0, 1}
	scoresDP := []float64{10, 7, 8, 1} // top-2 = {0, 2} (items 1 and 2 swapped by the neighbor)
	a := SelectionAudit{
		Name:         "exact-top2",
		ScoresD:      scoresD,
		ScoresDPrime: scoresDP,
		Run: func(src *rng.Source, scores []float64) []int {
			return metrics.TopIndices(scores, 2)
		},
		Event: ContainsIndex(1),
	}
	est, err := RunSelectionAudit(a, 3000, 904)
	if err != nil {
		t.Fatal(err)
	}
	if est.CountDPrime != 0 || est.CountD != est.Trials {
		t.Fatalf("expected deterministic split, got %d/%d", est.CountD, est.CountDPrime)
	}
	// The Wilson upper bound keeps the certified ratio finite, but it must
	// be enormous: far beyond any plausible DP budget.
	if est.EmpiricalEpsilon < 5 {
		t.Fatalf("exact selection not flagged: certified eps only %v", est.EmpiricalEpsilon)
	}
}

func TestRunSelectionAuditValidation(t *testing.T) {
	good := SelectionAudit{
		ScoresD:      []float64{1, 2},
		ScoresDPrime: []float64{1, 2},
		Run:          func(src *rng.Source, scores []float64) []int { return nil },
		Event:        func([]int) bool { return false },
	}
	cases := map[string]func(SelectionAudit) SelectionAudit{
		"empty scores": func(a SelectionAudit) SelectionAudit { a.ScoresD, a.ScoresDPrime = nil, nil; return a },
		"mismatch":     func(a SelectionAudit) SelectionAudit { a.ScoresDPrime = []float64{1}; return a },
		"nil run":      func(a SelectionAudit) SelectionAudit { a.Run = nil; return a },
		"nil event":    func(a SelectionAudit) SelectionAudit { a.Event = nil; return a },
	}
	for name, mut := range cases {
		if _, err := RunSelectionAudit(mut(good), 10, 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := RunSelectionAudit(good, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestContainsIndex(t *testing.T) {
	ev := ContainsIndex(3)
	if !ev([]int{1, 3, 5}) {
		t.Error("missed present index")
	}
	if ev([]int{1, 2}) || ev(nil) {
		t.Error("false positive")
	}
}
