// Package audit verifies the paper's privacy claims empirically and
// analytically: it estimates output-probability ratios of the SVT variants
// on the paper's counterexamples (Theorems 3, 6 and 7), checks the Lemma-1
// bound on the corrected algorithm, and reproduces the §3.3/Appendix-10.3
// analysis of the flawed GPTT non-privacy proof.
//
// The Monte-Carlo half treats an algorithm as a black box: run it many
// times on two neighboring worlds, count how often a target output vector
// appears in each, and bound the privacy-loss ratio with Wilson confidence
// intervals. The analytical half evaluates the paper's closed-form
// integrals by numerical quadrature.
package audit

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/core"
	"github.com/dpgo/svt/internal/rng"
	"github.com/dpgo/svt/internal/stats"
)

// Scenario is a pair of neighboring worlds and a target output pattern for
// a Monte-Carlo privacy audit.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// QD and QDPrime are the query-answer vectors under the two worlds;
	// they must have equal length and differ by at most Delta per entry
	// (the neighboring-dataset promise the audited algorithm assumes).
	QD, QDPrime []float64
	// Thresholds has length 1 (shared) or len(QD) (per query).
	Thresholds []float64
	// Target is the audited output pattern: Target[i] is whether query i
	// should be reported above. Only indicator outputs are compared, so
	// scenarios must use indicator-only algorithms.
	Target []bool
	// Build constructs a fresh instance of the audited algorithm.
	Build func(src *rng.Source) core.Algorithm
}

// Estimate is the result of a Monte-Carlo audit.
type Estimate struct {
	Name   string
	Trials int
	// CountD / CountDPrime are how many trials produced the target output
	// in each world; PD / PDPrime the corresponding frequencies.
	CountD, CountDPrime int
	PD, PDPrime         float64
	// RatioLower is a conservative (95%) lower confidence bound on
	// PD/PDPrime: Wilson lower bound of PD over Wilson upper bound of
	// PDPrime. +Inf when the upper bound on PDPrime is zero.
	RatioLower float64
	// EmpiricalEpsilon is ln(RatioLower): the privacy loss the audit
	// PROVES (at 95% confidence) the mechanism exceeds.
	EmpiricalEpsilon float64
}

// Run executes the scenario for the given number of trials per world.
func Run(s Scenario, trials int, seed uint64) (Estimate, error) {
	if len(s.QD) == 0 || len(s.QD) != len(s.QDPrime) {
		return Estimate{}, fmt.Errorf("audit: query vectors must be equal-length and non-empty (got %d, %d)", len(s.QD), len(s.QDPrime))
	}
	if len(s.Target) != len(s.QD) {
		return Estimate{}, fmt.Errorf("audit: target length %d != query length %d", len(s.Target), len(s.QD))
	}
	if len(s.Thresholds) != 1 && len(s.Thresholds) != len(s.QD) {
		return Estimate{}, fmt.Errorf("audit: thresholds must have length 1 or %d", len(s.QD))
	}
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("audit: trials must be positive, got %d", trials)
	}
	if s.Build == nil {
		return Estimate{}, fmt.Errorf("audit: nil Build")
	}
	master := rng.New(seed)
	countD := countMatches(s, s.QD, trials, master)
	countDP := countMatches(s, s.QDPrime, trials, master)

	est := Estimate{
		Name:        s.Name,
		Trials:      trials,
		CountD:      countD,
		CountDPrime: countDP,
		PD:          float64(countD) / float64(trials),
		PDPrime:     float64(countDP) / float64(trials),
	}
	loD, _ := stats.WilsonInterval(countD, trials, 0.05)
	_, hiDP := stats.WilsonInterval(countDP, trials, 0.05)
	switch {
	case hiDP <= 0: // degenerate interval: avoid dividing by zero
		est.RatioLower = math.Inf(1)
	default:
		est.RatioLower = loD / hiDP
	}
	est.EmpiricalEpsilon = math.Log(est.RatioLower)
	return est, nil
}

// countMatches runs the algorithm on one world and counts target matches.
func countMatches(s Scenario, queries []float64, trials int, master *rng.Source) int {
	count := 0
	for t := 0; t < trials; t++ {
		alg := s.Build(master.Split())
		if matchesTarget(alg, queries, s.Thresholds, s.Target) {
			count++
		}
	}
	return count
}

// matchesTarget feeds the queries and compares the indicator pattern.
func matchesTarget(alg core.Algorithm, queries, thresholds []float64, target []bool) bool {
	for i, q := range queries {
		th := thresholds[0]
		if len(thresholds) > 1 {
			th = thresholds[i]
		}
		ans, ok := alg.Next(q, th)
		if !ok {
			// Algorithm aborted before producing the full pattern.
			return false
		}
		if ans.Above != target[i] {
			return false
		}
	}
	return true
}

// Theorem3Scenario is the paper's two-query counterexample showing that
// Algorithm 5 (Stoddard et al.) is not ε′-DP for any finite ε′: with T=0,
// Δ=1, q(D)=⟨0,1⟩, q(D′)=⟨1,0⟩ and target ⟨⊥,⊤⟩, the output has positive
// probability on D and zero probability on D′.
func Theorem3Scenario(epsilon float64) Scenario {
	return Scenario{
		Name:       fmt.Sprintf("thm3/alg5(eps=%g)", epsilon),
		QD:         []float64{0, 1},
		QDPrime:    []float64{1, 0},
		Thresholds: []float64{0},
		Target:     []bool{false, true},
		Build: func(src *rng.Source) core.Algorithm {
			return core.NewAlg5(src, epsilon, 1)
		},
	}
}

// Theorem7Scenario is the counterexample showing Algorithm 6 (Chen et al.)
// is not ε′-DP for any finite ε′: 2m queries with q(D)=0²ᵐ,
// q(D′)=1ᵐ(−1)ᵐ and target ⊥ᵐ⊤ᵐ; the probability ratio grows like
// e^{mε/2}.
func Theorem7Scenario(epsilon float64, m int) Scenario {
	qd := make([]float64, 2*m)
	qdp := make([]float64, 2*m)
	target := make([]bool, 2*m)
	for i := 0; i < m; i++ {
		qdp[i] = 1
		qdp[m+i] = -1
		target[m+i] = true
	}
	return Scenario{
		Name:       fmt.Sprintf("thm7/alg6(eps=%g,m=%d)", epsilon, m),
		QD:         qd,
		QDPrime:    qdp,
		Thresholds: []float64{0},
		Target:     target,
		Build: func(src *rng.Source) core.Algorithm {
			return core.NewAlg6(src, epsilon, 1)
		},
	}
}

// Lemma1Scenario is the sanity check on the corrected Algorithm 1: the
// all-negative output ⊥^ℓ with q(D)=0^ℓ and q(D′)=Δ^ℓ=1^ℓ. Lemma 1 proves
// the ratio is at most e^{ε/2} (= e^{ε₁}); the audit should therefore find
// an empirical epsilon well below the total ε.
func Lemma1Scenario(epsilon float64, ell, c int) Scenario {
	qd := make([]float64, ell)
	qdp := make([]float64, ell)
	target := make([]bool, ell)
	for i := range qdp {
		qdp[i] = 1
	}
	return Scenario{
		Name:       fmt.Sprintf("lemma1/alg1(eps=%g,l=%d,c=%d)", epsilon, ell, c),
		QD:         qd,
		QDPrime:    qdp,
		Thresholds: []float64{0},
		Target:     target,
		Build: func(src *rng.Source) core.Algorithm {
			return core.NewAlg1(src, epsilon, 1, c)
		},
	}
}

// MixedAlg1Scenario audits Algorithm 1 on an output mixing ⊥ and ⊤, the
// regime Theorem 2 covers: q(D)=⟨0,...,0⟩, q(D′)=⟨1,...,1⟩ with target
// ⊥^{ℓ-1}⊤. The ratio must stay within e^ε.
func MixedAlg1Scenario(epsilon float64, ell, c int) Scenario {
	s := Lemma1Scenario(epsilon, ell, c)
	s.Name = fmt.Sprintf("thm2-mixed/alg1(eps=%g,l=%d,c=%d)", epsilon, ell, c)
	s.Target[ell-1] = true
	return s
}
