package audit

import (
	"fmt"
	"math"

	"github.com/dpgo/svt/internal/rng"
)

// integrate computes ∫ₐᵇ f with composite Simpson on n subintervals
// (n made even automatically). The audited integrands are smooth and
// light-tailed, so fixed-grid Simpson at a few thousand points reaches far
// beyond the accuracy the comparisons need.
func integrate(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

const quadPoints = 40000

// Theorem3Probabilities returns the closed-form output probabilities of the
// paper's Theorem-3 counterexample for Algorithm 5: with T=0, Δ=1,
// q(D)=⟨0,1⟩, q(D′)=⟨1,0⟩ and a=⟨⊥,⊤⟩,
//
//	Pr[A(D)=a]  = ∫₀¹ Pr[ρ=z] dz = F_ρ(1) − F_ρ(0) > 0,
//	Pr[A(D′)=a] = 0,
//
// where ρ ~ Lap(2/ε) (Algorithm 5 uses ε₁ = ε/2 and Δ = 1). The ratio is
// therefore infinite: Algorithm 5 is ∞-DP.
func Theorem3Probabilities(epsilon float64) (pD, pDPrime float64, err error) {
	if !(epsilon > 0) {
		return 0, 0, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	scale := 2 / epsilon // Δ/ε₁ with Δ=1, ε₁=ε/2
	pD = rng.LaplaceCDF(1, scale) - rng.LaplaceCDF(0, scale)
	return pD, 0, nil
}

// Theorem6Ratio numerically evaluates the two integrals (13) and (14) of
// the paper's Appendix 10.1 — the probability (density) of Algorithm 3
// producing output ⊥ᵐ0 on q(D)=0ᵐ∆ versus q(D′)=∆ᵐ0 with c=1, T=0, Δ=1 —
// and returns their ratio together with the paper's closed form
// e^{(m−1)ε/2}. The two must agree; both grow without bound in m, proving
// Algorithm 3 is ∞-DP.
func Theorem6Ratio(epsilon float64, m int) (numeric, closedForm float64, err error) {
	if !(epsilon > 0) {
		return 0, 0, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	if m < 1 {
		return 0, 0, fmt.Errorf("audit: m must be >= 1, got %d", m)
	}
	// Algorithm 3 with c=1: ρ ~ Lap(Δ/ε₁) = Lap(2/ε) and ν ~ Lap(cΔ/ε₂) =
	// Lap(2/ε). F is the query-noise CDF.
	rhoScale := 2 / epsilon
	nuScale := 2 / epsilon
	F := func(x float64) float64 { return rng.LaplaceCDF(x, nuScale) }
	pRho := func(z float64) float64 { return rng.LaplacePDF(z, rhoScale) }
	// Integration range: integrands vanish for z > 0 (the paper's key
	// point: the numeric output 0 reveals ρ ≤ 0) and decay like the
	// Laplace tails below.
	lo := -60 * rhoScale
	numer := integrate(func(z float64) float64 {
		return pRho(z) * math.Pow(F(z), float64(m))
	}, lo, 0, quadPoints)
	denom := integrate(func(z float64) float64 {
		return pRho(z) * math.Pow(F(z-1), float64(m))
	}, lo, 0, quadPoints)
	// The common factor (ε/4Δ) cancels; (13) carries an extra e^{-ε/2}.
	numeric = math.Exp(-epsilon/2) * numer / denom
	closedForm = math.Exp(float64(m-1) * epsilon / 2)
	return numeric, closedForm, nil
}

// MixedPatternRatio numerically evaluates
// Pr[A(D)=⊥ᵐ⊤ᵐ]/Pr[A(D′)=⊥ᵐ⊤ᵐ] for a cutoff-free (or cutoff ≥ m)
// threshold tester with threshold noise Lap(rhoScale) and query noise
// Lap(nuScale), on the Theorem-7 construction q(D)=0²ᵐ, q(D′)=1ᵐ(−1)ᵐ,
// T=0, Δ=1. It is the common engine behind the Theorem-7 and Algorithm-4
// verdicts.
func MixedPatternRatio(rhoScale, nuScale float64, m int) (float64, error) {
	if !(rhoScale > 0) || !(nuScale > 0) {
		return 0, fmt.Errorf("audit: noise scales must be positive, got %v and %v", rhoScale, nuScale)
	}
	if m < 1 {
		return 0, fmt.Errorf("audit: m must be >= 1, got %d", m)
	}
	F := func(x float64) float64 { return rng.LaplaceCDF(x, nuScale) }
	pRho := func(z float64) float64 { return rng.LaplacePDF(z, rhoScale) }
	span := 60 * math.Max(rhoScale, nuScale)
	mf := float64(m)
	numer := integrate(func(z float64) float64 {
		return pRho(z) * math.Pow(F(z)*(1-F(z)), mf)
	}, -span, span, quadPoints)
	denom := integrate(func(z float64) float64 {
		return pRho(z) * math.Pow(F(z-1)*(1-F(z+1)), mf)
	}, -span, span, quadPoints)
	return numer / denom, nil
}

// Theorem7Ratio numerically evaluates the probability ratio of the paper's
// Theorem-7 counterexample for Algorithm 6 — output ⊥ᵐ⊤ᵐ on q(D)=0²ᵐ
// versus q(D′)=1ᵐ(−1)ᵐ with T=0, Δ=1 — and returns it with the paper's
// lower bound e^{mε/2}. The ratio must meet the bound and grows without
// bound in m, proving Algorithm 6 (and GPTT) is ∞-DP.
func Theorem7Ratio(epsilon float64, m int) (numeric, lowerBound float64, err error) {
	if !(epsilon > 0) {
		return 0, 0, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	// Algorithm 6: ρ ~ Lap(Δ/ε₁) = Lap(2/ε), ν ~ Lap(Δ/ε₂) = Lap(2/ε).
	numeric, err = MixedPatternRatio(2/epsilon, 2/epsilon, m)
	if err != nil {
		return 0, 0, err
	}
	return numeric, math.Exp(float64(m) * epsilon / 2), nil
}

// Alg4Ratio numerically evaluates the same mixed-pattern ratio for
// Algorithm 4 (Lee & Clifton) with cutoff c = m: ρ ~ Lap(Δ/ε₁) = Lap(4/ε)
// and ν ~ Lap(Δ/ε₂) = Lap(4/(3ε)). Algorithm 4 is ((1+6c)/4)ε-DP, so the
// ratio is finite for each m but exceeds e^ε once m is large enough —
// exactly the gap between the advertised and the actual guarantee.
func Alg4Ratio(epsilon float64, m int) (float64, error) {
	if !(epsilon > 0) {
		return 0, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	return MixedPatternRatio(4/epsilon, 4/(3*epsilon), m)
}

// Lemma1Ratio numerically evaluates Pr[A(D)=⊥^ℓ]/Pr[A(D′)=⊥^ℓ] for
// Algorithm 1 with q(D)=0^ℓ, q(D′)=1^ℓ, T=0 and Δ=1, and returns it with
// Lemma 1's bound e^{ε₁} = e^{ε/2}. The ratio must respect the bound for
// every ℓ — this is exactly the quantity the flawed "proof" of Appendix
// 10.3 would drive to infinity, so holding the bound for large ℓ
// demonstrates that proof technique is wrong.
func Lemma1Ratio(epsilon float64, ell, c int) (numeric, bound float64, err error) {
	if !(epsilon > 0) {
		return 0, 0, fmt.Errorf("audit: epsilon must be positive, got %v", epsilon)
	}
	if ell < 1 {
		return 0, 0, fmt.Errorf("audit: ell must be >= 1, got %d", ell)
	}
	if c < 1 {
		return 0, 0, fmt.Errorf("audit: c must be >= 1, got %d", c)
	}
	rhoScale := 2 / epsilon                 // Δ/ε₁
	nuScale := 2 * float64(c) * 2 / epsilon // 2cΔ/ε₂ with ε₂=ε/2
	F := func(x float64) float64 { return rng.LaplaceCDF(x, nuScale) }
	pRho := func(z float64) float64 { return rng.LaplacePDF(z, rhoScale) }
	span := 60 * math.Max(rhoScale, nuScale)
	lf := float64(ell)
	numer := integrate(func(z float64) float64 {
		// Pr[0 + ν < 0 + z]^ℓ = F(z)^ℓ
		return pRho(z) * math.Pow(F(z), lf)
	}, -span, span, quadPoints)
	denom := integrate(func(z float64) float64 {
		// Pr[1 + ν < 0 + z]^ℓ = F(z−1)^ℓ
		return pRho(z) * math.Pow(F(z-1), lf)
	}, -span, span, quadPoints)
	return numer / denom, math.Exp(epsilon / 2), nil
}
