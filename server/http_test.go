package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestAPI(t *testing.T, mcfg ManagerConfig, acfg APIConfig) (*httptest.Server, *SessionManager) {
	t.Helper()
	mgr := newTestManager(t, mcfg)
	srv := httptest.NewServer(NewAPI(mgr, acfg))
	t.Cleanup(srv.Close)
	return srv, mgr
}

// doJSON posts body (marshalled) and decodes the response into out when
// non-nil, returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base string, p CreateParams) CreateResponse {
	t.Helper()
	var created CreateResponse
	if code := doJSON(t, http.MethodPost, base+"/v1/sessions", p, &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.ID == "" {
		t.Fatal("create: empty session id")
	}
	return created
}

func TestHTTPSessionLifecycle(t *testing.T) {
	srv, _ := newTestAPI(t, ManagerConfig{}, APIConfig{})
	created := createSession(t, srv.URL, CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 2, Threshold: ptr(1), Seed: 7,
		AnswerFraction: 0.2, TTLSeconds: 120,
	})
	if created.Mechanism != MechSparse || created.Remaining != 2 || created.Halted {
		t.Errorf("create response %+v", created)
	}
	if created.TTLSeconds != 120 {
		t.Errorf("ttl %v, want 120", created.TTLSeconds)
	}
	if math.Abs(created.Budget.Total-1) > 1e-9 || math.Abs(created.Budget.Eps3-0.2) > 1e-9 {
		t.Errorf("budget %+v", created.Budget)
	}

	url := srv.URL + "/v1/sessions/" + created.ID

	// Single query (inline form), then a batch that halts mid-way.
	var res BatchResult
	if code := doJSON(t, http.MethodPost, url+"/query", map[string]any{"query": -1e12}, &res); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if len(res.Results) != 1 || res.Results[0].Above {
		t.Errorf("single query result %+v", res)
	}
	batch := map[string]any{"queries": []map[string]any{
		{"query": 1e12}, {"query": 1e12}, {"query": 1e12},
	}}
	if code := doJSON(t, http.MethodPost, url+"/query", batch, &res); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(res.Results) != 2 || !res.Halted || res.Remaining != 0 {
		t.Errorf("batch result %+v", res)
	}
	// ε₃ numeric releases accompany positive outcomes.
	for _, r := range res.Results {
		if !r.Above || !r.Numeric {
			t.Errorf("positive outcome without numeric release: %+v", r)
		}
	}

	var st SessionStatus
	if code := doJSON(t, http.MethodGet, url, nil, &st); code != http.StatusOK {
		t.Fatalf("status: status %d", code)
	}
	if st.Answered != 3 || st.Positives != 2 || st.Remaining != 0 || !st.Halted {
		t.Errorf("session status %+v", st)
	}

	if code := doJSON(t, http.MethodDelete, url, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, url, nil, nil); code != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", code)
	}
	if code := doJSON(t, http.MethodPost, url+"/query", map[string]any{"query": 1}, nil); code != http.StatusNotFound {
		t.Fatalf("query after delete: %d, want 404", code)
	}
}

// TestHTTPStatusBudgetsAllMechanisms pins the acceptance criterion:
// status reports remaining positives and the (ε₁, ε₂, ε₃) split for
// every servable mechanism.
func TestHTTPStatusBudgetsAllMechanisms(t *testing.T) {
	srv, _ := newTestAPI(t, ManagerConfig{}, APIConfig{})
	cases := []CreateParams{
		{Mechanism: MechSparse, Epsilon: 1.5, MaxPositives: 4, Threshold: ptr(10), Seed: 5},
		{Mechanism: MechProposed, Epsilon: 1.5, MaxPositives: 4, Threshold: ptr(10), Seed: 5},
		{Mechanism: MechDPBook, Epsilon: 1.5, MaxPositives: 4, Threshold: ptr(10), Seed: 5},
		{Mechanism: MechPMW, Epsilon: 1.5, MaxPositives: 4, Threshold: ptr(50),
			Histogram: []float64{100, 100, 100, 100, 500, 100}, Seed: 5},
	}
	for _, p := range cases {
		t.Run(string(p.Mechanism), func(t *testing.T) {
			created := createSession(t, srv.URL, p)
			var st SessionStatus
			if code := doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/"+created.ID, nil, &st); code != http.StatusOK {
				t.Fatalf("status: %d", code)
			}
			if st.Remaining != 4 {
				t.Errorf("remaining %d, want 4", st.Remaining)
			}
			b := st.Budget
			if math.Abs(b.Eps1+b.Eps2+b.Eps3-1.5) > 1e-9 || math.Abs(b.Total-1.5) > 1e-9 {
				t.Errorf("budget %+v does not sum to 1.5", b)
			}
		})
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestAPI(t, ManagerConfig{}, APIConfig{MaxBodyBytes: 4096, MaxBatch: 4})
	readErr := func(resp *http.Response) ErrorBody {
		t.Helper()
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("error content-type %q", ct)
		}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("error body not JSON: %v", err)
		}
		return eb
	}

	// Unknown endpoint → JSON 404.
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	if eb := readErr(resp); resp.StatusCode != http.StatusNotFound || eb.Error.Code != CodeNotFound {
		t.Errorf("unknown endpoint: %d %+v", resp.StatusCode, eb)
	}

	// Wrong method → JSON 405 with Allow.
	resp, err = http.Get(srv.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow %q", allow)
	}
	if eb := readErr(resp); resp.StatusCode != http.StatusMethodNotAllowed || eb.Error.Code != CodeMethodNotAllowed {
		t.Errorf("wrong method: %d %+v", resp.StatusCode, eb)
	}

	// Malformed JSON → 400.
	resp, err = http.Post(srv.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if eb := readErr(resp); resp.StatusCode != http.StatusBadRequest || eb.Error.Code != CodeBadRequest {
		t.Errorf("malformed JSON: %d %+v", resp.StatusCode, eb)
	}

	// Unknown mechanism → 400.
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateParams{Mechanism: "stoddard", Epsilon: 1, MaxPositives: 1}, nil); code != http.StatusBadRequest {
		t.Errorf("non-private mechanism: %d", code)
	}

	// Oversized body → 413.
	big := strings.NewReader(`{"mechanism":"sparse","pad":"` + strings.Repeat("x", 8192) + `"}`)
	resp, err = http.Post(srv.URL+"/v1/sessions", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	if eb := readErr(resp); resp.StatusCode != http.StatusRequestEntityTooLarge || eb.Error.Code != CodeTooLarge {
		t.Errorf("oversized body: %d %+v", resp.StatusCode, eb)
	}

	// Over-cap batch → 413; empty batch → 400.
	created := createSession(t, srv.URL, CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 5, Threshold: ptr(1), Seed: 9,
	})
	qurl := srv.URL + "/v1/sessions/" + created.ID + "/query"
	over := queryRequest{Queries: make([]QueryItem, 5)}
	if code := doJSON(t, http.MethodPost, qurl, over, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap batch: %d", code)
	}
	if code := doJSON(t, http.MethodPost, qurl, queryRequest{Queries: []QueryItem{}}, nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: %d", code)
	}

	// Non-finite query → 400, and the session survives it.
	if code := doJSON(t, http.MethodPost, qurl, map[string]any{"query": "oops"}, nil); code != http.StatusBadRequest {
		t.Errorf("non-numeric query: %d", code)
	}
	if code := doJSON(t, http.MethodPost, qurl, map[string]any{"query": 0.0}, nil); code != http.StatusOK {
		t.Errorf("query after bad request: %d", code)
	}
}

func TestHTTPSessionCap(t *testing.T) {
	srv, _ := newTestAPI(t, ManagerConfig{MaxSessions: 1}, APIConfig{})
	createSession(t, srv.URL, CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1, Threshold: ptr(1)})
	code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions",
		CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1, Threshold: ptr(1)}, nil)
	if code != http.StatusTooManyRequests {
		t.Errorf("over-cap create: %d, want 429", code)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	srv, _ := newTestAPI(t, ManagerConfig{Shards: 4}, APIConfig{})
	for i := 0; i < 3; i++ {
		created := createSession(t, srv.URL, CreateParams{
			Mechanism: MechProposed, Epsilon: 1, MaxPositives: 3, Threshold: ptr(1), Seed: uint64(i + 1),
		})
		var res BatchResult
		if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/query",
			queryRequest{Queries: []QueryItem{{Query: 0}, {Query: 0}}}, &res); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}
	var st Stats
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Live != 3 || st.Created != 3 || st.Queries[MechProposed] != 6 || st.TotalQueries != 6 {
		t.Errorf("stats %+v", st)
	}
	var health HealthResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: %d %+v", code, health)
	}
}

// TestHTTPConcurrentSessions hammers the full HTTP stack — creates,
// queries, status reads, deletes and stats — from many goroutines;
// run with -race.
func TestHTTPConcurrentSessions(t *testing.T) {
	srv, mgr := newTestAPI(t, ManagerConfig{Shards: 8}, APIConfig{})
	const workers = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			created := createSession(t, srv.URL, CreateParams{
				Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1000,
				Threshold: ptr(0.5), Seed: uint64(w + 1),
			})
			url := srv.URL + "/v1/sessions/" + created.ID
			for i := 0; i < 25; i++ {
				var res BatchResult
				if code := doJSON(t, http.MethodPost, url+"/query",
					map[string]any{"query": float64(i)}, &res); code != http.StatusOK {
					t.Errorf("worker %d query %d: status %d", w, i, code)
					return
				}
				if i%10 == 0 {
					doJSON(t, http.MethodGet, url, nil, nil)
					doJSON(t, http.MethodGet, srv.URL+"/v1/stats", nil, nil)
				}
			}
			if w%2 == 0 {
				if code := doJSON(t, http.MethodDelete, url, nil, nil); code != http.StatusNoContent {
					t.Errorf("worker %d delete: status %d", w, code)
				}
			}
		}(w)
	}
	wg.Wait()
	st := mgr.Stats()
	if got := st.Queries[MechSparse]; got != uint64(workers*25) {
		t.Errorf("query counter %d, want %d", got, workers*25)
	}
	if st.Live != workers/2 {
		t.Errorf("live %d, want %d", st.Live, workers/2)
	}
	if st.Created != uint64(workers) {
		t.Errorf("created %d, want %d", st.Created, workers)
	}
}

// TestHTTPMechanismsDiscovery pins the registry-driven GET /v1/mechanisms
// endpoint: every registered mechanism appears, sorted, with its
// capability flags, and the endpoint is read-only.
func TestHTTPMechanismsDiscovery(t *testing.T) {
	srv, mgr := newTestAPI(t, ManagerConfig{}, APIConfig{})
	var resp MechanismsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/mechanisms", nil, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Mechanisms) != len(mgr.Mechanisms()) || len(resp.Mechanisms) < 5 {
		t.Fatalf("got %d mechanisms, want the registry's %d (≥5 built-ins)", len(resp.Mechanisms), len(mgr.Mechanisms()))
	}
	byName := make(map[string]MechanismInfo, len(resp.Mechanisms))
	for i, mi := range resp.Mechanisms {
		byName[mi.Name] = mi
		if i > 0 && resp.Mechanisms[i-1].Name >= mi.Name {
			t.Errorf("mechanism list not sorted: %q before %q", resp.Mechanisms[i-1].Name, mi.Name)
		}
		if mi.Summary == "" || !mi.Seedable {
			t.Errorf("mechanism %q: missing summary or seedable flag: %+v", mi.Name, mi)
		}
	}
	checks := map[string]MechanismInfo{
		"sparse": {NumericReleases: true, MonotonicRefinement: true, Seedable: true},
		"esvt":   {MonotonicRefinement: true, Seedable: true},
		"pmw":    {NumericReleases: true, Seedable: true, NeedsHistogram: true},
		"dpbook": {Seedable: true},
	}
	for name, want := range checks {
		got, ok := byName[name]
		if !ok {
			t.Errorf("mechanism %q missing from discovery", name)
			continue
		}
		got.Summary = ""
		got.Name = ""
		if got != want {
			t.Errorf("%s capabilities %+v, want %+v", name, got, want)
		}
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/mechanisms", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/mechanisms: status %d, want 405", code)
	}
}

// TestStatsQueriesKeyedByRegistry pins the registry-driven per-mechanism
// counters: the key set of stats.queries is exactly the registered
// mechanism list, zero counts included.
func TestStatsQueriesKeyedByRegistry(t *testing.T) {
	srv, mgr := newTestAPI(t, ManagerConfig{}, APIConfig{})
	created := createSession(t, srv.URL, CreateParams{
		Mechanism: Mechanism("esvt"), Epsilon: 1, MaxPositives: 5, Threshold: ptr(0.5), Seed: 3,
	})
	var batch BatchResult
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+created.ID+"/query",
		map[string]any{"queries": []map[string]any{{"query": -1e12}, {"query": -1e12}}}, &batch); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	var st Stats
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if len(st.Queries) != len(mgr.Mechanisms()) {
		t.Fatalf("stats has %d query counters, want one per registered mechanism (%d)", len(st.Queries), len(mgr.Mechanisms()))
	}
	for _, mi := range mgr.Mechanisms() {
		if _, ok := st.Queries[Mechanism(mi.Name)]; !ok {
			t.Errorf("stats missing counter for registered mechanism %q", mi.Name)
		}
	}
	if st.Queries[Mechanism("esvt")] != 2 || st.TotalQueries != 2 {
		t.Errorf("queries %+v totalQueries %d, want esvt=2 total=2", st.Queries, st.TotalQueries)
	}
}
