package server

// Seeded-session crash-reproducibility tests: the Seed contract promises a
// deterministic answer stream, and codec v2 makes that contract survive a
// crash. A seeded session killed mid-stream and recovered must produce a
// remaining answer stream BIT-IDENTICAL to an uninterrupted run — the
// re-seeded noise sources are fast-forwarded past every journaled draw, so
// the continuation uses exactly the draws the uninterrupted run would have,
// and never re-emits one the analyst may already have observed.

import (
	"testing"

	"github.com/dpgo/svt/mech"
	"github.com/dpgo/svt/store"
)

// replayMechanisms is every servable mechanism, taken from the default
// registry so a newly registered mechanism is automatically covered by the
// crash-replay matrix (esvt rides in exactly this way — no session.go or
// hand-maintained list involved).
func replayMechanisms() []Mechanism {
	var out []Mechanism
	for _, name := range mech.Default.Names() {
		out = append(out, Mechanism(name))
	}
	return out
}

// replayScript builds a deterministic, mechanism-appropriate query script
// whose outcomes genuinely depend on the noise: thresholds sit on top of
// the query values, so each comparison is a coin flip decided by the
// Laplace draws.
func replayScript(mech Mechanism, n int) [][]QueryItem {
	script := make([][]QueryItem, n)
	for i := range script {
		if mech == MechPMW {
			script[i] = []QueryItem{{Buckets: []int{i % 6, (i + 3) % 6}}}
			continue
		}
		// Alternate tight and loose margins around the threshold.
		q := float64(i%5) - 2
		script[i] = []QueryItem{{Query: q, Threshold: ptr(0.0)}}
	}
	return script
}

// replayParams returns seeded create parameters for every mechanism, sized
// so the script sees positives (dpbook's ρ resampling, pmw's reweights)
// without halting too early.
func replayParams(mech Mechanism, seed uint64) CreateParams {
	p := CreateParams{
		Mechanism:    mech,
		Epsilon:      1,
		MaxPositives: 12,
		Threshold:    ptr(0.0),
		Seed:         seed,
	}
	if mech == MechSparse {
		p.AnswerFraction = 0.3 // exercise ε₃ numeric releases too
	}
	if mech == MechPMW {
		p.Epsilon = 2
		p.MaxPositives = 6
		p.Threshold = ptr(20.0)
		p.Histogram = []float64{100, 10, 250, 40, 80, 20}
	}
	return p
}

// runScript feeds the script to the session and returns the flattened
// result stream.
func runScript(t *testing.T, m *SessionManager, id string, script [][]QueryItem) []QueryResult {
	t.Helper()
	var out []QueryResult
	for _, batch := range script {
		res := mustQuery(t, m, id, batch)
		out = append(out, res.Results...)
	}
	return out
}

// resultsEqual compares two released answer streams bit-for-bit.
func resultsEqual(a, b []QueryResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSeededSessionReplayBitIdentical(t *testing.T) {
	const n, kill = 40, 13
	for _, mech := range replayMechanisms() {
		for _, snapshotBeforeKill := range []bool{false, true} {
			name := string(mech)
			if snapshotBeforeKill {
				name += "/snapshotted"
			}
			t.Run(name, func(t *testing.T) {
				for seed := uint64(1); seed <= 3; seed++ {
					script := replayScript(mech, n)
					params := replayParams(mech, seed)

					// Uninterrupted reference run: no store at all.
					ref := newTestManager(t, ManagerConfig{SnapshotInterval: -1, Store: store.NewMem()})
					refSess := mustCreate(t, ref, params)
					want := runScript(t, ref, refSess.ID(), script)

					// Interrupted run: same seed, killed after `kill`
					// batches, recovered, then continued.
					dir := t.TempDir()
					m1, st := openWALManager(t, dir)
					sess := mustCreate(t, m1, params)
					got := runScript(t, m1, sess.ID(), script[:kill])
					if snapshotBeforeKill {
						if err := m1.SnapshotNow(); err != nil {
							t.Fatal(err)
						}
						// A couple more batches so the journal tail after
						// the snapshot is non-empty when we crash.
						got = append(got, runScript(t, m1, sess.ID(), script[kill:kill+2])...)
					}
					m1.Close() // crash: no final snapshot, no store close
					_ = st

					m2, _ := openWALManager(t, dir)
					rest := script[kill:]
					if snapshotBeforeKill {
						rest = script[kill+2:]
					}
					got = append(got, runScript(t, m2, sess.ID(), rest)...)

					if !resultsEqual(got, want) {
						t.Fatalf("seed %d: killed-and-recovered stream diverged from the uninterrupted run:\n got  %+v\n want %+v",
							seed, got, want)
					}
				}
			})
		}
	}
}

// TestSeededSessionNeverReplaysPreCrashNoise is the privacy side of the
// same mechanism: the draws consumed before the kill must NOT reappear
// after recovery. With replay-from-0 the first post-restart comparison
// would reuse the first pre-crash draw; with fast-forward the post-restart
// stream picks up where the pre-crash stream stopped.
func TestSeededSessionNeverReplaysPreCrashNoise(t *testing.T) {
	params := replayParams(MechSparse, 99)
	script := replayScript(MechSparse, 24)

	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)
	sess := mustCreate(t, m1, params)
	pre := runScript(t, m1, sess.ID(), script[:12])
	m1.Close() // crash

	m2, _ := openWALManager(t, dir)
	replayed := runScript(t, m2, sess.ID(), script[:12])

	// Re-running the SAME queries must not reproduce the pre-crash answers:
	// that would mean the noise stream restarted at position 0. (Each
	// comparison is a near-fair coin, so 12 identical outcomes by chance is
	// ~2^-12; the numeric ε₃ releases make a coincidental match impossible.)
	if resultsEqual(pre, replayed) {
		t.Fatal("recovered session replayed its pre-crash noise stream; the realized threshold is exposed")
	}
}

// TestCrashBetweenRotationAndBaselineWrite kills the server in the
// two-phase snapshot's vulnerable window: the journal segment has rotated
// but the baseline was never written. Recovery must fall back to the
// previous generation and replay both segments, losing nothing.
func TestCrashBetweenRotationAndBaselineWrite(t *testing.T) {
	dir := t.TempDir()
	m1, st := openWALManager(t, dir)
	s := mustCreate(t, m1, sparseParams())
	mustQuery(t, m1, s.ID(), surePositive())
	if err := m1.SnapshotNow(); err != nil { // generation 2, committed
		t.Fatal(err)
	}
	mustQuery(t, m1, s.ID(), surePositive())

	// Start a snapshot and crash before its baseline write: rotate the
	// segment exactly as SnapshotNow's locked phase would, then abandon it.
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Traffic keeps flowing into the rotated segment.
	mustQuery(t, m1, s.ID(), surePositive())
	mustQuery(t, m1, s.ID(), sureNegative())
	want := durableStatus(mustStatus(t, m1, s.ID()))
	m1.Close() // crash: snap for the rotated generation never written

	m2, _ := openWALManager(t, dir)
	got := durableStatus(mustStatus(t, m2, s.ID()))
	if got != want {
		t.Fatalf("recovery across a torn snapshot generation lost events:\n got  %+v\n want %+v", got, want)
	}
	if got.Answered != 4 || got.Positives != 3 {
		t.Fatalf("counters %+v, want answered=4 positives=3", got)
	}
}

// TestSnapshotFailureSurfacedInStats drives SnapshotNow into failure and
// requires the failure counter and last error to reach Stats (and therefore
// GET /v1/stats).
func TestSnapshotFailureSurfacedInStats(t *testing.T) {
	dir := t.TempDir()
	m, st := openWALManager(t, dir)
	mustCreate(t, m, sparseParams())
	if err := st.Close(); err != nil { // snapshots now fail with ErrClosed
		t.Fatal(err)
	}
	if err := m.SnapshotNow(); err == nil {
		t.Fatal("snapshot against a closed store succeeded")
	}
	stats := m.Stats()
	if stats.SnapshotFailures == 0 || stats.LastSnapshotError == "" {
		t.Fatalf("stats %+v, want snapshot failure counter and last error surfaced", stats)
	}
}

// pmwSynthetic reaches through the mechanism seam for the mediator's
// public synthetic histogram; pmwUpdates for its real-data access count.
func pmwSynthetic(t *testing.T, s *Session) []float64 {
	t.Helper()
	m, ok := s.inst.(interface{ Synthetic() []float64 })
	if !ok {
		t.Fatalf("session mechanism %T exposes no synthetic histogram", s.inst)
	}
	return m.Synthetic()
}

func pmwUpdates(t *testing.T, s *Session) int {
	t.Helper()
	m, ok := s.inst.(interface{ Updates() int })
	if !ok {
		t.Fatalf("session mechanism %T exposes no update count", s.inst)
	}
	return m.Updates()
}

// TestPMWRecoveryKeepsLearnedSynthetic requires a recovered pmw session to
// resume from its learned synthetic histogram rather than the uniform
// prior, whether the state came from a snapshot baseline or only from
// journaled progress events.
func TestPMWRecoveryKeepsLearnedSynthetic(t *testing.T) {
	for _, snapshot := range []bool{false, true} {
		name := "journal-only"
		if snapshot {
			name = "snapshotted"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m1, _ := openWALManager(t, dir)
			s := mustCreate(t, m1, pmwParams())
			// Drive updates so the synthetic histogram learns.
			for i := 0; i < 8; i++ {
				mustQuery(t, m1, s.ID(), []QueryItem{{Buckets: []int{4}}})
			}
			if pmwUpdates(t, s) == 0 {
				t.Fatal("setup: no pmw updates happened; the test would be vacuous")
			}
			learned := pmwSynthetic(t, s)
			if snapshot {
				if err := m1.SnapshotNow(); err != nil {
					t.Fatal(err)
				}
			}
			m1.Close() // crash

			m2, _ := openWALManager(t, dir)
			rec, ok := m2.Get(s.ID())
			if !ok {
				t.Fatal("pmw session lost across restart")
			}
			got := pmwSynthetic(t, rec)
			for i := range learned {
				if got[i] != learned[i] {
					t.Fatalf("synthetic[%d] = %v after recovery, want learned value %v (uniform restart?)", i, got[i], learned[i])
				}
			}
		})
	}
}
