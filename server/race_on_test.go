//go:build race

package server

// raceEnabled reports whether this test binary was built with the race
// detector. Under race, sync.Pool.Put randomly drops items (a runtime
// debugging aid), so allocation counts on pooled paths are inflated and
// noisy; alloc pins consult this to skip. CI runs the pins in a separate
// non-race pass.
const raceEnabled = true
