package server

// Wire-edge benchmarks, the ISSUE 9 acceptance gauge: the binary protocol
// must at least double the HTTP edge's WAL-backed throughput. Like the
// HTTP benchmarks (nullResponseWriter), the conn is a discard sink, so the
// measured cost is frame decode + session query (+ journaling) + frame
// encode — the serving stack, not loopback TCP.

import (
	"sync/atomic"
	"testing"

	"github.com/dpgo/svt/wire"
)

// benchWire drives single-query frames through the wire handler across the
// session pool: per-goroutine connections (as in production, where each
// client holds its own), pre-encoded request bodies, pooled everything.
func benchWire(b *testing.B, m *SessionManager, ids []string, sessions int, cfg WireConfig) {
	b.Helper()
	ws := NewWireServer(m, cfg)
	bodies := make([][]byte, len(ids))
	for j, id := range ids {
		bodies[j] = wire.AppendQueryBody(nil, id, "", []wire.QueryItem{{Query: 1}})
	}
	var next atomic.Uint64
	mt := startMem()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := ws.newConn(discardConn{})
		i := int(next.Add(1)) * 7
		for pb.Next() {
			i++
			if err := c.handleOp(c.sc, wire.OpQuery, 1, bodies[i%len(ids)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	recordBench(b, mt, sessions, 16)
}

// BenchmarkWireQueryParallel is the wire twin of BenchmarkHTTPQueryParallel.
func BenchmarkWireQueryParallel(b *testing.B) {
	const sessions = 64
	m, ids := benchManager(b, 16, sessions)
	benchWire(b, m, ids, sessions, WireConfig{})
}

// BenchmarkWireQueryParallelWAL is the wire twin of
// BenchmarkHTTPQueryParallelWAL — every answered batch journaled before
// the response frame is encoded. The benchgate holds this at >= 2x the
// HTTP WAL edge.
func BenchmarkWireQueryParallelWAL(b *testing.B) {
	const sessions = 64
	m, ids := benchManagerWAL(b, 16, sessions)
	b.SetParallelism(walParallelism)
	benchWire(b, m, ids, sessions, WireConfig{})
}
