package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TenantHeader names the HTTP header that identifies the calling tenant for
// rate limiting. Requests without it share the default tenant's bucket.
const TenantHeader = "X-Tenant"

// DefaultMaxTenants caps how many distinct tenant buckets a RateLimiter
// tracks before spillover tenants share one overflow bucket, bounding the
// memory a hostile client can allocate by inventing tenant names.
const DefaultMaxTenants = 16384

// RateLimitConfig configures per-tenant token buckets.
type RateLimitConfig struct {
	// Rate is the sustained request budget per tenant in requests/second.
	// Required, must be positive and finite.
	Rate float64
	// Burst is the bucket depth: how many requests a tenant may send
	// back-to-back after being idle. 0 means max(Rate, 1).
	Burst float64
	// MaxTenants caps tracked tenants; 0 means DefaultMaxTenants.
	MaxTenants int
	// MaxTenantSeries caps how many distinct tenants appear BY NAME in
	// the per-tenant rejection counts (RejectedByTenant, and through it
	// the rate-limit metric labels); rejections for tenants beyond the
	// cap aggregate under OtherTenant. It is deliberately much smaller
	// than MaxTenants: the limiter can afford 16k buckets, but 16k label
	// sets would blow up every scrape and the time series behind them.
	// 0 means DefaultMaxTenantSeries.
	MaxTenantSeries int
}

// tokenBucket is one tenant's refillable budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// RateLimiter applies per-tenant token-bucket admission control to the
// /v1/* API. Each tenant (the X-Tenant header; absent means the default
// tenant) owns an independent bucket refilled continuously at Rate
// requests/second up to Burst. Rejected requests get a JSON 429 with a
// Retry-After header. Liveness endpoints outside /v1/ are never limited.
type RateLimiter struct {
	rate       float64
	burst      float64
	maxTenants int
	maxSeries  int

	mu         sync.Mutex
	buckets    map[string]*tokenBucket
	overflow   tokenBucket
	rejected   uint64
	rejectedBy map[string]uint64
	evicted    uint64
	lastSweep  time.Time

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewRateLimiter validates cfg and returns a ready limiter.
func NewRateLimiter(cfg RateLimitConfig) (*RateLimiter, error) {
	if !(cfg.Rate > 0) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("server: rate limit must be positive and finite, got %v", cfg.Rate)
	}
	burst := cfg.Burst
	if burst == 0 {
		burst = math.Max(cfg.Rate, 1)
	}
	if !(burst >= 1) || math.IsInf(burst, 0) {
		return nil, fmt.Errorf("server: rate-limit burst must be at least 1 request, got %v", cfg.Burst)
	}
	maxTenants := cfg.MaxTenants
	if maxTenants <= 0 {
		maxTenants = DefaultMaxTenants
	}
	maxSeries := cfg.MaxTenantSeries
	if maxSeries <= 0 {
		maxSeries = DefaultMaxTenantSeries
	}
	return &RateLimiter{
		rate:       cfg.Rate,
		burst:      burst,
		maxTenants: maxTenants,
		maxSeries:  maxSeries,
		buckets:    make(map[string]*tokenBucket),
		rejectedBy: make(map[string]uint64),
		now:        time.Now,
	}, nil
}

// idlePeriod is how long a bucket must sit untouched before eviction: one
// refill-to-full period. An idle-for-that-long bucket has refilled to Burst
// and is indistinguishable from a fresh one, so evicting it changes no
// admission decision — it only returns the tenant slot.
func (rl *RateLimiter) idlePeriod() time.Duration {
	return time.Duration(rl.burst / rl.rate * float64(time.Second))
}

// evictIdle removes buckets idle for at least one refill-to-full period;
// callers hold rl.mu. Without this, MaxTenants distinct tenant names ever
// seen would permanently exhaust the slots and force every NEW tenant into
// the shared overflow bucket.
func (rl *RateLimiter) evictIdle(now time.Time) {
	idle := rl.idlePeriod()
	for tenant, b := range rl.buckets {
		if now.Sub(b.last) >= idle {
			delete(rl.buckets, tenant)
			rl.evicted++
		}
	}
	rl.lastSweep = now
}

// Allow consumes one token from the tenant's bucket, reporting whether the
// request may proceed and, when it may not, how long until a token refills.
func (rl *RateLimiter) Allow(tenant string) (bool, time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	// Amortized idle-tenant eviction. The cadence is floored at one second:
	// with Burst < Rate the refill-to-full period can be sub-millisecond,
	// and sweeping the whole map under the mutex on every request would
	// serialize the /v1/* hot path. Eviction only needs to happen at LEAST
	// one idle period apart, not that often.
	sweepEvery := rl.idlePeriod()
	if sweepEvery < time.Second {
		sweepEvery = time.Second
	}
	if now.Sub(rl.lastSweep) >= sweepEvery {
		rl.evictIdle(now)
	}
	b := rl.buckets[tenant]
	if b == nil {
		if len(rl.buckets) >= rl.maxTenants {
			// Slots full: sweep immediately — the table may be stuffed with
			// idle tenants — and only fall back to the shared overflow
			// bucket if every slot is genuinely active.
			rl.evictIdle(now)
		}
		if len(rl.buckets) >= rl.maxTenants {
			b = &rl.overflow
		} else {
			b = &tokenBucket{tokens: rl.burst, last: now}
			rl.buckets[tenant] = b
		}
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(rl.burst, b.tokens+rl.rate*elapsed)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	rl.rejected++
	// Per-tenant rejection attribution. The key space is bounded by the
	// SERIES cap, not the bucket cap: every key here becomes a label set
	// on the rate-limit metric, so once maxSeries distinct tenants hold
	// rejection counts, further new tenants aggregate under OtherTenant
	// rather than letting a hostile client mint unbounded time series.
	// Rejection counts are never evicted — they are cumulative history, and
	// resetting one on idle-eviction would make the /metrics counter go
	// backwards.
	key := tenant
	if key == "" {
		key = "default"
	}
	if _, ok := rl.rejectedBy[key]; !ok && len(rl.rejectedBy) >= rl.maxSeries {
		key = OtherTenant
	}
	rl.rejectedBy[key]++
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}

// Rejected returns how many requests the limiter has turned away.
func (rl *RateLimiter) Rejected() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.rejected
}

// RejectedByTenant returns a copy of the per-tenant rejection counts. The
// empty tenant is reported as "default"; tenants past the MaxTenantSeries
// cardinality cap are folded into OtherTenant ("_other"). Tenants that
// were never rejected do not appear.
func (rl *RateLimiter) RejectedByTenant() map[string]uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if len(rl.rejectedBy) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(rl.rejectedBy))
	for tenant, n := range rl.rejectedBy {
		out[tenant] = n
	}
	return out
}

// Evicted returns how many idle tenant buckets the limiter has reclaimed.
func (rl *RateLimiter) Evicted() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.evicted
}

// Tenants returns how many tenant buckets are currently tracked.
func (rl *RateLimiter) Tenants() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}

// Middleware wraps next with per-tenant admission control on /v1/* paths.
func (rl *RateLimiter) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		tenant := r.Header.Get(TenantHeader)
		ok, wait := rl.Allow(tenant)
		if !ok {
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			label := tenant
			if label == "" {
				label = "default"
			}
			writeError(w, http.StatusTooManyRequests, CodeRateLimited,
				fmt.Sprintf("tenant %q exceeded %g requests/sec", label, rl.rate))
			return
		}
		next.ServeHTTP(w, r)
	})
}
