package server

// Trace retrieval endpoints and request-ID minting. The capture side
// lives in the hot path (handleQuery starts the root span, the manager
// adds its children in queryInto); this file is the read side — the
// operator asking "what did that slow request actually spend its time
// on" — plus the ID mint both sides share.

import (
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"github.com/dpgo/svt/trace"
)

// newRequestID mints a 16-hex-char request ID for X-Request-Id echoes
// and slow-query log lines when the client did not supply one. Request
// IDs are correlation handles, not secrets: math/rand/v2's per-P ChaCha8
// generator keeps the mint to one string allocation, which is what lets
// the hot path mint on every request.
func newRequestID() string {
	v := rand.Uint64()
	if v == 0 {
		v = 1
	}
	var b [16]byte
	const digits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// TracesResponse is the GET /v1/traces body: recent root spans, newest
// first, with the slowest-per-route reservoir appended.
type TracesResponse struct {
	Traces []trace.Summary `json:"traces"`
}

// handleTraces serves GET /v1/traces: summaries of retained traces,
// filterable with ?route= (exact match), ?minMs= (minimum duration in
// milliseconds) and ?limit= (default 100).
func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		a.methodNotAllowed(w, http.MethodGet)
		return
	}
	q := r.URL.Query()
	var minDur time.Duration
	if s := q.Get("minMs"); s != "" {
		ms, err := strconv.ParseFloat(s, 64)
		if err != nil || ms < 0 {
			a.writeError(w, http.StatusBadRequest, CodeBadRequest, "minMs must be a non-negative number")
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 100
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			a.writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	sums := a.tracer.Recent(q.Get("route"), minDur, limit)
	if sums == nil {
		sums = []trace.Summary{} // render [] rather than null
	}
	a.writeJSON(w, http.StatusOK, TracesResponse{Traces: sums})
}

// handleTrace serves GET /v1/traces/{id}: the full span tree for one
// trace, addressed by trace ID or by the X-Request-Id it carried.
func (a *API) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		a.methodNotAllowed(w, http.MethodGet)
		return
	}
	id := r.PathValue("id")
	v, ok := a.tracer.Lookup(id)
	if !ok {
		a.writeError(w, http.StatusNotFound, CodeNotFound, "no retained trace: "+id)
		return
	}
	a.writeJSON(w, http.StatusOK, v)
}
