package server

// Parallel-load benchmarks of the session service, the acceptance gauge
// for the ISSUE 1 tentpole: ≥ 64 concurrent sessions must sustain well
// over 10k queries/sec, and throughput must scale with the shard count.
//
// Set SVT_BENCH_JSON=BENCH_server.json to also write a machine-readable
// summary (one {"benchmarks": [...]} document per run) so future PRs can
// track server throughput as a trajectory:
//
//	SVT_BENCH_JSON=BENCH_server.json go test -bench . -run '^$' ./server/

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
)

// benchEntry is one benchmark's summary line in the JSON trajectory.
type benchEntry struct {
	Name          string  `json:"name"`
	QueriesPerSec float64 `json:"queriesPerSec"`
	NsPerOp       float64 `json:"nsPerOp"`
	AllocsPerOp   float64 `json:"allocsPerOp"`
	BytesPerOp    float64 `json:"bytesPerOp"`
	Ops           int     `json:"ops"`
	Sessions      int     `json:"sessions"`
	Shards        int     `json:"shards"`
}

// memTrack measures the allocation trajectory of a benchmark's timed
// section from runtime.MemStats deltas (Mallocs/TotalAlloc are cumulative
// and monotone, so GC in between does not disturb them). Call startMem
// just before ResetTimer and perOp after StopTimer.
type memTrack struct{ m0 runtime.MemStats }

func startMem() *memTrack {
	t := new(memTrack)
	runtime.ReadMemStats(&t.m0)
	return t
}

func (t *memTrack) perOp(n int) (allocs, bytes float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-t.m0.Mallocs) / float64(n), float64(m1.TotalAlloc-t.m0.TotalAlloc) / float64(n)
}

// benchSummary is the whole JSON document.
type benchSummary struct {
	Package    string       `json:"package"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	CPUs       int          `json:"cpus"`
	Timestamp  string       `json:"timestamp"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

var (
	benchMu      sync.Mutex
	benchEntries []benchEntry
)

// recordBench stashes one benchmark result for the JSON summary. The
// testing package re-runs each benchmark while calibrating b.N, so a
// later call with the same name (always the larger, final run) replaces
// the earlier one.
func recordBench(b *testing.B, mt *memTrack, sessions, shards int) {
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
	allocs, bytes := mt.perOp(b.N)
	b.ReportMetric(allocs, "allocs/op-meas")
	record(benchEntry{
		Name:          strings.TrimPrefix(b.Name(), "Benchmark"),
		QueriesPerSec: qps,
		NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		Ops:           b.N,
		Sessions:      sessions,
		Shards:        shards,
	})
}

func record(e benchEntry) {
	benchMu.Lock()
	defer benchMu.Unlock()
	for i := range benchEntries {
		if benchEntries[i].Name == e.Name {
			benchEntries[i] = e
			return
		}
	}
	benchEntries = append(benchEntries, e)
}

// TestMain writes the JSON summary after the run when SVT_BENCH_JSON
// names a file.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("SVT_BENCH_JSON"); path != "" && len(benchEntries) > 0 {
		doc := benchSummary{
			Package:    "github.com/dpgo/svt/server",
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			Benchmarks: benchEntries,
		}
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "server: writing bench summary:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchManager builds a manager with n never-halting sparse sessions.
func benchManager(b *testing.B, shards, sessions int) (*SessionManager, []string) {
	b.Helper()
	return benchManagerStore(b, shards, sessions, nil, nil)
}

// benchManagerWAL is benchManager journaling to a real write-ahead log in a
// temp dir, with the production-default interval fsync policy.
func benchManagerWAL(b *testing.B, shards, sessions int) (*SessionManager, []string) {
	b.Helper()
	st, err := store.NewWAL(store.WALConfig{Dir: b.TempDir(), Sync: store.SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	return benchManagerStore(b, shards, sessions, st, nil)
}

func benchManagerStore(b *testing.B, shards, sessions int, st store.SessionStore, reg *telemetry.Registry) (*SessionManager, []string) {
	b.Helper()
	m, err := Open(ManagerConfig{Shards: shards, SweepInterval: time.Hour, SnapshotInterval: -1, Store: st, Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	ids := make([]string, sessions)
	for i := range ids {
		s, err := m.Create(CreateParams{
			Mechanism:    MechSparse,
			Epsilon:      1,
			MaxPositives: 1 << 30,
			Threshold:    ptr(1e12), // queries stay far below: all ⊥, no halt
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = s.ID()
	}
	return m, ids
}

// BenchmarkManagerParallel drives 64 concurrent sessions through the
// manager at several shard counts; queries/sec across the shard sweep is
// the shard-scaling curve.
func BenchmarkManagerParallel(b *testing.B) {
	const sessions = 64
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			m, ids := benchManager(b, shards, sessions)
			var next atomic.Uint64
			mt := startMem()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Each goroutine walks the session pool from its own
				// offset so traffic spreads across shards.
				i := int(next.Add(1)) * 7
				item := []QueryItem{{Query: 1}}
				for pb.Next() {
					i++
					if _, err := m.Query(ids[i%len(ids)], item); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			recordBench(b, mt, sessions, shards)
		})
	}
}

// BenchmarkManagerSingleSession is the contention worst case: every
// goroutine serializes on one session's mutex. The gap to
// ManagerParallel/shards=16 is what multi-tenancy buys.
func BenchmarkManagerSingleSession(b *testing.B) {
	m, ids := benchManager(b, DefaultShards, 1)
	mt := startMem()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		item := []QueryItem{{Query: 1}}
		for pb.Next() {
			if _, err := m.Query(ids[0], item); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	recordBench(b, mt, 1, DefaultShards)
}

// BenchmarkManagerBatch64 amortizes the routing over 64-query batches —
// the async-batching direction future PRs will push further.
func BenchmarkManagerBatch64(b *testing.B) {
	const sessions = 64
	m, ids := benchManager(b, 16, sessions)
	batch := make([]QueryItem, 64)
	for i := range batch {
		batch[i] = QueryItem{Query: float64(i)}
	}
	var next atomic.Uint64
	mt := startMem()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 7
		for pb.Next() {
			i++
			if _, err := m.Query(ids[i%len(ids)], batch); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	// One op is 64 queries; report per-query throughput.
	qps := float64(b.N) * 64 / b.Elapsed().Seconds()
	b.ReportMetric(qps, "queries/sec")
	allocs, bytes := mt.perOp(b.N)
	record(benchEntry{
		Name:          strings.TrimPrefix(b.Name(), "Benchmark"),
		QueriesPerSec: qps,
		NsPerOp:       float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:   allocs,
		BytesPerOp:    bytes,
		Ops:           b.N,
		Sessions:      sessions,
		Shards:        16,
	})
}

// BenchmarkHTTPQueryParallel exercises the whole stack — routing, JSON
// decode, session query, JSON encode — via in-process handler dispatch
// across 64 sessions.
func BenchmarkHTTPQueryParallel(b *testing.B) {
	const sessions = 64
	m, ids := benchManager(b, 16, sessions)
	benchHTTP(b, m, ids, sessions, APIConfig{})
}

// walParallelism is how many concurrent request goroutines per GOMAXPROCS
// the WAL-backed benchmarks drive: the group-commit coalescing a loaded
// server gets only exists under concurrency (see BenchmarkManagerParallelWAL).
const walParallelism = 64

// BenchmarkHTTPQueryParallelWAL is the same full-stack load with every
// answered batch journaled to a write-ahead log (interval fsync) before the
// response is released — the ISSUE 2 acceptance gauge: ≥ 50k queries/sec.
func BenchmarkHTTPQueryParallelWAL(b *testing.B) {
	const sessions = 64
	m, ids := benchManagerWAL(b, 16, sessions)
	b.SetParallelism(walParallelism)
	benchHTTP(b, m, ids, sessions, APIConfig{})
}

// BenchmarkHTTPQueryParallelWALTelemetry is HTTPQueryParallelWAL with the
// three-layer telemetry registry attached (slow-query tracing off, as in
// the default production configuration). The gap to the uninstrumented
// run is the telemetry overhead, documented in README as <= 5%.
func BenchmarkHTTPQueryParallelWALTelemetry(b *testing.B) {
	const sessions = 64
	reg := telemetry.NewRegistry()
	st, err := store.NewWAL(store.WALConfig{Dir: b.TempDir(), Sync: store.SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	m, ids := benchManagerStore(b, 16, sessions, st, reg)
	b.SetParallelism(walParallelism)
	benchHTTP(b, m, ids, sessions, APIConfig{Telemetry: reg})
}

// BenchmarkHTTPQueryParallelWALTraced is the fully observed configuration:
// telemetry registry plus the tracer at its default 1-in-16 head sampling,
// exactly what `svtserve` runs with out of the box. The gap to
// HTTPQueryParallelWALTelemetry is the tracing overhead the benchgate
// holds to <= 10%; the gap to HTTPQueryParallelWAL (no telemetry at all)
// is the whole observability bill.
func BenchmarkHTTPQueryParallelWALTraced(b *testing.B) {
	const sessions = 64
	reg := telemetry.NewRegistry()
	tracer := trace.New(trace.Config{})
	st, err := store.NewWAL(store.WALConfig{Dir: b.TempDir(), Sync: store.SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = st.Close() })
	m, err := Open(ManagerConfig{
		Shards: 16, SweepInterval: time.Hour, SnapshotInterval: -1,
		Store: st, Telemetry: reg, Tracer: tracer,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	ids := make([]string, sessions)
	for i := range ids {
		s, err := m.Create(CreateParams{
			Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1 << 30,
			Threshold: ptr(1e12), Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = s.ID()
	}
	b.SetParallelism(walParallelism)
	benchHTTP(b, m, ids, sessions, APIConfig{Telemetry: reg, Tracer: tracer})
}

// BenchmarkManagerParallelWAL isolates the journaling overhead on the
// manager fast path (no HTTP): compare with ManagerParallel/shards=16.
// Parallelism is forced well above GOMAXPROCS because concurrency is the
// workload group commit exists for: while the flush leader is inside its
// write syscall the runtime keeps running the other request goroutines,
// whose appends coalesce into the next batch — exactly what a loaded
// server sees. A single serial appender cannot share flushes and pays one
// write per event no matter what.
func BenchmarkManagerParallelWAL(b *testing.B) {
	const sessions = 64
	m, ids := benchManagerWAL(b, 16, sessions)
	var next atomic.Uint64
	b.SetParallelism(walParallelism)
	mt := startMem()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)) * 7
		item := []QueryItem{{Query: 1}}
		for pb.Next() {
			i++
			if _, err := m.Query(ids[i%len(ids)], item); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	recordBench(b, mt, sessions, 16)
}

// replayBody is a rewindable, allocation-free request body.
type replayBody struct {
	data []byte
	off  int
}

func (rb *replayBody) Read(p []byte) (int, error) {
	if rb.off >= len(rb.data) {
		return 0, io.EOF
	}
	n := copy(p, rb.data[rb.off:])
	rb.off += n
	return n, nil
}

func (rb *replayBody) Close() error { return nil }

// nullResponseWriter discards the response, keeping only what assertions
// need. The point of the HTTP benchmarks is the SERVER's cost per request,
// and httptest's per-request recorder + URL re-parse used to account for
// ~40% of the measured time.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(c int)           { w.code = c }

// benchHTTP drives the handler with single-query POSTs across the pool:
// in-process dispatch of pre-built requests, so the measured cost is mux
// routing + request decode + session query (+ journaling) + response
// encode — the serving stack, not the test harness.
func benchHTTP(b *testing.B, m *SessionManager, ids []string, sessions int, cfg APIConfig) {
	b.Helper()
	api := NewAPI(m, cfg)
	body := []byte(`{"query":1}`)
	var next atomic.Uint64
	mt := startMem()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine pre-built requests, one per session; bodies rewind
		// between iterations.
		reqs := make([]*http.Request, len(ids))
		bodies := make([]*replayBody, len(ids))
		for j, id := range ids {
			bodies[j] = &replayBody{data: body}
			reqs[j] = httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/query", bodies[j])
		}
		w := &nullResponseWriter{h: make(http.Header)}
		i := int(next.Add(1)) * 7
		for pb.Next() {
			i++
			j := i % len(ids)
			bodies[j].off = 0
			reqs[j].Body = bodies[j]
			w.code = 0
			api.ServeHTTP(w, reqs[j])
			if w.code != http.StatusOK {
				b.Errorf("status %d", w.code)
				return
			}
		}
	})
	b.StopTimer()
	recordBench(b, mt, sessions, 16)
}
