package server

import (
	"math"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
)

// ptr returns a pointer to v, for the optional threshold fields.
func ptr(v float64) *float64 { return &v }

// newTestManager builds a manager whose janitor effectively never fires,
// so tests control expiry via the fake clock and explicit Sweep calls.
// With SVT_TEST_STORE=wal in the environment the whole suite runs against
// a real write-ahead-log store in a temp dir, so CI exercises every code
// path — locking, journaling, snapshots — under the durable backend too.
func newTestManager(t *testing.T, cfg ManagerConfig) *SessionManager {
	t.Helper()
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = time.Hour
	}
	if cfg.Store == nil && os.Getenv("SVT_TEST_STORE") == "wal" {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = st.Close() })
		cfg.Store = st
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// sparseParams is a session that answers many queries without halting.
func sparseParams() CreateParams {
	return CreateParams{
		Mechanism:    MechSparse,
		Epsilon:      1,
		MaxPositives: 100,
		Threshold:    ptr(0.5),
		Seed:         7,
	}
}

func pmwParams() CreateParams {
	return CreateParams{
		Mechanism:    MechPMW,
		Epsilon:      2,
		MaxPositives: 3,
		Threshold:    ptr(50),
		Histogram:    []float64{100, 100, 100, 100, 500, 100},
		Seed:         1,
	}
}

func TestCreateAllMechanismsBudgets(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	cases := []struct {
		name   string
		params CreateParams
	}{
		{"sparse", CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 10, Seed: 3}},
		{"sparse-numeric", CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 10, AnswerFraction: 0.25, Seed: 3}},
		{"proposed", CreateParams{Mechanism: MechProposed, Epsilon: 1, MaxPositives: 10, Seed: 3}},
		{"dpbook", CreateParams{Mechanism: MechDPBook, Epsilon: 1, MaxPositives: 10, Seed: 3}},
		{"pmw", pmwParams()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := m.Create(tc.params)
			if err != nil {
				t.Fatal(err)
			}
			b := s.Budget()
			sum := b.Eps1 + b.Eps2 + b.Eps3
			if math.Abs(sum-tc.params.Epsilon) > 1e-9 {
				t.Errorf("eps1+eps2+eps3 = %v, want %v", sum, tc.params.Epsilon)
			}
			if math.Abs(b.Total-tc.params.Epsilon) > 1e-9 {
				t.Errorf("total = %v, want %v", b.Total, tc.params.Epsilon)
			}
			if !(b.Eps1 > 0) || !(b.Eps2 > 0) {
				t.Errorf("eps1 = %v, eps2 = %v: both must be positive", b.Eps1, b.Eps2)
			}
			if tc.name == "sparse-numeric" && math.Abs(b.Eps3-0.25) > 1e-9 {
				t.Errorf("eps3 = %v, want 0.25", b.Eps3)
			}
			if tc.name == "proposed" || tc.name == "dpbook" {
				if b.Eps1 != 0.5 || b.Eps2 != 0.5 || b.Eps3 != 0 {
					t.Errorf("split (%v, %v, %v), want (0.5, 0.5, 0)", b.Eps1, b.Eps2, b.Eps3)
				}
			}
			if tc.name == "pmw" && !(b.Eps3 > 0) {
				t.Errorf("pmw eps3 = %v, want positive update budget", b.Eps3)
			}
		})
	}
}

func TestCreateRejectsBadParams(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	bad := []CreateParams{
		{},
		{Mechanism: "gptt", Epsilon: 1, MaxPositives: 1}, // non-private variants are not servable
		{Mechanism: MechSparse, Epsilon: 0, MaxPositives: 1},
		{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 0},
		{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1, Threshold: ptr(math.Inf(1))},
		{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1, Histogram: []float64{1, 2}},
		{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1, TTLSeconds: -1},
		{Mechanism: MechPMW, Epsilon: 1, MaxPositives: 1, Threshold: ptr(50)},         // no histogram
		{Mechanism: MechPMW, Epsilon: 1, MaxPositives: 1, Histogram: []float64{1, 2}}, // no threshold
	}
	for i, p := range bad {
		if _, err := m.Create(p); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
	if n := m.Len(); n != 0 {
		t.Errorf("%d sessions live after rejected creates", n)
	}
}

func TestQueryFlowAndHalt(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	p := sparseParams()
	p.MaxPositives = 2
	s, err := m.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	// Far-above and far-below queries: the Laplace noise (scale ~ tens)
	// cannot bridge 1e12.
	th := 0.0
	res, err := m.Query(s.ID(), []QueryItem{
		{Query: -1e12, Threshold: &th},
		{Query: 1e12, Threshold: &th},
		{Query: 1e12, Threshold: &th},
		{Query: 1e12, Threshold: &th}, // never reached: halt after 2 positives
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results, want 3 (2 positives then halt)", len(res.Results))
	}
	if res.Results[0].Above || !res.Results[1].Above || !res.Results[2].Above {
		t.Errorf("outcomes %+v, want ⊥⊤⊤", res.Results)
	}
	if !res.Halted || res.Remaining != 0 {
		t.Errorf("halted=%v remaining=%d, want true/0", res.Halted, res.Remaining)
	}
	st := s.Status()
	if st.Answered != 3 || st.Positives != 2 || st.Remaining != 0 || !st.Halted {
		t.Errorf("status %+v", st)
	}
	// A further query returns an empty, halted batch.
	res, err = m.Query(s.ID(), []QueryItem{{Query: 1e12, Threshold: &th}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 || !res.Halted {
		t.Errorf("post-halt batch %+v", res)
	}
}

func TestQueryDefaultThreshold(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	s, err := m.Create(sparseParams()) // default threshold 0.5
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(s.ID(), []QueryItem{{Query: 1e12}}); err != nil {
		t.Fatalf("default threshold not applied: %v", err)
	}
	// A session created without a threshold must reject bare queries.
	p := sparseParams()
	p.Threshold = nil
	s2, err := m.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(s2.ID(), []QueryItem{{Query: 1}}); err == nil {
		t.Fatal("query without any threshold accepted")
	}
	th := 3.0
	if _, err := m.Query(s2.ID(), []QueryItem{{Query: 1, Threshold: &th}}); err != nil {
		t.Fatal(err)
	}
	// An explicit default of 0 is a real threshold, not "absent".
	p = sparseParams()
	p.Threshold = ptr(0)
	s3, err := m.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(s3.ID(), []QueryItem{{Query: 1e12}}); err != nil {
		t.Fatalf("zero default threshold rejected: %v", err)
	}
}

// TestHugeTTLClampsToMax guards against float→Duration overflow: an
// absurd TTL must clamp to MaxTTL, not wrap negative and expire the
// session at birth.
func TestHugeTTLClampsToMax(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxTTL: time.Hour})
	for _, ttl := range []float64{1e10, math.Inf(1)} {
		p := sparseParams()
		p.TTLSeconds = ttl
		s, err := m.Create(p)
		if err != nil {
			t.Fatalf("ttl %v: %v", ttl, err)
		}
		if s.ttl != time.Hour {
			t.Errorf("ttl %v: resolved to %v, want the 1h cap", ttl, s.ttl)
		}
		if _, ok := m.Get(s.ID()); !ok {
			t.Errorf("ttl %v: session expired at birth", ttl)
		}
	}
	p := sparseParams()
	p.TTLSeconds = math.NaN()
	if _, err := m.Create(p); err == nil {
		t.Error("NaN ttl accepted")
	}
}

// TestBatchValidatesBeforeAnswering pins batch atomicity: a malformed
// item anywhere in the batch must fail the whole batch before any
// budget is spent on the items preceding it.
func TestBatchValidatesBeforeAnswering(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	s, err := m.Create(sparseParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(s.ID(), []QueryItem{
		{Query: 1e12},
		{Query: math.NaN()}, // invalid: must poison the whole batch
	}); err == nil {
		t.Fatal("batch with NaN query accepted")
	}
	if st := s.Status(); st.Answered != 0 || st.Positives != 0 {
		t.Errorf("budget spent on a rejected batch: %+v", st)
	}
	// pmw: an out-of-range bucket in item 2 must not spend item 1's update.
	pm, err := m.Create(pmwParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(pm.ID(), []QueryItem{
		{Buckets: []int{4}},  // would trigger an update if answered
		{Buckets: []int{99}}, // out of range
	}); err == nil {
		t.Fatal("batch with out-of-range bucket accepted")
	}
	if st := pm.Status(); st.Answered != 0 || st.Positives != 0 || st.Remaining != 3 {
		t.Errorf("pmw budget spent on a rejected batch: %+v", st)
	}
}

func TestPMWSession(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	s, err := m.Create(pmwParams())
	if err != nil {
		t.Fatal(err)
	}
	// Whole-domain query: synthetic equals truth, free.
	res, err := m.Query(s.ID(), []QueryItem{{Buckets: []int{0, 1, 2, 3, 4, 5}}})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if !r.Numeric || !r.FromSynthetic || math.Abs(r.Value-1000) > 1e-6 {
		t.Fatalf("whole-domain result %+v", r)
	}
	// Skewed bucket: must spend an update.
	res, err = m.Query(s.ID(), []QueryItem{{Buckets: []int{4}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].FromSynthetic {
		t.Fatal("hard query answered from synthetic")
	}
	st := s.Status()
	if st.Positives != 1 || st.Remaining != 2 {
		t.Errorf("positives=%d remaining=%d, want 1/2", st.Positives, st.Remaining)
	}
	// SVT-shaped queries are invalid on a pmw session and vice versa.
	if _, err := m.Query(s.ID(), []QueryItem{{Query: 1}}); err == nil {
		t.Error("bucketless query accepted by pmw session")
	}
	sv, err := m.Create(sparseParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query(sv.ID(), []QueryItem{{Buckets: []int{0}}}); err == nil {
		t.Error("bucket query accepted by sparse session")
	}
}

func TestTTLExpiry(t *testing.T) {
	m := newTestManager(t, ManagerConfig{DefaultTTL: time.Minute})
	clock := time.Now()
	m.now = func() time.Time { return clock }

	s, err := m.Create(sparseParams())
	if err != nil {
		t.Fatal(err)
	}
	short, err := m.Create(CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 10, Threshold: ptr(1), TTLSeconds: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(s.ID()); !ok {
		t.Fatal("fresh session not found")
	}

	clock = clock.Add(6 * time.Second) // past short's TTL, inside s's
	if _, ok := m.Get(short.ID()); ok {
		t.Error("expired session still served")
	}
	if _, ok := m.Get(s.ID()); !ok {
		t.Error("live session lost")
	}
	if _, err := m.Query(short.ID(), []QueryItem{{Query: 1}}); err != ErrSessionNotFound {
		t.Errorf("query on expired session: %v, want ErrSessionNotFound", err)
	}

	// Access refreshes the deadline: 40s hops never let s lapse.
	for i := 0; i < 3; i++ {
		clock = clock.Add(40 * time.Second)
		if _, ok := m.Get(s.ID()); !ok {
			t.Fatalf("session expired despite refreshes (hop %d)", i)
		}
	}
	clock = clock.Add(2 * time.Minute)
	if n := m.Sweep(); n != 1 {
		t.Errorf("sweep removed %d, want 1", n)
	}
	if m.Len() != 0 {
		t.Errorf("%d sessions live after sweep", m.Len())
	}
	st := m.Stats()
	if st.Expired != 2 { // one lazily on Get, one by Sweep
		t.Errorf("expired counter %d, want 2", st.Expired)
	}
}

func TestDeleteAndStats(t *testing.T) {
	m := newTestManager(t, ManagerConfig{Shards: 4})
	ids := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		s, err := m.Create(sparseParams())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID())
	}
	if _, err := m.Create(pmwParams()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:3] {
		if !m.Delete(id) {
			t.Errorf("delete %s failed", id)
		}
	}
	if m.Delete(ids[0]) {
		t.Error("double delete succeeded")
	}
	if _, err := m.Query(ids[3], []QueryItem{{Query: 1}}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Live != 8 || st.Created != 11 || st.Deleted != 3 {
		t.Errorf("stats %+v", st)
	}
	if st.Queries[MechSparse] != 1 || st.TotalQueries != 1 {
		t.Errorf("query counters %+v", st.Queries)
	}
	if st.Shards != 4 || len(st.ShardLive) != 4 {
		t.Errorf("shard stats %+v", st)
	}
	liveSum := 0
	for _, n := range st.ShardLive {
		liveSum += n
	}
	if liveSum != st.Live {
		t.Errorf("shard live sum %d != live %d", liveSum, st.Live)
	}
}

func TestMaxSessions(t *testing.T) {
	m := newTestManager(t, ManagerConfig{MaxSessions: 2})
	if _, err := m.Create(sparseParams()); err != nil {
		t.Fatal(err)
	}
	s2, err := m.Create(sparseParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(sparseParams()); err != ErrTooManySessions {
		t.Fatalf("over-cap create: %v, want ErrTooManySessions", err)
	}
	m.Delete(s2.ID())
	if _, err := m.Create(sparseParams()); err != nil {
		t.Fatalf("create after delete: %v", err)
	}
}

// TestConcurrentManager hammers every manager operation from many
// goroutines with a real (short) TTL and live janitor; run with -race.
func TestConcurrentManager(t *testing.T) {
	m := newTestManager(t, ManagerConfig{
		Shards:        8,
		DefaultTTL:    20 * time.Millisecond,
		SweepInterval: 5 * time.Millisecond,
	})
	defer m.Close()

	// A pool of long-lived sessions everyone queries.
	var pool []string
	for i := 0; i < 16; i++ {
		p := sparseParams()
		p.TTLSeconds = 3600
		s, err := m.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, s.ID())
	}

	const workers = 12
	deadline := time.Now().Add(200 * time.Millisecond)
	var wg sync.WaitGroup
	var queryErrs atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for time.Now().Before(deadline) {
				i++
				switch i % 5 {
				case 0:
					// Churn: create a session that expires almost at once.
					p := sparseParams()
					p.TTLSeconds = 0.001
					if s, err := m.Create(p); err == nil && i%10 == 0 {
						m.Delete(s.ID())
					}
				case 1:
					m.Stats()
				case 2:
					m.Sweep()
				default:
					id := pool[(w+i)%len(pool)]
					if _, err := m.Query(id, []QueryItem{{Query: float64(i % 3)}}); err != nil {
						queryErrs.Add(1)
					}
					if s, ok := m.Get(id); ok {
						s.Status()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := queryErrs.Load(); n != 0 {
		t.Errorf("%d pool queries failed", n)
	}
	st := m.Stats()
	if st.Created < 16 || st.Queries[MechSparse] == 0 {
		t.Errorf("implausible stats after hammer: %+v", st)
	}
	// The long-lived pool must have survived the churn and the janitor.
	for _, id := range pool {
		if _, ok := m.Get(id); !ok {
			t.Errorf("pool session %s lost", id)
		}
	}
}

// TestConcurrentSingleSession drives one session from many goroutines:
// the per-session mutex must keep the mechanism's counters coherent.
func TestConcurrentSingleSession(t *testing.T) {
	m := newTestManager(t, ManagerConfig{})
	p := sparseParams()
	p.MaxPositives = 50
	p.Threshold = ptr(1)
	s, err := m.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, _ = m.Query(s.ID(), []QueryItem{{Query: 1e12}}) // always ⊤
			}
		}()
	}
	wg.Wait()
	st := s.Status()
	if st.Positives != 50 || st.Remaining != 0 || !st.Halted {
		t.Errorf("status after concurrent positives: %+v", st)
	}
	if st.Answered != 50 {
		t.Errorf("answered %d, want exactly 50 (halt refuses the rest)", st.Answered)
	}
}
