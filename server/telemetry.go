package server

// Telemetry integration: the manager-, store- and HTTP-layer metric
// families registered on a telemetry.Registry, and the sampled hot-path
// observation helpers. Everything here is nil-gated — a manager or API
// built without a Registry carries zero instrumentation overhead — and
// the record path stays allocation-free (label handles are resolved once
// at registration; see TestQueryHotPathAllocs, which pins the pooled
// query path with telemetry enabled).
//
// Latency histograms on the hot path are SAMPLED 1-in-querySamplePeriod:
// the clock is read only for sampled requests and the observation is
// recorded with the period as its weight, so histogram-derived rates
// still estimate the full population while the steady-state overhead is
// two atomic ops per request plus a fraction of a clock read. The cheap
// families (counters, gauges) are exact.

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
)

// querySamplePeriod is the 1-in-N sampling rate for the manager's and the
// HTTP layer's latency histograms. Power of two so the tick check is a
// mask.
const querySamplePeriod = 8

// nearHaltMargin is the remaining-positives threshold under which a
// session counts as "near halt": max(1, c/10) for cutoff c.
func nearHaltMargin(maxPositives int) int {
	m := maxPositives / 10
	if m < 1 {
		m = 1
	}
	return m
}

// managerTelemetry is the manager layer's stored metrics; collectors
// registered alongside it read live manager state at scrape time.
type managerTelemetry struct {
	queryTick atomic.Uint64
	// queryLatency is indexed by the manager's frozen mechIdx, resolved
	// once so the sampled hot path does no label lookup.
	queryLatency     []*telemetry.Histogram
	snapshotDuration *telemetry.Histogram
}

// tenantStats is one tenant's aggregate over the live session table.
type tenantStats struct {
	sessions int
	nearHalt int
	spent    float64
}

// epsilonSpent estimates a session's consumed privacy budget from its
// realized (ε₁, ε₂, ε₃) split: ε₁ is spent at creation (threshold
// noise), ε₂ and ε₃ amortize over the c positive outcomes. A halted
// session has spent its whole budget by definition.
func epsilonSpent(b Budget, positives, maxPositives int, halted bool) float64 {
	if halted {
		return b.Total
	}
	if maxPositives <= 0 {
		return b.Eps1
	}
	frac := float64(positives) / float64(maxPositives)
	return b.Eps1 + (b.Eps2+b.Eps3)*frac
}

// tenantAgg walks the live session table aggregating per tenant. Lock
// order (shard read lock, then each session's mutex) matches every other
// session walk (collectRecords), so scrapes cannot deadlock against the
// data path; the walk is scrape-time-only cost. Label cardinality is
// bounded: past maxTenantSeries distinct tenants, further tenants
// aggregate into the OtherTenant series, so a tenant-ID spray cannot
// balloon the scrape body or the heap behind it.
func (m *SessionManager) tenantAgg() map[string]*tenantStats {
	agg := make(map[string]*tenantStats)
	for _, sh := range m.shards {
		sh.mu.RLock()
		for _, s := range sh.sessions {
			tenant := s.params.Tenant
			if tenant == "" {
				tenant = "default"
			}
			st := agg[tenant]
			if st == nil && len(agg) >= m.maxTenantSeries {
				tenant = OtherTenant
				st = agg[tenant]
			}
			if st == nil {
				st = &tenantStats{}
				agg[tenant] = st
			}
			s.mu.Lock()
			halted := s.inst.Halted()
			remaining := s.inst.Remaining()
			positives := s.positives
			budget := s.budget
			maxPos := s.params.MaxPositives
			s.mu.Unlock()
			st.sessions++
			st.spent += epsilonSpent(budget, positives, maxPos, halted)
			if !halted && remaining <= nearHaltMargin(maxPos) {
				st.nearHalt++
			}
		}
		sh.mu.RUnlock()
	}
	return agg
}

// registerManagerTelemetry registers the manager and store families on
// reg and returns the stored-metric handles the hot paths keep. Called
// once from Open, before the manager serves traffic.
func (m *SessionManager) registerManagerTelemetry(reg *telemetry.Registry) *managerTelemetry {
	t := &managerTelemetry{
		queryLatency: make([]*telemetry.Histogram, len(m.mechNames)),
	}
	lat := reg.NewHistogramVec("svt_query_duration_seconds",
		"Manager-level query batch latency by mechanism, journaling included (sampled 1-in-8).",
		telemetry.LatencyBuckets)
	for i, name := range m.mechNames {
		t.queryLatency[i] = lat.With(telemetry.Label("mechanism", string(name)))
	}
	t.snapshotDuration = reg.NewHistogram("svt_snapshot_duration_seconds",
		"Journal-compaction snapshot duration (rotate, collect, encode and persist).",
		telemetry.LatencyBuckets)

	reg.NewCollector("svt_sessions_live", "Live sessions (expired-but-unswept included).", "gauge",
		func(emit func(string, float64)) { emit("", float64(m.Len())) })
	reg.NewCollector("svt_shed_total",
		"Requests load-shed at an in-flight cap, by serving edge.", "counter",
		func(emit func(string, float64)) {
			emit(telemetry.Label("edge", "http"), float64(m.shedHTTP.Load()))
			emit(telemetry.Label("edge", "wire"), float64(m.shedWire.Load()))
		})
	reg.NewCollector("svt_journal_deadline_exceeded_total",
		"Journal appends abandoned at ManagerConfig.JournalDeadline (request failed retryable; the append itself was never acknowledged).", "counter",
		func(emit func(string, float64)) { emit("", float64(m.deadlineExceeded.Load())) })
	reg.NewCollector("svt_sessions_recovered", "Sessions rebuilt from the store at open.", "gauge",
		func(emit func(string, float64)) { emit("", float64(m.recoveredSessions)) })
	reg.NewCollector("svt_session_events_total", "Session lifecycle events by type.", "counter",
		func(emit func(string, float64)) {
			var created, deleted, expired uint64
			for _, sh := range m.shards {
				created += sh.created.Load()
				deleted += sh.deleted.Load()
				expired += sh.expired.Load()
			}
			emit(telemetry.Label("event", "created"), float64(created))
			emit(telemetry.Label("event", "deleted"), float64(deleted))
			emit(telemetry.Label("event", "expired"), float64(expired))
		})
	perMech := func(counters func(sh *shard) []atomic.Uint64) func(emit func(string, float64)) {
		return func(emit func(string, float64)) {
			for i, name := range m.mechNames {
				var n uint64
				for _, sh := range m.shards {
					n += counters(sh)[i].Load()
				}
				emit(telemetry.Label("mechanism", string(name)), float64(n))
			}
		}
	}
	reg.NewCollector("svt_queries_total", "Answered queries by mechanism.", "counter",
		perMech(func(sh *shard) []atomic.Uint64 { return sh.queries }))
	reg.NewCollector("svt_query_positives_total", "Positive (budget-consuming) outcomes by mechanism.", "counter",
		perMech(func(sh *shard) []atomic.Uint64 { return sh.positives }))
	reg.NewCollector("svt_session_halts_total", "Sessions that transitioned to halted, by mechanism.", "counter",
		perMech(func(sh *shard) []atomic.Uint64 { return sh.halts }))
	reg.NewCollector("svt_snapshot_failures_total", "Failed journal-compaction snapshots.", "counter",
		func(emit func(string, float64)) { emit("", float64(m.snapFailures.Load())) })
	reg.NewCollector("svt_snapshot_age_seconds",
		"Seconds since the last successful journal-compaction snapshot; absent until one succeeds. A growing value with traffic flowing means the snapshot loop is wedged.", "gauge",
		func(emit func(string, float64)) {
			if age, ok := m.SnapshotAge(); ok {
				emit("", age.Seconds())
			}
		})

	reg.NewCollector("svt_tenant_sessions", "Live sessions by tenant.", "gauge",
		func(emit func(string, float64)) {
			for tenant, st := range m.tenantAgg() {
				emit(telemetry.Label("tenant", tenant), float64(st.sessions))
			}
		})
	reg.NewCollector("svt_tenant_epsilon_spent", "Estimated consumed privacy budget summed over the tenant's live sessions: ε₁ up front plus (ε₂+ε₃) amortized over consumed positives; a halted session counts its full budget.", "gauge",
		func(emit func(string, float64)) {
			for tenant, st := range m.tenantAgg() {
				emit(telemetry.Label("tenant", tenant), st.spent)
			}
		})
	reg.NewCollector("svt_tenant_sessions_near_halt", "Live unhalted sessions within max(1, c/10) positives of halting, by tenant.", "gauge",
		func(emit func(string, float64)) {
			for tenant, st := range m.tenantAgg() {
				emit(telemetry.Label("tenant", tenant), float64(st.nearHalt))
			}
		})

	if m.store != nil {
		registerStoreHealth(reg, m.store)
		if m.storeInst != nil {
			m.storeInst.register(reg)
		}
	}
	return t
}

// sampleQueryStart is the manager hot path's sampling decision: true for
// one query in querySamplePeriod, reading the clock only then.
func (t *managerTelemetry) sampleQueryStart() (int64, bool) {
	if t == nil || t.queryTick.Add(1)&(querySamplePeriod-1) != 0 {
		return 0, false
	}
	return telemetry.Now(), true
}

// observeSnapshot records a successful snapshot's duration; nil-safe and
// unsampled (snapshots are rare and slow, every one is worth a bucket).
func (t *managerTelemetry) observeSnapshot(start int64) {
	if t == nil {
		return
	}
	t.snapshotDuration.Observe(telemetry.Seconds(telemetry.Now() - start))
}

// storeTelemetry adapts store.Instrumenter onto telemetry histograms and
// keeps the most recent flush's phase breakdown for the tracing layer.
// The histogram fields are nil when the manager runs with tracing but no
// telemetry registry; every method nil-gates them, so one instrumenter
// serves both subsystems.
type storeTelemetry struct {
	appendLatency *telemetry.Histogram
	batchEvents   *telemetry.Histogram
	syncLatency   *telemetry.Histogram
	recoveryNanos atomic.Int64

	// Last foreground (batch-carrying) flush's phases, in nanoseconds.
	// A traced request reads them right after its journal append returns:
	// under SyncAlways the append waited on exactly that flush, so the
	// phases are its own; under relaxed sync policies they are the most
	// recent flush's — an approximation, clamped into the journal span.
	lastGather atomic.Int64
	lastWrite  atomic.Int64
	lastSync   atomic.Int64
}

var _ store.Instrumenter = (*storeTelemetry)(nil)

func (t *storeTelemetry) AppendSampled(d time.Duration, weight uint64) {
	if t.appendLatency != nil {
		t.appendLatency.ObserveN(d.Seconds(), weight)
	}
}

func (t *storeTelemetry) FlushObserved(f store.Flush) {
	if f.Events > 0 {
		if t.batchEvents != nil {
			t.batchEvents.Observe(float64(f.Events))
		}
		t.lastGather.Store(int64(f.Gather))
		t.lastWrite.Store(int64(f.Write))
		t.lastSync.Store(int64(f.Sync))
	}
	if f.Sync > 0 && t.syncLatency != nil {
		t.syncLatency.Observe(f.Sync.Seconds())
	}
}

func (t *storeTelemetry) RecoveryObserved(d time.Duration, events int) {
	t.recoveryNanos.Store(int64(d))
}

// attachFlushPhases hangs the last flush's gather/write/sync breakdown
// under a just-ended journal-wait span. The phases are anchored backwards
// from the span's end — sync finished when the append returned, write
// preceded sync, gather preceded write — and AttachChild clamps each
// child into the parent's bounds, so rendered durations always nest even
// when the flush the atomics describe is not exactly this request's own.
func (t *storeTelemetry) attachFlushPhases(js *trace.Span) {
	if t == nil || js == nil {
		return
	}
	_, end := js.Bounds()
	if end == 0 {
		return
	}
	gather, write, sync := t.lastGather.Load(), t.lastWrite.Load(), t.lastSync.Load()
	syncStart := end - sync
	writeStart := syncStart - write
	gatherStart := writeStart - gather
	if gather > 0 {
		js.AttachChild("store.gather", gatherStart, writeStart)
	}
	if write > 0 {
		js.AttachChild("store.write", writeStart, syncStart)
	}
	if sync > 0 {
		js.AttachChild("store.sync", syncStart, end)
	}
}

// register creates the instrumenter's histogram families on reg; without
// a registry the instrumenter still runs, feeding only the trace phases.
func (t *storeTelemetry) register(reg *telemetry.Registry) {
	t.appendLatency = reg.NewHistogram("svt_store_append_duration_seconds",
		"Caller-observed append latency, enqueue through durability acknowledgement (sampled 1-in-8).",
		telemetry.LatencyBuckets)
	t.batchEvents = reg.NewHistogram("svt_store_commit_batch_events",
		"Events per group-commit flush batch.",
		telemetry.CountBuckets)
	t.syncLatency = reg.NewHistogram("svt_store_sync_duration_seconds",
		"Durability barrier (fsync/msync) latency per flush.",
		telemetry.LatencyBuckets)
	reg.NewCollector("svt_store_recovery_duration_seconds",
		"Open-time recovery scan duration.", "gauge",
		func(emit func(string, float64)) {
			emit("", float64(t.recoveryNanos.Load())*1e-9)
		})
}

// registerStoreHealth registers the store layer's health counters,
// mirrored as collectors off the store's Health snapshot.
func registerStoreHealth(reg *telemetry.Registry, st store.SessionStore) {
	if h, ok := st.(store.Healther); ok {
		counter := func(name, help string, v func(store.Health) float64) {
			reg.NewCollector(name, help, "counter",
				func(emit func(string, float64)) { emit("", v(h.Health())) })
		}
		gauge := func(name, help string, v func(store.Health) float64) {
			reg.NewCollector(name, help, "gauge",
				func(emit func(string, float64)) { emit("", v(h.Health())) })
		}
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		counter("svt_store_appends_total", "Successful journal appends.",
			func(h store.Health) float64 { return float64(h.Appends) })
		counter("svt_store_appended_bytes_total", "Record bytes journaled.",
			func(h store.Health) float64 { return float64(h.AppendedBytes) })
		counter("svt_store_flushes_total", "Physical journal flushes; appends/flushes is the realized group-commit batching ratio.",
			func(h store.Health) float64 { return float64(h.Flushes) })
		counter("svt_store_syncs_total", "Durability barriers (fsync/msync).",
			func(h store.Health) float64 { return float64(h.Syncs) })
		counter("svt_store_failures_total", "Append, snapshot and sync failures.",
			func(h store.Health) float64 { return float64(h.Failures) })
		counter("svt_store_snapshots_total", "Published store snapshots.",
			func(h store.Health) float64 { return float64(h.Snapshots) })
		gauge("svt_store_journal_bytes", "Active journal segment size in bytes.",
			func(h store.Health) float64 { return float64(h.JournalBytes) })
		gauge("svt_store_segments", "Live journal segments; persistent growth means snapshots are failing.",
			func(h store.Health) float64 { return float64(h.Segments) })
		gauge("svt_store_mmap", "1 when the journal appends through a memory-mapped segment, 0 in write() mode.",
			func(h store.Health) float64 { return b2f(h.Mmap) })
		gauge("svt_store_broken", "1 when the store is in a failed state and refusing writes.",
			func(h store.Health) float64 { return b2f(h.Broken) })
		gauge("svt_store_recovered_events", "Events replayed by open-time recovery.",
			func(h store.Health) float64 { return float64(h.RecoveredEvents) })
	}
}

// apiTelemetry is the HTTP layer's stored metrics. Route handles are
// resolved per registered mux pattern at construction, so the per-request
// work after dispatch is one map lookup plus a few atomics.
type apiTelemetry struct {
	tick          atomic.Uint64
	inFlight      *telemetry.Gauge
	requestBytes  *telemetry.Counter
	responseBytes *telemetry.Counter
	routes        map[string]*routeTelemetry
	fallback      *routeTelemetry
}

// routeTelemetry is one route's per-status-class counters and latency
// histogram. classes is indexed by status/100 (index 0 collects anything
// outside 100–599).
type routeTelemetry struct {
	classes [6]*telemetry.Counter
	latency *telemetry.Histogram
}

// statusClasses are the label values for routeTelemetry.classes.
var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// registerAPITelemetry registers the HTTP families for the given route
// patterns. The catch-all "/" pattern is labeled "other" so unmatched
// paths do not mint a route label per probe URL.
func (a *API) registerAPITelemetry(reg *telemetry.Registry, patterns []string) *apiTelemetry {
	t := &apiTelemetry{routes: make(map[string]*routeTelemetry, len(patterns))}
	requests := reg.NewCounterVec("svt_http_requests_total",
		"HTTP requests by route and status class.")
	latency := reg.NewHistogramVec("svt_http_request_duration_seconds",
		"HTTP request latency by route (sampled 1-in-8).", telemetry.LatencyBuckets)
	for _, pat := range patterns {
		label := pat
		if label == "/" {
			label = "other"
		}
		rt := &routeTelemetry{latency: latency.With(telemetry.Label("route", label))}
		for class, name := range statusClasses {
			rt.classes[class] = requests.With(telemetry.Labels(
				telemetry.Label("route", label), telemetry.Label("class", name)))
		}
		t.routes[pat] = rt
		if label == "other" {
			t.fallback = rt
		}
	}
	if t.fallback == nil {
		t.fallback = t.routes[patterns[0]]
	}
	t.inFlight = reg.NewGauge("svt_http_in_flight_requests",
		"Requests currently being served.")
	t.requestBytes = reg.NewCounter("svt_http_request_bytes_total",
		"Request body bytes received (per Content-Length).")
	t.responseBytes = reg.NewCounter("svt_http_response_bytes_total",
		"Response body bytes written.")
	reg.NewCollector("svt_http_encode_failures_total",
		"Responses whose JSON encode or write failed after the status header was out.", "counter",
		func(emit func(string, float64)) { emit("", float64(a.encodeFailures.Load())) })
	reg.NewCollector("svt_http_rate_limited_total",
		"Requests rejected by the per-tenant rate limiter, by tenant.", "counter",
		func(emit func(string, float64)) {
			rl := a.limiter.Load()
			if rl == nil {
				return
			}
			for tenant, n := range rl.RejectedByTenant() {
				emit(telemetry.Label("tenant", tenant), float64(n))
			}
		})
	return t
}

// statusWriter captures the response status and body size. Pooled so the
// instrumented path allocates nothing in steady state; the inner writer
// is dropped before pooling so nothing request-scoped is retained.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	// exemplar is the request's trace ID when the request was
	// trace-sampled (set by handleQuery); a sampled latency observation
	// then carries it as an OpenMetrics exemplar.
	exemplar string
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// observe records one completed request; called by ServeHTTP after the
// mux returns. pattern is r.Pattern, set in place by the mux dispatch;
// exemplar is the trace ID of a trace-sampled request ("" otherwise),
// attached to the latency observation so /metrics links to /v1/traces.
func (t *apiTelemetry) observe(pattern string, status int, reqBytes, respBytes int64, start int64, sampled bool, exemplar string) {
	rt := t.routes[pattern]
	if rt == nil {
		rt = t.fallback
	}
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	rt.classes[class].Inc()
	if sampled {
		rt.latency.ObserveNExemplar(telemetry.Seconds(telemetry.Now()-start), querySamplePeriod, exemplar)
	}
	if reqBytes > 0 {
		t.requestBytes.Add(uint64(reqBytes))
	}
	if respBytes > 0 {
		t.responseBytes.Add(uint64(respBytes))
	}
}
