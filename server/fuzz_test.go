package server

// FuzzDecodeProgress hammers the progress-record decoder — the hot-path
// journal codec — with arbitrary bytes. Recovery feeds it whatever
// survived a crash, so it must never panic, never over-read, and accept
// all three generations of the layout: v1 (counters only), v2
// (special-cased ρ/synthetic-histogram flag bits) and v3 (opaque state
// blob). The seed corpus pins one well-formed payload per generation so
// legacy WAL decode can never silently regress.

import (
	"bytes"
	"testing"

	"github.com/dpgo/svt/mech"
)

// legacyV1Progress hand-encodes the codec-v1 two-field layout.
func legacyV1Progress(answered, positives uint64) []byte {
	buf := appendUvarintForTest(nil, answered)
	return appendUvarintForTest(buf, positives)
}

// progressSeeds returns one canonical payload per codec generation, used
// both as the fuzz corpus and by the corpus-pinning test below.
func progressSeeds() [][]byte {
	rho := -1.25
	return [][]byte{
		legacyV1Progress(5, 2),
		legacyV2Progress(2, 1, 9, 0, &rho, nil),
		legacyV2Progress(3, 1, 4, 7, nil, []float64{4, 1.5, 2, 0.5}),
		progressEvent("s", progressDelta{answered: 1, positives: 1, draws: 3, aux: 2,
			state: mech.RhoStateBlob(0.5)}).Data,
		progressEvent("s", progressDelta{answered: 4, positives: 2, draws: 11,
			state: mech.SyntheticStateBlob([]float64{1, 2, 3})}).Data,
		progressEvent("s", progressDelta{answered: 6}).Data,
	}
}

// TestProgressSeedCorpusDecodes keeps every generation's canonical payload
// green outside fuzzing too: each must decode, and re-encode canonically
// (as v3) to a payload that decodes to the identical delta.
func TestProgressSeedCorpusDecodes(t *testing.T) {
	for i, data := range progressSeeds() {
		d, err := decodeProgress(data)
		if err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		re, err := decodeProgress(progressEvent("s", d).Data)
		if err != nil {
			t.Fatalf("seed %d: canonical re-encoding does not decode: %v", i, err)
		}
		if re.answered != d.answered || re.positives != d.positives ||
			re.draws != d.draws || re.aux != d.aux || !bytes.Equal(re.state, d.state) {
			t.Fatalf("seed %d: canonicalization changed the delta:\n got  %+v\n want %+v", i, re, d)
		}
	}
}

func FuzzDecodeProgress(f *testing.F) {
	for _, seed := range progressSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	truncated := progressSeeds()[3]
	f.Add(truncated[:len(truncated)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decodeProgress(data)
		if err != nil {
			return
		}
		// Anything accepted must survive canonical re-encoding: the v3
		// writer followed by the decoder is the identity on deltas. This is
		// what recovery relies on after a snapshot rewrites old records.
		re, err := decodeProgress(progressEvent("s", d).Data)
		if err != nil {
			t.Fatalf("accepted delta %+v does not re-decode: %v", d, err)
		}
		if re.answered != d.answered || re.positives != d.positives ||
			re.draws != d.draws || re.aux != d.aux || !bytes.Equal(re.state, d.state) {
			t.Fatalf("canonicalization changed the delta:\n got  %+v\n want %+v", re, d)
		}
	})
}
