package server

// FuzzDecodeProgress and FuzzDecodeSessionRecord hammer the two journal
// decoders — the progress codec and the session-record codec — with
// arbitrary bytes. Recovery feeds them whatever survived a crash, so they
// must never panic, never over-read, and accept every generation of their
// layouts: v1 (counters only / plain JSON), v2 (special-cased
// ρ/synthetic-histogram), v3 (opaque state blob) and, for session records,
// the v4 compact binary layout. The seed corpora pin one well-formed
// payload per generation so legacy WAL decode can never silently regress.

import (
	"bytes"
	"testing"

	"github.com/dpgo/svt/mech"
)

// legacyV1Progress hand-encodes the codec-v1 two-field layout.
func legacyV1Progress(answered, positives uint64) []byte {
	buf := appendUvarintForTest(nil, answered)
	return appendUvarintForTest(buf, positives)
}

// progressSeeds returns one canonical payload per codec generation, used
// both as the fuzz corpus and by the corpus-pinning test below.
func progressSeeds() [][]byte {
	rho := -1.25
	return [][]byte{
		legacyV1Progress(5, 2),
		legacyV2Progress(2, 1, 9, 0, &rho, nil),
		legacyV2Progress(3, 1, 4, 7, nil, []float64{4, 1.5, 2, 0.5}),
		progressEvent("s", progressDelta{answered: 1, positives: 1, draws: 3, aux: 2,
			state: mech.RhoStateBlob(0.5)}).Data,
		progressEvent("s", progressDelta{answered: 4, positives: 2, draws: 11,
			state: mech.SyntheticStateBlob([]float64{1, 2, 3})}).Data,
		progressEvent("s", progressDelta{answered: 6}).Data,
	}
}

// TestProgressSeedCorpusDecodes keeps every generation's canonical payload
// green outside fuzzing too: each must decode, and re-encode canonically
// (as v3) to a payload that decodes to the identical delta.
func TestProgressSeedCorpusDecodes(t *testing.T) {
	for i, data := range progressSeeds() {
		d, err := decodeProgress(data)
		if err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		re, err := decodeProgress(progressEvent("s", d).Data)
		if err != nil {
			t.Fatalf("seed %d: canonical re-encoding does not decode: %v", i, err)
		}
		if re.answered != d.answered || re.positives != d.positives ||
			re.draws != d.draws || re.aux != d.aux || !bytes.Equal(re.state, d.state) {
			t.Fatalf("seed %d: canonicalization changed the delta:\n got  %+v\n want %+v", i, re, d)
		}
	}
}

// sessionRecordSeeds returns one canonical session-record payload per
// codec generation: v1 (no version tag), v2 (rho/synth special cases), v3
// (opaque state blob) — all JSON — and the v4 binary layout.
func sessionRecordSeeds() [][]byte {
	th := 0.5
	full := sessionRecord{
		V: persistVersion,
		Params: CreateParams{
			Mechanism: MechPMW, Epsilon: 2, Sensitivity: 1, MaxPositives: 3,
			Threshold: &th, Monotonic: true, AnswerFraction: 0.25, Seed: 17,
			TTLSeconds: 600, Histogram: []float64{2, 1, 3}, UpdateFraction: 0.5,
			LearningRate: 0.1, Tenant: "acme",
		},
		CreatedAt: 1700000000000000000, Answered: 9, Positives: 2,
		Draws: 40, AuxDraws: 7, State: mech.SyntheticStateBlob([]float64{1, 2, 3}),
	}
	lean := sessionRecord{
		V:      persistVersion,
		Params: CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 8, TTLSeconds: 60},
	}
	return [][]byte{
		[]byte(`{"params":{"mechanism":"sparse","epsilon":1,"maxPositives":4,"threshold":2,"ttlSeconds":600},"createdAtUnixNano":123,"answered":3,"positives":1}`),
		[]byte(`{"v":2,"params":{"mechanism":"dpbook","epsilon":1,"maxPositives":8,"threshold":0.5,"seed":13,"ttlSeconds":600},"createdAtUnixNano":456,"answered":2,"positives":1,"draws":5,"rho":-0.625}`),
		[]byte(`{"v":2,"params":{"mechanism":"pmw","epsilon":2,"maxPositives":3,"threshold":50,"seed":1,"ttlSeconds":600,"histogram":[2,2,2]},"createdAtUnixNano":789,"answered":1,"positives":1,"draws":1,"gateDraws":3,"synth":[1,2,3]}`),
		[]byte(`{"v":3,"params":{"mechanism":"esvt","epsilon":1,"maxPositives":3,"seed":17,"ttlSeconds":600},"createdAtUnixNano":321,"answered":2,"positives":1,"draws":4,"state":"AAAAAAAA4D8="}`),
		appendSessionRecord(nil, &full),
		appendSessionRecord(nil, &lean),
	}
}

// recsEquivalent compares two records' logical content by their canonical
// (v4) encodings: bit-exact on floats (NaN payloads included, which
// reflect.DeepEqual would refuse), indifferent to the codec generation the
// records were decoded from, and treating empty and absent slices as the
// same — JSON "[]" decodes to an empty non-nil slice that v4 canonically
// omits.
func recsEquivalent(a, b *sessionRecord) bool {
	return bytes.Equal(appendSessionRecord(nil, a), appendSessionRecord(nil, b))
}

// TestSessionRecordSeedCorpusDecodes keeps every generation's canonical
// payload green outside fuzzing too: each must decode, and re-encode
// canonically (as v4 binary) to a payload that decodes to the identical
// logical record.
func TestSessionRecordSeedCorpusDecodes(t *testing.T) {
	for i, data := range sessionRecordSeeds() {
		rec, err := decodeSessionRecord(data)
		if err != nil {
			t.Fatalf("seed %d does not decode: %v", i, err)
		}
		re, err := decodeSessionRecord(appendSessionRecord(nil, rec))
		if err != nil {
			t.Fatalf("seed %d: canonical re-encoding does not decode: %v", i, err)
		}
		if !recsEquivalent(re, rec) {
			t.Fatalf("seed %d: canonicalization changed the record:\n got  %+v\n want %+v", i, re, rec)
		}
	}
}

func FuzzDecodeSessionRecord(f *testing.F) {
	for _, seed := range sessionRecordSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte(`{"answered":-1}`))
	v4 := sessionRecordSeeds()[4]
	f.Add(v4[:len(v4)-5])
	f.Add(append(append([]byte(nil), v4...), 0x01)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeSessionRecord(data)
		if err != nil {
			return
		}
		if rec.Answered < 0 || rec.Positives < 0 || rec.Params.MaxPositives < 0 || rec.Params.CacheSize < 0 {
			t.Fatalf("decoder accepted negative counters: %+v", rec)
		}
		// Anything accepted must survive canonical re-encoding: the v4
		// writer followed by the decoder is the identity on logical
		// records. This is what recovery relies on after a snapshot
		// rewrites old records.
		re, err := decodeSessionRecord(appendSessionRecord(nil, rec))
		if err != nil {
			t.Fatalf("accepted record %+v does not re-decode: %v", rec, err)
		}
		if !recsEquivalent(re, rec) {
			t.Fatalf("canonicalization changed the record:\n got  %+v\n want %+v", re, rec)
		}
	})
}

func FuzzDecodeProgress(f *testing.F) {
	for _, seed := range progressSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	truncated := progressSeeds()[3]
	f.Add(truncated[:len(truncated)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decodeProgress(data)
		if err != nil {
			return
		}
		// Anything accepted must survive canonical re-encoding: the v3
		// writer followed by the decoder is the identity on deltas. This is
		// what recovery relies on after a snapshot rewrites old records.
		re, err := decodeProgress(progressEvent("s", d).Data)
		if err != nil {
			t.Fatalf("accepted delta %+v does not re-decode: %v", d, err)
		}
		if re.answered != d.answered || re.positives != d.positives ||
			re.draws != d.draws || re.aux != d.aux || !bytes.Equal(re.state, d.state) {
			t.Fatalf("canonicalization changed the delta:\n got  %+v\n want %+v", re, d)
		}
	})
}
