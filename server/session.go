package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	svt "github.com/dpgo/svt"
	"github.com/dpgo/svt/dp"
	"github.com/dpgo/svt/pmw"
	"github.com/dpgo/svt/variants"
)

// Mechanism names one of the interactive mechanisms a session can run.
// Only the differentially private variants are exposed: the broken
// historical algorithms (Roth11, Stoddard, Chen, GPTT) stay confined to
// the variants/audit packages and are deliberately not servable.
type Mechanism string

const (
	// MechSparse is the paper's corrected, generalized SVT (Algorithm 7)
	// via svt.Sparse: optimal budget allocation, optional monotonic
	// refinement and optional ε₃ numeric releases.
	MechSparse Mechanism = "sparse"
	// MechProposed is the paper's Algorithm 1 (fixed ρ, ε₁=ε₂=ε/2).
	MechProposed Mechanism = "proposed"
	// MechDPBook is Algorithm 2, the Dwork-Roth book SVT (resampled ρ).
	MechDPBook Mechanism = "dpbook"
	// MechPMW is the Private-Multiplicative-Weights mediator with the
	// corrected SVT as its gate (the pmw package).
	MechPMW Mechanism = "pmw"
)

// mechanisms lists every servable mechanism in counter-index order.
var mechanisms = [...]Mechanism{MechSparse, MechProposed, MechDPBook, MechPMW}

// index returns the mechanism's position in mechanisms, or -1.
func (m Mechanism) index() int {
	for i, k := range mechanisms {
		if k == m {
			return i
		}
	}
	return -1
}

// CreateParams configures a new session. JSON field names match the
// POST /v1/sessions request body.
type CreateParams struct {
	// Mechanism selects the algorithm: "sparse", "proposed", "dpbook" or
	// "pmw". Required.
	Mechanism Mechanism `json:"mechanism"`
	// Epsilon is the total privacy budget of the session. Required.
	Epsilon float64 `json:"epsilon"`
	// Sensitivity is the query sensitivity Δ; 0 defaults to 1.
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// MaxPositives is the SVT cutoff c (for pmw: the update budget).
	// Required.
	MaxPositives int `json:"maxPositives"`
	// Threshold is the default threshold for queries that do not carry
	// their own. Required for pmw (the error threshold T); optional for
	// the SVT mechanisms when every query supplies a threshold. A pointer
	// so that an explicit default of 0 is distinguishable from "absent".
	Threshold *float64 `json:"threshold,omitempty"`
	// Monotonic enables the Theorem 5 refinement (sparse only).
	Monotonic bool `json:"monotonic,omitempty"`
	// AnswerFraction reserves ε₃ for numeric releases (sparse only).
	AnswerFraction float64 `json:"answerFraction,omitempty"`
	// Seed makes the session reproducible; 0 means crypto-seeded.
	Seed uint64 `json:"seed,omitempty"`
	// TTLSeconds is the idle time-to-live; 0 uses the manager default.
	TTLSeconds float64 `json:"ttlSeconds,omitempty"`
	// Histogram is the private dataset for pmw sessions. Required for
	// pmw, rejected otherwise.
	Histogram []float64 `json:"histogram,omitempty"`
	// UpdateFraction and LearningRate tune pmw; zero means its defaults.
	UpdateFraction float64 `json:"updateFraction,omitempty"`
	LearningRate   float64 `json:"learningRate,omitempty"`
}

// QueryItem is one threshold query (SVT mechanisms) or one linear
// counting query (pmw).
type QueryItem struct {
	// Query is the true, unperturbed answer computed by the analyst's
	// trusted side on the private data (SVT mechanisms).
	Query float64 `json:"query"`
	// Threshold overrides the session default for this query. NaN/absent
	// means use the default.
	Threshold *float64 `json:"threshold,omitempty"`
	// Buckets is the pmw linear query: distinct histogram indices.
	Buckets []int `json:"buckets,omitempty"`
}

// QueryResult is one released answer.
type QueryResult struct {
	// Above is the SVT indicator outcome (⊤ = true).
	Above bool `json:"above"`
	// Numeric reports that Value carries an ε₃ numeric release (sparse)
	// or a pmw answer.
	Numeric bool `json:"numeric,omitempty"`
	// Value is the released number when Numeric is set.
	Value float64 `json:"value,omitempty"`
	// FromSynthetic marks a free pmw answer (no budget spent).
	FromSynthetic bool `json:"fromSynthetic,omitempty"`
	// Exhausted marks a pmw answer released after the update budget was
	// spent: an unchecked synthetic estimate.
	Exhausted bool `json:"exhausted,omitempty"`
}

// BatchResult is the outcome of a (possibly single-item) query batch.
type BatchResult struct {
	// Results holds one entry per answered query, in order. It is shorter
	// than the request when the mechanism halted mid-batch.
	Results []QueryResult `json:"results"`
	// Halted reports that the session's positive-outcome (or pmw update)
	// budget is spent.
	Halted bool `json:"halted"`
	// Remaining is how many more positive outcomes / updates may be
	// released.
	Remaining int `json:"remaining"`
}

// Budget is the realized privacy-budget split of a session. For sparse
// sessions the three parts are the paper's (ε₁, ε₂, ε₃); for proposed and
// dpbook ε₃ = 0 and ε₁ = ε₂ = ε/2; for pmw ε₁/ε₂ are the SVT gate's split
// and ε₃ is the Laplace update-release budget. Total is always their
// basic-composition sum (dp.BasicComposition), which equals the configured
// session Epsilon.
type Budget struct {
	Eps1  float64 `json:"eps1"`
	Eps2  float64 `json:"eps2"`
	Eps3  float64 `json:"eps3"`
	Total float64 `json:"total"`
}

// SessionStatus is the GET /v1/sessions/{id} response body.
type SessionStatus struct {
	ID        string    `json:"id"`
	Mechanism Mechanism `json:"mechanism"`
	Answered  int       `json:"answered"`
	Positives int       `json:"positives"`
	Remaining int       `json:"remaining"`
	Halted    bool      `json:"halted"`
	Budget    Budget    `json:"budget"`
	CreatedAt time.Time `json:"createdAt"`
	ExpiresAt time.Time `json:"expiresAt"`
}

// Session is one live mechanism instance. All mechanism access is
// serialized by the session's own mutex, so many sessions progress in
// parallel while each individual interaction stays sequential — the
// underlying library types are not concurrency-safe.
type Session struct {
	id   string
	mech Mechanism
	ttl  time.Duration

	createdAt time.Time
	// expiresAt is the idle deadline in unixnanos, advanced on every
	// access; atomic so the janitor can read it without the session lock.
	expiresAt atomic.Int64

	// params is the validated create request, retained verbatim so the
	// session can be journaled and rebuilt after a restart (see persist.go).
	params CreateParams

	mu           sync.Mutex
	sparse       *svt.Sparse
	stream       variants.Stream
	engine       *pmw.Engine
	threshold    float64 // default threshold; NaN when none was given
	buckets      int     // pmw histogram size, for upfront validation
	maxPositives int
	answered     int
	positives    int
	budget       Budget

	// jDraws/jGate are the noise streams' positions at the last
	// successfully journaled progress event, so each event carries exact
	// draw deltas (see persist.go).
	jDraws uint64
	jGate  uint64
}

// newSession validates p and builds the mechanism. ttl is already
// resolved (default applied, cap enforced) by the manager.
func newSession(id string, p CreateParams, ttl time.Duration, now time.Time) (*Session, error) {
	sens := p.Sensitivity
	if sens == 0 {
		sens = 1
	}
	// Retain the params as realized, not as requested: the TTL is already
	// resolved (default applied, cap enforced), and a raw request like
	// ttlSeconds=+Inf would not survive the JSON journal encoding.
	p.TTLSeconds = ttl.Seconds()
	s := &Session{
		id:           id,
		mech:         p.Mechanism,
		ttl:          ttl,
		createdAt:    now,
		params:       p,
		threshold:    math.NaN(),
		maxPositives: p.MaxPositives,
	}
	if p.Mechanism == MechPMW && p.Threshold == nil {
		return nil, fmt.Errorf("server: pmw sessions require a threshold")
	}
	if p.Threshold != nil {
		if math.IsNaN(*p.Threshold) || math.IsInf(*p.Threshold, 0) {
			return nil, fmt.Errorf("server: threshold must be finite, got %v", *p.Threshold)
		}
		s.threshold = *p.Threshold
	}
	if p.Mechanism != MechPMW && len(p.Histogram) > 0 {
		return nil, fmt.Errorf("server: histogram is only valid for pmw sessions")
	}

	switch p.Mechanism {
	case MechSparse:
		mech, err := svt.New(svt.Options{
			Epsilon:        p.Epsilon,
			Sensitivity:    sens,
			MaxPositives:   p.MaxPositives,
			Monotonic:      p.Monotonic,
			AnswerFraction: p.AnswerFraction,
			Seed:           p.Seed,
		})
		if err != nil {
			return nil, err
		}
		s.sparse = mech
		s.budget.Eps1, s.budget.Eps2, s.budget.Eps3 = mech.Budgets()

	case MechProposed, MechDPBook:
		build := variants.NewProposed
		if p.Mechanism == MechDPBook {
			build = variants.NewDPBook
		}
		mech, err := build(p.Epsilon, sens, p.MaxPositives, p.Seed)
		if err != nil {
			return nil, err
		}
		s.stream = mech
		// Algorithms 1 and 2 both hard-code the ε₁ = ε₂ = ε/2 split and
		// release indicators only.
		s.budget.Eps1, s.budget.Eps2, s.budget.Eps3 = p.Epsilon/2, p.Epsilon/2, 0

	case MechPMW:
		engine, err := pmw.New(pmw.Config{
			Histogram:      p.Histogram,
			Epsilon:        p.Epsilon,
			MaxUpdates:     p.MaxPositives,
			Threshold:      *p.Threshold,
			UpdateFraction: p.UpdateFraction,
			LearningRate:   p.LearningRate,
			Seed:           p.Seed,
		})
		if err != nil {
			return nil, err
		}
		s.engine = engine
		s.buckets = len(p.Histogram)
		s.budget.Eps1, s.budget.Eps2, s.budget.Eps3 = engine.Budgets()

	default:
		return nil, fmt.Errorf("server: unknown mechanism %q (want sparse, proposed, dpbook or pmw)", p.Mechanism)
	}

	parts := make([]float64, 0, 3)
	for _, e := range []float64{s.budget.Eps1, s.budget.Eps2, s.budget.Eps3} {
		if e > 0 {
			parts = append(parts, e)
		}
	}
	total, err := dp.BasicComposition(parts...)
	if err != nil {
		return nil, fmt.Errorf("server: composing session budget: %w", err)
	}
	s.budget.Total = total
	s.jDraws, s.jGate = s.drawsLocked() // construction draws are in the create record
	s.touch(now)
	return s, nil
}

// drawsLocked returns the mechanism's noise-stream positions: the main
// stream (for pmw, the Laplace update-release stream) and the pmw gate
// stream (0 otherwise). Callers hold s.mu (or own the session exclusively).
func (s *Session) drawsLocked() (main, gate uint64) {
	switch {
	case s.sparse != nil:
		return s.sparse.Draws(), 0
	case s.engine != nil:
		g, u := s.engine.Draws()
		return u, g
	default:
		if d, ok := s.stream.(variants.StreamState); ok {
			return d.Draws(), 0
		}
		return 0, 0
	}
}

// rhoLocked returns the mechanism's evolving noisy-threshold offset when it
// has one that must be journaled: only seeded dpbook streams, whose ρ is
// resampled after every positive outcome. Callers hold s.mu.
func (s *Session) rhoLocked() (float64, bool) {
	if s.params.Seed == 0 || s.stream == nil {
		return 0, false
	}
	rs, ok := s.stream.(variants.RhoState)
	if !ok {
		return 0, false
	}
	rho, evolving := rs.Rho()
	return rho, evolving
}

// touch pushes the idle deadline to now+ttl.
func (s *Session) touch(now time.Time) {
	s.expiresAt.Store(now.Add(s.ttl).UnixNano())
}

// expired reports whether the idle deadline has passed.
func (s *Session) expired(now time.Time) bool {
	return now.UnixNano() > s.expiresAt.Load()
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Mechanism returns the session's mechanism kind.
func (s *Session) Mechanism() Mechanism { return s.mech }

// Query answers a batch of queries (a single query is a batch of one).
// The whole batch is validated before any item is answered: released DP
// answers spend budget irrevocably, so a malformed item must not cost
// the analyst the answers preceding it. The batch stops early — without
// error — when the mechanism halts; the returned BatchResult reports how
// far it got. A query on an already-halted SVT session returns an empty,
// Halted result; a pmw session keeps answering from the synthetic
// histogram with the Exhausted flag set.
func (s *Session) Query(items []QueryItem) (BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, item := range items {
		if err := s.validateItem(item); err != nil {
			return BatchResult{}, fmt.Errorf("server: query %d: %w", i, err)
		}
	}
	out := BatchResult{Results: make([]QueryResult, 0, len(items))}
	for i, item := range items {
		res, halted, err := s.answerOne(item)
		if err != nil {
			// Unreachable after validation; surface it rather than hide it.
			return out, fmt.Errorf("server: query %d: %w", i, err)
		}
		if halted {
			break
		}
		out.Results = append(out.Results, res)
		s.answered++
	}
	out.Halted = s.haltedLocked()
	out.Remaining = s.remainingLocked()
	return out, nil
}

// validateItem rejects a query without touching the mechanism, so a bad
// batch costs no budget. It mirrors every validation the answer path
// performs.
func (s *Session) validateItem(item QueryItem) error {
	if s.mech == MechPMW {
		if len(item.Buckets) == 0 {
			return fmt.Errorf("server: pmw query needs buckets")
		}
		seen := make(map[int]bool, len(item.Buckets))
		for _, b := range item.Buckets {
			if b < 0 || b >= s.buckets {
				return fmt.Errorf("server: bucket %d out of range [0,%d)", b, s.buckets)
			}
			if seen[b] {
				return fmt.Errorf("server: duplicate bucket %d in query", b)
			}
			seen[b] = true
		}
		return nil
	}
	if len(item.Buckets) > 0 {
		return fmt.Errorf("server: buckets are only valid for pmw sessions")
	}
	th := s.threshold
	if item.Threshold != nil {
		th = *item.Threshold
	}
	if math.IsNaN(th) {
		return fmt.Errorf("server: no threshold: session has no default and the query carries none")
	}
	if math.IsNaN(item.Query) || math.IsInf(item.Query, 0) || math.IsInf(th, 0) {
		return fmt.Errorf("server: query and threshold must be finite, got %v and %v", item.Query, th)
	}
	return nil
}

// answerOne dispatches one already-validated query to the session's
// mechanism. halted reports that the mechanism refused the query because
// its budget is already spent (SVT mechanisms only; pmw answers with
// Exhausted set).
func (s *Session) answerOne(item QueryItem) (res QueryResult, halted bool, err error) {
	if s.mech == MechPMW {
		ans, aerr := s.engine.Answer(item.Buckets)
		if aerr != nil && aerr != pmw.ErrExhausted {
			return res, false, aerr
		}
		if !ans.FromSynthetic {
			s.positives++
		}
		return QueryResult{
			Numeric:       true,
			Value:         ans.Value,
			FromSynthetic: ans.FromSynthetic,
			Exhausted:     aerr == pmw.ErrExhausted,
		}, false, nil
	}

	th := s.threshold
	if item.Threshold != nil {
		th = *item.Threshold
	}

	if s.sparse != nil {
		r, nerr := s.sparse.Next(item.Query, th)
		if nerr == svt.ErrHalted {
			return res, true, nil
		}
		if nerr != nil {
			return res, false, nerr
		}
		if r.Above {
			s.positives++
		}
		return QueryResult{Above: r.Above, Numeric: r.Numeric, Value: r.Value}, false, nil
	}

	r, ok := s.stream.Next(item.Query, th)
	if !ok {
		return res, true, nil
	}
	if r.Above {
		s.positives++
	}
	return QueryResult{Above: r.Above, Numeric: r.Numeric, Value: r.Value}, false, nil
}

// haltedLocked reports the mechanism's halt state; callers hold s.mu.
func (s *Session) haltedLocked() bool {
	switch {
	case s.sparse != nil:
		return s.sparse.Halted()
	case s.engine != nil:
		return s.engine.Exhausted()
	default:
		return s.stream.Halted()
	}
}

// remainingLocked returns the positive-outcome / update budget left;
// callers hold s.mu.
func (s *Session) remainingLocked() int {
	switch {
	case s.sparse != nil:
		return s.sparse.Remaining()
	case s.engine != nil:
		return s.engine.UpdatesLeft()
	default:
		return s.maxPositives - s.positives
	}
}

// Status snapshots the session.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStatus{
		ID:        s.id,
		Mechanism: s.mech,
		Answered:  s.answered,
		Positives: s.positives,
		Remaining: s.remainingLocked(),
		Halted:    s.haltedLocked(),
		Budget:    s.budget,
		CreatedAt: s.createdAt,
		ExpiresAt: time.Unix(0, s.expiresAt.Load()),
	}
}

// Budget returns the session's realized budget split.
func (s *Session) Budget() Budget {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// restore fast-forwards a freshly built session to journaled counters:
// crash recovery's final step. The mechanism's own accounting is advanced
// too, so a session that had consumed its whole positive budget pre-crash
// stays halted after the restart.
func (s *Session) restore(answered, positives int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if positives < 0 || answered < positives {
		return fmt.Errorf("server: restored counters answered=%d positives=%d are inconsistent", answered, positives)
	}
	if s.maxPositives > 0 && positives > s.maxPositives {
		return fmt.Errorf("server: restored positives %d exceed the session cutoff %d", positives, s.maxPositives)
	}
	switch {
	case s.sparse != nil:
		if err := s.sparse.Restore(answered, positives); err != nil {
			return err
		}
	case s.engine != nil:
		if err := s.engine.Restore(answered, positives); err != nil {
			return err
		}
	default:
		r, ok := s.stream.(variants.Restorer)
		if !ok {
			return fmt.Errorf("server: mechanism %q does not support restore", s.mech)
		}
		if err := r.Restore(positives); err != nil {
			return err
		}
	}
	s.answered = answered
	s.positives = positives
	return nil
}
