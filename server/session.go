package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/dp"
	"github.com/dpgo/svt/mech"
)

// Mechanism names one of the interactive mechanisms a session can run. The
// set of servable mechanisms is whatever the manager's mech.Registry holds
// (GET /v1/mechanisms lists them with capability flags); the constants
// below name the built-ins for compile-time convenience. Only
// differentially private mechanisms are registered: the broken historical
// algorithms (Roth11, Stoddard, Chen, GPTT) stay confined to the
// variants/audit packages and are deliberately not servable.
type Mechanism string

const (
	// MechSparse is the paper's corrected, generalized SVT (Algorithm 7)
	// via svt.Sparse: optimal budget allocation, optional monotonic
	// refinement and optional ε₃ numeric releases.
	MechSparse Mechanism = "sparse"
	// MechProposed is the paper's Algorithm 1 (fixed ρ, ε₁=ε₂=ε/2).
	MechProposed Mechanism = "proposed"
	// MechDPBook is Algorithm 2, the Dwork-Roth book SVT (resampled ρ).
	MechDPBook Mechanism = "dpbook"
	// MechPMW is the Private-Multiplicative-Weights mediator with the
	// corrected SVT as its gate (the pmw package).
	MechPMW Mechanism = "pmw"
)

// CreateParams configures a new session. JSON field names match the
// POST /v1/sessions request body.
type CreateParams struct {
	// Mechanism selects the algorithm by its registry name (GET
	// /v1/mechanisms lists what this server offers). Required.
	Mechanism Mechanism `json:"mechanism"`
	// Epsilon is the total privacy budget of the session. Required.
	Epsilon float64 `json:"epsilon"`
	// Sensitivity is the query sensitivity Δ; 0 defaults to 1.
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// MaxPositives is the SVT cutoff c (for mediators: the update budget).
	// Required.
	MaxPositives int `json:"maxPositives"`
	// Threshold is the default threshold for queries that do not carry
	// their own. Required for mechanisms flagged needsHistogram (the error
	// threshold T); optional for the SVT mechanisms when every query
	// supplies a threshold. A pointer so that an explicit default of 0 is
	// distinguishable from "absent".
	Threshold *float64 `json:"threshold,omitempty"`
	// Monotonic enables the Theorem 5 refinement where the mechanism's
	// capabilities advertise it.
	Monotonic bool `json:"monotonic,omitempty"`
	// AnswerFraction reserves ε₃ for numeric releases where supported.
	AnswerFraction float64 `json:"answerFraction,omitempty"`
	// Seed makes the session reproducible; 0 means crypto-seeded.
	Seed uint64 `json:"seed,omitempty"`
	// CacheSize opts the session into a bounded response cache for repeated
	// identical threshold queries (entries; 0 — the default — disables it).
	// A cache hit replays the prior released answer without touching the
	// mechanism, which is differentially private for free (post-processing
	// of an already-released output) and spends no budget — but it changes
	// the interaction model: repeats no longer get independent noisy
	// comparisons. Only mechanisms with the monotonicRefinement capability
	// accept it, and it cannot be combined with a non-zero Seed: the cache
	// is not journaled, so a crash-recovered session would diverge from the
	// seeded stream's bit-identical replay contract.
	CacheSize int `json:"cacheSize,omitempty"`
	// TTLSeconds is the idle time-to-live; 0 uses the manager default.
	TTLSeconds float64 `json:"ttlSeconds,omitempty"`
	// Histogram is the private dataset for mechanisms that need one.
	Histogram []float64 `json:"histogram,omitempty"`
	// UpdateFraction and LearningRate tune histogram mediators; zero means
	// their defaults.
	UpdateFraction float64 `json:"updateFraction,omitempty"`
	LearningRate   float64 `json:"learningRate,omitempty"`
	// Tenant attributes the session for per-tenant budget telemetry. It is
	// deliberately NOT settable through the request body (json:"-"): the
	// HTTP layer fills it from the authenticated X-Tenant header, the same
	// identity the rate limiter keys on. Persisted in the journal (codec
	// v4's tenant flag) so attribution survives a crash; empty means the
	// default tenant.
	Tenant string `json:"-"`
}

// mechParams maps the wire-level create request onto the mechanism layer's
// parameter set; each factory validates the fields it consumes.
func (p CreateParams) mechParams() mech.Params {
	return mech.Params{
		Epsilon:        p.Epsilon,
		Sensitivity:    p.Sensitivity,
		MaxPositives:   p.MaxPositives,
		Threshold:      p.Threshold,
		Monotonic:      p.Monotonic,
		AnswerFraction: p.AnswerFraction,
		Seed:           p.Seed,
		Histogram:      p.Histogram,
		UpdateFraction: p.UpdateFraction,
		LearningRate:   p.LearningRate,
	}
}

// QueryItem is one threshold query (SVT mechanisms) or one linear
// counting query (histogram mediators).
type QueryItem struct {
	// Query is the true, unperturbed answer computed by the analyst's
	// trusted side on the private data (SVT mechanisms).
	Query float64 `json:"query"`
	// Threshold overrides the session default for this query. NaN/absent
	// means use the default.
	Threshold *float64 `json:"threshold,omitempty"`
	// Buckets is a linear counting query: distinct histogram indices.
	Buckets []int `json:"buckets,omitempty"`
}

// QueryResult is one released answer.
type QueryResult struct {
	// Above is the SVT indicator outcome (⊤ = true).
	Above bool `json:"above"`
	// Numeric reports that Value carries a released number (an ε₃ numeric
	// release, or a mediator answer).
	Numeric bool `json:"numeric,omitempty"`
	// Value is the released number when Numeric is set.
	Value float64 `json:"value,omitempty"`
	// FromSynthetic marks a free mediator answer (no budget spent).
	FromSynthetic bool `json:"fromSynthetic,omitempty"`
	// Exhausted marks a mediator answer released after the update budget
	// was spent: an unchecked synthetic estimate.
	Exhausted bool `json:"exhausted,omitempty"`
}

// BatchResult is the outcome of a (possibly single-item) query batch.
type BatchResult struct {
	// Results holds one entry per answered query, in order. It is shorter
	// than the request when the mechanism halted mid-batch.
	Results []QueryResult `json:"results"`
	// Halted reports that the session's positive-outcome (or update)
	// budget is spent.
	Halted bool `json:"halted"`
	// Remaining is how many more positive outcomes / updates may be
	// released.
	Remaining int `json:"remaining"`
}

// Budget is the realized privacy-budget split of a session, as reported by
// the mechanism itself: the paper's (ε₁, ε₂, ε₃) for SVT-family
// mechanisms, the gate split plus the Laplace update-release budget for
// mediators. Total is always their basic-composition sum
// (dp.BasicComposition), which equals the configured session Epsilon.
type Budget struct {
	Eps1  float64 `json:"eps1"`
	Eps2  float64 `json:"eps2"`
	Eps3  float64 `json:"eps3"`
	Total float64 `json:"total"`
}

// SessionStatus is the GET /v1/sessions/{id} response body.
type SessionStatus struct {
	ID        string    `json:"id"`
	Mechanism Mechanism `json:"mechanism"`
	Answered  int       `json:"answered"`
	Positives int       `json:"positives"`
	Remaining int       `json:"remaining"`
	Halted    bool      `json:"halted"`
	Budget    Budget    `json:"budget"`
	CreatedAt time.Time `json:"createdAt"`
	ExpiresAt time.Time `json:"expiresAt"`
}

// Session is one live mechanism instance. All mechanism access is
// serialized by the session's own mutex, so many sessions progress in
// parallel while each individual interaction stays sequential — the
// underlying mechanism types are not concurrency-safe.
type Session struct {
	id   string
	mech Mechanism
	// mechIdx is the mechanism's position in the manager's registry-derived
	// counter array, resolved once at registration so the per-batch counter
	// bump is an array index, not a map lookup (-1 outside a manager).
	mechIdx int
	// home is the manager shard the session lives on, resolved once at
	// registration so the per-batch counter bump re-hashes nothing (nil
	// outside a manager).
	home *shard
	ttl  time.Duration

	createdAt time.Time
	// expiresAt is the idle deadline in unixnanos, advanced on every
	// access; atomic so the janitor can read it without the session lock.
	expiresAt atomic.Int64

	// params is the validated create request, retained verbatim so the
	// session can be journaled and rebuilt after a restart (see persist.go).
	params CreateParams

	mu        sync.Mutex
	inst      mech.Instance
	threshold float64 // default threshold; NaN when none was given
	answered  int
	positives int
	budget    Budget
	// haltSeen marks that the session's halt transition has been counted
	// (or, for a recovered already-halted session, that it pre-dates this
	// process), so the per-mechanism halt counter counts each session at
	// most once.
	haltSeen bool

	// jAnswered/jPositives/jDraws/jAux are the counters and noise-stream
	// positions at the last successfully journaled progress event, so each
	// event carries exact deltas (see persist.go).
	jAnswered  int
	jPositives int
	jDraws     uint64
	jAux       uint64
}

// newSession validates p against the registry and builds the mechanism.
// ttl is already resolved (default applied, cap enforced) by the manager.
func newSession(reg *mech.Registry, id string, p CreateParams, ttl time.Duration, now time.Time) (*Session, error) {
	// Retain the params as realized, not as requested: the TTL is already
	// resolved (default applied, cap enforced), and a raw request like
	// ttlSeconds=+Inf would not survive the JSON journal encoding.
	p.TTLSeconds = ttl.Seconds()
	s := &Session{
		id:        id,
		mech:      p.Mechanism,
		mechIdx:   -1,
		ttl:       ttl,
		createdAt: now,
		params:    p,
		threshold: math.NaN(),
	}
	if p.Threshold != nil {
		if math.IsNaN(*p.Threshold) || math.IsInf(*p.Threshold, 0) {
			return nil, fmt.Errorf("server: threshold must be finite, got %v", *p.Threshold)
		}
		s.threshold = *p.Threshold
	}
	inst, err := reg.New(string(p.Mechanism), p.mechParams())
	if err != nil {
		return nil, err
	}
	if p.CacheSize != 0 {
		if inst, err = wrapCache(reg, p, inst); err != nil {
			return nil, err
		}
	}
	s.inst = inst
	s.budget.Eps1, s.budget.Eps2, s.budget.Eps3 = inst.Budgets()

	parts := make([]float64, 0, 3)
	for _, e := range []float64{s.budget.Eps1, s.budget.Eps2, s.budget.Eps3} {
		if e > 0 {
			parts = append(parts, e)
		}
	}
	total, err := dp.BasicComposition(parts...)
	if err != nil {
		return nil, fmt.Errorf("server: composing session budget: %w", err)
	}
	s.budget.Total = total
	s.jDraws, s.jAux = inst.Draws() // construction draws are in the create record
	s.touch(now)
	return s, nil
}

// MaxCacheSize caps the per-session response cache: entries are tiny, but
// an unbounded request-controlled allocation is a memory DoS.
const MaxCacheSize = 1 << 16

// wrapCache validates the cacheSize opt-in and wraps the instance in the
// response-cache middleware. The gate is capability-driven: repeated
// identical queries are the monotonic-refinement workload, and only
// mechanisms advertising it accept the cache. Seeded sessions are refused —
// the cache is not journaled, so a crash-recovered session would re-draw
// noise where the uninterrupted run had a hit, breaking the seeded
// bit-identical replay contract.
func wrapCache(reg *mech.Registry, p CreateParams, inst mech.Instance) (mech.Instance, error) {
	if p.CacheSize < 0 || p.CacheSize > MaxCacheSize {
		return nil, fmt.Errorf("server: cacheSize must be in [1, %d], got %d", MaxCacheSize, p.CacheSize)
	}
	f, ok := reg.Lookup(string(p.Mechanism))
	if !ok || !f.Caps.MonotonicRefinement {
		return nil, fmt.Errorf("server: cacheSize requires a mechanism with the monotonicRefinement capability; %q does not advertise it", p.Mechanism)
	}
	if p.Seed != 0 {
		return nil, fmt.Errorf("server: cacheSize cannot be combined with a seed: the response cache is not journaled, so crash recovery could not replay the stream bit-identically")
	}
	return mech.NewCached(inst, p.CacheSize), nil
}

// resolve builds the mechanism-layer query: the session's default threshold
// is applied to items that carry none.
func (s *Session) resolve(item QueryItem) mech.Query {
	th := s.threshold
	if item.Threshold != nil {
		th = *item.Threshold
	}
	return mech.Query{Value: item.Query, Threshold: th, Buckets: item.Buckets}
}

// touch pushes the idle deadline to now+ttl.
func (s *Session) touch(now time.Time) {
	s.expiresAt.Store(now.Add(s.ttl).UnixNano())
}

// expired reports whether the idle deadline has passed.
func (s *Session) expired(now time.Time) bool {
	return now.UnixNano() > s.expiresAt.Load()
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Mechanism returns the session's mechanism name.
func (s *Session) Mechanism() Mechanism { return s.mech }

// Query answers a batch of queries (a single query is a batch of one).
// The whole batch is validated before any item is answered: released DP
// answers spend budget irrevocably, so a malformed item must not cost
// the analyst the answers preceding it. The batch stops early — without
// error — when the mechanism halts; the returned BatchResult reports how
// far it got. A query on an already-halted SVT session returns an empty,
// Halted result; a mediator session keeps answering from the synthetic
// histogram with the Exhausted flag set.
func (s *Session) Query(items []QueryItem) (BatchResult, error) {
	return s.queryInto(items, nil)
}

// queryInto is Query writing its results into dst's backing array (dst may
// be nil), so the HTTP hot path can recycle result slices across requests.
// The returned BatchResult.Results aliases dst when capacity sufficed;
// callers that retain results across calls must pass nil.
func (s *Session) queryInto(items []QueryItem, dst []QueryResult) (BatchResult, error) {
	res, _, err := s.queryTake(items, dst, false)
	return res, err
}

// queryTake is queryInto optionally capturing the journal progress delta
// in the SAME critical section, so the journaling path locks the session
// mutex once per batch instead of twice.
func (s *Session) queryTake(items []QueryItem, dst []QueryResult, take bool) (BatchResult, progressDelta, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, item := range items {
		if err := s.inst.Validate(s.resolve(item)); err != nil {
			return BatchResult{}, progressDelta{}, fmt.Errorf("server: query %d: %w", i, err)
		}
	}
	if dst == nil {
		dst = make([]QueryResult, 0, len(items))
	}
	out := BatchResult{Results: dst[:0]}
	pos0 := s.positives
	for i, item := range items {
		res, refused, err := s.inst.Answer(s.resolve(item))
		if err != nil {
			// Unreachable after validation; surface it rather than hide it.
			return out, progressDelta{}, fmt.Errorf("server: query %d: %w", i, err)
		}
		if refused {
			break
		}
		out.Results = append(out.Results, QueryResult{
			Above:         res.Above,
			Numeric:       res.Numeric,
			Value:         res.Value,
			FromSynthetic: res.FromSynthetic,
			Exhausted:     res.Exhausted,
		})
		s.answered++
		if res.SpentPositive {
			s.positives++
		}
	}
	out.Halted = s.inst.Halted()
	out.Remaining = s.inst.Remaining()
	// Charge the per-mechanism counters while the deltas are exact, under
	// the same lock that produced them. Shard and index were resolved at
	// registration, so this is array math, no map and no hash; sessions
	// outside a manager (home == nil) have nothing to charge.
	if s.home != nil && s.mechIdx >= 0 {
		if n := len(out.Results); n > 0 {
			s.home.queries[s.mechIdx].Add(uint64(n))
		}
		if dp := s.positives - pos0; dp > 0 {
			s.home.positives[s.mechIdx].Add(uint64(dp))
		}
		if out.Halted && !s.haltSeen {
			s.home.halts[s.mechIdx].Add(1)
		}
	}
	if out.Halted {
		s.haltSeen = true
	}
	var d progressDelta
	if take {
		d = s.takeProgressLocked()
	}
	return out, d, nil
}

// Status snapshots the session.
func (s *Session) Status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStatus{
		ID:        s.id,
		Mechanism: s.mech,
		Answered:  s.answered,
		Positives: s.positives,
		Remaining: s.inst.Remaining(),
		Halted:    s.inst.Halted(),
		Budget:    s.budget,
		CreatedAt: s.createdAt,
		ExpiresAt: time.Unix(0, s.expiresAt.Load()),
	}
}

// Budget returns the session's realized budget split.
func (s *Session) Budget() Budget {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// restore fast-forwards a freshly built session to journaled counters:
// crash recovery's final step. The mechanism's own accounting — both the
// answered and the positive count — is advanced too, so a session that had
// consumed its whole positive budget pre-crash stays halted after the
// restart.
func (s *Session) restore(answered, positives int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if positives < 0 || answered < positives {
		return fmt.Errorf("server: restored counters answered=%d positives=%d are inconsistent", answered, positives)
	}
	if err := s.inst.Restore(answered, positives); err != nil {
		return err
	}
	s.answered = answered
	s.positives = positives
	s.jAnswered, s.jPositives = answered, positives
	// A session recovered already halted pre-dates this process's halt
	// counter; marking it seen keeps the counter to transitions this
	// process observed.
	s.haltSeen = s.inst.Halted()
	return nil
}
