package server

// Crash-recovery tests: kill a WAL-backed manager without any orderly
// shutdown, reopen the directory, and require every live session's
// observable status — answered, positives, remaining, halted and the
// realized (ε₁, ε₂, ε₃) split — to come back identical, with consumed
// positive-outcome budget still consumed.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dpgo/svt/mech"
	"github.com/dpgo/svt/store"
)

// appendUvarintForTest builds raw v1 progress payloads.
func appendUvarintForTest(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// openWALManager opens a manager journaling to dir with immediate fsync.
// Periodic snapshots are disabled so tests control compaction explicitly.
func openWALManager(t *testing.T, dir string) (*SessionManager, *store.WAL) {
	t.Helper()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(ManagerConfig{
		SweepInterval:    time.Hour,
		SnapshotInterval: -1,
		Store:            st,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, st
}

// mustCreate creates a session or fails the test.
func mustCreate(t *testing.T, m *SessionManager, p CreateParams) *Session {
	t.Helper()
	s, err := m.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustQuery runs one batch or fails the test.
func mustQuery(t *testing.T, m *SessionManager, id string, items []QueryItem) BatchResult {
	t.Helper()
	res, err := m.Query(id, items)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// durableStatus strips the fields recovery legitimately refreshes (the idle
// deadline, and the in-process monotonic clock reading that never crosses a
// restart) from a status, leaving exactly what must survive a crash.
func durableStatus(st SessionStatus) SessionStatus {
	st.ExpiresAt = time.Time{}
	st.CreatedAt = st.CreatedAt.Round(0)
	return st
}

// surePositive is a query that lands above the threshold with probability
// indistinguishable from 1 (the gap dwarfs any realistic Laplace draw).
func surePositive() []QueryItem {
	return []QueryItem{{Query: 0, Threshold: ptr(-1e12)}}
}

// sureNegative is the mirror-image certain ⊥.
func sureNegative() []QueryItem {
	return []QueryItem{{Query: 0, Threshold: ptr(1e12)}}
}

func TestRestartRecoveryAllMechanisms(t *testing.T) {
	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)

	sparse := mustCreate(t, m1, CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 10, Threshold: ptr(0.5),
		AnswerFraction: 0.2, Seed: 11,
	})
	proposed := mustCreate(t, m1, CreateParams{
		Mechanism: MechProposed, Epsilon: 1, MaxPositives: 8, Threshold: ptr(0.5), Seed: 12,
	})
	dpbook := mustCreate(t, m1, CreateParams{
		Mechanism: MechDPBook, Epsilon: 1, MaxPositives: 8, Threshold: ptr(0.5), Seed: 13,
	})
	pmws := mustCreate(t, m1, pmwParams())

	// Drive a mixed workload: some certain positives, some certain
	// negatives, so every counter (answered, positives, remaining) moves.
	for i := 0; i < 3; i++ {
		mustQuery(t, m1, sparse.ID(), surePositive())
		mustQuery(t, m1, proposed.ID(), surePositive())
	}
	for i := 0; i < 4; i++ {
		mustQuery(t, m1, sparse.ID(), sureNegative())
		mustQuery(t, m1, dpbook.ID(), surePositive())
	}
	for i := 0; i < 5; i++ {
		mustQuery(t, m1, pmws.ID(), []QueryItem{{Buckets: []int{i % 6}}})
	}

	ids := []string{sparse.ID(), proposed.ID(), dpbook.ID(), pmws.ID()}
	want := make(map[string]SessionStatus, len(ids))
	for _, id := range ids {
		s, ok := m1.Get(id)
		if !ok {
			t.Fatalf("session %s vanished pre-crash", id)
		}
		want[id] = durableStatus(s.Status())
	}

	// Crash: no store.Close, no flush, just abandon the manager.
	m1.Close()

	m2, _ := openWALManager(t, dir)
	if got := m2.Recovered(); got != len(ids) {
		t.Fatalf("recovered %d sessions, want %d", got, len(ids))
	}
	for _, id := range ids {
		s, ok := m2.Get(id)
		if !ok {
			t.Fatalf("session %s lost across restart", id)
		}
		if got := durableStatus(s.Status()); got != want[id] {
			t.Errorf("session %s status diverged:\n got  %+v\n want %+v", id, got, want[id])
		}
	}

	// Recovered sessions keep serving.
	res := mustQuery(t, m2, sparse.ID(), sureNegative())
	if len(res.Results) != 1 {
		t.Fatalf("recovered sparse session refused a query: %+v", res)
	}
}

func TestRestartRecoveryRejectsPositivesAfterHalt(t *testing.T) {
	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)
	s := mustCreate(t, m1, CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 3, Threshold: ptr(0), Seed: 5,
	})
	// Exhaust the positive budget pre-crash.
	for i := 0; i < 3; i++ {
		res := mustQuery(t, m1, s.ID(), surePositive())
		if len(res.Results) != 1 || !res.Results[0].Above {
			t.Fatalf("setup query %d: %+v", i, res)
		}
	}
	st := s.Status()
	if !st.Halted || st.Remaining != 0 || st.Positives != 3 {
		t.Fatalf("pre-crash status %+v, want halted with 0 remaining", st)
	}
	m1.Close() // crash

	m2, _ := openWALManager(t, dir)
	rec, ok := m2.Get(s.ID())
	if !ok {
		t.Fatal("halted session lost across restart")
	}
	got := rec.Status()
	if !got.Halted || got.Remaining != 0 || got.Positives != 3 || got.Answered != st.Answered {
		t.Fatalf("post-crash status %+v, want %+v", got, st)
	}
	// The restart must NOT refresh the spent budget: further sure-positives
	// release nothing.
	res := mustQuery(t, m2, s.ID(), surePositive())
	if len(res.Results) != 0 || !res.Halted {
		t.Fatalf("halted session released an answer after restart: %+v", res)
	}
}

func TestRestartRecoveryPartialBudgetEnforced(t *testing.T) {
	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)
	s := mustCreate(t, m1, CreateParams{
		Mechanism: MechProposed, Epsilon: 1, MaxPositives: 5, Threshold: ptr(0), Seed: 9,
	})
	for i := 0; i < 2; i++ {
		mustQuery(t, m1, s.ID(), surePositive())
	}
	m1.Close() // crash with 2 of 5 positives consumed

	m2, _ := openWALManager(t, dir)
	released := 0
	for i := 0; i < 10; i++ {
		res := mustQuery(t, m2, s.ID(), surePositive())
		released += len(res.Results)
	}
	if released != 3 {
		t.Fatalf("recovered session released %d more positives, want exactly the 3 remaining", released)
	}
}

func TestRecoveryAfterSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)
	s := mustCreate(t, m1, sparseParams())
	mustQuery(t, m1, s.ID(), surePositive())
	if err := m1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot events live only in the journal tail.
	mustQuery(t, m1, s.ID(), surePositive())
	mustQuery(t, m1, s.ID(), sureNegative())
	want := durableStatus(mustStatus(t, m1, s.ID()))
	m1.Close() // crash

	m2, _ := openWALManager(t, dir)
	got := durableStatus(mustStatus(t, m2, s.ID()))
	if got != want {
		t.Fatalf("snapshot+tail recovery diverged:\n got  %+v\n want %+v", got, want)
	}
	if got.Answered != 3 || got.Positives != 2 {
		t.Fatalf("counters %+v, want answered=3 positives=2", got)
	}
}

func TestDeletedAndExpiredSessionsStayGone(t *testing.T) {
	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)
	keep := mustCreate(t, m1, sparseParams())
	gone := mustCreate(t, m1, sparseParams())
	expired := mustCreate(t, m1, sparseParams())
	if !m1.Delete(gone.ID()) {
		t.Fatal("delete failed")
	}
	// Expire via the fake clock and a janitor pass.
	now := time.Now()
	m1.now = func() time.Time { return now.Add(48 * time.Hour) }
	if removed := m1.Sweep(); removed != 2 {
		t.Fatalf("sweep removed %d, want keep+expired = 2", removed)
	}
	m1.now = time.Now
	keep2 := mustCreate(t, m1, sparseParams())
	m1.Close() // crash

	m2, _ := openWALManager(t, dir)
	if _, ok := m2.Get(gone.ID()); ok {
		t.Fatal("deleted session resurrected by recovery")
	}
	if _, ok := m2.Get(expired.ID()); ok {
		t.Fatal("expired session resurrected by recovery")
	}
	if _, ok := m2.Get(keep2.ID()); !ok {
		t.Fatal("live session lost")
	}
	if got := m2.Recovered(); got != 1 {
		t.Fatalf("recovered %d sessions, want 1", got)
	}
	_ = keep
}

func TestLazyExpiryJournaledOnGet(t *testing.T) {
	dir := t.TempDir()
	m1, _ := openWALManager(t, dir)
	s := mustCreate(t, m1, sparseParams())
	now := time.Now()
	m1.now = func() time.Time { return now.Add(48 * time.Hour) }
	// Lazy collection via Get, not the janitor's Sweep.
	if _, ok := m1.Get(s.ID()); ok {
		t.Fatal("expired session still served")
	}
	m1.Close() // crash

	m2, _ := openWALManager(t, dir)
	if _, ok := m2.Get(s.ID()); ok {
		t.Fatal("lazily expired session resurrected by recovery")
	}
	if got := m2.Recovered(); got != 0 {
		t.Fatalf("recovered %d sessions, want 0", got)
	}
}

func TestRecoveryToleratesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	m1, st := openWALManager(t, dir)
	s := mustCreate(t, m1, sparseParams())
	mustQuery(t, m1, s.ID(), surePositive())
	want := durableStatus(mustStatus(t, m1, s.ID()))
	mustQuery(t, m1, s.ID(), surePositive()) // this event gets torn
	m1.Close()
	// The logical journal end, NOT the file size: an mmap-mode segment is
	// chunk-padded with zeros past the last record, and a cut must land
	// inside the final record to tear it.
	end := int64(st.Health().JournalBytes)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: cut three bytes off the journal.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var journal string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			journal = filepath.Join(dir, e.Name())
		}
	}
	if journal == "" {
		t.Fatal("no journal segment found")
	}
	if err := os.Truncate(journal, end-3); err != nil {
		t.Fatal(err)
	}

	m2, _ := openWALManager(t, dir)
	got := durableStatus(mustStatus(t, m2, s.ID()))
	if got != want {
		t.Fatalf("torn-tail recovery:\n got  %+v\n want %+v (state before the torn event)", got, want)
	}
}

// mustStatus fetches a session's status or fails the test.
func mustStatus(t *testing.T, m *SessionManager, id string) SessionStatus {
	t.Helper()
	s, ok := m.Get(id)
	if !ok {
		t.Fatalf("session %s not found", id)
	}
	return s.Status()
}

// failingStore lets Create succeed, then fails every later append.
type failingStore struct {
	store.Mem
	appends int
}

func (f *failingStore) Append(ev store.Event) error {
	f.appends++
	if f.appends > 1 {
		return fmt.Errorf("disk on fire")
	}
	return f.Mem.Append(ev)
}

func TestQueryWithheldWhenJournalFails(t *testing.T) {
	fs := &failingStore{}
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	s := mustCreate(t, m, sparseParams())
	_, qerr := m.Query(s.ID(), surePositive())
	if !errors.Is(qerr, ErrStoreAppend) {
		t.Fatalf("query error %v, want ErrStoreAppend: an unjournaled release must be withheld", qerr)
	}
}

func TestCreateRolledBackWhenJournalFails(t *testing.T) {
	fs := &failingStore{appends: 1} // fail from the very first append
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	if _, cerr := m.Create(sparseParams()); !errors.Is(cerr, ErrStoreAppend) {
		t.Fatalf("create error %v, want ErrStoreAppend", cerr)
	}
	if m.Len() != 0 {
		t.Fatalf("unjournaled session left registered: live=%d", m.Len())
	}
}

func TestSeedPersistedWithStreamPosition(t *testing.T) {
	// Replaying a seeded noise stream from position 0 after a crash would
	// let the analyst binary-search the realized noisy threshold for free.
	// Codec v2 therefore journals the seed TOGETHER with the stream
	// position: replay rebuilds from the seed and fast-forwards past every
	// journaled draw, so pre-crash noise is never re-emitted while seeded
	// sessions keep their reproducibility contract across a restart.
	p := sparseParams()
	if p.Seed == 0 {
		t.Fatal("test params must be seeded")
	}
	s, err := newSession(mech.Default, "x", p, time.Minute, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	rec := s.persistRecord()
	if rec.V < persistVersion {
		t.Fatalf("journaled record version %d, want ≥ %d", rec.V, persistVersion)
	}
	if rec.Params.Seed != p.Seed {
		t.Fatalf("journaled record carries seed %d, want %d", rec.Params.Seed, p.Seed)
	}
	if rec.Draws == 0 {
		t.Fatal("journaled record carries no stream position; replay would restart the stream at 0")
	}
}

func TestProgressRecordRoundTrip(t *testing.T) {
	cases := []progressDelta{
		{answered: 3, positives: 1, draws: 7, aux: 0},
		{answered: 1, positives: 1, draws: 2, aux: 5, state: mech.SyntheticStateBlob([]float64{1, 2.5, 3})},
		{answered: 2, positives: 1, draws: 4, aux: 0, state: mech.RhoStateBlob(-1.25)},
	}
	for i, want := range cases {
		ev := progressEvent("s", want)
		got, err := decodeProgress(ev.Data)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.answered != want.answered || got.positives != want.positives ||
			got.draws != want.draws || got.aux != want.aux {
			t.Fatalf("case %d: got %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(got.state, want.state) {
			t.Fatalf("case %d: state blob mismatch:\n got  %x\n want %x", i, got.state, want.state)
		}
	}
	// A v1 record — counters only — still decodes, with zero stream deltas.
	v1 := []byte{}
	v1 = appendUvarintForTest(v1, 5)
	v1 = appendUvarintForTest(v1, 2)
	got, err := decodeProgress(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got.answered != 5 || got.positives != 2 || got.draws != 0 || got.aux != 0 || got.state != nil {
		t.Fatalf("v1 decode: %+v", got)
	}
}

// legacyV2Progress hand-encodes the codec-v2 progress layout (special-cased
// ρ/synth flag bits), which this codec no longer writes but must decode
// forever: existing WALs recover through this path.
func legacyV2Progress(answered, positives int, draws, aux uint64, rho *float64, synth []float64) []byte {
	buf := []byte{}
	buf = appendUvarintForTest(buf, uint64(answered))
	buf = appendUvarintForTest(buf, uint64(positives))
	buf = appendUvarintForTest(buf, draws)
	buf = appendUvarintForTest(buf, aux)
	var flags byte
	if rho != nil {
		flags |= progressHasRho
	}
	if synth != nil {
		flags |= progressHasSynth
	}
	buf = append(buf, flags)
	if rho != nil {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(*rho))
	}
	if synth != nil {
		buf = appendUvarintForTest(buf, uint64(len(synth)))
		for _, v := range synth {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// TestLegacyProgressDecodeMapsToStateBlobs pins the v2→v3 decode mapping:
// a v2 record's ρ or synthetic histogram must come back as exactly the
// opaque blob the corresponding mechanism's UnmarshalState expects.
func TestLegacyProgressDecodeMapsToStateBlobs(t *testing.T) {
	rho := -0.75
	d, err := decodeProgress(legacyV2Progress(2, 1, 9, 0, &rho, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.state, mech.RhoStateBlob(rho)) {
		t.Fatalf("v2 rho record decoded to state %x, want RhoStateBlob(%v)", d.state, rho)
	}
	synth := []float64{4, 1.5, 2, 0.5}
	d, err = decodeProgress(legacyV2Progress(3, 1, 4, 7, nil, synth))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.state, mech.SyntheticStateBlob(synth)) {
		t.Fatalf("v2 synth record decoded to state %x, want SyntheticStateBlob", d.state)
	}
	if d.answered != 3 || d.positives != 1 || d.draws != 4 || d.aux != 7 {
		t.Fatalf("v2 counters lost in decode: %+v", d)
	}
}

// TestLegacySessionRecordDecodeMapsToStateBlobs does the same for the JSON
// session records of evCreate/evSnapshot events.
func TestLegacySessionRecordDecodeMapsToStateBlobs(t *testing.T) {
	rho := 2.5
	rec := sessionRecord{V: 2, Rho: &rho}
	rec.legacyState()
	if !bytes.Equal(rec.State, mech.RhoStateBlob(rho)) || rec.Rho != nil {
		t.Fatalf("v2 rho session record mapped to %x (rho=%v)", rec.State, rec.Rho)
	}
	synth := []float64{1, 2, 3}
	rec = sessionRecord{V: 2, Synth: synth}
	rec.legacyState()
	if !bytes.Equal(rec.State, mech.SyntheticStateBlob(synth)) || rec.Synth != nil {
		t.Fatalf("v2 synth session record mapped to %x", rec.State)
	}
	// A v3 record's blob wins over any (impossible) legacy leftovers.
	blob := mech.RhoStateBlob(9)
	rec = sessionRecord{V: 3, State: blob, Rho: &rho}
	rec.legacyState()
	if !bytes.Equal(rec.State, blob) {
		t.Fatalf("v3 state blob overwritten by legacy mapping")
	}
}

func TestStatsExposeStoreHealth(t *testing.T) {
	dir := t.TempDir()
	m, _ := openWALManager(t, dir)
	s := mustCreate(t, m, sparseParams())
	mustQuery(t, m, s.ID(), sureNegative())
	st := m.Stats()
	if st.Store == nil {
		t.Fatal("stats missing store health")
	}
	if st.Store.Backend != "wal" || st.Store.Appends < 2 {
		t.Fatalf("store health %+v, want wal backend with ≥2 appends (create+progress)", st.Store)
	}
}

// TestLegacyV2WALRecovers replays a hand-encoded codec-v2 journal — the
// exact shapes a PR 3 server wrote, special-cased rho/synth fields and all
// — through today's v3 decoder. Existing WALs must recover unchanged: the
// counters come back, dpbook's journaled ρ is reinstalled, pmw resumes from
// its journaled synthetic histogram.
func TestLegacyV2WALRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	rho := -0.625
	dpbookRec := fmt.Sprintf(`{"v":2,"params":{"mechanism":"dpbook","epsilon":1,"maxPositives":8,"threshold":0.5,"seed":13,"ttlSeconds":600},"createdAtUnixNano":%d,"answered":2,"positives":1,"draws":5,"rho":%v}`, now, rho)
	pmwRec := fmt.Sprintf(`{"v":2,"params":{"mechanism":"pmw","epsilon":2,"maxPositives":3,"threshold":50,"seed":1,"ttlSeconds":600,"histogram":[2,2,2]},"createdAtUnixNano":%d,"answered":1,"positives":1,"draws":1,"gateDraws":3,"synth":[1,2,3]}`, now)
	for _, ev := range []store.Event{
		{Kind: evCreate, ID: "dpbook-legacy", Data: []byte(dpbookRec)},
		{Kind: evCreate, ID: "pmw-legacy", Data: []byte(pmwRec)},
		// v2 progress on the dpbook session: +2 answered, +1 positive,
		// +4 draws, flags=rho carrying an updated ρ of 2.5.
		{Kind: evProgress, ID: "dpbook-legacy", Data: legacyV2Progress(2, 1, 4, 0, ptr(2.5), nil)},
		// v1 progress (counters only) must still stack on top.
		{Kind: evProgress, ID: "dpbook-legacy", Data: legacyV1Progress(1, 0)},
	} {
		if err := st.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	m, _ := openWALManager(t, dir)
	if m.Recovered() != 2 {
		t.Fatalf("recovered %d sessions from the v2 journal, want 2", m.Recovered())
	}
	db := mustStatus(t, m, "dpbook-legacy")
	if db.Answered != 5 || db.Positives != 2 || db.Remaining != 6 {
		t.Fatalf("dpbook legacy counters %+v, want answered=5 positives=2 remaining=6", db)
	}
	s, _ := m.Get("dpbook-legacy")
	if got := s.inst.MarshalState(); !bytes.Equal(got, mech.RhoStateBlob(2.5)) {
		t.Fatalf("dpbook legacy ρ not reinstalled: state %x, want RhoStateBlob(2.5)", got)
	}
	pm, _ := m.Get("pmw-legacy")
	if got := pmwSynthetic(t, pm); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("pmw legacy synthetic %v, want the journaled [1 2 3]", got)
	}
	// Recovered legacy sessions keep serving and re-journal as v3.
	mustQuery(t, m, "dpbook-legacy", sureNegative())
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
}

// TestProgressDecodeRejectsOverflowingCounters: a corrupt uvarint near
// 2^64 must be refused, not cast to a negative int that would SUBTRACT
// from the replayed counters and refresh spent privacy budget.
func TestProgressDecodeRejectsOverflowingCounters(t *testing.T) {
	huge := appendUvarintForTest(nil, math.MaxUint64-2)
	huge = appendUvarintForTest(huge, 1)
	if _, err := decodeProgress(huge); err == nil {
		t.Fatal("counter delta above MaxInt32 accepted; it would wrap negative at replay")
	}
	ok := appendUvarintForTest(nil, 3)
	ok = appendUvarintForTest(ok, math.MaxUint64)
	if _, err := decodeProgress(ok); err == nil {
		t.Fatal("positives delta above MaxInt32 accepted")
	}
}
