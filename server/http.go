package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
)

// APIConfig bounds what the HTTP layer accepts. The zero value applies
// the defaults.
type APIConfig struct {
	// MaxBodyBytes caps request bodies; 0 means DefaultMaxBodyBytes.
	// Oversized bodies get 413.
	MaxBodyBytes int64
	// MaxBatch caps the number of queries in one batch request; 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// Telemetry, when set, instruments every request (route latency,
	// status classes, in-flight, body bytes) and serves the registry's
	// Prometheus exposition on GET /metrics. The registry must be the same
	// one given to the manager so one scrape covers all layers.
	Telemetry *telemetry.Registry
	// SlowQueryThreshold, when positive, times every /query request and
	// logs a structured trace line (trace ID, session, mechanism, batch
	// size, journal wait) for requests at or over the threshold. Zero
	// disables the timing entirely.
	SlowQueryThreshold time.Duration
	// Logger receives slow-query trace lines; nil means slog.Default().
	Logger *slog.Logger
	// Tracer, when set, head-samples /query requests into span trees and
	// serves them on GET /v1/traces and GET /v1/traces/{id}. Give the same
	// Tracer to the manager (ManagerConfig.Tracer) so its spans join the
	// HTTP span under one tree. Nil disables tracing and the endpoints.
	Tracer *trace.Tracer
	// MaxInFlight caps concurrently-served /v1/ requests; past the cap
	// the API load-sheds with a typed 503 "unavailable" (Retry-After set)
	// instead of queueing toward collapse. Liveness and metrics paths
	// (/healthz, /metrics) are never shed — an overloaded server must
	// still be observable. 0 means unlimited (the historical behavior).
	MaxInFlight int
}

// Defaults for APIConfig zero values.
const (
	DefaultMaxBodyBytes = 1 << 20 // 1 MiB: a pmw histogram of ~65k buckets still fits
	DefaultMaxBatch     = 1024
)

// API serves the session manager over JSON HTTP:
//
//	GET    /v1/mechanisms          registry-driven mechanism discovery with
//	                               capability flags
//	POST   /v1/sessions            create  {mechanism, epsilon, maxPositives, threshold, ...}
//	GET    /v1/sessions/{id}       status: answered, positives, remaining, (ε₁, ε₂, ε₃)
//	POST   /v1/sessions/{id}/query one query {query, threshold} / {buckets}
//	                               or a batch {queries: [...]}
//	DELETE /v1/sessions/{id}       end the session
//	GET    /v1/stats               service-wide aggregate counters
//	GET    /healthz                liveness
//
// Every response, including every error, is JSON. Errors carry a stable
// machine-readable code alongside the human-readable message.
type API struct {
	mgr *SessionManager
	cfg APIConfig
	mux *http.ServeMux

	// encodeFailures counts responses whose JSON encode or write failed
	// after the status header was already out (the client usually went
	// away mid-response). Surfaced in GET /v1/stats: a silently truncated
	// response is otherwise invisible.
	encodeFailures atomic.Uint64

	// inFlight counts /v1/ requests currently inside ServeHTTP when the
	// MaxInFlight shed gate is armed (it stays untouched at 0 otherwise;
	// the telemetry in-flight gauge is separate and covers every route).
	inFlight atomic.Int64

	// tel is nil when the API runs without a telemetry registry; ServeHTTP
	// then degenerates to a bare mux dispatch.
	tel *apiTelemetry
	// limiter is the rate limiter attached via SetRateLimiter, read by the
	// stats and metrics paths for per-tenant rejection counts. Atomic so a
	// limiter can be attached after the API is already serving.
	limiter atomic.Pointer[RateLimiter]
	// slowQueryNanos is cfg.SlowQueryThreshold in nanoseconds, 0 when
	// slow-query tracing is off.
	slowQueryNanos int64
	// slow receives slow-query trace lines.
	slow *slog.Logger
	// tracer is nil when tracing is off; Sample and the span methods are
	// nil-safe, so the hot path never branches on it.
	tracer *trace.Tracer

	// logf emits operational warnings; swappable in tests.
	logf func(format string, args ...any)
}

// NewAPI wraps the manager. The manager must outlive the API.
func NewAPI(mgr *SessionManager, cfg APIConfig) *API {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	a := &API{mgr: mgr, cfg: cfg, mux: http.NewServeMux(), logf: log.Printf}
	a.slowQueryNanos = int64(cfg.SlowQueryThreshold)
	a.slow = cfg.Logger
	if a.slow == nil {
		a.slow = slog.Default()
	}
	a.tracer = cfg.Tracer
	patterns := []string{
		"/v1/mechanisms",
		"/v1/sessions",
		"/v1/sessions/{id}",
		"/v1/sessions/{id}/query",
		"/v1/stats",
		"/healthz",
		"/",
	}
	a.mux.HandleFunc("/v1/mechanisms", a.handleMechanisms)
	a.mux.HandleFunc("/v1/sessions", a.handleSessions)
	a.mux.HandleFunc("/v1/sessions/{id}", a.handleSession)
	a.mux.HandleFunc("/v1/sessions/{id}/query", a.handleQuery)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	a.mux.HandleFunc("/healthz", a.handleHealth)
	a.mux.HandleFunc("/", a.handleNotFound)
	if cfg.Tracer != nil {
		a.mux.HandleFunc("/v1/traces", a.handleTraces)
		a.mux.HandleFunc("/v1/traces/{id}", a.handleTrace)
		patterns = append(patterns, "/v1/traces", "/v1/traces/{id}")
	}
	if cfg.Telemetry != nil {
		a.mux.Handle("/metrics", cfg.Telemetry.Handler())
		patterns = append(patterns, "/metrics")
		a.tel = a.registerAPITelemetry(cfg.Telemetry, patterns)
	}
	return a
}

// SetRateLimiter points the stats and metrics paths at the limiter
// guarding this API (usually the one whose Middleware wraps it), so 429s
// show up per tenant in GET /v1/stats and /metrics.
func (a *API) SetRateLimiter(rl *RateLimiter) {
	a.limiter.Store(rl)
}

// ServeHTTP implements http.Handler. With telemetry attached it wraps the
// dispatch in the instrumentation envelope: in-flight gauge, pooled status
// capture, and a sampled route-latency observation keyed by the mux
// pattern the request actually matched.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.cfg.MaxInFlight > 0 && strings.HasPrefix(r.URL.Path, "/v1/") {
		if a.inFlight.Add(1) > int64(a.cfg.MaxInFlight) {
			a.inFlight.Add(-1)
			a.mgr.shedHTTP.Add(1)
			a.writeUnavailable(w, CodeUnavailable,
				"server overloaded: in-flight request cap reached, retry shortly")
			return
		}
		defer a.inFlight.Add(-1)
	}
	t := a.tel
	if t == nil {
		a.mux.ServeHTTP(w, r)
		return
	}
	var start int64
	sampled := t.tick.Add(1)&(querySamplePeriod-1) == 0
	if sampled {
		start = telemetry.Now()
	}
	t.inFlight.Add(1)
	sw := swPool.Get().(*statusWriter)
	sw.ResponseWriter, sw.status, sw.bytes, sw.exemplar = w, 0, 0, ""
	a.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	respBytes, exemplar := sw.bytes, sw.exemplar
	sw.ResponseWriter = nil // drop the request-scoped writer before pooling
	swPool.Put(sw)
	t.inFlight.Add(-1)
	t.observe(r.Pattern, status, r.ContentLength, respBytes, start, sampled, exemplar)
}

// ErrorBody is the uniform error response envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable code plus a message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used by the API.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "too_large"
	CodeTooManySessions  = "too_many_sessions"
	CodeStoreFailure     = "store_failure"
	CodeRateLimited      = "rate_limited"
	// CodeUnavailable marks a typed, retryable condition: a journal
	// append that exceeded ManagerConfig.JournalDeadline, or load
	// shedding at APIConfig.MaxInFlight. Always delivered as HTTP 503
	// with a Retry-After header (and on the wire as an error frame with
	// RetryAfterSeconds), so clients know to back off and try again.
	CodeUnavailable = "unavailable"
)

// DefaultRetryAfterSeconds is the retry hint attached to 503 responses
// that have no better estimate (shedding clears as soon as in-flight
// load drains; a stalled store usually recovers or pages an operator).
const DefaultRetryAfterSeconds = 1

func writeJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	_ = writeJSON(w, status, ErrorBody{ErrorDetail{Code: code, Message: msg}})
}

// writeJSON is the API's counting variant: an encode or write failure can
// only happen after the status header is out, so the response is silently
// truncated from the client's point of view — count it and log it rather
// than swallowing it.
func (a *API) writeJSON(w http.ResponseWriter, status int, v any) {
	if err := writeJSON(w, status, v); err != nil {
		a.countEncodeFailure(err)
	}
}

func (a *API) writeError(w http.ResponseWriter, status int, code, msg string) {
	a.writeJSON(w, status, ErrorBody{ErrorDetail{Code: code, Message: msg}})
}

// writeUnavailable writes a 503 that consistently carries Retry-After,
// whatever the code (store_failure or unavailable): every 503 this API
// emits is retryable by construction, so every one carries the hint.
func (a *API) writeUnavailable(w http.ResponseWriter, code, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfterSeconds))
	a.writeError(w, http.StatusServiceUnavailable, code, msg)
}

func (a *API) countEncodeFailure(err error) {
	a.encodeFailures.Add(1)
	a.logf("server: response encode/write failed (response truncated): %v", err)
}

// writeBodyTooLarge and writeBatchTooLarge format the two 413 responses.
// They live outside the //svt:hotpath scope on purpose: a request that
// trips a cap is already off the fast path, so it may pay for fmt.
func (a *API) writeBodyTooLarge(w http.ResponseWriter) {
	a.writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
		fmt.Sprintf("request body exceeds %d bytes", a.cfg.MaxBodyBytes))
}

func (a *API) writeBatchTooLarge(w http.ResponseWriter, n int) {
	a.writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
		fmt.Sprintf("batch of %d exceeds the cap of %d", n, a.cfg.MaxBatch))
}

// decodeBody decodes one JSON value, enforcing the body-size cap and
// rejecting trailing garbage. It writes the error response itself and
// reports success.
func (a *API) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, a.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			a.writeBodyTooLarge(w)
			return false
		}
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func (a *API) handleNotFound(w http.ResponseWriter, r *http.Request) {
	a.writeError(w, http.StatusNotFound, CodeNotFound, "no such endpoint: "+r.URL.Path)
}

func (a *API) methodNotAllowed(w http.ResponseWriter, want string) {
	w.Header().Set("Allow", want)
	a.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, want+" required")
}

// CreateResponse is the POST /v1/sessions response body.
type CreateResponse struct {
	SessionStatus
	// TTLSeconds is the resolved idle time-to-live.
	TTLSeconds float64 `json:"ttlSeconds"`
}

func (a *API) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		a.methodNotAllowed(w, http.MethodPost)
		return
	}
	var params CreateParams
	if !a.decodeBody(w, r, &params) {
		return
	}
	// The tenant comes from the request header, never the body: the field
	// is how the gateway's authentication identifies the caller, so letting
	// the body set it would let one tenant book sessions against another.
	params.Tenant = r.Header.Get(TenantHeader)
	s, err := a.mgr.Create(params)
	switch {
	case errors.Is(err, ErrTooManySessions):
		a.writeError(w, http.StatusTooManyRequests, CodeTooManySessions, err.Error())
	case errors.Is(err, ErrUnavailable):
		a.writeUnavailable(w, CodeUnavailable, err.Error())
	case errors.Is(err, ErrStoreAppend):
		a.writeUnavailable(w, CodeStoreFailure, err.Error())
	case err != nil:
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		a.writeJSON(w, http.StatusCreated, CreateResponse{
			SessionStatus: s.Status(),
			TTLSeconds:    s.ttl.Seconds(),
		})
	}
}

func (a *API) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		s, ok := a.mgr.Get(id)
		if !ok {
			a.writeError(w, http.StatusNotFound, CodeNotFound, "no such session: "+id)
			return
		}
		a.writeJSON(w, http.StatusOK, s.Status())
	case http.MethodDelete:
		if !a.mgr.Delete(id) {
			a.writeError(w, http.StatusNotFound, CodeNotFound, "no such session: "+id)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		a.methodNotAllowed(w, "GET, DELETE")
	}
}

// queryRequest accepts either a single inline query or a batch. A batch
// is recognized by the presence of the "queries" key.
type queryRequest struct {
	QueryItem
	Queries []QueryItem `json:"queries"`
}

// queryScratch is the per-request working set of the /query hot path,
// recycled through queryPool so the steady state allocates neither request
// buffers, decoded requests, result slices nor response buffers.
type queryScratch struct {
	req     queryRequest
	one     [1]QueryItem
	results []QueryResult
	buf     []byte // body read, then reused for the response encode
	trace   QueryTrace
}

var queryPool = sync.Pool{New: func() any {
	return &queryScratch{buf: make([]byte, 0, 512)}
}}

// readBody slurps the request body into buf's backing array, growing it as
// needed (the MaxBytesReader wrapper bounds the total).
//
//svt:hotpath
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// handleQuery is the serving hot path: pooled scratch in, one
// json.Unmarshal of the raw body (no Decoder allocation; Unmarshal rejects
// trailing garbage by itself), results appended into a recycled slice, and
// a hand-rolled response encode into a recycled buffer.
//
//svt:hotpath
func (a *API) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		a.methodNotAllowed(w, http.MethodPost)
		return
	}
	sc := queryPool.Get().(*queryScratch)
	defer func() {
		sc.req = queryRequest{} // drop decoded pointers; keeps nothing alive
		sc.trace = QueryTrace{} // drop the span; a pooled scratch must not pin a trace
		queryPool.Put(sc)
	}()
	// Correlation: every /query response carries an X-Request-Id — the
	// client's own when it sent one, a freshly minted one otherwise — so
	// any response can be quoted in a support ticket and matched to logs.
	// The mint is two small allocations, which the hot-path allocation
	// budget absorbs (see TestQueryHotPathAllocs).
	reqID := r.Header.Get("X-Request-Id")
	hasCorr := reqID != ""
	if !hasCorr {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	// Head-sample the trace decision before any work so the decode is
	// inside the trace. A request already carrying correlation (a valid
	// traceparent or its own request ID) is always sampled: someone
	// upstream is following it.
	// The canonical-form key matters: Header.Get on a non-canonical key
	// ("traceparent") pays a per-call canonicalization allocation.
	tpID, _, hasTP := trace.ParseTraceparent(r.Header.Get("Traceparent"))
	var root *trace.Span
	if a.tracer.Sample(hasCorr || hasTP) {
		var tid trace.TraceID
		if hasTP {
			tid = tpID
		}
		root = a.tracer.StartRoot("http", "/v1/sessions/{id}/query", reqID, tid)
		w.Header().Set("Traceparent", trace.FormatTraceparent(root.TraceID(), root.SpanID()))
		if sw, ok := w.(*statusWriter); ok {
			sw.exemplar = root.TraceIDString()
		}
		defer root.End()
	}
	ds := root.StartChild("decode")
	r.Body = http.MaxBytesReader(w, r.Body, a.cfg.MaxBodyBytes)
	body, err := readBody(r.Body, sc.buf[:0])
	sc.buf = body[:0]
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			a.writeBodyTooLarge(w)
			return
		}
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := json.Unmarshal(body, &sc.req); err != nil {
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
		return
	}
	ds.End()
	items := sc.req.Queries
	if items == nil {
		sc.one[0] = sc.req.QueryItem
		items = sc.one[:]
	}
	switch {
	case len(items) == 0:
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, "empty query batch")
		return
	case len(items) > a.cfg.MaxBatch:
		a.writeBatchTooLarge(w, len(items))
		return
	}
	id := r.PathValue("id")
	root.SetAttr("session", id)
	root.SetAttrInt("batch", int64(len(items)))
	var res BatchResult
	if a.slowQueryNanos > 0 || root != nil {
		// The traced manager path is opt-in: only a slow-query threshold
		// or a sampled trace makes the request read the clock twice and
		// thread a trace through the manager.
		start := telemetry.Now()
		sc.trace = QueryTrace{TraceID: reqID, Span: root}
		res, err = a.mgr.QueryTraced(id, items, sc.results[:0], &sc.trace)
		if a.slowQueryNanos > 0 {
			if dur := telemetry.Now() - start; dur >= a.slowQueryNanos {
				a.logSlowQuery(&sc.trace, id, len(items), dur, err)
			}
		}
	} else {
		res, err = a.mgr.QueryInto(id, items, sc.results[:0])
	}
	if cap(res.Results) > cap(sc.results) {
		sc.results = res.Results[:0]
	}
	switch {
	case errors.Is(err, ErrSessionNotFound):
		a.writeError(w, http.StatusNotFound, CodeNotFound, "no such session: "+r.PathValue("id"))
	case errors.Is(err, ErrUnavailable):
		a.writeUnavailable(w, CodeUnavailable, err.Error())
	case errors.Is(err, ErrStoreAppend):
		a.writeUnavailable(w, CodeStoreFailure, err.Error())
	case err != nil:
		a.writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		es := root.StartChild("encode")
		out, ok := appendBatchResultJSON(sc.buf[:0], &res)
		sc.buf = out[:0]
		if !ok {
			// A non-finite released value cannot be represented in JSON;
			// fall back to the stdlib path so the failure is accounted the
			// same way it always was.
			a.writeJSON(w, http.StatusOK, res)
			es.End()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, werr := w.Write(out); werr != nil {
			a.countEncodeFailure(werr)
		}
		es.End()
	}
}

// logSlowQuery emits the structured trace line for a /query request that
// ran at or over the configured threshold. The line carries everything
// needed to chase the latency: the trace ID, the session, its mechanism,
// the batch size, the total duration, and how much of it was spent waiting
// on the WAL group-commit flush.
func (a *API) logSlowQuery(tr *QueryTrace, id string, batch int, dur int64, err error) {
	if tr.TraceID == "" {
		tr.TraceID = newRequestID()
	}
	attrs := []any{
		slog.String("traceId", tr.TraceID),
		slog.String("session", id),
		slog.String("mechanism", string(tr.Mechanism)),
		slog.Int("batch", batch),
		slog.Duration("duration", time.Duration(dur)),
		slog.Duration("journalWait", time.Duration(tr.JournalNanos)),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	a.slow.Warn("slow query", attrs...)
}

// appendBatchResultJSON encodes a BatchResult exactly as encoding/json
// would (field order, omitempty semantics, trailing newline) without
// reflection or allocation. It reports ok=false on non-finite floats,
// which JSON cannot carry; callers fall back to the stdlib encoder.
//
//svt:hotpath
func appendBatchResultJSON(buf []byte, res *BatchResult) ([]byte, bool) {
	buf = append(buf, `{"results":[`...)
	for i := range res.Results {
		r := &res.Results[i]
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"above":`...)
		buf = strconv.AppendBool(buf, r.Above)
		if r.Numeric {
			buf = append(buf, `,"numeric":true`...)
		}
		if r.Value != 0 {
			if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
				return buf, false
			}
			buf = append(buf, `,"value":`...)
			buf = appendJSONFloat(buf, r.Value)
		}
		if r.FromSynthetic {
			buf = append(buf, `,"fromSynthetic":true`...)
		}
		if r.Exhausted {
			buf = append(buf, `,"exhausted":true`...)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, `],"halted":`...)
	buf = strconv.AppendBool(buf, res.Halted)
	buf = append(buf, `,"remaining":`...)
	buf = strconv.AppendInt(buf, int64(res.Remaining), 10)
	buf = append(buf, '}', '\n')
	return buf, true
}

// appendJSONFloat formats a finite float64 with encoding/json's exact
// rules: shortest round-trip form, 'f' notation in the human range, 'e'
// notation outside it with the exponent's leading zero trimmed.
//
//svt:hotpath
func appendJSONFloat(buf []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims "e-09" to "e-9" (negative exponents only).
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

// MechanismsResponse is the GET /v1/mechanisms response body.
type MechanismsResponse struct {
	Mechanisms []MechanismInfo `json:"mechanisms"`
}

func (a *API) handleMechanisms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		a.methodNotAllowed(w, http.MethodGet)
		return
	}
	a.writeJSON(w, http.StatusOK, MechanismsResponse{Mechanisms: a.mgr.Mechanisms()})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		a.methodNotAllowed(w, http.MethodGet)
		return
	}
	st := a.mgr.Stats()
	st.EncodeFailures = a.encodeFailures.Load()
	if rl := a.limiter.Load(); rl != nil {
		st.RateLimited = rl.RejectedByTenant()
	}
	a.writeJSON(w, http.StatusOK, st)
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok" or "unhealthy".
	Status string `json:"status"`
	// Reason explains an unhealthy status; absent when healthy.
	Reason string `json:"reason,omitempty"`
	// SnapshotAgeSeconds is how long ago the last journal-compaction
	// snapshot succeeded. Absent (not 0) before the first success, so a
	// freshly booted node is distinguishable from one snapshotting right
	// now; a growing value on a node configured to snapshot means
	// compaction has stopped and the journal is growing unboundedly.
	SnapshotAgeSeconds *float64 `json:"snapshotAgeSeconds,omitempty"`
}

// handleHealth reports liveness, degrading to 503 with a machine-readable
// reason when the store has entered its failed state or the most recent
// journal-compaction snapshot failed — both conditions where the process
// still answers queries but an operator needs to act before disk or
// durability runs out.
func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		a.methodNotAllowed(w, http.MethodGet)
		return
	}
	resp := HealthResponse{Status: "ok"}
	if age, ok := a.mgr.SnapshotAge(); ok {
		secs := age.Seconds()
		resp.SnapshotAgeSeconds = &secs
	}
	if ok, reason := a.mgr.HealthStatus(); !ok {
		resp.Status, resp.Reason = "unhealthy", reason
		w.Header().Set("Retry-After", strconv.Itoa(DefaultRetryAfterSeconds))
		a.writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	a.writeJSON(w, http.StatusOK, resp)
}
