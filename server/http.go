package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// APIConfig bounds what the HTTP layer accepts. The zero value applies
// the defaults.
type APIConfig struct {
	// MaxBodyBytes caps request bodies; 0 means DefaultMaxBodyBytes.
	// Oversized bodies get 413.
	MaxBodyBytes int64
	// MaxBatch caps the number of queries in one batch request; 0 means
	// DefaultMaxBatch.
	MaxBatch int
}

// Defaults for APIConfig zero values.
const (
	DefaultMaxBodyBytes = 1 << 20 // 1 MiB: a pmw histogram of ~65k buckets still fits
	DefaultMaxBatch     = 1024
)

// API serves the session manager over JSON HTTP:
//
//	GET    /v1/mechanisms          registry-driven mechanism discovery with
//	                               capability flags
//	POST   /v1/sessions            create  {mechanism, epsilon, maxPositives, threshold, ...}
//	GET    /v1/sessions/{id}       status: answered, positives, remaining, (ε₁, ε₂, ε₃)
//	POST   /v1/sessions/{id}/query one query {query, threshold} / {buckets}
//	                               or a batch {queries: [...]}
//	DELETE /v1/sessions/{id}       end the session
//	GET    /v1/stats               service-wide aggregate counters
//	GET    /healthz                liveness
//
// Every response, including every error, is JSON. Errors carry a stable
// machine-readable code alongside the human-readable message.
type API struct {
	mgr *SessionManager
	cfg APIConfig
	mux *http.ServeMux
}

// NewAPI wraps the manager. The manager must outlive the API.
func NewAPI(mgr *SessionManager, cfg APIConfig) *API {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	a := &API{mgr: mgr, cfg: cfg, mux: http.NewServeMux()}
	a.mux.HandleFunc("/v1/mechanisms", a.handleMechanisms)
	a.mux.HandleFunc("/v1/sessions", a.handleSessions)
	a.mux.HandleFunc("/v1/sessions/{id}", a.handleSession)
	a.mux.HandleFunc("/v1/sessions/{id}/query", a.handleQuery)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	a.mux.HandleFunc("/healthz", a.handleHealth)
	a.mux.HandleFunc("/", a.handleNotFound)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mux.ServeHTTP(w, r)
}

// ErrorBody is the uniform error response envelope.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable code plus a message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used by the API.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "too_large"
	CodeTooManySessions  = "too_many_sessions"
	CodeStoreFailure     = "store_failure"
	CodeRateLimited      = "rate_limited"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding can only fail after the header is out; the shapes used
	// here marshal unconditionally.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{ErrorDetail{Code: code, Message: msg}})
}

// decodeBody decodes one JSON value, enforcing the body-size cap and
// rejecting trailing garbage. It writes the error response itself and
// reports success.
func (a *API) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, a.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", a.cfg.MaxBodyBytes))
			return false
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func (a *API) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, CodeNotFound, "no such endpoint: "+r.URL.Path)
}

func methodNotAllowed(w http.ResponseWriter, want string) {
	w.Header().Set("Allow", want)
	writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, want+" required")
}

// CreateResponse is the POST /v1/sessions response body.
type CreateResponse struct {
	SessionStatus
	// TTLSeconds is the resolved idle time-to-live.
	TTLSeconds float64 `json:"ttlSeconds"`
}

func (a *API) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var params CreateParams
	if !a.decodeBody(w, r, &params) {
		return
	}
	s, err := a.mgr.Create(params)
	switch {
	case errors.Is(err, ErrTooManySessions):
		writeError(w, http.StatusTooManyRequests, CodeTooManySessions, err.Error())
	case errors.Is(err, ErrStoreAppend):
		writeError(w, http.StatusServiceUnavailable, CodeStoreFailure, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusCreated, CreateResponse{
			SessionStatus: s.Status(),
			TTLSeconds:    s.ttl.Seconds(),
		})
	}
}

func (a *API) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		s, ok := a.mgr.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, "no such session: "+id)
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	case http.MethodDelete:
		if !a.mgr.Delete(id) {
			writeError(w, http.StatusNotFound, CodeNotFound, "no such session: "+id)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		methodNotAllowed(w, "GET, DELETE")
	}
}

// queryRequest accepts either a single inline query or a batch. A batch
// is recognized by the presence of the "queries" key.
type queryRequest struct {
	QueryItem
	Queries []QueryItem `json:"queries"`
}

func (a *API) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req queryRequest
	if !a.decodeBody(w, r, &req) {
		return
	}
	items := req.Queries
	if items == nil {
		items = []QueryItem{req.QueryItem}
	}
	switch {
	case len(items) == 0:
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty query batch")
		return
	case len(items) > a.cfg.MaxBatch:
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			fmt.Sprintf("batch of %d exceeds the cap of %d", len(items), a.cfg.MaxBatch))
		return
	}
	res, err := a.mgr.Query(r.PathValue("id"), items)
	switch {
	case errors.Is(err, ErrSessionNotFound):
		writeError(w, http.StatusNotFound, CodeNotFound, "no such session: "+r.PathValue("id"))
	case errors.Is(err, ErrStoreAppend):
		writeError(w, http.StatusServiceUnavailable, CodeStoreFailure, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// MechanismsResponse is the GET /v1/mechanisms response body.
type MechanismsResponse struct {
	Mechanisms []MechanismInfo `json:"mechanisms"`
}

func (a *API) handleMechanisms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, MechanismsResponse{Mechanisms: a.mgr.Mechanisms()})
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, a.mgr.Stats())
}

func (a *API) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
