package server

// End-to-end tests for the tracing subsystem: request-ID correlation,
// W3C traceparent handling, and the golden span tree a WAL-backed /query
// must produce (HTTP → manager → journal wait → store sync, with child
// durations nesting inside their parents).

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/trace"
)

// postQuery sends one single-query POST through the API and returns the
// recorder.
func postQuery(t *testing.T, api *API, id string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+id+"/query",
		strings.NewReader(`{"query":0,"threshold":1e12}`))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return len(s) > 0
}

// TestRequestIDAlwaysEchoed: every /query response carries an
// X-Request-Id — the client's own verbatim, or a minted 16-hex one —
// with or without tracing configured.
func TestRequestIDAlwaysEchoed(t *testing.T) {
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
	defer m.Close()
	api := NewAPI(m, APIConfig{})
	s := mustCreate(t, m, sparseParams())

	rec := postQuery(t, api, s.ID(), nil)
	minted := rec.Header().Get("X-Request-Id")
	if len(minted) != 16 || !isHex(minted) {
		t.Fatalf("minted X-Request-Id %q, want 16 hex chars", minted)
	}
	rec2 := postQuery(t, api, s.ID(), nil)
	if rec2.Header().Get("X-Request-Id") == minted {
		t.Fatal("two requests got the same minted X-Request-Id")
	}

	rec3 := postQuery(t, api, s.ID(), map[string]string{"X-Request-Id": "client-chose-this"})
	if got := rec3.Header().Get("X-Request-Id"); got != "client-chose-this" {
		t.Fatalf("client request ID not echoed verbatim: %q", got)
	}
}

// TestTraceparentRoundTripThroughAPI: a valid incoming traceparent forces
// sampling, the trace adopts the upstream trace ID, and the response
// echoes a traceparent with OUR fresh span ID; a malformed one is ignored
// per spec — with nothing else forcing it, the request is not traced.
func TestTraceparentRoundTripThroughAPI(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 1 << 30}) // forced-only
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour, Tracer: tracer})
	defer m.Close()
	api := NewAPI(m, APIConfig{Tracer: tracer})
	s := mustCreate(t, m, sparseParams())

	const upstream = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rec := postQuery(t, api, s.ID(), map[string]string{"Traceparent": upstream})
	echo := rec.Header().Get("Traceparent")
	id, span, ok := trace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("echoed traceparent %q does not parse", echo)
	}
	if id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not adopted from upstream: %s", id)
	}
	if span.String() == "00f067aa0ba902b7" {
		t.Fatal("echoed traceparent reuses the upstream span ID; this segment must mint its own")
	}
	if _, found := tracer.Lookup(id.String()); !found {
		t.Fatal("forced-by-traceparent request left no retained trace")
	}

	// Malformed traceparent: ignored, and (with no client request ID and a
	// huge sampling period) the request is not traced — no echo.
	rec2 := postQuery(t, api, s.ID(), map[string]string{"Traceparent": "00-zzzz-bad"})
	if got := rec2.Header().Get("Traceparent"); got != "" {
		t.Fatalf("malformed traceparent produced an echo %q", got)
	}
	if got := rec2.Header().Get("X-Request-Id"); len(got) != 16 || !isHex(got) {
		t.Fatalf("untraced request still needs its minted request ID, got %q", got)
	}

	// A client X-Request-Id also forces sampling.
	postQuery(t, api, s.ID(), map[string]string{"X-Request-Id": "forced-by-reqid"})
	if _, found := tracer.Lookup("forced-by-reqid"); !found {
		t.Fatal("forced-by-request-ID request left no retained trace")
	}
}

// findChild returns the first direct child with the given name.
func findChild(n trace.Node, name string) (trace.Node, bool) {
	for _, c := range n.Children {
		if c.Name == name {
			return c, true
		}
	}
	return trace.Node{}, false
}

// TestWALQuerySpanTree is the golden trace test: one WAL-backed /query
// under SyncAlways must retain a span tree whose chain runs HTTP →
// manager → journal.wait → store.sync, with every child's interval
// nested inside its parent's.
func TestWALQuerySpanTree(t *testing.T) {
	st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tracer := trace.New(trace.Config{SampleEvery: 1})
	m, err := Open(ManagerConfig{
		SweepInterval:    time.Hour,
		SnapshotInterval: -1,
		Store:            st,
		Tracer:           tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	api := NewAPI(m, APIConfig{Tracer: tracer})
	s := mustCreate(t, m, sparseParams())

	rec := postQuery(t, api, s.ID(), nil)
	reqID := rec.Header().Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no request ID on a traced response")
	}

	// The listing endpoint sees the trace...
	lrec := httptest.NewRecorder()
	api.ServeHTTP(lrec, httptest.NewRequest(http.MethodGet, "/v1/traces?route=/v1/sessions/{id}/query", nil))
	if lrec.Code != http.StatusOK {
		t.Fatalf("/v1/traces status %d", lrec.Code)
	}
	var listing TracesResponse
	if err := json.Unmarshal(lrec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) == 0 {
		t.Fatal("/v1/traces listed nothing after a traced query")
	}
	if listing.Traces[0].Spans < 4 {
		t.Fatalf("trace summary counts %d spans, want >= 4", listing.Traces[0].Spans)
	}

	// ...and the detail endpoint serves the tree, addressed by request ID.
	drec := httptest.NewRecorder()
	api.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/v1/traces/"+reqID, nil))
	if drec.Code != http.StatusOK {
		t.Fatalf("/v1/traces/{id} status %d: %s", drec.Code, drec.Body.String())
	}
	var v trace.View
	if err := json.Unmarshal(drec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.RequestID != reqID || v.Route != "/v1/sessions/{id}/query" {
		t.Fatalf("trace identity %+v", v)
	}

	// The golden chain. Every hop must exist and nest in its parent.
	if v.Root.Name != "http" {
		t.Fatalf("root span %q, want http", v.Root.Name)
	}
	nested := func(parent, child trace.Node) {
		t.Helper()
		if child.OffsetNanos < parent.OffsetNanos ||
			child.OffsetNanos+child.DurationNanos > parent.OffsetNanos+parent.DurationNanos {
			t.Fatalf("span %s [%d,+%d] escapes parent %s [%d,+%d]",
				child.Name, child.OffsetNanos, child.DurationNanos,
				parent.Name, parent.OffsetNanos, parent.DurationNanos)
		}
	}
	mgr, ok := findChild(v.Root, "manager")
	if !ok {
		t.Fatalf("no manager span under http; children: %+v", v.Root.Children)
	}
	nested(v.Root, mgr)
	jw, ok := findChild(mgr, "journal.wait")
	if !ok {
		t.Fatalf("no journal.wait span under manager; children: %+v", mgr.Children)
	}
	nested(mgr, jw)
	sync, ok := findChild(jw, "store.sync")
	if !ok {
		t.Fatalf("no store.sync span under journal.wait (SyncAlways flushes every append); children: %+v", jw.Children)
	}
	nested(jw, sync)

	// The HTTP-layer work spans ride along.
	if _, ok := findChild(v.Root, "decode"); !ok {
		t.Fatal("no decode span under http")
	}
	if _, ok := findChild(v.Root, "encode"); !ok {
		t.Fatal("no encode span under http")
	}
	if _, ok := findChild(mgr, "answer"); !ok {
		t.Fatal("no answer span under manager")
	}

	// An unknown ID 404s.
	nrec := httptest.NewRecorder()
	api.ServeHTTP(nrec, httptest.NewRequest(http.MethodGet, "/v1/traces/deadbeefdeadbeef", nil))
	if nrec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace lookup status %d, want 404", nrec.Code)
	}
}
