package server

// Hot-path regression tests for the PR 5 perf work: the hand-rolled
// /query response encoder must be byte-identical to encoding/json, the
// encode-failure counter must surface truncated responses, the query hot
// path's allocation budget is pinned, and group commit must preserve the
// journal-before-response invariant under concurrency and crash.

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dpgo/svt/store"
	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
)

// TestBatchResultEncodingMatchesStdlib: the pooled encoder's output must
// be indistinguishable from what clients have always parsed.
func TestBatchResultEncodingMatchesStdlib(t *testing.T) {
	cases := []BatchResult{
		{Results: []QueryResult{}, Halted: false, Remaining: 3},
		{Results: []QueryResult{{Above: false}}, Remaining: 100},
		{Results: []QueryResult{{Above: true}}, Halted: true, Remaining: 0},
		{Results: []QueryResult{
			{Above: true, Numeric: true, Value: 12.75},
			{Above: false, FromSynthetic: true},
			{Above: true, Exhausted: true, Numeric: true, Value: -3.5e-9},
			{Above: false, Numeric: true, Value: 1e21},
			{Above: false, Numeric: true, Value: -1e-7},
			{Above: false, Numeric: true, Value: 0}, // zero value is omitted
			{Above: true, Numeric: true, Value: 0.30000000000000004},
		}, Halted: false, Remaining: 42},
	}
	for i, res := range cases {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(res); err != nil {
			t.Fatal(err)
		}
		got, ok := appendBatchResultJSON(nil, &res)
		if !ok {
			t.Fatalf("case %d: encoder refused finite values", i)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("case %d: encoding diverged:\n got  %s\n want %s", i, got, want.Bytes())
		}
	}
	// Non-finite values cannot be represented; the encoder must signal the
	// fallback rather than emit invalid JSON.
	bad := BatchResult{Results: []QueryResult{{Numeric: true, Value: math.NaN()}}}
	if _, ok := appendBatchResultJSON(nil, &bad); ok {
		t.Fatal("NaN encoded as JSON")
	}
	bad.Results[0].Value = math.Inf(1)
	if _, ok := appendBatchResultJSON(nil, &bad); ok {
		t.Fatal("Inf encoded as JSON")
	}
}

// failingWriter drops the connection after the header, like a client that
// went away mid-response.
type failingWriter struct {
	h http.Header
}

func (w *failingWriter) Header() http.Header         { return w.h }
func (w *failingWriter) Write(p []byte) (int, error) { return 0, errors.New("broken pipe") }
func (w *failingWriter) WriteHeader(int)             {}

// TestEncodeFailuresCounted: a failed response write is counted and
// surfaced in /v1/stats instead of silently truncating.
func TestEncodeFailuresCounted(t *testing.T) {
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
	defer m.Close()
	api := NewAPI(m, APIConfig{})
	api.logf = func(string, ...any) {}
	s, err := m.Create(CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 10})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/query",
		strings.NewReader(`{"query":1,"threshold":1e12}`))
	api.ServeHTTP(&failingWriter{h: make(http.Header)}, req)

	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.EncodeFailures == 0 {
		t.Fatal("failed response write not counted in /v1/stats")
	}
}

// queryAllocs measures the steady-state allocations of one single-query
// POST through the full handler stack (mux, decode, session, journal,
// encode) using a pre-built request and a discarding writer, so the number
// is the SERVER's allocation budget, not the harness's.
func queryAllocs(t *testing.T, m *SessionManager, cfg APIConfig) float64 {
	t.Helper()
	api := NewAPI(m, cfg)
	s, err := m.Create(CreateParams{
		Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1 << 30, Threshold: ptr(1e12),
	})
	if err != nil {
		t.Fatal(err)
	}
	body := &replayBody{data: []byte(`{"query":1}`)}
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/query", body)
	w := &nullResponseWriter{h: make(http.Header)}
	run := func() {
		body.off = 0
		req.Body = body
		w.code = 0
		api.ServeHTTP(w, req)
		if w.code != http.StatusOK {
			t.Fatalf("status %d", w.code)
		}
	}
	run() // warm the pools
	return testing.AllocsPerRun(200, run)
}

// TestQueryHotPathAllocs pins the allocation budget of the single-query
// HTTP path. The seed (PR 4) spent ~20 server-side allocations per
// request before pooling; the pin fails if the path regresses past half
// of that, with a little headroom over the ~8 measured today.
func TestQueryHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector, inflating alloc counts; CI pins this in a non-race pass")
	}
	const budget = 10
	t.Run("mem", func(t *testing.T) {
		m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
		defer m.Close()
		if got := queryAllocs(t, m, APIConfig{}); got > budget {
			t.Fatalf("single-query HTTP path allocates %.1f/op, budget %d", got, budget)
		}
	})
	t.Run("wal", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if got := queryAllocs(t, m, APIConfig{}); got > budget {
			t.Fatalf("single-query WAL HTTP path allocates %.1f/op, budget %d", got, budget)
		}
	})
	// Full observability on: telemetry registry across all three layers
	// plus slow-query timing. The instrumented record path must stay
	// within the same pinned budget — that is the telemetry subsystem's
	// zero-allocation contract.
	t.Run("wal+telemetry", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		reg := telemetry.NewRegistry()
		m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st, Telemetry: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		cfg := APIConfig{Telemetry: reg, SlowQueryThreshold: time.Hour}
		if got := queryAllocs(t, m, cfg); got > budget {
			t.Fatalf("instrumented single-query WAL path allocates %.1f/op, budget %d", got, budget)
		}
	})
	// Journal deadline and in-flight shed gate armed (the deadline never
	// fires, the cap never trips): the pooled waiter/timer machinery and
	// the admission check must stay inside the same budget — resilience
	// is not allowed to cost the happy path its allocation pin.
	t.Run("wal+deadline", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st, JournalDeadline: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		if got := queryAllocs(t, m, APIConfig{MaxInFlight: 1 << 20}); got > budget {
			t.Fatalf("deadline-armed single-query WAL path allocates %.1f/op, budget %d", got, budget)
		}
	})
	// Tracing compiled in but the request not sampled: the sampling
	// decision plus the nil-span plumbing through all three layers must
	// cost nothing. The benchmark requests carry no traceparent or
	// X-Request-Id, so nothing forces the 1-in-2^30 sampler.
	t.Run("wal+telemetry+tracer", func(t *testing.T) {
		st, err := store.NewWAL(store.WALConfig{Dir: t.TempDir(), Sync: store.SyncInterval})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		reg := telemetry.NewRegistry()
		tracer := trace.New(trace.Config{SampleEvery: 1 << 30})
		m, err := Open(ManagerConfig{
			SweepInterval: time.Hour, SnapshotInterval: -1,
			Store: st, Telemetry: reg, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		cfg := APIConfig{Telemetry: reg, SlowQueryThreshold: time.Hour, Tracer: tracer}
		if got := queryAllocs(t, m, cfg); got > budget {
			t.Fatalf("traced-not-sampled single-query WAL path allocates %.1f/op, budget %d", got, budget)
		}
	})
}

// TestGroupCommitJournalBeforeResponse: under concurrent load on a
// WAL-backed manager, every response that was RELEASED is recoverable from
// a copy of the journal directory taken without any shutdown — the
// process-crash image. Coalescing must never release a response whose
// event is not yet in the kernel's hands.
func TestGroupCommitJournalBeforeResponse(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewWAL(store.WALConfig{Dir: dir, Sync: store.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m, err := Open(ManagerConfig{SweepInterval: time.Hour, SnapshotInterval: -1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const sessions, per = 8, 100
	ids := make([]string, sessions)
	for i := range ids {
		s, err := m.Create(CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 1 << 30, Threshold: ptr(1e12)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID()
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Query(id, sureNegative()); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()

	// Simulate the process crash: copy the journal directory as-is (no
	// Close, no snapshot, no fsync) and recover from the copy.
	crash := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m2, st2 := openWALManager(t, crash)
	defer st2.Close()
	for _, id := range ids {
		got := mustStatus(t, m2, id)
		if got.Answered != per {
			t.Fatalf("session %s: recovered %d answered queries, want %d (all responses were released)", id, got.Answered, per)
		}
	}
}

// TestHTTPBatchResponseThroughStack: one real end-to-end request with a
// batch body, decoded with the stdlib, so the pooled decode + hand-rolled
// encode path is validated against a normal client's view.
func TestHTTPBatchResponseThroughStack(t *testing.T) {
	m := NewSessionManager(ManagerConfig{SweepInterval: time.Hour})
	defer m.Close()
	api := NewAPI(m, APIConfig{})
	s, err := m.Create(CreateParams{Mechanism: MechSparse, Epsilon: 1, MaxPositives: 100})
	if err != nil {
		t.Fatal(err)
	}
	body := `{"queries":[{"query":0,"threshold":1e12},{"query":0,"threshold":1e12},{"query":0,"threshold":-1e12}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var res BatchResult
	dec := json.NewDecoder(rec.Body)
	if err := dec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Token(); err != io.EOF {
		t.Fatalf("trailing data after response: %v", err)
	}
	if len(res.Results) != 3 || res.Results[0].Above || res.Results[1].Above || !res.Results[2].Above {
		t.Fatalf("batch results %+v", res.Results)
	}
	if res.Remaining != 99 {
		t.Fatalf("remaining %d, want 99", res.Remaining)
	}
	// Repeating the request re-uses pooled scratch; results must not bleed.
	req = httptest.NewRequest(http.MethodPost, "/v1/sessions/"+s.ID()+"/query",
		strings.NewReader(`{"query":0,"threshold":1e12}`))
	rec = httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	var res2 BatchResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if len(res2.Results) != 1 || res2.Results[0].Above {
		t.Fatalf("single query after batch: %+v", res2)
	}
}
