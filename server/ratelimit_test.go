package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic bucket math.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestLimiter(t *testing.T, cfg RateLimitConfig) (*RateLimiter, *fakeClock) {
	t.Helper()
	rl, err := NewRateLimiter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl.now = clk.now
	return rl, clk
}

func TestRateLimiterBucketMath(t *testing.T) {
	rl, clk := newTestLimiter(t, RateLimitConfig{Rate: 2, Burst: 4})

	// The burst drains, then the bucket is empty.
	for i := 0; i < 4; i++ {
		if ok, _ := rl.Allow("a"); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, wait := rl.Allow("a")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want within (0, 1s] at 2 req/s", wait)
	}

	// Half a second refills one token at 2 req/s.
	clk.advance(500 * time.Millisecond)
	if ok, _ := rl.Allow("a"); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := rl.Allow("a"); ok {
		t.Fatal("second request admitted with only one token refilled")
	}

	// Long idle refills to the burst cap, not beyond.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := rl.Allow("a"); ok {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("admitted %d after long idle, want the burst of 4", admitted)
	}
	if got := rl.Rejected(); got == 0 {
		t.Fatal("rejections not counted")
	}
}

func TestRateLimiterTenantsAreIndependent(t *testing.T) {
	rl, _ := newTestLimiter(t, RateLimitConfig{Rate: 1, Burst: 1})
	if ok, _ := rl.Allow("a"); !ok {
		t.Fatal("tenant a first request rejected")
	}
	if ok, _ := rl.Allow("a"); ok {
		t.Fatal("tenant a second request admitted")
	}
	// Tenant b and the default tenant still have their own budgets.
	if ok, _ := rl.Allow("b"); !ok {
		t.Fatal("tenant b starved by tenant a")
	}
	if ok, _ := rl.Allow(""); !ok {
		t.Fatal("default tenant starved by tenant a")
	}
}

func TestRateLimiterOverflowSharedBucket(t *testing.T) {
	rl, _ := newTestLimiter(t, RateLimitConfig{Rate: 1, Burst: 1, MaxTenants: 2})
	rl.Allow("a")
	rl.Allow("b")
	// Tenants beyond the cap share the overflow bucket: c consumes it, d is
	// rejected even though d never sent a request before.
	if ok, _ := rl.Allow("c"); !ok {
		t.Fatal("first overflow request rejected")
	}
	if ok, _ := rl.Allow("d"); ok {
		t.Fatal("overflow tenants do not share a bucket")
	}
}

func TestRateLimiterEvictsIdleTenants(t *testing.T) {
	// Rate 2, Burst 4 → refill-to-full is 2s: a bucket idle that long has
	// refilled to Burst and is indistinguishable from a fresh one.
	rl, clk := newTestLimiter(t, RateLimitConfig{Rate: 2, Burst: 4, MaxTenants: 2})
	rl.Allow("a")
	rl.Allow("b")
	if got := rl.Tenants(); got != 2 {
		t.Fatalf("tracked tenants = %d, want 2", got)
	}

	// Both slots taken and both tenants active: c lands in overflow.
	rl.Allow("c")
	if got := rl.Tenants(); got != 2 {
		t.Fatalf("overflow tenant got a slot: tracked = %d", got)
	}

	// Keep b active while a goes idle past the refill-to-full period; a new
	// tenant must then reclaim a's slot instead of sharing overflow forever.
	clk.advance(1500 * time.Millisecond)
	rl.Allow("b")
	clk.advance(600 * time.Millisecond) // a idle 2.1s, b idle 0.6s
	if ok, _ := rl.Allow("d"); !ok {
		t.Fatal("new tenant rejected")
	}
	if got := rl.Evicted(); got != 1 {
		t.Fatalf("evicted = %d, want exactly the idle tenant a", got)
	}
	// d owns a real bucket now: it can burst, which the shared overflow
	// bucket (already drained by c) would not allow.
	for i := 0; i < 3; i++ {
		if ok, _ := rl.Allow("d"); !ok {
			t.Fatalf("burst request %d of slot-owning tenant d rejected", i)
		}
	}
	// The active tenant b kept its bucket through the sweeps.
	if ok, _ := rl.Allow("b"); !ok {
		t.Fatal("active tenant b was evicted")
	}
}

func TestRateLimiterEvictionPreservesBucketState(t *testing.T) {
	// A tenant idle for LESS than refill-to-full keeps its partial bucket:
	// eviction must never grant tokens early by recreating a fresh bucket.
	rl, clk := newTestLimiter(t, RateLimitConfig{Rate: 1, Burst: 2, MaxTenants: 8})
	rl.Allow("a")
	rl.Allow("a")
	if ok, _ := rl.Allow("a"); ok {
		t.Fatal("burst exceeded")
	}
	clk.advance(1100 * time.Millisecond) // refills 1 of 2 tokens; idle < 2s
	if ok, _ := rl.Allow("a"); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := rl.Allow("a"); ok {
		t.Fatal("second token granted early: idle bucket was reset, not preserved")
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	rl, err := NewRateLimiter(RateLimitConfig{Rate: 0.001, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := httptest.NewServer(rl.Middleware(newTestHandler(t)))
	t.Cleanup(wrapped.Close)

	get := func(path, tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, wrapped.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Two burst tokens, then 429 with a JSON body and Retry-After.
	for i := 0; i < 2; i++ {
		resp := get("/v1/stats", "acme")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := get("/v1/stats", "acme")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("429 content type %q, want application/json", ct)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != CodeRateLimited {
		t.Fatalf("error code %q, want %q", body.Error.Code, CodeRateLimited)
	}

	// Another tenant is unaffected.
	other := get("/v1/stats", "globex")
	other.Body.Close()
	if other.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d", other.StatusCode)
	}

	// Liveness stays exempt even for the throttled tenant.
	health := get("/healthz", "acme")
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want exempt 200", health.StatusCode)
	}
}

// newTestHandler returns a fresh API handler backed by its own manager.
func newTestHandler(t *testing.T) http.Handler {
	t.Helper()
	mgr := newTestManager(t, ManagerConfig{})
	return NewAPI(mgr, APIConfig{})
}

func TestNewRateLimiterRejectsBadConfig(t *testing.T) {
	for _, cfg := range []RateLimitConfig{
		{Rate: 0},
		{Rate: -1},
		{Rate: math.Inf(1)},
		{Rate: 1, Burst: 0.5},
		{Rate: 1, Burst: math.Inf(1)},
	} {
		if _, err := NewRateLimiter(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}
