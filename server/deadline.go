package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/store"
)

// ErrUnavailable is the typed, retryable error for requests the server
// declines to finish right now: a journal append that exceeded the
// configured deadline, or load shedding at the in-flight cap. It maps to
// HTTP 503 / the wire "unavailable" code, both carrying Retry-After, so
// well-behaved clients back off and retry instead of hammering a server
// that is already struggling.
//
// Budget safety of the deadline path: when the deadline fires the append
// has not returned, so the event was never acknowledged durable and the
// response is withheld. If the abandoned append later completes anyway,
// the journal holds progress for answers the analyst never received —
// the safe direction (replay can only burn budget, never refresh it).
// If it later fails, the in-memory claim was never journaled, which is
// the same already-documented-safe case as a plain append failure.
var ErrUnavailable = errors.New("server: temporarily unavailable")

const (
	waiterPending int32 = iota
	waiterAbandoned
	waiterDone
)

// journalWaiter runs store appends on its own long-lived goroutine so the
// request path can bound how long it waits. Everything is reused — the
// goroutine, the signal and result channels, the event-data buffer — so
// an armed deadline adds no steady-state allocations to the query hot
// path (the ≤10/≤6 alloc pins include the armed configuration).
type journalWaiter struct {
	m     *SessionManager
	ev    store.Event
	buf   []byte
	jobs  chan struct{}
	done  chan error
	state atomic.Int32
}

func (m *SessionManager) newWaiter() *journalWaiter {
	w := &journalWaiter{
		m:    m,
		buf:  make([]byte, 0, 256),
		jobs: make(chan struct{}, 1),
		done: make(chan error, 1),
	}
	go w.loop()
	return w
}

// loop serves one append per jobs signal. Ownership of the waiter is
// decided by a CAS on state: if the request goroutine abandoned the wait
// (deadline fired first), the result has no receiver and the loop
// recycles the waiter itself.
func (w *journalWaiter) loop() {
	for range w.jobs {
		err := w.m.store.Append(w.ev)
		if w.state.CompareAndSwap(waiterPending, waiterDone) {
			w.done <- err
		} else {
			w.m.putWaiter(w)
		}
	}
}

func (m *SessionManager) getWaiter() *journalWaiter {
	select {
	case w := <-m.waiters:
		return w
	default:
		return m.newWaiter()
	}
}

// putWaiter parks a waiter on the bounded free list, or retires its
// goroutine when the list is full or the manager is shutting down.
func (m *SessionManager) putWaiter(w *journalWaiter) {
	w.ev = store.Event{}
	if m.waitersClosed.Load() {
		close(w.jobs)
		return
	}
	select {
	case m.waiters <- w:
	default:
		close(w.jobs)
	}
}

// timerPool recycles deadline timers across requests.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// storeAppend is the single chokepoint for request-path journal appends.
// Without a configured deadline it is a direct call; with one, the append
// runs on a pooled waiter goroutine and a stalled store turns into a
// typed retryable ErrUnavailable after JournalDeadline instead of an
// unbounded hang. The event data is copied into the waiter's own buffer
// first: callers recycle their encode buffers (recBufPool) as soon as
// storeAppend returns, which an abandoned append would otherwise race.
func (m *SessionManager) storeAppend(ev store.Event) error {
	d := m.journalDeadline
	if d <= 0 {
		return m.store.Append(ev)
	}
	w := m.getWaiter()
	w.buf = append(w.buf[:0], ev.Data...)
	w.ev = store.Event{Kind: ev.Kind, ID: ev.ID, Data: w.buf}
	w.state.Store(waiterPending)
	w.jobs <- struct{}{}
	t := getTimer(d)
	select {
	case err := <-w.done:
		putTimer(t)
		m.putWaiter(w)
		return err
	case <-t.C:
		timerPool.Put(t) // fired: nothing to stop or drain
		if w.state.CompareAndSwap(waiterPending, waiterAbandoned) {
			// The append is still in flight; the waiter's loop will
			// recycle it whenever the store comes back. The event was
			// never acknowledged durable, so withholding the response
			// keeps accounting exact (see ErrUnavailable).
			m.deadlineExceeded.Add(1)
			return fmt.Errorf("%w: journal append exceeded deadline (%v)", ErrUnavailable, d)
		}
		// Lost the race: the append completed between the timer firing
		// and the CAS. Take its real result.
		err := <-w.done
		m.putWaiter(w)
		return err
	}
}

// closeWaiters retires the parked waiter goroutines at manager shutdown.
// Waiters still blocked inside a stalled Append retire themselves once
// the store unsticks.
func (m *SessionManager) closeWaiters() {
	if m.waiters == nil {
		return
	}
	m.waitersClosed.Store(true)
	for {
		select {
		case w := <-m.waiters:
			close(w.jobs)
		default:
			return
		}
	}
}
