package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dpgo/svt/telemetry"
	"github.com/dpgo/svt/trace"
	"github.com/dpgo/svt/wire"
)

// WireServer is the binary edge: a length-prefixed frame listener
// (svtserve -wire-addr) dispatching onto the same SessionManager as the
// HTTP API, with full parity — per-tenant rate limiting, telemetry
// families, trace spans through the QueryTrace seam, and the
// journal-before-response invariant, which the wire path inherits by
// construction because every response frame is encoded only after
// SessionManager.Query* returns, i.e. after the journal append.
//
// Each connection starts with a hello frame naming the protocol version,
// the tenant and an optional traceparent, then carries pipelined
// request frames whose responses may return out of order (matched by
// request ID). The per-connection hot path is pooled end to end: reused
// read buffer, pooled decode scratch, interned session IDs, reused
// response buffer — see TestWireQueryHotPathAllocs for the pin.
type WireServer struct {
	mgr *SessionManager
	cfg WireConfig

	tracer *trace.Tracer
	tel    *wireTelemetry
	// limiter mirrors API.limiter: attachable after the server is serving.
	limiter atomic.Pointer[RateLimiter]

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*wireConn]struct{}
	closed bool
	// wg counts accept loops and connection handlers; Shutdown waits on it.
	wg sync.WaitGroup

	// inFlight counts admitted queries across every connection when
	// cfg.MaxInFlight is set (untouched otherwise). Admission happens on
	// the reader goroutines, release when the response is written.
	inFlight atomic.Int64

	logf func(format string, args ...any)
}

// admitQuery reserves an in-flight slot under cfg.MaxInFlight. A false
// return means the query must be shed with a retryable error frame.
func (ws *WireServer) admitQuery() bool {
	if ws.cfg.MaxInFlight <= 0 {
		return true
	}
	if ws.inFlight.Add(1) > int64(ws.cfg.MaxInFlight) {
		ws.inFlight.Add(-1)
		ws.mgr.shedWire.Add(1)
		return false
	}
	return true
}

func (ws *WireServer) releaseQuery() {
	if ws.cfg.MaxInFlight > 0 {
		ws.inFlight.Add(-1)
	}
}

// WireConfig configures the binary listener.
type WireConfig struct {
	// MaxFrameBytes caps a frame payload; 0 means DefaultMaxBodyBytes,
	// matching the HTTP body cap.
	MaxFrameBytes int
	// MaxBatch caps queries per batch; 0 means DefaultMaxBatch.
	MaxBatch int
	// Workers caps the per-connection pipeline workers that serve
	// out-of-order responses; 0 means DefaultWireWorkers. A connection
	// that never pipelines (next request only after the response) is
	// served inline by its reader goroutine and spawns no workers.
	Workers int
	// Telemetry, when set, registers the svt_wire_* families. Use the
	// same registry as the manager and the HTTP API so one scrape covers
	// every edge.
	Telemetry *telemetry.Registry
	// Tracer, when set, head-samples wire queries into the same span-tree
	// shape as the HTTP path (decode, manager/answer/journal.wait with
	// store flush phases, encode), served on GET /v1/traces.
	Tracer *trace.Tracer
	// IdleTimeout re-arms a read+write deadline on the connection each
	// time a frame arrives: a peer that goes silent (or stops reading
	// its responses) for this long is disconnected instead of holding a
	// goroutine and its buffers forever. Before this knob only Shutdown
	// ever set a deadline. 0 disables (the historical behavior, and what
	// latency benchmarks use).
	IdleTimeout time.Duration
	// MaxInFlight caps queries in flight across all connections (worker
	// pool plus queues). Past the cap the server load-sheds with a typed
	// "unavailable" error frame carrying RetryAfterSeconds, counted in
	// svt_shed_total{edge="wire"} — shedding, not queue collapse. 0
	// means unlimited.
	MaxInFlight int
}

// DefaultWireWorkers is the per-connection pipeline worker cap.
const DefaultWireWorkers = 4

// wireQueryRoute is the route label wire queries carry in trace trees, so
// /v1/traces?route= separates the two edges.
const wireQueryRoute = "wire:query"

// ErrWireServerClosed is returned by Serve after Shutdown, mirroring
// http.ErrServerClosed.
var ErrWireServerClosed = errors.New("wire server closed")

// NewWireServer wraps the manager. The manager must outlive the server.
func NewWireServer(mgr *SessionManager, cfg WireConfig) *WireServer {
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWireWorkers
	}
	ws := &WireServer{
		mgr:    mgr,
		cfg:    cfg,
		tracer: cfg.Tracer,
		lns:    make(map[net.Listener]struct{}),
		conns:  make(map[*wireConn]struct{}),
		logf:   log.Printf,
	}
	if cfg.Telemetry != nil {
		ws.tel = registerWireTelemetry(cfg.Telemetry)
	}
	return ws
}

// SetRateLimiter attaches the per-tenant limiter — normally the same one
// whose Middleware wraps the HTTP API, so both edges share one budget. A
// rejected wire request gets the typed rate_limited error frame with the
// same retry-after computation as the HTTP 429.
func (ws *WireServer) SetRateLimiter(rl *RateLimiter) {
	ws.limiter.Store(rl)
}

// Serve accepts connections on ln until the listener fails or Shutdown
// closes it; after Shutdown it returns ErrWireServerClosed.
func (ws *WireServer) Serve(ln net.Listener) error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		ln.Close()
		return ErrWireServerClosed
	}
	ws.lns[ln] = struct{}{}
	ws.wg.Add(1)
	ws.mu.Unlock()
	defer func() {
		ws.mu.Lock()
		delete(ws.lns, ln)
		ws.mu.Unlock()
		ws.wg.Done()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed {
				return ErrWireServerClosed
			}
			return err
		}
		c := ws.newConn(conn)
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			conn.Close()
			return ErrWireServerClosed
		}
		ws.conns[c] = struct{}{}
		ws.wg.Add(1)
		ws.mu.Unlock()
		go func() {
			defer ws.wg.Done()
			c.serve()
		}()
	}
}

// Shutdown stops accepting, interrupts every connection's blocked read,
// lets in-flight requests finish and their responses flush, and waits —
// bounded by ctx — for all connections to drain. Call it before the final
// snapshot so wire-journaled progress is in the state being snapshotted.
func (ws *WireServer) Shutdown(ctx context.Context) error {
	ws.mu.Lock()
	ws.closed = true
	for ln := range ws.lns {
		ln.Close()
	}
	conns := make([]*wireConn, 0, len(ws.conns))
	for c := range ws.conns {
		conns = append(conns, c)
	}
	ws.mu.Unlock()
	for _, c := range conns {
		c.beginDrain()
	}
	done := make(chan struct{})
	go func() {
		ws.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		ws.mu.Lock()
		for c := range ws.conns {
			c.c.Close()
		}
		ws.mu.Unlock()
		return ctx.Err()
	}
}

// wireTelemetry is the wire edge's family set: a connections gauge,
// per-op request counters split ok/error, and a sampled query latency
// histogram (1-in-querySamplePeriod, like every other hot-path
// histogram).
type wireTelemetry struct {
	tick        atomic.Uint64
	connections *telemetry.Gauge
	requests    [wireOpCount][2]*telemetry.Counter
	latency     *telemetry.Histogram
}

// Op indices for wireTelemetry.requests.
const (
	wireOpHelloIdx = iota
	wireOpQueryIdx
	wireOpCreateIdx
	wireOpStatusIdx
	wireOpDeleteIdx
	wireOpMechanismsIdx
	wireOpOtherIdx
	wireOpCount
)

var wireOpNames = [wireOpCount]string{
	"hello", "query", "create", "status", "delete", "mechanisms", "other",
}

func registerWireTelemetry(reg *telemetry.Registry) *wireTelemetry {
	t := &wireTelemetry{}
	t.connections = reg.NewGauge("svt_wire_connections",
		"Open wire-protocol connections.")
	requests := reg.NewCounterVec("svt_wire_requests_total",
		"Wire-protocol requests by op and outcome.")
	for i, op := range wireOpNames {
		t.requests[i][0] = requests.With(telemetry.Labels(
			telemetry.Label("op", op), telemetry.Label("status", "ok")))
		t.requests[i][1] = requests.With(telemetry.Labels(
			telemetry.Label("op", op), telemetry.Label("status", "error")))
	}
	t.latency = reg.NewHistogramVec("svt_wire_request_duration_seconds",
		"Wire request latency by op (sampled 1-in-8).", telemetry.LatencyBuckets).
		With(telemetry.Label("op", "query"))
	return t
}

// sampleStart is the wire hot path's 1-in-N latency sampling decision,
// reading the clock only for sampled requests. Nil-safe.
func (t *wireTelemetry) sampleStart() (int64, bool) {
	if t == nil || t.tick.Add(1)&(querySamplePeriod-1) != 0 {
		return 0, false
	}
	return telemetry.Now(), true
}

// count records one finished request. Nil-safe.
//
//svt:hotpath
func (t *wireTelemetry) count(opIdx int, ok bool) {
	if t == nil {
		return
	}
	if ok {
		t.requests[opIdx][0].Inc()
	} else {
		t.requests[opIdx][1].Inc()
	}
}

// wireScratch is the pooled per-request working set of the wire query
// path: decoded request (with its bucket arena), the manager-facing item
// and threshold slices, result slices for both representations, the
// response encode buffer and the minted-correlation buffer.
type wireScratch struct {
	req        wire.QueryRequest
	items      []QueryItem
	thresholds []float64
	results    []QueryResult
	wres       []wire.Result
	out        []byte
	corr       []byte
	trace      QueryTrace
	// exemplar carries a trace-sampled request's trace ID from
	// queryResponse to the latency observation.
	exemplar string
}

var wireScratchPool = sync.Pool{New: func() any {
	return &wireScratch{out: make([]byte, 0, 512)}
}}

// wireJob is one pipelined query handed to a connection worker. The body
// is an owned copy: the reader's frame buffer is already being reused for
// the next frame by the time a worker runs.
type wireJob struct {
	reqID uint64
	body  []byte
}

// wireConn is one accepted connection. The reader goroutine owns br,
// readBuf, sc and the sessions map; responses (reader's or workers') are
// serialized by wmu over the shared buffered writer.
type wireConn struct {
	srv *WireServer
	c   net.Conn
	br  *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	tenant string
	tpID   trace.TraceID
	hasTP  bool

	// sessions interns session-ID strings so repeat queries on a
	// connection don't allocate a string per request. Bounded; a
	// connection touching more sessions than the cap pays the allocation
	// past it.
	sessions map[string]string

	readBuf []byte
	sc      *wireScratch

	// inflight counts dispatched-but-unwritten pipelined responses; the
	// writer flushes when it drains to zero.
	inflight atomic.Int32
	jobs     chan wireJob
	workers  int
	wwg      sync.WaitGroup

	draining atomic.Bool
}

// internedSessionsCap bounds the per-connection session-ID intern map.
const internedSessionsCap = 4096

func (ws *WireServer) newConn(conn net.Conn) *wireConn {
	return &wireConn{
		srv:      ws,
		c:        conn,
		br:       bufio.NewReaderSize(conn, 16<<10),
		bw:       bufio.NewWriterSize(conn, 16<<10),
		sessions: make(map[string]string),
		sc:       wireScratchPool.Get().(*wireScratch),
	}
}

// beginDrain interrupts the connection's blocked read so its reader loop
// can finish in-flight work and close. Requests whose frames were already
// read complete and their responses flush; a partially received frame is
// abandoned.
func (c *wireConn) beginDrain() {
	c.draining.Store(true)
	c.c.SetReadDeadline(time.Now())
}

func (c *wireConn) serve() {
	if t := c.srv.tel; t != nil {
		t.connections.Add(1)
	}
	c.run()
	// Drain: stop feeding workers, wait for in-flight responses, flush
	// whatever is buffered, then tear the connection down.
	if c.jobs != nil {
		close(c.jobs)
	}
	c.wwg.Wait()
	c.wmu.Lock()
	c.bw.Flush()
	c.wmu.Unlock()
	c.c.Close()
	c.sc.release()
	c.sc = nil
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	if t := c.srv.tel; t != nil {
		t.connections.Add(-1)
	}
}

// release recycles a scratch, dropping everything request-scoped first so
// the pool pins no session state, span or decoded pointers.
func (sc *wireScratch) release() {
	sc.req.Session, sc.req.Corr = nil, nil
	sc.trace = QueryTrace{}
	sc.exemplar = ""
	wireScratchPool.Put(sc)
}

// run is the read loop: handshake, then frames until read error or drain.
// It is deliberately not //svt:hotpath-marked: the idle-deadline re-arm
// reads the wall clock once per received frame, which is fine off the
// pinned allocation path.
func (c *wireConn) run() {
	c.armIdleDeadline()
	if !c.handshake() {
		return
	}
	maxFrame := c.srv.cfg.MaxFrameBytes
	for {
		c.armIdleDeadline()
		payload, err := wire.ReadFrame(c.br, c.readBuf, maxFrame)
		c.readBuf = payload
		if err != nil {
			if errors.Is(err, wire.ErrFrameTooLarge) {
				c.writeError(c.sc.errorPayload(0, CodeTooLarge, err.Error(), 0))
			}
			return
		}
		op, reqID, body, err := wire.ParseHeader(payload)
		if err != nil {
			// Corrupt framing: past this point the stream offset is not
			// trustworthy, so answer and drop the connection.
			c.writeError(c.sc.errorPayload(0, CodeBadRequest, err.Error(), 0))
			return
		}
		if rl := c.srv.limiter.Load(); rl != nil {
			if ok, wait := rl.Allow(c.tenant); !ok {
				c.srv.tel.count(wireOpIndex(op), false)
				c.writeError(c.rateLimitedPayload(reqID, rl, wait))
				continue
			}
		}
		isQuery := op == wire.OpQuery
		if isQuery && !c.srv.admitQuery() {
			// Worker pool plus queue saturated: shed with the typed
			// retryable error rather than queueing toward collapse.
			c.srv.tel.count(wireOpQueryIdx, false)
			c.writeError(c.sc.errorPayload(reqID, CodeUnavailable,
				"server overloaded: in-flight query cap reached, retry shortly",
				DefaultRetryAfterSeconds))
			continue
		}
		if isQuery && (c.br.Buffered() > 0 || c.inflight.Load() > 0) {
			// The client is pipelining: hand the query to a worker so a
			// slow journal flush on one request doesn't head-of-line block
			// the rest, and responses return as they finish. The worker
			// releases the admitted slot when the response is written.
			c.dispatch(reqID, body)
			continue
		}
		err = c.handleOp(c.sc, op, reqID, body)
		if isQuery {
			c.srv.releaseQuery()
		}
		if err != nil {
			return
		}
	}
}

// armIdleDeadline pushes the connection's read+write deadline IdleTimeout
// into the future, unless draining (beginDrain owns the deadline then: it
// set an immediate one to interrupt the blocked read, and re-arming would
// resurrect a drain-stalled connection for a full idle period).
func (c *wireConn) armIdleDeadline() {
	idle := c.srv.cfg.IdleTimeout
	if idle <= 0 || c.draining.Load() {
		return
	}
	_ = c.c.SetDeadline(time.Now().Add(idle))
	if c.draining.Load() {
		// beginDrain raced the re-arm; restore its immediate deadline.
		_ = c.c.SetReadDeadline(time.Now())
	}
}

// handshake reads and answers the mandatory hello frame.
func (c *wireConn) handshake() bool {
	payload, err := wire.ReadFrame(c.br, c.readBuf, c.srv.cfg.MaxFrameBytes)
	c.readBuf = payload
	if err != nil {
		return false
	}
	op, reqID, body, err := wire.ParseHeader(payload)
	if err != nil || op != wire.OpHello {
		c.writeError(c.sc.errorPayload(reqID, CodeBadRequest, "first frame must be hello", 0))
		return false
	}
	var h wire.Hello
	if err := wire.DecodeHelloBody(body, &h); err != nil {
		c.srv.tel.count(wireOpHelloIdx, false)
		c.writeError(c.sc.errorPayload(reqID, CodeBadRequest, "bad hello body: "+err.Error(), 0))
		return false
	}
	if h.Version != wire.Version {
		c.srv.tel.count(wireOpHelloIdx, false)
		c.writeError(c.sc.errorPayload(reqID, CodeBadRequest,
			fmt.Sprintf("unsupported protocol version %d (want %d)", h.Version, wire.Version), 0))
		return false
	}
	c.tenant = h.Tenant
	c.tpID, _, c.hasTP = trace.ParseTraceparent(h.Traceparent)
	ok := wire.HelloOK{
		Version:  wire.Version,
		MaxFrame: uint64(c.srv.cfg.MaxFrameBytes),
		MaxBatch: uint64(c.srv.cfg.MaxBatch),
	}
	out := wire.AppendHeader(c.sc.out[:0], wire.OpHelloOK, reqID)
	out = wire.AppendHelloOKBody(out, &ok)
	c.sc.out = out[:0]
	c.srv.tel.count(wireOpHelloIdx, true)
	return c.writeFrame(out) == nil
}

// dispatch hands a pipelined query to a worker, growing the pool up to
// the configured cap.
func (c *wireConn) dispatch(reqID uint64, body []byte) {
	if c.jobs == nil {
		c.jobs = make(chan wireJob, 2*c.srv.cfg.Workers)
	}
	if c.workers < c.srv.cfg.Workers {
		c.workers++
		c.wwg.Add(1)
		go c.worker()
	}
	c.inflight.Add(1)
	c.jobs <- wireJob{reqID: reqID, body: append([]byte(nil), body...)}
}

func (c *wireConn) worker() {
	defer c.wwg.Done()
	sc := wireScratchPool.Get().(*wireScratch)
	defer sc.release()
	for job := range c.jobs {
		c.handleQuery(sc, job.reqID, job.body, true)
		// Every dispatched job passed admitQuery on the reader goroutine.
		c.srv.releaseQuery()
	}
}

// handleOp serves one inline (non-pipelined) request on the reader
// goroutine.
func (c *wireConn) handleOp(sc *wireScratch, op byte, reqID uint64, body []byte) error {
	switch op {
	case wire.OpQuery:
		return c.handleQuery(sc, reqID, body, false)
	case wire.OpCreate:
		return c.handleCreate(sc, reqID, body)
	case wire.OpStatus:
		return c.handleStatus(sc, reqID, body)
	case wire.OpDelete:
		return c.handleDelete(sc, reqID, body)
	case wire.OpMechanisms:
		return c.handleMechanisms(sc, reqID)
	case wire.OpHello:
		c.srv.tel.count(wireOpHelloIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeBadRequest, "duplicate hello", 0))
	default:
		c.srv.tel.count(wireOpOtherIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeBadRequest,
			fmt.Sprintf("unknown op %#x", op), 0))
	}
}

func wireOpIndex(op byte) int {
	switch op {
	case wire.OpHello:
		return wireOpHelloIdx
	case wire.OpQuery:
		return wireOpQueryIdx
	case wire.OpCreate:
		return wireOpCreateIdx
	case wire.OpStatus:
		return wireOpStatusIdx
	case wire.OpDelete:
		return wireOpDeleteIdx
	case wire.OpMechanisms:
		return wireOpMechanismsIdx
	default:
		return wireOpOtherIdx
	}
}

// handleQuery runs one query request end to end: build the response
// payload (hot, pooled), write it with pipelining-aware flushing, then
// account for it.
//
//svt:hotpath
func (c *wireConn) handleQuery(sc *wireScratch, reqID uint64, body []byte, pipelined bool) error {
	start, sampled := c.srv.tel.sampleStart()
	out := c.queryResponse(sc, reqID, body)
	var err error
	if pipelined {
		err = c.finishJob(out)
	} else {
		err = c.writeFrame(out)
	}
	if t := c.srv.tel; t != nil {
		t.count(wireOpQueryIdx, out[0] == wire.OpQueryOK)
		if sampled {
			t.latency.ObserveNExemplar(telemetry.Seconds(telemetry.Now()-start), querySamplePeriod, sc.exemplar)
		}
	}
	sc.exemplar = ""
	return err
}

// queryResponse decodes, answers and encodes one query, returning the
// complete response payload (success or typed error) backed by sc.out.
// It is the wire twin of the HTTP handleQuery hot path: same correlation
// minting, same trace-tree shape, same error code mapping, and the same
// journal-before-response ordering (the manager journals before
// returning; the frame is encoded after).
//
//svt:hotpath
func (c *wireConn) queryResponse(sc *wireScratch, reqID uint64, body []byte) []byte {
	srv := c.srv
	// Bound the decode timestamps only when tracing is configured: the
	// untraced server never reads the clock here.
	var d0 int64
	if srv.tracer != nil {
		d0 = telemetry.Now()
	}
	if err := wire.DecodeQueryBody(body, &sc.req); err != nil {
		return sc.errorPayload(reqID, CodeBadRequest, "bad query body: "+err.Error(), 0)
	}
	// Correlation parity with X-Request-Id: echo the client's ID or mint
	// one, and carry it on the response, so any wire answer can be quoted
	// against /v1/traces/{id} and the logs.
	corr := sc.req.Corr
	hasCorr := len(corr) > 0
	var reqIDStr string
	if !hasCorr {
		reqIDStr = newRequestID()
		corr = append(sc.corr[:0], reqIDStr...)
		sc.corr = corr[:0]
	}
	var root *trace.Span
	if srv.tracer.Sample(hasCorr || c.hasTP) {
		if reqIDStr == "" {
			reqIDStr = string(sc.req.Corr)
		}
		var tid trace.TraceID
		if c.hasTP {
			tid = c.tpID
		}
		root = srv.tracer.StartRoot("wire", wireQueryRoute, reqIDStr, tid)
		root.AttachChild("decode", d0, telemetry.Now())
		sc.exemplar = root.TraceIDString()
		defer root.End()
	}
	n := len(sc.req.Items)
	switch {
	case n == 0:
		return sc.errorPayload(reqID, CodeBadRequest, "empty query batch", 0)
	case n > srv.cfg.MaxBatch:
		return c.batchTooLargePayload(sc, reqID, n)
	}
	sid := c.internSession(sc.req.Session)
	root.SetAttr("session", sid)
	root.SetAttrInt("batch", int64(n))
	// Convert to the manager's item shape. Thresholds live in a parallel
	// arena; pointers are taken only after both slices stop growing.
	items := sc.items[:0]
	if cap(items) < n {
		items = make([]QueryItem, 0, n)
	}
	thresholds := sc.thresholds[:0]
	if cap(thresholds) < n {
		thresholds = make([]float64, 0, n)
	}
	for i := range sc.req.Items {
		wi := &sc.req.Items[i]
		items = append(items, QueryItem{Query: wi.Query, Buckets: wi.Buckets})
		thresholds = append(thresholds, wi.Threshold)
	}
	for i := range sc.req.Items {
		if sc.req.Items[i].HasThreshold {
			items[i].Threshold = &thresholds[i]
		}
	}
	sc.items, sc.thresholds = items, thresholds
	var res BatchResult
	var err error
	if root != nil {
		sc.trace = QueryTrace{TraceID: reqIDStr, Span: root}
		res, err = srv.mgr.QueryTraced(sid, items, sc.results[:0], &sc.trace)
		sc.trace = QueryTrace{}
	} else {
		res, err = srv.mgr.QueryInto(sid, items, sc.results[:0])
	}
	if cap(res.Results) > cap(sc.results) {
		sc.results = res.Results[:0]
	}
	switch {
	case errors.Is(err, ErrSessionNotFound):
		return sc.errorPayload(reqID, CodeNotFound, "no such session: "+sid, 0)
	case errors.Is(err, ErrUnavailable):
		return sc.errorPayload(reqID, CodeUnavailable, err.Error(), DefaultRetryAfterSeconds)
	case errors.Is(err, ErrStoreAppend):
		return sc.errorPayload(reqID, CodeStoreFailure, err.Error(), DefaultRetryAfterSeconds)
	case err != nil:
		return sc.errorPayload(reqID, CodeBadRequest, err.Error(), 0)
	}
	es := root.StartChild("encode")
	wres := sc.wres[:0]
	if cap(wres) < len(res.Results) {
		wres = make([]wire.Result, 0, len(res.Results))
	}
	for i := range res.Results {
		r := &res.Results[i]
		wres = append(wres, wire.Result{
			Above:         r.Above,
			Numeric:       r.Numeric,
			FromSynthetic: r.FromSynthetic,
			Exhausted:     r.Exhausted,
			Value:         r.Value,
		})
	}
	sc.wres = wres
	out := wire.AppendHeader(sc.out[:0], wire.OpQueryOK, reqID)
	out = wire.AppendQueryOKBody(out, corr, res.Halted, res.Remaining, wres)
	sc.out = out[:0]
	es.End()
	return out
}

// internSession returns the session ID as a string, reusing the
// connection's interned copy when the session was seen before (the map
// lookup on a []byte key does not allocate).
//
//svt:hotpath
func (c *wireConn) internSession(id []byte) string {
	if s, ok := c.sessions[string(id)]; ok {
		return s
	}
	s := string(id)
	if len(c.sessions) < internedSessionsCap {
		c.sessions[s] = s
	}
	return s
}

// writeFrame writes one response frame from the reader goroutine (inline
// path), flushing unless pipelined responses are still in flight.
//
//svt:hotpath
func (c *wireConn) writeFrame(payload []byte) error {
	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, payload)
	if err == nil && c.inflight.Load() == 0 {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	return err
}

// finishJob writes one pipelined response, flushing when it was the last
// in flight.
//
//svt:hotpath
func (c *wireConn) finishJob(payload []byte) error {
	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, payload)
	if c.inflight.Add(-1) == 0 && err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	return err
}

// writeError writes an error frame outside the normal response path (bad
// framing, rate limit, handshake failures), logging a failed write rather
// than surfacing it — the connection is being torn down anyway.
func (c *wireConn) writeError(payload []byte) {
	if err := c.writeFrame(payload); err != nil {
		c.srv.logf("server: wire error-frame write failed: %v", err)
	}
}

// errorPayload builds an OpError payload into sc.out.
func (sc *wireScratch) errorPayload(reqID uint64, code, msg string, retrySecs uint64) []byte {
	out := wire.AppendHeader(sc.out[:0], wire.OpError, reqID)
	ef := wire.ErrorFrame{Code: code, Message: msg, RetryAfterSeconds: retrySecs}
	out = wire.AppendErrorBody(out, &ef)
	sc.out = out[:0]
	return out
}

// batchTooLargePayload mirrors the HTTP 413 message. Off the hot path on
// purpose: a request tripping the cap may pay for fmt.
func (c *wireConn) batchTooLargePayload(sc *wireScratch, reqID uint64, n int) []byte {
	return sc.errorPayload(reqID, CodeTooLarge,
		fmt.Sprintf("batch of %d exceeds the cap of %d", n, c.srv.cfg.MaxBatch), 0)
}

// rateLimitedPayload mirrors the HTTP 429: same code, same message, same
// ceil-seconds (min 1) retry hint.
func (c *wireConn) rateLimitedPayload(reqID uint64, rl *RateLimiter, wait time.Duration) []byte {
	secs := uint64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	label := c.tenant
	if label == "" {
		label = "default"
	}
	return c.sc.errorPayload(reqID, CodeRateLimited,
		fmt.Sprintf("tenant %q exceeded %g requests/sec", label, rl.rate), secs)
}

// jsonPayload builds a response payload whose body is v's JSON encoding —
// the cold control ops carry the HTTP API's body types verbatim.
func (sc *wireScratch) jsonPayload(op byte, reqID uint64, v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	out := wire.AppendHeader(sc.out[:0], op, reqID)
	out = append(out, b...)
	sc.out = out[:0]
	return out, nil
}

func (c *wireConn) handleCreate(sc *wireScratch, reqID uint64, body []byte) error {
	var params CreateParams
	if err := json.Unmarshal(body, &params); err != nil {
		c.srv.tel.count(wireOpCreateIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeBadRequest, "bad request body: "+err.Error(), 0))
	}
	// The tenant comes from the hello handshake, never the body — the
	// same rule as the HTTP header.
	params.Tenant = c.tenant
	s, err := c.srv.mgr.Create(params)
	var out []byte
	switch {
	case errors.Is(err, ErrTooManySessions):
		out = sc.errorPayload(reqID, CodeTooManySessions, err.Error(), 0)
	case errors.Is(err, ErrUnavailable):
		out = sc.errorPayload(reqID, CodeUnavailable, err.Error(), DefaultRetryAfterSeconds)
	case errors.Is(err, ErrStoreAppend):
		out = sc.errorPayload(reqID, CodeStoreFailure, err.Error(), DefaultRetryAfterSeconds)
	case err != nil:
		out = sc.errorPayload(reqID, CodeBadRequest, err.Error(), 0)
	default:
		out, err = sc.jsonPayload(wire.OpCreateOK, reqID, CreateResponse{
			SessionStatus: s.Status(),
			TTLSeconds:    s.ttl.Seconds(),
		})
		if err != nil {
			out = sc.errorPayload(reqID, CodeStoreFailure, "response encode failed: "+err.Error(), 0)
		}
	}
	c.srv.tel.count(wireOpCreateIdx, out[0] != wire.OpError)
	return c.writeFrame(out)
}

func (c *wireConn) handleStatus(sc *wireScratch, reqID uint64, body []byte) error {
	id, err := wire.DecodeIDBody(body)
	if err != nil {
		c.srv.tel.count(wireOpStatusIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeBadRequest, err.Error(), 0))
	}
	sid := c.internSession(id)
	s, ok := c.srv.mgr.Get(sid)
	if !ok {
		c.srv.tel.count(wireOpStatusIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeNotFound, "no such session: "+sid, 0))
	}
	out, err := sc.jsonPayload(wire.OpStatusOK, reqID, s.Status())
	if err != nil {
		out = sc.errorPayload(reqID, CodeStoreFailure, "response encode failed: "+err.Error(), 0)
	}
	c.srv.tel.count(wireOpStatusIdx, out[0] != wire.OpError)
	return c.writeFrame(out)
}

func (c *wireConn) handleDelete(sc *wireScratch, reqID uint64, body []byte) error {
	id, err := wire.DecodeIDBody(body)
	if err != nil {
		c.srv.tel.count(wireOpDeleteIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeBadRequest, err.Error(), 0))
	}
	sid := c.internSession(id)
	if !c.srv.mgr.Delete(sid) {
		c.srv.tel.count(wireOpDeleteIdx, false)
		return c.writeFrame(sc.errorPayload(reqID, CodeNotFound, "no such session: "+sid, 0))
	}
	out := wire.AppendHeader(sc.out[:0], wire.OpDeleteOK, reqID)
	sc.out = out[:0]
	c.srv.tel.count(wireOpDeleteIdx, true)
	return c.writeFrame(out)
}

func (c *wireConn) handleMechanisms(sc *wireScratch, reqID uint64) error {
	out, err := sc.jsonPayload(wire.OpMechanismsOK, reqID,
		MechanismsResponse{Mechanisms: c.srv.mgr.Mechanisms()})
	if err != nil {
		out = sc.errorPayload(reqID, CodeStoreFailure, "response encode failed: "+err.Error(), 0)
	}
	c.srv.tel.count(wireOpMechanismsIdx, out[0] != wire.OpError)
	return c.writeFrame(out)
}
